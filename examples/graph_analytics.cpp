/**
 * @file
 * Example: the paper's intro scenario — "a graph application exploits
 * parallelism by creating multiple containers, each one with one
 * process. Each process performs different traversals on the shared
 * graph." (§II-A)
 *
 * Runs N PageRank containers over one shared graph and reports
 * throughput (work units/ms) and the translation-sharing statistics as
 * the container count scales.
 *
 * Run: ./build/examples/graph_analytics [max_containers]
 */

#include <cstdio>
#include <cstdlib>

#include "core/system.hh"
#include "workloads/apps.hh"

using namespace bf;

namespace
{

struct Result
{
    double units_per_ms;
    double shared_hit_frac;
    std::uint64_t live_table_pages;
};

Result
run(bool babelfish, unsigned containers)
{
    core::SystemParams params = babelfish
                                    ? core::SystemParams::babelfish()
                                    : core::SystemParams::baseline();
    params.num_cores = std::max(1u, containers / 2);
    core::System sys(params);

    auto profile = workloads::AppProfile::graphchi();
    auto app = workloads::buildApp(sys.kernel(), profile, containers, 3);
    auto threads = workloads::makeAppThreads(app, 3);
    for (unsigned i = 0; i < containers; ++i)
        sys.addThread(i % params.num_cores, threads[i].get());

    sys.run(msToCycles(8));
    sys.resetStats();
    for (auto &t : threads)
        static_cast<workloads::ComputeThread *>(t.get())
            ->resetMeasurement();
    sys.run(msToCycles(20));

    Result r{};
    std::uint64_t units = 0;
    for (auto &t : threads)
        units += static_cast<workloads::ComputeThread *>(t.get())
                     ->unitsDone();
    r.units_per_ms = units / 20.0;
    const auto hits =
        sys.totalL2TlbHits(false) + sys.totalL2TlbHits(true);
    r.shared_hit_frac =
        hits ? static_cast<double>(sys.totalL2TlbSharedHits(false) +
                                   sys.totalL2TlbSharedHits(true)) /
                   hits
             : 0;
    r.live_table_pages = sys.kernel().tables_allocated.value() -
                         sys.kernel().tables_freed.value();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bf::detail::setVerbose(false);
    const unsigned max_containers =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;

    std::printf("PageRank containers over one shared graph "
                "(2 containers/core)\n");
    std::printf("%-11s %16s %16s %14s %14s\n", "containers",
                "base units/ms", "bf units/ms", "bf shared-hit",
                "pt pages b/bf");
    for (unsigned n = 2; n <= max_containers; n *= 2) {
        const Result base = run(false, n);
        const Result fish = run(true, n);
        std::printf("%-11u %16.1f %16.1f %13.1f%% %7llu/%llu\n", n,
                    base.units_per_ms, fish.units_per_ms,
                    100.0 * fish.shared_hit_frac,
                    static_cast<unsigned long long>(
                        base.live_table_pages),
                    static_cast<unsigned long long>(
                        fish.live_table_pages));
    }
    std::printf("\nBabelFish fuses the per-container copies of the "
                "graph's page tables: page-table\nmemory grows at about "
                "half the baseline rate as containers scale, and\n"
                "throughput rises from shared walk state (the graph's "
                "pte lines stay warm in\nthe shared L3).\n");
    return 0;
}
