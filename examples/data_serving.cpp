/**
 * @file
 * Example: a containerized data-serving deployment (the paper's intro
 * scenario) — an 8-core server running YCSB-driven MongoDB containers,
 * two per core, comparing request latency under Baseline and BabelFish.
 *
 * Run: ./build/examples/data_serving [num_cores] [measure_ms]
 */

#include <cstdio>
#include <cstdlib>

#include "core/system.hh"
#include "workloads/apps.hh"

using namespace bf;

namespace
{

struct Result
{
    double mean = 0;
    double p95 = 0;
    double requests = 0;
    std::uint64_t faults = 0;
};

Result
serve(const core::SystemParams &base, unsigned num_cores,
      double measure_ms)
{
    core::SystemParams params = base;
    params.num_cores = num_cores;
    core::System sys(params);

    const auto profile = workloads::AppProfile::mongodb();
    const unsigned n = num_cores * 2; // two containers per core
    auto app = workloads::buildApp(sys.kernel(), profile, n, /*seed=*/1);
    auto threads = workloads::makeAppThreads(app, 1);
    for (unsigned i = 0; i < n; ++i)
        sys.addThread(i % num_cores, threads[i].get());

    sys.run(msToCycles(12)); // warm up
    sys.resetStats();
    for (auto &t : threads)
        static_cast<workloads::DataServingThread *>(t.get())
            ->resetMeasurement();
    sys.run(msToCycles(measure_ms));

    Result r;
    unsigned samples = 0;
    for (auto &t : threads) {
        auto *ds = static_cast<workloads::DataServingThread *>(t.get());
        if (ds->latency().count() == 0)
            continue;
        r.mean += ds->latency().mean();
        r.p95 += ds->latency().percentile(95);
        r.requests += static_cast<double>(ds->latency().count());
        ++samples;
    }
    if (samples) {
        r.mean /= samples;
        r.p95 /= samples;
    }
    r.faults = sys.kernel().minor_faults.value() +
               sys.kernel().cow_faults.value();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bf::detail::setVerbose(false);
    const unsigned cores = argc > 1 ? std::atoi(argv[1]) : 4;
    const double ms = argc > 2 ? std::atof(argv[2]) : 25.0;

    std::printf("MongoDB containers (YCSB), %u cores x 2 containers, "
                "%.0f ms window\n",
                cores, ms);

    const Result base = serve(core::SystemParams::baseline(), cores, ms);
    const Result fish = serve(core::SystemParams::babelfish(), cores, ms);

    std::printf("%-24s %14s %14s\n", "", "Baseline", "BabelFish");
    std::printf("%-24s %14.0f %14.0f\n", "mean latency (cycles)",
                base.mean, fish.mean);
    std::printf("%-24s %14.0f %14.0f\n", "p95 latency (cycles)",
                base.p95, fish.p95);
    std::printf("%-24s %14.0f %14.0f\n", "requests served",
                base.requests, fish.requests);
    std::printf("%-24s %14llu %14llu\n", "page faults",
                static_cast<unsigned long long>(base.faults),
                static_cast<unsigned long long>(fish.faults));
    std::printf("\nmean latency reduction: %.1f%%   tail reduction: "
                "%.1f%%\n",
                100.0 * (1.0 - fish.mean / base.mean),
                100.0 * (1.0 - fish.p95 / base.p95));
    return 0;
}
