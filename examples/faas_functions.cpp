/**
 * @file
 * Example: a serverless (FaaS) burst — the three paper functions
 * (Parse, Hash, Marshal) triggered on one core, with dense and sparse
 * input access patterns. Shows bring-up and execution time per function
 * under Baseline and BabelFish.
 *
 * Run: ./build/examples/faas_functions
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/system.hh"
#include "workloads/function.hh"

using namespace bf;

namespace
{

void
burst(bool babelfish, bool sparse)
{
    core::SystemParams params = babelfish
                                    ? core::SystemParams::babelfish()
                                    : core::SystemParams::baseline();
    params.num_cores = 1;
    params.core.quantum = msToCycles(1);
    core::System sys(params);

    auto group = workloads::buildFaasGroup(
        sys.kernel(), workloads::FunctionProfile::all(), /*seed=*/9);

    std::vector<std::unique_ptr<workloads::FunctionThread>> threads;
    for (unsigned i = 0; i < 3; ++i) {
        threads.push_back(std::make_unique<workloads::FunctionThread>(
            group.profiles[i], group.containers[i], sparse, 50 + i));
        sys.addThread(0, threads[i].get());
    }
    sys.runUntilFinished(msToCycles(4000));

    std::printf("  %-10s %-8s", babelfish ? "BabelFish" : "Baseline",
                sparse ? "sparse" : "dense");
    for (unsigned i = 0; i < 3; ++i) {
        std::printf("  %s: up %5.2fM run %7.2fM",
                    group.profiles[i].name.c_str(),
                    threads[i]->bringupCycles() / 1e6,
                    threads[i]->execCycles() / 1e6);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    bf::detail::setVerbose(false);
    std::printf("FaaS burst: Parse + Hash + Marshal on one core "
                "(cycles, M)\n");
    std::printf("dense input: every line of a page; sparse: ~10%% of a "
                "page (paper Section VI)\n\n");
    for (bool sparse : {false, true}) {
        for (bool babelfish : {false, true})
            burst(babelfish, sparse);
        std::printf("\n");
    }
    std::printf("BabelFish accelerates the trailing functions most: the "
                "leader's faults warm the\ngroup-shared page tables, so "
                "later functions skip both the faults and most walks.\n");
    return 0;
}
