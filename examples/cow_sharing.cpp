/**
 * @file
 * Example: a guided tour of the BabelFish CoW machinery (paper §III-A
 * and the Appendix) using the kernel API directly.
 *
 * Three containers privately map the same writable file. We watch the
 * shared PTE table, the MaskPage (pid_list + PC bitmasks), the
 * Ownership/ORPC bits, and the single-entry shootdown as containers
 * write to a copy-on-write page one by one.
 *
 * Run: ./build/examples/cow_sharing
 */

#include <cstdio>
#include <vector>

#include "vm/kernel.hh"

using namespace bf;
using namespace bf::vm;

namespace
{

constexpr Addr kVa = 0x7f00'0000'0000ull;

void
show(Kernel &kernel, Ccid ccid, const std::vector<Process *> &procs)
{
    for (Process *p : procs) {
        PageTablePage *pud =
            kernel.tableByFrame(p->pgd()->entryFor(kVa).frame());
        PageTablePage *pmd =
            pud ? kernel.tableByFrame(pud->entryFor(kVa).frame())
                : nullptr;
        if (!pmd || !pmd->entryFor(kVa).present()) {
            std::printf("  %-4s: no mapping yet\n", p->name().c_str());
            continue;
        }
        const Entry pmd_entry = pmd->entryFor(kVa);
        PageTablePage *leaf = kernel.tableByFrame(pmd_entry.frame());
        const Entry pte = leaf->entryFor(kVa);
        std::printf("  %-4s: PTE-table frame %-6llu %-7s O=%d ORPC=%d "
                    "-> page frame %-6llu %s\n",
                    p->name().c_str(),
                    static_cast<unsigned long long>(leaf->frame()),
                    leaf->group_shared ? "SHARED" : "private",
                    pmd_entry.owned(), pmd_entry.orpc(),
                    static_cast<unsigned long long>(pte.frame()),
                    pte.cow() ? "(CoW)" : "(writable)");
    }
    if (MaskPage *mask = kernel.maskFor(ccid, kVa)) {
        std::printf("  MaskPage: %u writer(s) in pid_list, PC bitmask "
                    "for this region = 0x%x\n",
                    mask->writerCount(), mask->bitmaskFor(kVa));
    } else {
        std::printf("  MaskPage: none yet\n");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    bf::detail::setVerbose(false);
    KernelParams params;
    params.babelfish = true;
    params.aslr = AslrMode::Sw;
    params.mem_frames = 1 << 22;
    Kernel kernel(params);

    unsigned shootdowns = 0;
    kernel.setTlbInvalidateHook([&](const TlbInvalidate &inv) {
        if (inv.kind == TlbInvalidate::Kind::SharedRange)
            std::printf("  >> TLB shootdown: shared entry for VPN 0x%llx"
                        " (%llu page(s)) dropped on every core\n",
                        static_cast<unsigned long long>(inv.vpn),
                        static_cast<unsigned long long>(inv.num_pages)),
                ++shootdowns;
    });

    const Ccid group = kernel.createGroup("demo-app", 123);
    MappedObject *config = kernel.createFile("config", 8 << 20);
    config->preload(kernel.frames());

    std::vector<Process *> procs;
    for (const char *name : {"A", "B", "C"}) {
        Process *p = kernel.createProcess(group, name);
        kernel.mmapObject(*p, config, kVa, 8 << 20, 0, /*writable=*/true,
                          false, /*shared=*/false);
        procs.push_back(p);
    }

    std::printf("1. All three containers read the same config page "
                "(one minor fault total):\n");
    for (Process *p : procs)
        kernel.handleFault(*p, kVa, AccessType::Read);
    show(kernel, group, procs);
    std::printf("   minor faults: %llu, shared installs: %llu\n\n",
                static_cast<unsigned long long>(
                    kernel.minor_faults.value()),
                static_cast<unsigned long long>(
                    kernel.shared_installs.value()));

    std::printf("2. Container B writes the page: it privatizes the "
                "512-entry PTE table,\n   claims bit 0 of the PC "
                "bitmask, and the shared entry is shot down:\n");
    kernel.handleFault(*procs[1], kVa, AccessType::Write);
    show(kernel, group, procs);

    std::printf("3. Container C writes too (bit 1); A still shares the "
                "clean page:\n");
    kernel.handleFault(*procs[2], kVa, AccessType::Write);
    show(kernel, group, procs);

    std::printf("4. A different page of the same region stays fused for "
                "everyone who\n   hasn't written it — B reads it through "
                "its private table, A through\n   the shared one, with "
                "identical frames:\n");
    kernel.handleFault(*procs[0], kVa + 0x1000, AccessType::Read);
    kernel.handleFault(*procs[1], kVa + 0x1000, AccessType::Read);
    show(kernel, group, procs);

    std::printf("totals: privatizations=%llu shootdowns=%u "
                "cow_faults=%llu\n",
                static_cast<unsigned long long>(
                    kernel.cow_privatizations.value()),
                shootdowns,
                static_cast<unsigned long long>(kernel.cow_faults.value()));
    return 0;
}
