/**
 * @file
 * Example: measure translation replication the way the paper does for
 * Fig. 9 — run containerized workloads on the baseline kernel and scan
 * their page tables with the Pagemap analyzer.
 *
 * Run: ./build/examples/pagemap_scan [app]
 *      app in {arangodb, mongodb, httpd, graphchi, fio}
 */

#include <cstdio>
#include <cstring>

#include "analysis/pagemap.hh"
#include "core/system.hh"
#include "workloads/apps.hh"

using namespace bf;

int
main(int argc, char **argv)
{
    bf::detail::setVerbose(false);
    const char *which = argc > 1 ? argv[1] : "httpd";

    workloads::AppProfile profile;
    if (!std::strcmp(which, "arangodb"))
        profile = workloads::AppProfile::arangodb();
    else if (!std::strcmp(which, "mongodb"))
        profile = workloads::AppProfile::mongodb();
    else if (!std::strcmp(which, "graphchi"))
        profile = workloads::AppProfile::graphchi();
    else if (!std::strcmp(which, "fio"))
        profile = workloads::AppProfile::fio();
    else
        profile = workloads::AppProfile::httpd();

    core::SystemParams params = core::SystemParams::baseline();
    params.num_cores = 2;
    core::System sys(params);

    auto app = workloads::buildApp(sys.kernel(), profile, 2, 77);
    auto threads = workloads::makeAppThreads(app, 77);
    sys.addThread(0, threads[0].get());
    sys.addThread(1, threads[1].get());

    sys.run(msToCycles(15));
    sys.kernel().clearAccessedBits(); // LRU aging
    sys.run(msToCycles(25));

    std::vector<const vm::Process *> procs(app.containers.begin(),
                                           app.containers.end());
    const auto s = analysis::scanGroup(sys.kernel(), procs);

    std::printf("%s: two containers, steady state\n", profile.name.c_str());
    std::printf("  total pte_ts        %8llu\n",
                static_cast<unsigned long long>(s.total));
    std::printf("    shareable         %8llu (%.1f%%)\n",
                static_cast<unsigned long long>(s.total_shareable),
                100.0 * s.shareableFraction());
    std::printf("    unshareable       %8llu\n",
                static_cast<unsigned long long>(s.total_unshareable));
    std::printf("    THP               %8llu\n",
                static_cast<unsigned long long>(s.total_thp));
    std::printf("  active pte_ts       %8llu\n",
                static_cast<unsigned long long>(s.active));
    std::printf("  active w/ BabelFish %8llu  (-%.1f%%)\n",
                static_cast<unsigned long long>(s.babelfish_active),
                100.0 * s.activeReduction());
    return 0;
}
