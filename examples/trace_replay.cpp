/**
 * @file
 * Example: drive the simulator with your own memory trace.
 *
 * A trace is plain text — `<R|W|I> <address> [instrs]` per line — so any
 * binary-instrumentation tool can produce one. This example synthesizes
 * a small trace of a process scanning a shared file plus writing private
 * scratch, replays it in two containers of one CCID group, and compares
 * Baseline vs BabelFish.
 *
 * Run: ./build/examples/trace_replay [trace-file]
 *      (without an argument a built-in demo trace is used)
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/system.hh"
#include "workloads/trace.hh"

using namespace bf;

namespace
{

constexpr Addr kDataVa = 0x7e00'0000'0000ull;    // shared file (Shm)
constexpr Addr kScratchVa = 0x0001'0000'0000ull; // private (Heap)

std::string
demoTrace()
{
    std::ostringstream text;
    text << "# demo: strided scan over 2 MB of shared data with\n";
    text << "# private scratch writes every 8th access\n";
    for (int i = 0; i < 512; ++i) {
        text << "R 0x" << std::hex << (kDataVa + i * 0x1000) << std::dec
             << " 300\n";
        if (i % 8 == 7)
            text << "W 0x" << std::hex << (kScratchVa + (i / 8) * 0x1000)
                 << std::dec << " 150\n";
    }
    return text.str();
}

double
replay(const std::vector<core::MemRef> &trace, bool babelfish)
{
    core::SystemParams params = babelfish
                                    ? core::SystemParams::babelfish()
                                    : core::SystemParams::baseline();
    params.num_cores = 1;
    params.kernel.mem_frames = 1 << 22;
    core::System sys(params);
    vm::Kernel &kernel = sys.kernel();

    const Ccid group = kernel.createGroup("trace-app", 5);
    auto *data = kernel.createFile("data", 64ull << 20);
    data->preload(kernel.frames());

    std::vector<std::unique_ptr<workloads::TraceThread>> threads;
    for (int c = 0; c < 2; ++c) {
        vm::Process *proc =
            kernel.createProcess(group, "c" + std::to_string(c));
        kernel.mmapObject(*proc, data, kDataVa, 64ull << 20, 0, false,
                          false, false);
        kernel.mmapAnon(*proc, kScratchVa, 16ull << 20, true, false);
        threads.push_back(std::make_unique<workloads::TraceThread>(
            "trace", proc, trace, /*loops=*/20));
        sys.addThread(0, threads.back().get());
    }
    sys.runUntilFinished(msToCycles(500));
    // busy_cycles counts the work actually executed (the core clock
    // snaps to scheduler barriers).
    return static_cast<double>(sys.core(0).busy_cycles.value());
}

} // namespace

int
main(int argc, char **argv)
{
    bf::detail::setVerbose(false);

    std::vector<core::MemRef> trace;
    if (argc > 1) {
        std::ifstream file(argv[1]);
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        trace = workloads::parseTrace(file);
        std::printf("replaying %zu references from %s in 2 containers\n",
                    trace.size(), argv[1]);
    } else {
        std::istringstream demo(demoTrace());
        trace = workloads::parseTrace(demo);
        std::printf("replaying the built-in demo trace (%zu refs, "
                    "20 loops, 2 containers)\n",
                    trace.size());
    }

    const double base = replay(trace, false);
    const double fish = replay(trace, true);
    std::printf("%-12s %14.0f cycles\n", "Baseline", base);
    std::printf("%-12s %14.0f cycles  (-%.1f%%)\n", "BabelFish", fish,
                100.0 * (1.0 - fish / base));
    return 0;
}
