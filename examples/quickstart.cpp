/**
 * @file
 * Quickstart: simulate two containers of one application sharing address
 * translations, and compare Baseline vs BabelFish.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/system.hh"
#include "workloads/apps.hh"

using namespace bf;

namespace
{

struct RunResult
{
    double l2_data_mpki;
    double l2_instr_mpki;
    double shared_hit_fraction;
    std::uint64_t minor_faults;
    std::uint64_t shared_installs;
};

RunResult
run(const core::SystemParams &params)
{
    core::System sys(params);

    // One application (HTTPd profile), two containers, both on core 0 —
    // the paper's conservative co-location.
    auto profile = workloads::AppProfile::httpd();
    auto app = workloads::buildApp(sys.kernel(), profile,
                                   /*num_containers=*/2, /*seed=*/7);
    auto threads = workloads::makeAppThreads(app, /*seed=*/7);
    for (auto &thread : threads)
        sys.addThread(0, thread.get());

    sys.run(msToCycles(4));   // warm up OS + architecture state
    sys.resetStats();
    sys.run(msToCycles(8));   // measure

    RunResult r{};
    const double kilo_instr =
        static_cast<double>(sys.totalInstructions()) / 1000.0;
    r.l2_data_mpki = sys.totalL2TlbMisses(false) / kilo_instr;
    r.l2_instr_mpki = sys.totalL2TlbMisses(true) / kilo_instr;
    const auto hits = sys.totalL2TlbHits(false) + sys.totalL2TlbHits(true);
    const auto shared = sys.totalL2TlbSharedHits(false) +
                        sys.totalL2TlbSharedHits(true);
    r.shared_hit_fraction = hits ? static_cast<double>(shared) / hits : 0;
    r.minor_faults = sys.kernel().minor_faults.value();
    r.shared_installs = sys.kernel().shared_installs.value();
    return r;
}

} // namespace

int
main()
{
    bf::detail::setVerbose(false);

    std::printf("BabelFish quickstart: 2 HTTPd containers on one core\n");
    std::printf("----------------------------------------------------\n");

    const RunResult base = run(core::SystemParams::baseline());
    const RunResult fish = run(core::SystemParams::babelfish());

    std::printf("%-28s %12s %12s\n", "metric", "Baseline", "BabelFish");
    std::printf("%-28s %12.3f %12.3f\n", "L2 TLB data MPKI",
                base.l2_data_mpki, fish.l2_data_mpki);
    std::printf("%-28s %12.3f %12.3f\n", "L2 TLB instr MPKI",
                base.l2_instr_mpki, fish.l2_instr_mpki);
    std::printf("%-28s %12.3f %12.3f\n", "L2 shared-hit fraction",
                base.shared_hit_fraction, fish.shared_hit_fraction);
    std::printf("%-28s %12llu %12llu\n", "minor faults (measured run)",
                static_cast<unsigned long long>(base.minor_faults),
                static_cast<unsigned long long>(fish.minor_faults));
    std::printf("%-28s %12llu %12llu\n", "shared table installs",
                static_cast<unsigned long long>(base.shared_installs),
                static_cast<unsigned long long>(fish.shared_installs));
    return 0;
}
