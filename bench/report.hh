/**
 * @file
 * Machine-readable bench output: every bench binary writes a
 * BENCH_<name>.json next to its stdout tables so the perf trajectory
 * can be tracked PR-over-PR without scraping text.
 *
 * Schema (version 3; see README.md "Reading the stats output"):
 *
 *   {
 *     "schema_version": 3,
 *     "bench": "<name>",
 *     "config": { "<knob>": <number|string>, ... },
 *     "metrics": { "<headline metric>": <number>, ... },
 *     "capped_runs": <number of runs that hit the cycle cap>,
 *     "runs": {
 *       "<label>": {
 *         "capped": <bool>,
 *         "trace_file": "<path or empty when tracing was off>",
 *         "stats": { <stats::toJson of the System tree> },
 *         "timeseries": { <StatSampler::toJson> },
 *         "tenants": [ <attrib::Registry::tenantsJson rows: one object
 *                       per container with the per-tenant counters,
 *                       miss-latency percentiles, interference scalars
 *                       and evicted-by maps; [] when BF_ATTRIB=0> ]
 *       }, ...
 *     },
 *     "series": {
 *       "<name>": { "x_label": "...", "y_label": "...",
 *                   "points": [[x, y], ...] }, ...
 *     },
 *     "host": {
 *       "<label>": { "host_seconds": <number>, "sim_mips": <number>,
 *                    "phases": { "bound": <number>, "fault": <number>,
 *                                "merge": <number>, "weave": <number> } },
 *       ...
 *     },
 *     "notes": { "<key>": <number|string>, ... }
 *   }
 *
 * Version 2 added the host-speed section ("host": wall-clock seconds and
 * simulated MIPS per workload, written by bench_simspeed) and free-form
 * "notes" (e.g. baseline_mips / speedup bookkeeping). Version 3 records
 * external artifact paths per run ("trace_file": the BF_TRACE event
 * trace; the time series stays embedded under "timeseries") and the
 * effective values of every BF_* execution knob under "config". All
 * additions are additive; the architectural stats under "runs" are
 * unchanged. The optional per-phase host breakdown under each host row
 * ("phases": seconds spent in the bound / fault-service / merge / weave
 * stages of the chunk loop, from System::phaseTimes) is likewise an
 * additive v3 field — absent when the bench did not collect it.
 *
 * Environment knobs: BF_JSON=0 disables the file; BF_JSON_DIR=<dir>
 * redirects it (default: the current directory).
 */

#ifndef BF_BENCH_REPORT_HH
#define BF_BENCH_REPORT_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats_export.hh"

namespace bfbench
{

/** Serialized observability output of one simulation run. */
struct RunArtifacts
{
    std::string stats_json;      //!< stats::toJson of the final tree.
    std::string timeseries_json; //!< StatSampler::toJson.
    std::string trace_path;      //!< Event-trace file ("" = tracing off).
    std::string tenants_json;    //!< attrib::Registry::tenantsJson
                                 //!< ("" = attribution off).
    bool capped = false;         //!< Run hit the runUntilFinished cap.
};

/** Accumulates one bench's results and writes BENCH_<name>.json. */
class BenchReport
{
  public:
    explicit BenchReport(std::string name) : name_(std::move(name))
    {
        if (const char *flag = std::getenv("BF_JSON"))
            enabled_ = !(flag[0] == '0' && flag[1] == '\0');
        if (const char *dir = std::getenv("BF_JSON_DIR"))
            dir_ = dir;
    }

    bool enabled() const { return enabled_; }

    /** Output path: <BF_JSON_DIR>/BENCH_<name>.json */
    std::string
    path() const
    {
        return dir_ + "/BENCH_" + name_ + ".json";
    }

    /** Record a configuration knob. */
    void
    config(const std::string &key, double value)
    {
        config_.emplace_back(key, bf::stats::jsonNumber(value));
    }

    void
    config(const std::string &key, const std::string &value)
    {
        config_.emplace_back(
            key, "\"" + bf::stats::jsonEscape(value) + "\"");
    }

    /** Record a headline metric (one number the tables also print). */
    void
    metric(const std::string &name, double value)
    {
        metrics_.emplace_back(name, value);
    }

    /**
     * Record a host-speed measurement: wall-clock seconds of simulation
     * and the resulting simulated MIPS (instructions per host-second /
     * 1e6). These fields describe the *simulator's* throughput, never
     * the modeled machine, so they are exempt from golden-stats diffs.
     */
    void
    host(const std::string &label, double host_seconds, double sim_mips)
    {
        host_.push_back({ label, host_seconds, sim_mips });
    }

    /**
     * As host(), plus the per-phase breakdown of where those host
     * seconds went (System::phaseTimes — bound / fault-service / merge
     * / weave). Emits the optional "phases" object on the host row.
     */
    void
    hostPhases(const std::string &label, double host_seconds,
               double sim_mips, double bound, double fault, double merge,
               double weave)
    {
        host_.push_back(
            { label, host_seconds, sim_mips, true, bound, fault, merge,
              weave });
    }

    /** @{ @name Free-form notes (e.g.\ baseline_mips, speedup). */
    void
    note(const std::string &key, double value)
    {
        notes_.emplace_back(key, bf::stats::jsonNumber(value));
    }

    void
    note(const std::string &key, const std::string &value)
    {
        notes_.emplace_back(
            key, "\"" + bf::stats::jsonEscape(value) + "\"");
    }
    /** @} */

    /** Record one run's full stats + time series under a label. */
    void
    addRun(const std::string &label, const RunArtifacts &artifacts)
    {
        runs_.emplace_back(label, artifacts);
        if (artifacts.capped)
            ++capped_runs_;
    }

    /**
     * Record an analytic series (parameter sweeps of benches that do
     * not run a System, e.g. the CactiLite area-vs-entries curve).
     */
    void
    addSeries(const std::string &name, const std::string &x_label,
              const std::string &y_label,
              const std::vector<std::pair<double, double>> &points)
    {
        series_.push_back({ name, x_label, y_label, points });
    }

    /** Runs recorded so far that hit the runUntilFinished cycle cap. */
    unsigned cappedRuns() const { return capped_runs_; }

    /**
     * Write the JSON file and surface truncated runs on stdout. Call
     * once, after the tables are printed.
     */
    void
    write() const
    {
        if (capped_runs_) {
            std::printf("WARNING: %u run(s) hit the runUntilFinished "
                        "cycle cap; their results are truncated, not "
                        "converged\n",
                        capped_runs_);
        }
        if (!enabled_)
            return;
        std::ofstream os(path());
        if (!os) {
            std::fprintf(stderr, "could not write %s\n", path().c_str());
            return;
        }
        os << "{\"schema_version\":3,\"bench\":\""
           << bf::stats::jsonEscape(name_) << "\",\"config\":{";
        bool first = true;
        for (const auto &[key, value] : config_) {
            os << (first ? "" : ",") << '"' << bf::stats::jsonEscape(key)
               << "\":" << value;
            first = false;
        }
        os << "},\"metrics\":{";
        first = true;
        for (const auto &[key, value] : metrics_) {
            os << (first ? "" : ",") << '"' << bf::stats::jsonEscape(key)
               << "\":" << bf::stats::jsonNumber(value);
            first = false;
        }
        os << "},\"capped_runs\":" << capped_runs_ << ",\"runs\":{";
        first = true;
        for (const auto &[label, artifacts] : runs_) {
            os << (first ? "" : ",") << '"'
               << bf::stats::jsonEscape(label) << "\":{\"capped\":"
               << (artifacts.capped ? "true" : "false")
               << ",\"trace_file\":\""
               << bf::stats::jsonEscape(artifacts.trace_path)
               << "\",\"stats\":"
               << (artifacts.stats_json.empty() ? "{}"
                                                : artifacts.stats_json)
               << ",\"timeseries\":"
               << (artifacts.timeseries_json.empty()
                       ? "{}"
                       : artifacts.timeseries_json)
               << ",\"tenants\":"
               << (artifacts.tenants_json.empty() ? "[]"
                                                  : artifacts.tenants_json)
               << '}';
            first = false;
        }
        os << "},\"series\":{";
        first = true;
        for (const auto &s : series_) {
            os << (first ? "" : ",") << '"'
               << bf::stats::jsonEscape(s.name) << "\":{\"x_label\":\""
               << bf::stats::jsonEscape(s.x_label) << "\",\"y_label\":\""
               << bf::stats::jsonEscape(s.y_label) << "\",\"points\":[";
            bool pfirst = true;
            for (const auto &[x, y] : s.points) {
                os << (pfirst ? "" : ",") << '['
                   << bf::stats::jsonNumber(x) << ','
                   << bf::stats::jsonNumber(y) << ']';
                pfirst = false;
            }
            os << "]}";
            first = false;
        }
        os << "},\"host\":{";
        first = true;
        for (const auto &h : host_) {
            os << (first ? "" : ",") << '"'
               << bf::stats::jsonEscape(h.label) << "\":{\"host_seconds\":"
               << bf::stats::jsonNumber(h.host_seconds) << ",\"sim_mips\":"
               << bf::stats::jsonNumber(h.sim_mips);
            if (h.has_phases) {
                os << ",\"phases\":{\"bound\":"
                   << bf::stats::jsonNumber(h.bound) << ",\"fault\":"
                   << bf::stats::jsonNumber(h.fault) << ",\"merge\":"
                   << bf::stats::jsonNumber(h.merge) << ",\"weave\":"
                   << bf::stats::jsonNumber(h.weave) << '}';
            }
            os << '}';
            first = false;
        }
        os << "},\"notes\":{";
        first = true;
        for (const auto &[key, value] : notes_) {
            os << (first ? "" : ",") << '"' << bf::stats::jsonEscape(key)
               << "\":" << value;
            first = false;
        }
        os << "}}\n";
        std::printf("wrote %s\n", path().c_str());
    }

  private:
    struct Series
    {
        std::string name;
        std::string x_label;
        std::string y_label;
        std::vector<std::pair<double, double>> points;
    };

    struct HostSpeed
    {
        std::string label;
        double host_seconds = 0;
        double sim_mips = 0;
        bool has_phases = false; //!< Emit the "phases" object.
        double bound = 0;
        double fault = 0;
        double merge = 0;
        double weave = 0;
    };

    std::string name_;
    std::string dir_ = ".";
    bool enabled_ = true;
    std::vector<std::pair<std::string, std::string>> config_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<std::string, RunArtifacts>> runs_;
    std::vector<Series> series_;
    std::vector<HostSpeed> host_;
    std::vector<std::pair<std::string, std::string>> notes_;
    unsigned capped_runs_ = 0;
};

} // namespace bfbench

#endif // BF_BENCH_REPORT_HH
