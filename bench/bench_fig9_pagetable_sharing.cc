/**
 * @file
 * Experiment E1 — paper Fig. 9: page-table sharing characterization.
 *
 * For each application, runs two containers (three functions for FaaS)
 * to steady state, scans the group's page tables the way the paper uses
 * Linux Pagemap, and prints the three bars of Fig. 9: total pte_ts,
 * active pte_ts, and active pte_ts after enabling BabelFish — each split
 * into shareable / unshareable / THP.
 *
 * Paper reference points: on average 53% of containerized-workload
 * translations and ~94% of function translations are shareable; the
 * average reduction in total active pte_ts is 30% (containers) and 57%
 * (functions); THP entries are ~8% of totals and rarely active.
 */

#include "bench/common.hh"

#include "analysis/pagemap.hh"

using namespace bfbench;

namespace
{

/** One scan's result plus its observability output. */
struct ScanResult
{
    analysis::PagemapStats stats;
    RunArtifacts artifacts;
};

void
printRow(const char *name, const analysis::PagemapStats &s)
{
    auto pct = [](std::uint64_t part, std::uint64_t whole) {
        return whole ? 100.0 * static_cast<double>(part) /
                           static_cast<double>(whole)
                     : 0.0;
    };
    std::printf("%-10s %9llu  %5.1f%% /%5.1f%% /%4.1f%%  %9llu  %9llu"
                "  %5.1f%%\n",
                name,
                static_cast<unsigned long long>(s.total),
                pct(s.total_shareable, s.total),
                pct(s.total_unshareable, s.total),
                pct(s.total_thp, s.total),
                static_cast<unsigned long long>(s.active),
                static_cast<unsigned long long>(s.babelfish_active),
                100.0 * s.activeReduction());
}

/** Steady-state scan of one containerized app (baseline kernel). */
ScanResult
scanApp(const workloads::AppProfile &profile, const RunConfig &cfg)
{
    core::SystemParams params = core::SystemParams::baseline();
    params.num_cores = 2;
    core::System sys(params);
    if (cfg.sampleInterval())
        sys.enableSampling(cfg.sampleInterval());

    // Two containers of the app (paper: pairs of containers).
    auto app = workloads::buildApp(sys.kernel(), profile, 2, cfg.seed);
    auto threads = workloads::makeAppThreads(app, cfg.seed);
    sys.addThread(0, threads[0].get());
    sys.addThread(1, threads[1].get());

    // Reach steady state (or restore the warm-up checkpoint), then age
    // the LRU (clear accessed bits) and run one more window so 'active'
    // reflects recent touches.
    warmOrRestore(sys, cfg, profile.name, params);
    sys.kernel().clearAccessedBits();
    sys.run(msToCycles(cfg.measure_ms));

    std::vector<const vm::Process *> procs(app.containers.begin(),
                                           app.containers.end());
    return { analysis::scanGroup(sys.kernel(), procs),
             captureArtifacts(sys) };
}

/** Steady-state scan of the three functions. */
ScanResult
scanFunctions(const RunConfig &cfg)
{
    core::SystemParams params = core::SystemParams::baseline();
    params.num_cores = 1;
    params.core.quantum = msToCycles(1);
    core::System sys(params);
    if (cfg.sampleInterval())
        sys.enableSampling(cfg.sampleInterval());

    auto group = workloads::buildFaasGroup(
        sys.kernel(), workloads::FunctionProfile::all(), cfg.seed);
    std::vector<std::unique_ptr<workloads::FunctionThread>> threads;
    for (unsigned i = 0; i < 3; ++i) {
        threads.push_back(std::make_unique<workloads::FunctionThread>(
            group.profiles[i], group.containers[i], /*sparse=*/false,
            cfg.seed + i));
        sys.addThread(0, threads[i].get());
    }
    sys.runUntilFinished(msToCycles(4000));

    std::vector<const vm::Process *> procs(group.containers.begin(),
                                           group.containers.end());
    return { analysis::scanGroup(sys.kernel(), procs),
             captureArtifacts(sys) };
}

} // namespace

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();
    BenchReport report("fig9_pagetable_sharing");
    reportConfig(report, cfg);

    std::vector<workloads::AppProfile> apps;
    for (auto p : workloads::AppProfile::dataServing())
        apps.push_back(p);
    for (auto p : workloads::AppProfile::compute())
        apps.push_back(p);

    std::vector<ScanResult> scans(apps.size());
    ScanResult fn_scan;
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < apps.size(); ++i)
        jobs.push_back([&, i] { scans[i] = scanApp(apps[i], cfg); });
    jobs.push_back([&] { fn_scan = scanFunctions(cfg); });
    runJobs(cfg, std::move(jobs));

    std::printf("Fig. 9 — Page table sharing characterization\n");
    std::printf("(share of total pte_ts: shareable / unshareable / THP;"
                " BabelFish bar fuses shareable active pte_ts)\n");
    rule();
    std::printf("%-10s %9s  %-22s %9s  %9s  %6s\n", "app", "total",
                "share/unshare/thp", "active", "bf-active", "reduct");
    rule();

    double share_sum = 0, reduct_sum = 0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &stats = scans[i].stats;
        printRow(apps[i].name.c_str(), stats);
        share_sum += stats.shareableFraction();
        reduct_sum += stats.activeReduction();
        report.metric(apps[i].name + ".shareable_pct",
                      100.0 * stats.shareableFraction());
        report.metric(apps[i].name + ".active_reduction_pct",
                      100.0 * stats.activeReduction());
        report.addRun(apps[i].name, scans[i].artifacts);
    }
    rule();
    std::printf("%-10s shareable %4.1f%% (paper: 53%%)   active-pte "
                "reduction %4.1f%% (paper: ~30%%)\n",
                "cont.avg", 100.0 * share_sum / apps.size(),
                100.0 * reduct_sum / apps.size());
    report.metric("containers.shareable_pct",
                  100.0 * share_sum / apps.size());
    report.metric("containers.active_reduction_pct",
                  100.0 * reduct_sum / apps.size());
    rule();

    printRow("functions", fn_scan.stats);
    std::printf("%-10s shareable %4.1f%% (paper: ~94%%)  active-pte "
                "reduction %4.1f%% (paper: 57%%)\n",
                "faas", 100.0 * fn_scan.stats.shareableFraction(),
                100.0 * fn_scan.stats.activeReduction());
    report.metric("functions.shareable_pct",
                  100.0 * fn_scan.stats.shareableFraction());
    report.metric("functions.active_reduction_pct",
                  100.0 * fn_scan.stats.activeReduction());
    report.addRun("functions", fn_scan.artifacts);
    report.write();
    return 0;
}
