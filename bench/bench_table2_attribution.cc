/**
 * @file
 * Experiment E5 — paper Table II: fraction of the performance gain that
 * comes from L2 TLB effects (the rest comes from page-table effects:
 * eliminated faults and warm pte_t cache lines).
 *
 * Method: in addition to Baseline and full BabelFish, run a
 * page-table-sharing-only configuration (fused tables in the kernel but
 * a conventional PCID-tagged TLB). The TLB share of the gain is
 *   (gain_full − gain_pt_only) / gain_full.
 *
 * Paper reference points: MongoDB 0.77, ArangoDB 0.25, HTTPd 0.81
 * (avg 0.61); Compute avg 0.20; dense functions avg 0.20; sparse
 * functions avg 0.01 (their gains are almost all fault elimination).
 */

#include <algorithm>

#include "bench/common.hh"

using namespace bfbench;

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();

    std::printf("Table II — Fraction of time reduction due to L2 TLB "
                "effects\n");
    rule();
    std::printf("%-12s %10s %10s %10s %8s\n", "workload", "gain-full",
                "gain-pt", "gain-tlb", "frac-tlb");
    rule();

    auto clamp01 = [](double x) { return std::min(1.0, std::max(0.0, x)); };

    // Data serving: metric = mean latency.
    for (const auto &profile : workloads::AppProfile::dataServing()) {
        const auto base =
            runApp(profile, core::SystemParams::baseline(), cfg);
        const auto pt = runApp(
            profile, core::SystemParams::pageTableSharingOnly(), cfg);
        const auto full =
            runApp(profile, core::SystemParams::babelfish(), cfg);
        const double gain_full =
            reduction(base.mean_latency, full.mean_latency);
        const double gain_pt =
            reduction(base.mean_latency, pt.mean_latency);
        const double frac =
            gain_full > 0 ? clamp01((gain_full - gain_pt) / gain_full)
                          : 0.0;
        std::printf("%-12s %9.1f%% %9.1f%% %9.1f%% %8.2f\n",
                    profile.name.c_str(), gain_full, gain_pt,
                    gain_full - gain_pt, frac);
    }

    // Compute: metric = execution time (1/throughput).
    for (const auto &profile : workloads::AppProfile::compute()) {
        const auto base =
            runApp(profile, core::SystemParams::baseline(), cfg);
        const auto pt = runApp(
            profile, core::SystemParams::pageTableSharingOnly(), cfg);
        const auto full =
            runApp(profile, core::SystemParams::babelfish(), cfg);
        const double gain_full = reduction(1.0 / base.units_per_ms,
                                           1.0 / full.units_per_ms);
        const double gain_pt = reduction(1.0 / base.units_per_ms,
                                         1.0 / pt.units_per_ms);
        const double frac =
            gain_full > 0 ? clamp01((gain_full - gain_pt) / gain_full)
                          : 0.0;
        std::printf("%-12s %9.1f%% %9.1f%% %9.1f%% %8.2f\n",
                    profile.name.c_str(), gain_full, gain_pt,
                    gain_full - gain_pt, frac);
    }

    // Functions: metric = trailing execution time.
    for (bool sparse : {false, true}) {
        const auto base =
            runFaas(core::SystemParams::baseline(), sparse, cfg);
        const auto pt = runFaas(
            core::SystemParams::pageTableSharingOnly(), sparse, cfg);
        const auto full =
            runFaas(core::SystemParams::babelfish(), sparse, cfg);
        const double gain_full =
            reduction(base.trail_exec, full.trail_exec);
        const double gain_pt = reduction(base.trail_exec, pt.trail_exec);
        const double frac =
            gain_full > 0 ? clamp01((gain_full - gain_pt) / gain_full)
                          : 0.0;
        std::printf("%-12s %9.1f%% %9.1f%% %9.1f%% %8.2f\n",
                    sparse ? "fn-sparse" : "fn-dense", gain_full, gain_pt,
                    gain_full - gain_pt, frac);
    }

    rule();
    std::printf("(paper fractions: Mongo 0.77, Arango 0.25, HTTPd 0.81, "
                "Compute avg 0.20,\n dense fns avg 0.20, sparse fns avg "
                "0.01 — sparse gains are almost all page-table effects)\n");
    return 0;
}
