/**
 * @file
 * Experiment E5 — paper Table II: fraction of the performance gain that
 * comes from L2 TLB effects (the rest comes from page-table effects:
 * eliminated faults and warm pte_t cache lines).
 *
 * Method: in addition to Baseline and full BabelFish, run a
 * page-table-sharing-only configuration (fused tables in the kernel but
 * a conventional PCID-tagged TLB). The TLB share of the gain is
 *   (gain_full − gain_pt_only) / gain_full.
 *
 * Paper reference points: MongoDB 0.77, ArangoDB 0.25, HTTPd 0.81
 * (avg 0.61); Compute avg 0.20; dense functions avg 0.20; sparse
 * functions avg 0.01 (their gains are almost all fault elimination).
 */

#include <algorithm>

#include "bench/common.hh"

using namespace bfbench;

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();
    BenchReport report("table2_attribution");
    reportConfig(report, cfg);

    const auto serving = workloads::AppProfile::dataServing();
    const auto compute = workloads::AppProfile::compute();

    // Three configurations per workload, all independent Systems.
    std::vector<AppRunResult> s_base(serving.size()), s_pt(serving.size()),
        s_full(serving.size());
    std::vector<AppRunResult> c_base(compute.size()), c_pt(compute.size()),
        c_full(compute.size());
    FaasRunResult f_base[2], f_pt[2], f_full[2];

    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < serving.size(); ++i) {
        jobs.push_back([&, i] {
            s_base[i] =
                runApp(serving[i], core::SystemParams::baseline(), cfg);
        });
        jobs.push_back([&, i] {
            s_pt[i] = runApp(
                serving[i], core::SystemParams::pageTableSharingOnly(),
                cfg);
        });
        jobs.push_back([&, i] {
            s_full[i] =
                runApp(serving[i], core::SystemParams::babelfish(), cfg);
        });
    }
    for (std::size_t i = 0; i < compute.size(); ++i) {
        jobs.push_back([&, i] {
            c_base[i] =
                runApp(compute[i], core::SystemParams::baseline(), cfg);
        });
        jobs.push_back([&, i] {
            c_pt[i] = runApp(
                compute[i], core::SystemParams::pageTableSharingOnly(),
                cfg);
        });
        jobs.push_back([&, i] {
            c_full[i] =
                runApp(compute[i], core::SystemParams::babelfish(), cfg);
        });
    }
    for (int s = 0; s < 2; ++s) {
        jobs.push_back([&, s] {
            f_base[s] =
                runFaas(core::SystemParams::baseline(), s == 1, cfg);
        });
        jobs.push_back([&, s] {
            f_pt[s] = runFaas(core::SystemParams::pageTableSharingOnly(),
                              s == 1, cfg);
        });
        jobs.push_back([&, s] {
            f_full[s] =
                runFaas(core::SystemParams::babelfish(), s == 1, cfg);
        });
    }
    runJobs(cfg, std::move(jobs));

    std::printf("Table II — Fraction of time reduction due to L2 TLB "
                "effects\n");
    rule();
    std::printf("%-12s %10s %10s %10s %8s\n", "workload", "gain-full",
                "gain-pt", "gain-tlb", "frac-tlb");
    rule();

    auto clamp01 = [](double x) { return std::min(1.0, std::max(0.0, x)); };
    auto row = [&](const std::string &name, double gain_full,
                   double gain_pt) {
        const double frac =
            gain_full > 0 ? clamp01((gain_full - gain_pt) / gain_full)
                          : 0.0;
        std::printf("%-12s %9.1f%% %9.1f%% %9.1f%% %8.2f\n", name.c_str(),
                    gain_full, gain_pt, gain_full - gain_pt, frac);
        report.metric(name + ".frac_tlb", frac);
    };

    // Data serving: metric = mean latency.
    for (std::size_t i = 0; i < serving.size(); ++i) {
        row(serving[i].name,
            reduction(s_base[i].mean_latency, s_full[i].mean_latency),
            reduction(s_base[i].mean_latency, s_pt[i].mean_latency));
        report.addRun(serving[i].name + ".baseline", s_base[i].artifacts);
        report.addRun(serving[i].name + ".pt_only", s_pt[i].artifacts);
        report.addRun(serving[i].name + ".babelfish", s_full[i].artifacts);
    }

    // Compute: metric = execution time (1/throughput).
    for (std::size_t i = 0; i < compute.size(); ++i) {
        row(compute[i].name,
            reduction(1.0 / c_base[i].units_per_ms,
                      1.0 / c_full[i].units_per_ms),
            reduction(1.0 / c_base[i].units_per_ms,
                      1.0 / c_pt[i].units_per_ms));
        report.addRun(compute[i].name + ".baseline", c_base[i].artifacts);
        report.addRun(compute[i].name + ".pt_only", c_pt[i].artifacts);
        report.addRun(compute[i].name + ".babelfish", c_full[i].artifacts);
    }

    // Functions: metric = trailing execution time.
    for (int s = 0; s < 2; ++s) {
        const std::string label = s ? "fn-sparse" : "fn-dense";
        row(label, reduction(f_base[s].trail_exec, f_full[s].trail_exec),
            reduction(f_base[s].trail_exec, f_pt[s].trail_exec));
        report.addRun(label + ".baseline", f_base[s].artifacts);
        report.addRun(label + ".pt_only", f_pt[s].artifacts);
        report.addRun(label + ".babelfish", f_full[s].artifacts);
    }

    rule();
    std::printf("(paper fractions: Mongo 0.77, Arango 0.25, HTTPd 0.81, "
                "Compute avg 0.20,\n dense fns avg 0.20, sparse fns avg "
                "0.01 — sparse gains are almost all page-table effects)\n");
    report.write();
    return 0;
}
