/**
 * @file
 * Trace-driven design-space sweep (DESIGN.md §13): replay one recorded
 * translation trace against a grid of TLB / PWC / O-PC configurations
 * instead of re-running the full simulation per point.
 *
 * Protocol:
 *
 *  1. Obtain a trace. BF_REPLAY_TRACE=<file> replays an existing one;
 *     otherwise the bench self-records a fig11-style mongodb run (the
 *     full warm + measure protocol, traced) and times it — that
 *     full-simulation wall clock is the baseline for the speedup
 *     metric.
 *  2. Fidelity gate: replay at the recording configuration and diff
 *     every reconstructed counter against the recorded tallies. Any
 *     mismatch fails the bench (exit 1).
 *  3. Sweep: up to BF_REPLAY_GRID points (default 64) over
 *     L2 geometry x L1 geometry x PWC size x O-PC width x replacement
 *     policy, fanned across BF_JOBS workers, one TraceReader + replay
 *     engine per point.
 *
 * Output: the usual schema-v3 BENCH_replay_sweep.json with one run
 * entry per sweep point (the replayed stats tree) and headline metrics
 * points / sweep_seconds / speedup_vs_fullsim_x / validated_mismatches.
 *
 * Extra environment knobs (on top of bench/common.hh's):
 *   BF_REPLAY_TRACE=<file>  replay this trace instead of self-recording.
 *   BF_REPLAY_GRID=n        cap on sweep points (default 64).
 */

#include "bench/common.hh"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/trace/trace.hh"
#include "replay/replay.hh"

using namespace bfbench;

namespace
{

/** One sweep point: geometry overrides applied on top of the header. */
struct SweepPoint
{
    std::string label;
    unsigned l2_entries, l2_assoc;
    unsigned l1_entries, l1_assoc;
    unsigned pwc_entries;
    unsigned opc_width;
    tlb::TlbParams::Policy policy;
};

/** The 4 x 2 x 2 x 2 x 2 = 64-point grid, recording-like points first. */
std::vector<SweepPoint>
buildGrid(unsigned cap)
{
    static const std::pair<unsigned, unsigned> l2_geom[] = {
        { 1536, 12 }, { 768, 6 }, { 3072, 24 }, { 1536, 24 },
    };
    static const std::pair<unsigned, unsigned> l1_geom[] = {
        { 64, 4 }, { 128, 8 },
    };
    static const unsigned pwc_sizes[] = { 16, 32 };
    static const unsigned opc_widths[] = { 32, 8 };
    static const tlb::TlbParams::Policy policies[] = {
        tlb::TlbParams::Policy::Lru,
        tlb::TlbParams::Policy::Fifo,
    };

    std::vector<SweepPoint> grid;
    for (const auto &[l2e, l2a] : l2_geom)
        for (const auto &[l1e, l1a] : l1_geom)
            for (unsigned pwc : pwc_sizes)
                for (unsigned opc : opc_widths)
                    for (auto policy : policies) {
                        if (grid.size() >= cap)
                            return grid;
                        SweepPoint p{ "", l2e, l2a, l1e, l1a,
                                      pwc, opc, policy };
                        char buf[96];
                        std::snprintf(buf, sizeof buf,
                                      "l2-%ux%u.l1-%ux%u.pwc%u.opc%u.%s",
                                      l2e, l2a, l1e, l1a, pwc, opc,
                                      tlb::policyName(policy));
                        p.label = buf;
                        grid.push_back(std::move(p));
                    }
    return grid;
}

replay::ReplayParams
applyPoint(replay::ReplayParams params, const SweepPoint &p)
{
    for (tlb::TlbParams *tp :
         { &params.l2_4k, &params.l2_2m, &params.l2_1g }) {
        tp->entries = p.l2_entries;
        tp->assoc = p.l2_assoc;
    }
    for (tlb::TlbParams *tp : { &params.l1d_4k, &params.l1i_4k }) {
        tp->entries = p.l1_entries;
        tp->assoc = p.l1_assoc;
    }
    params.pwc.entries_per_level = p.pwc_entries;
    params.opc_width = p.opc_width;
    for (tlb::TlbParams *tp :
         { &params.l1i_4k, &params.l1d_4k, &params.l1d_2m, &params.l1d_1g,
           &params.l2_4k, &params.l2_2m, &params.l2_1g })
        tp->policy = p.policy;
    return params;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main()
{
    bf::detail::setVerbose(false);
    RunConfig cfg = RunConfig::fromEnv();
    BenchReport report("replay_sweep");
    reportConfig(report, cfg);

    unsigned grid_cap = 64;
    if (const char *grid = std::getenv("BF_REPLAY_GRID"))
        grid_cap = static_cast<unsigned>(std::atoi(grid));

    // 1. Obtain a trace (and, when self-recording, the full-sim cost
    //    of one point for the speedup metric).
    std::string trace_path;
    double full_sim_seconds = 0;
    if (const char *input = std::getenv("BF_REPLAY_TRACE")) {
        trace_path = input;
    } else {
        // Self-record: one traced full-sim run of the fig11 mongodb
        // point. Replay needs the cold-start fill history, so a warm-up
        // checkpoint restore must not skip the traced warm-up.
        RunConfig record_cfg = cfg;
        record_cfg.restore_dir.clear();
        if (record_cfg.trace_dir.empty())
            record_cfg.trace_dir = "bf-replay-traces";
        const auto t0 = std::chrono::steady_clock::now();
        const AppRunResult run = runApp(workloads::AppProfile::mongodb(),
                                        core::SystemParams::babelfish(),
                                        record_cfg);
        full_sim_seconds = secondsSince(t0);
        trace_path = run.artifacts.trace_path;
        std::printf("recorded %s in %.2fs (full simulation)\n",
                    trace_path.c_str(), full_sim_seconds);
    }
    report.config("replay_trace", trace_path);
    report.config("replay_grid", grid_cap);

    try {
        // Decode and analyze the trace once; every sweep point replays
        // the same shared schedule (re-parsing and re-ordering the file
        // per point would dominate the sweep otherwise).
        trace::TraceReader file_reader(trace_path);
        const trace::TraceHeader header = file_reader.header();
        std::vector<std::vector<trace::Record>> blocks;
        {
            std::vector<trace::Record> block;
            while (file_reader.nextBlock(block))
                blocks.push_back(block);
        }
        const replay::ReplaySchedule schedule(header, std::move(blocks));

        // 2. Fidelity gate: replay at the recording configuration.
        const replay::ReplayParams recording =
            replay::paramsFromTrace(header.config);
        replay::ReplayEngine base(recording, header);
        base.run(schedule);
        const auto diffs = base.validate();
        report.metric("validated_mismatches",
                      static_cast<double>(diffs.size()));
        if (!diffs.empty()) {
            std::fprintf(stderr,
                         "replay at the recording config diverges on %zu "
                         "counter(s); first: %s recorded=%llu "
                         "replayed=%llu\n",
                         diffs.size(), diffs[0].name.c_str(),
                         static_cast<unsigned long long>(diffs[0].recorded),
                         static_cast<unsigned long long>(diffs[0].replayed));
            report.write();
            return 1;
        }
        const auto base_total = base.replayedTotal();
        std::printf("fidelity gate OK: %llu accesses replay exactly on "
                    "%u cores\n",
                    static_cast<unsigned long long>(base_total.accesses),
                    base.numCores());

        // 3. The sweep proper.
        const std::vector<SweepPoint> grid = buildGrid(grid_cap);
        std::vector<std::unique_ptr<replay::ReplayEngine>> engines(
            grid.size());
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::function<void()>> jobs;
        for (std::size_t i = 0; i < grid.size(); ++i) {
            jobs.push_back([&, i] {
                auto engine = std::make_unique<replay::ReplayEngine>(
                    applyPoint(recording, grid[i]), header);
                engine->run(schedule);
                engines[i] = std::move(engine);
            });
        }
        runJobs(cfg, std::move(jobs));
        const double sweep_seconds = secondsSince(t0);

        std::printf("trace-driven design-space sweep of %s\n",
                    trace_path.c_str());
        rule();
        std::printf("%-34s %10s %10s %10s\n", "point", "l2-misses",
                    "pwc-miss", "lat/walk");
        rule();
        for (std::size_t i = 0; i < grid.size(); ++i) {
            const auto total = engines[i]->replayedTotal();
            const std::uint64_t l2_misses =
                total.l2_data_misses + total.l2_instr_misses;
            const double lat =
                total.miss_latency_count
                    ? static_cast<double>(total.miss_latency_sum) /
                          total.miss_latency_count
                    : 0;
            std::printf("%-34s %10llu %10llu %10.1f\n",
                        grid[i].label.c_str(),
                        static_cast<unsigned long long>(l2_misses),
                        static_cast<unsigned long long>(total.pwc_misses),
                        lat);
            RunArtifacts artifacts;
            artifacts.stats_json = engines[i]->statsJson();
            artifacts.trace_path = trace_path;
            report.addRun(grid[i].label, artifacts);
        }
        rule();

        report.metric("points", static_cast<double>(grid.size()));
        report.metric("sweep_seconds", sweep_seconds);
        std::printf("%zu points in %.2fs", grid.size(), sweep_seconds);
        if (full_sim_seconds > 0 && sweep_seconds > 0) {
            const double speedup =
                full_sim_seconds * static_cast<double>(grid.size()) /
                sweep_seconds;
            report.metric("speedup_vs_fullsim_x", speedup);
            report.note("fullsim_point_seconds", full_sim_seconds);
            std::printf(" — %.0fx faster than %zu full-sim points",
                        speedup, grid.size());
        }
        std::printf("\n");
        report.write();
        return 0;
    } catch (const trace::TraceError &err) {
        std::fprintf(stderr, "bench_replay_sweep: %s: %s\n",
                     trace_path.c_str(), err.what());
        return 1;
    } catch (const replay::ReplayError &err) {
        std::fprintf(stderr, "bench_replay_sweep: %s: %s\n",
                     trace_path.c_str(), err.what());
        return 1;
    }
}
