/**
 * @file
 * Experiment E6 — paper Table III: parameters of the L2 TLB at 22 nm,
 * Baseline vs BabelFish, via the CactiLite analytical SRAM model (a
 * stand-in for CACTI 7, calibrated on the paper's baseline point).
 *
 * Paper reference points: Baseline 0.030 mm^2 / 327 ps / 10.22 pJ /
 * 4.16 mW; BabelFish 0.062 mm^2 / 456 ps / 21.97 pJ / 6.22 mW. Both
 * access times stay within a fraction of a 2 GHz cycle; BabelFish adds
 * two cycles only when the PC bitmask must be read.
 */

#include <cstdio>

#include "analysis/cacti_lite.hh"
#include "bench/report.hh"
#include "common/logging.hh"

using namespace bf::analysis;

int
main()
{
    bf::detail::setVerbose(false);
    CactiLite cacti;
    bfbench::BenchReport report("table3_cacti");

    const auto base = cacti.evaluate(CactiLite::baselineL2Tlb());
    const auto fish = cacti.evaluate(CactiLite::babelFishL2Tlb());

    std::printf("Table III — Parameters of the L2 TLB at 22 nm "
                "(CactiLite)\n");
    std::printf("----------------------------------------------------"
                "----------------\n");
    std::printf("%-12s %12s %14s %14s %12s\n", "config", "area mm^2",
                "access ps", "dyn energy pJ", "leakage mW");
    std::printf("%-12s %12.3f %14.0f %14.2f %12.2f\n", "Baseline",
                base.area_mm2, base.access_ps, base.dyn_energy_pj,
                base.leakage_mw);
    std::printf("%-12s %12.3f %14.0f %14.2f %12.2f\n", "BabelFish",
                fish.area_mm2, fish.access_ps, fish.dyn_energy_pj,
                fish.leakage_mw);
    std::printf("----------------------------------------------------"
                "----------------\n");
    std::printf("paper:       %12s %14s %14s %12s\n", "0.030/0.062",
                "327/456", "10.22/21.97", "4.16/6.22");
    std::printf("\nBabelFish/Baseline ratios: area %.2fx, access %.2fx, "
                "energy %.2fx, leakage %.2fx\n",
                fish.area_mm2 / base.area_mm2,
                fish.access_ps / base.access_ps,
                fish.dyn_energy_pj / base.dyn_energy_pj,
                fish.leakage_mw / base.leakage_mw);
    std::printf("equal-area conventional L2 TLB would hold %llu entries "
                "(vs 1536)\n",
                static_cast<unsigned long long>(
                    cacti.equalAreaConventionalEntries()));

    report.metric("baseline.area_mm2", base.area_mm2);
    report.metric("baseline.access_ps", base.access_ps);
    report.metric("baseline.dyn_energy_pj", base.dyn_energy_pj);
    report.metric("baseline.leakage_mw", base.leakage_mw);
    report.metric("babelfish.area_mm2", fish.area_mm2);
    report.metric("babelfish.access_ps", fish.access_ps);
    report.metric("babelfish.dyn_energy_pj", fish.dyn_energy_pj);
    report.metric("babelfish.leakage_mw", fish.leakage_mw);
    report.metric("equal_area_conventional_entries",
                  static_cast<double>(
                      cacti.equalAreaConventionalEntries()));

    // Analytic sweep: conventional-array area as the entry count grows,
    // so the equal-area crossover can be plotted from the JSON.
    std::vector<std::pair<double, double>> area_curve;
    for (unsigned entries = 512; entries <= 4096; entries *= 2) {
        auto cfg = CactiLite::baselineL2Tlb();
        cfg.entries = entries;
        area_curve.emplace_back(entries, cacti.evaluate(cfg).area_mm2);
    }
    report.addSeries("conventional_area_vs_entries", "entries",
                     "area_mm2", area_curve);
    report.write();
    return 0;
}
