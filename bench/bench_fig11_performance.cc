/**
 * @file
 * Experiment E4 — paper Fig. 11: latency / execution-time reduction
 * attained by BabelFish.
 *
 * Paper reference points: Data Serving mean −11% and 95th-percentile
 * tail −18% (Mongo/Arango > HTTPd); Compute execution time −11%
 * (GraphChi < FIO); Functions −10% dense, −55% sparse (trailing two of
 * each group of three; the leader is cold in both configurations).
 */

#include "bench/common.hh"

using namespace bfbench;

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();

    std::printf("Fig. 11 — Latency/time reduction attained by "
                "BabelFish\n");
    rule();

    // ---- Data Serving: mean and tail request latency.
    std::printf("%-12s %12s %12s %9s %9s\n", "data serving", "mean(b)",
                "mean(bf)", "mean-red", "tail-red");
    rule();
    double mean_sum = 0, tail_sum = 0;
    const auto serving = workloads::AppProfile::dataServing();
    for (const auto &profile : serving) {
        const auto base =
            runApp(profile, core::SystemParams::baseline(), cfg);
        const auto fish =
            runApp(profile, core::SystemParams::babelfish(), cfg);
        const double mr = reduction(base.mean_latency, fish.mean_latency);
        const double tr = reduction(base.tail_latency, fish.tail_latency);
        std::printf("%-12s %12.0f %12.0f %8.1f%% %8.1f%%\n",
                    profile.name.c_str(), base.mean_latency,
                    fish.mean_latency, mr, tr);
        mean_sum += mr;
        tail_sum += tr;
    }
    std::printf("%-12s (cycles/request)        mean %5.1f%%  tail %5.1f%%"
                "   (paper: 11%% / 18%%)\n",
                "average", mean_sum / serving.size(),
                tail_sum / serving.size());
    rule();

    // ---- Compute: execution time via work-unit throughput.
    std::printf("%-12s %12s %12s %9s\n", "compute", "units/ms(b)",
                "units/ms(bf)", "time-red");
    rule();
    double comp_sum = 0;
    const auto compute = workloads::AppProfile::compute();
    for (const auto &profile : compute) {
        const auto base =
            runApp(profile, core::SystemParams::baseline(), cfg);
        const auto fish =
            runApp(profile, core::SystemParams::babelfish(), cfg);
        // Execution time per unit of work is the inverse of throughput.
        const double tr = reduction(1.0 / base.units_per_ms,
                                    1.0 / fish.units_per_ms);
        std::printf("%-12s %12.1f %12.1f %8.1f%%\n", profile.name.c_str(),
                    base.units_per_ms, fish.units_per_ms, tr);
        comp_sum += tr;
    }
    std::printf("%-12s execution time reduction %5.1f%%   "
                "(paper: 11%%)\n",
                "average", comp_sum / compute.size());
    rule();

    // ---- Functions: execution time of the trailing two functions.
    std::printf("%-12s %12s %12s %9s\n", "functions", "exec(b) Mcyc",
                "exec(bf) Mcyc", "time-red");
    rule();
    for (bool sparse : {false, true}) {
        const auto base =
            runFaas(core::SystemParams::baseline(), sparse, cfg);
        const auto fish =
            runFaas(core::SystemParams::babelfish(), sparse, cfg);
        std::printf("%-12s %12.2f %12.2f %8.1f%%\n",
                    sparse ? "sparse" : "dense", base.trail_exec / 1e6,
                    fish.trail_exec / 1e6,
                    reduction(base.trail_exec, fish.trail_exec));
    }
    std::printf("(paper: dense −10%%, sparse −55%%)\n");
    return 0;
}
