/**
 * @file
 * Experiment E4 — paper Fig. 11: latency / execution-time reduction
 * attained by BabelFish.
 *
 * Paper reference points: Data Serving mean −11% and 95th-percentile
 * tail −18% (Mongo/Arango > HTTPd); Compute execution time −11%
 * (GraphChi < FIO); Functions −10% dense, −55% sparse (trailing two of
 * each group of three; the leader is cold in both configurations).
 *
 * Every (workload, configuration) cell is an independent System, so
 * the sweep runs its cells concurrently (BF_JOBS workers); the stats
 * are identical to a serial run.
 */

#include "bench/common.hh"

using namespace bfbench;

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();
    BenchReport report("fig11_performance");
    reportConfig(report, cfg);

    const auto serving = workloads::AppProfile::dataServing();
    const auto compute = workloads::AppProfile::compute();

    // ---- Fan the independent cells out across worker threads.
    std::vector<AppRunResult> serving_base(serving.size());
    std::vector<AppRunResult> serving_fish(serving.size());
    std::vector<AppRunResult> compute_base(compute.size());
    std::vector<AppRunResult> compute_fish(compute.size());
    FaasRunResult faas_base[2], faas_fish[2];

    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < serving.size(); ++i) {
        jobs.push_back([&, i] {
            serving_base[i] =
                runApp(serving[i], core::SystemParams::baseline(), cfg);
        });
        jobs.push_back([&, i] {
            serving_fish[i] =
                runApp(serving[i], core::SystemParams::babelfish(), cfg);
        });
    }
    for (std::size_t i = 0; i < compute.size(); ++i) {
        jobs.push_back([&, i] {
            compute_base[i] =
                runApp(compute[i], core::SystemParams::baseline(), cfg);
        });
        jobs.push_back([&, i] {
            compute_fish[i] =
                runApp(compute[i], core::SystemParams::babelfish(), cfg);
        });
    }
    for (int s = 0; s < 2; ++s) {
        jobs.push_back([&, s] {
            faas_base[s] =
                runFaas(core::SystemParams::baseline(), s == 1, cfg);
        });
        jobs.push_back([&, s] {
            faas_fish[s] =
                runFaas(core::SystemParams::babelfish(), s == 1, cfg);
        });
    }
    runJobs(cfg, std::move(jobs));

    std::printf("Fig. 11 — Latency/time reduction attained by "
                "BabelFish\n");
    rule();

    // ---- Data Serving: mean and tail request latency.
    std::printf("%-12s %12s %12s %9s %9s\n", "data serving", "mean(b)",
                "mean(bf)", "mean-red", "tail-red");
    rule();
    double mean_sum = 0, tail_sum = 0;
    for (std::size_t i = 0; i < serving.size(); ++i) {
        const auto &base = serving_base[i];
        const auto &fish = serving_fish[i];
        const double mr = reduction(base.mean_latency, fish.mean_latency);
        const double tr = reduction(base.tail_latency, fish.tail_latency);
        std::printf("%-12s %12.0f %12.0f %8.1f%% %8.1f%%\n",
                    serving[i].name.c_str(), base.mean_latency,
                    fish.mean_latency, mr, tr);
        mean_sum += mr;
        tail_sum += tr;
        report.metric(serving[i].name + ".mean_reduction_pct", mr);
        report.metric(serving[i].name + ".tail_reduction_pct", tr);
        report.addRun(serving[i].name + ".baseline", base.artifacts);
        report.addRun(serving[i].name + ".babelfish", fish.artifacts);
    }
    std::printf("%-12s (cycles/request)        mean %5.1f%%  tail %5.1f%%"
                "   (paper: 11%% / 18%%)\n",
                "average", mean_sum / serving.size(),
                tail_sum / serving.size());
    report.metric("serving.mean_reduction_pct", mean_sum / serving.size());
    report.metric("serving.tail_reduction_pct", tail_sum / serving.size());
    rule();

    // ---- Compute: execution time via work-unit throughput.
    std::printf("%-12s %12s %12s %9s\n", "compute", "units/ms(b)",
                "units/ms(bf)", "time-red");
    rule();
    double comp_sum = 0;
    for (std::size_t i = 0; i < compute.size(); ++i) {
        const auto &base = compute_base[i];
        const auto &fish = compute_fish[i];
        // Execution time per unit of work is the inverse of throughput.
        const double tr = reduction(1.0 / base.units_per_ms,
                                    1.0 / fish.units_per_ms);
        std::printf("%-12s %12.1f %12.1f %8.1f%%\n",
                    compute[i].name.c_str(), base.units_per_ms,
                    fish.units_per_ms, tr);
        comp_sum += tr;
        report.metric(compute[i].name + ".time_reduction_pct", tr);
        report.addRun(compute[i].name + ".baseline", base.artifacts);
        report.addRun(compute[i].name + ".babelfish", fish.artifacts);
    }
    std::printf("%-12s execution time reduction %5.1f%%   "
                "(paper: 11%%)\n",
                "average", comp_sum / compute.size());
    report.metric("compute.time_reduction_pct", comp_sum / compute.size());
    rule();

    // ---- Functions: execution time of the trailing two functions.
    std::printf("%-12s %12s %12s %9s\n", "functions", "exec(b) Mcyc",
                "exec(bf) Mcyc", "time-red");
    rule();
    for (int s = 0; s < 2; ++s) {
        const auto &base = faas_base[s];
        const auto &fish = faas_fish[s];
        const char *label = s ? "fn-sparse" : "fn-dense";
        const double tr = reduction(base.trail_exec, fish.trail_exec);
        std::printf("%-12s %12.2f %12.2f %8.1f%%\n",
                    s ? "sparse" : "dense", base.trail_exec / 1e6,
                    fish.trail_exec / 1e6, tr);
        report.metric(std::string(label) + ".time_reduction_pct", tr);
        report.addRun(std::string(label) + ".baseline", base.artifacts);
        report.addRun(std::string(label) + ".babelfish", fish.artifacts);
    }
    std::printf("(paper: dense −10%%, sparse −55%%)\n");
    report.write();
    return 0;
}
