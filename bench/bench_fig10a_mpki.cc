/**
 * @file
 * Experiment E2 — paper Fig. 10a: L2 TLB MPKI reduction attained by
 * BabelFish, data and instruction entries separately, for Data Serving,
 * Compute and Function workloads.
 *
 * Paper reference points: Data Serving data MPKI −66%, instruction MPKI
 * −96%; good reductions for Compute; smaller reductions for Functions
 * (short-lived, interfered by the docker engine/OS).
 */

#include "bench/common.hh"

using namespace bfbench;

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();
    BenchReport report("fig10a_mpki");
    reportConfig(report, cfg);

    std::vector<workloads::AppProfile> apps;
    for (auto p : workloads::AppProfile::dataServing())
        apps.push_back(p);
    for (auto p : workloads::AppProfile::compute())
        apps.push_back(p);

    std::vector<AppRunResult> app_base(apps.size());
    std::vector<AppRunResult> app_fish(apps.size());
    FaasRunResult faas_base[2], faas_fish[2];

    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        jobs.push_back([&, i] {
            app_base[i] =
                runApp(apps[i], core::SystemParams::baseline(), cfg);
        });
        jobs.push_back([&, i] {
            app_fish[i] =
                runApp(apps[i], core::SystemParams::babelfish(), cfg);
        });
    }
    for (int s = 0; s < 2; ++s) {
        jobs.push_back([&, s] {
            faas_base[s] =
                runFaas(core::SystemParams::baseline(), s == 1, cfg);
        });
        jobs.push_back([&, s] {
            faas_fish[s] =
                runFaas(core::SystemParams::babelfish(), s == 1, cfg);
        });
    }
    runJobs(cfg, std::move(jobs));

    std::printf("Fig. 10a — L2 TLB MPKI reduction under BabelFish\n");
    rule();
    std::printf("%-12s %10s %10s %8s | %9s %9s %8s\n", "workload",
                "dMPKI(b)", "dMPKI(bf)", "d-red%", "iMPKI(b)",
                "iMPKI(bf)", "i-red%");
    rule();

    double dsum = 0, isum = 0;
    unsigned count = 0;
    auto row = [&](const std::string &name, double db, double df,
                   double ib, double if_) {
        std::printf("%-12s %10.4f %10.4f %7.1f%% | %9.5f %9.5f %7.1f%%\n",
                    name.c_str(), db, df, reduction(db, df), ib, if_,
                    reduction(ib, if_));
        dsum += reduction(db, df);
        isum += reduction(ib, if_);
        ++count;
        report.metric(name + ".data_mpki_reduction_pct",
                      reduction(db, df));
        report.metric(name + ".instr_mpki_reduction_pct",
                      reduction(ib, if_));
    };

    for (std::size_t i = 0; i < apps.size(); ++i) {
        row(apps[i].name, app_base[i].data_mpki, app_fish[i].data_mpki,
            app_base[i].instr_mpki, app_fish[i].instr_mpki);
        report.addRun(apps[i].name + ".baseline", app_base[i].artifacts);
        report.addRun(apps[i].name + ".babelfish", app_fish[i].artifacts);
    }
    for (int s = 0; s < 2; ++s) {
        const std::string label = s ? "fn-sparse" : "fn-dense";
        row(label, faas_base[s].data_mpki, faas_fish[s].data_mpki,
            faas_base[s].instr_mpki, faas_fish[s].instr_mpki);
        report.addRun(label + ".baseline", faas_base[s].artifacts);
        report.addRun(label + ".babelfish", faas_fish[s].artifacts);
    }

    rule();
    std::printf("mean reduction: data %.1f%%, instruction %.1f%%\n",
                dsum / count, isum / count);
    std::printf("(paper: data serving −66%% data / −96%% instruction; "
                "functions see smaller reductions)\n");
    report.metric("mean.data_mpki_reduction_pct", dsum / count);
    report.metric("mean.instr_mpki_reduction_pct", isum / count);
    report.write();
    return 0;
}
