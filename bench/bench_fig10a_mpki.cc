/**
 * @file
 * Experiment E2 — paper Fig. 10a: L2 TLB MPKI reduction attained by
 * BabelFish, data and instruction entries separately, for Data Serving,
 * Compute and Function workloads.
 *
 * Paper reference points: Data Serving data MPKI −66%, instruction MPKI
 * −96%; good reductions for Compute; smaller reductions for Functions
 * (short-lived, interfered by the docker engine/OS).
 */

#include "bench/common.hh"

using namespace bfbench;

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();

    std::printf("Fig. 10a — L2 TLB MPKI reduction under BabelFish\n");
    rule();
    std::printf("%-12s %10s %10s %8s | %9s %9s %8s\n", "workload",
                "dMPKI(b)", "dMPKI(bf)", "d-red%", "iMPKI(b)",
                "iMPKI(bf)", "i-red%");
    rule();

    double dsum = 0, isum = 0;
    unsigned count = 0;
    auto row = [&](const std::string &name, double db, double df,
                   double ib, double if_) {
        std::printf("%-12s %10.4f %10.4f %7.1f%% | %9.5f %9.5f %7.1f%%\n",
                    name.c_str(), db, df, reduction(db, df), ib, if_,
                    reduction(ib, if_));
        dsum += reduction(db, df);
        isum += reduction(ib, if_);
        ++count;
    };

    std::vector<workloads::AppProfile> apps;
    for (auto p : workloads::AppProfile::dataServing())
        apps.push_back(p);
    for (auto p : workloads::AppProfile::compute())
        apps.push_back(p);

    for (const auto &profile : apps) {
        const auto base =
            runApp(profile, core::SystemParams::baseline(), cfg);
        const auto fish =
            runApp(profile, core::SystemParams::babelfish(), cfg);
        row(profile.name, base.data_mpki, fish.data_mpki,
            base.instr_mpki, fish.instr_mpki);
    }

    for (bool sparse : {false, true}) {
        const auto base =
            runFaas(core::SystemParams::baseline(), sparse, cfg);
        const auto fish =
            runFaas(core::SystemParams::babelfish(), sparse, cfg);
        row(sparse ? "fn-sparse" : "fn-dense", base.data_mpki,
            fish.data_mpki, base.instr_mpki, fish.instr_mpki);
    }

    rule();
    std::printf("mean reduction: data %.1f%%, instruction %.1f%%\n",
                dsum / count, isum / count);
    std::printf("(paper: data serving −66%% data / −96%% instruction; "
                "functions see smaller reductions)\n");
    return 0;
}
