/**
 * @file
 * Shared harness for the paper-reproduction benches.
 *
 * Each bench binary reproduces one table or figure of the paper's
 * evaluation (§VII). The harness builds the Table I server (8 cores, 2
 * containers/core for Data Serving and Compute, 3 function containers
 * per core for FaaS), runs the two-phase warm-up + measurement protocol
 * of §VI, and extracts the metrics the paper reports.
 *
 * Environment knobs:
 *   BF_FAST=1      quarter-length runs on 4 cores (CI smoke mode).
 *   BF_CORES=n     override the core count.
 *   BF_MEASURE_MS  override the measurement window.
 *   BF_JOBS=n      worker threads for independent configurations
 *                  (default: hardware concurrency; 1 = serial).
 *   BF_WORKERS=n   host threads for the bound phase INSIDE each System
 *                  (default 1; stats are byte-identical at any value).
 *   BF_WEAVE_WORKERS=n  host threads for the weave phase INSIDE each
 *                  System (default 1 = fused serial replay; rounded
 *                  down to a power of two, clamped to the shard limit;
 *                  stats are byte-identical at any value — DESIGN.md
 *                  §15).
 *   BF_BATCH=n     references pulled per Thread::nextBatch call into
 *                  the cores' prefetch buffers (default 16; stats are
 *                  byte-identical at any value, 1 disables batching).
 *   BF_SYNC_CHUNK  lockstep sync-chunk length in cycles (default
 *                  20000; must be > 0).
 *   BF_SAMPLE_MS   time-series sampling period (default 1 ms of
 *                  simulated time; 0 disables sampling).
 *   BF_JSON=0      skip the BENCH_<name>.json report.
 *   BF_JSON_DIR    directory for the JSON report (default ".").
 *   BF_CKPT=dir    save a checkpoint of each co-located app run right
 *                  after warm-up into dir (one file per profile+config).
 *   BF_RESTORE=dir restore the matching warm-up checkpoint instead of
 *                  re-simulating warm-up; a missing/corrupt/mismatched
 *                  file falls back to a cold start with a warning.
 *   BF_CKPT_EVERY_MS  additionally re-save every N simulated ms during
 *                  the run (crash recovery for long runs).
 *   BF_TRACE=dir   record a translation-pipeline event trace of every
 *                  run into dir, one "<profile>-<hash>.trace" file per
 *                  configuration (inspect/convert with tools/bf_trace).
 *                  Trace bytes are identical at every BF_WORKERS.
 *   BF_TRACE_EVENTS  bit mask of traced event types (default: all;
 *                  see common/trace/trace.hh for the bit order).
 *   BF_TRACE_LIMIT   cap on records written per trace (0 = unlimited;
 *                  excess records are counted as dropped).
 *   BF_ATTRIB=0    disable per-container attribution (common/attrib,
 *                  DESIGN.md §17). Default on; the attrib.* stats
 *                  subtree and the per-run `tenants` report section
 *                  disappear when off.
 *   BF_TOP=path    publish the live per-tenant table into this file at
 *                  chunk barriers (watch with tools/bf_top). Host-side
 *                  observability only; note that parallel bench jobs
 *                  share the one file — last writer wins.
 *   BF_LOG=quiet|warn|info  log level (common/logging.hh). Takes
 *                  precedence over the benches' default quieting, so
 *                  `BF_LOG=quiet` also silences warnings and
 *                  `BF_LOG=info` restores inform() output.
 *
 * bench_replay_sweep additionally reads (see its file header):
 *   BF_REPLAY_TRACE=<file>  replay this trace instead of self-recording.
 *   BF_REPLAY_GRID=n        cap on sweep points (default 64).
 */

#ifndef BF_BENCH_COMMON_HH
#define BF_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/report.hh"
#include "common/parallel.hh"
#include "common/stats_export.hh"
#include "core/system.hh"
#include "workloads/apps.hh"
#include "workloads/function.hh"

namespace bfbench
{

using namespace bf;

/** Harness-level run configuration. */
struct RunConfig
{
    unsigned num_cores = 8;
    unsigned containers_per_core = 2; //!< Paper §VI: conservative.
    double warm_ms = 15;
    double measure_ms = 35;
    double sample_ms = 1;      //!< Time-series period; 0 = off.
    unsigned jobs = 0;         //!< Worker threads; 0 = hardware.
    unsigned system_workers = 1; //!< Bound-phase threads per System.
    unsigned weave_workers = 1;  //!< Weave-phase threads per System.
    unsigned batch = 16;         //!< Core prefetch batch (BF_BATCH).
    Cycles sync_chunk = 20000;   //!< Lockstep chunk length in cycles.
    std::uint64_t seed = 42;
    std::string ckpt_dir;      //!< BF_CKPT: save post-warm-up state here.
    std::string restore_dir;   //!< BF_RESTORE: load warm-up state from here.
    double ckpt_every_ms = 0;  //!< BF_CKPT_EVERY_MS: periodic autosave.
    std::string trace_dir;     //!< BF_TRACE: event-trace output directory.
    std::uint32_t trace_events = 0xffffffffu; //!< BF_TRACE_EVENTS mask.
    std::uint64_t trace_limit = 0;            //!< BF_TRACE_LIMIT cap.
    bool attrib = true;        //!< BF_ATTRIB: per-container attribution.
    std::string top_path;      //!< BF_TOP: live per-tenant table file.
    /**
     * BF_BACKEND: translation backend for every System the bench
     * builds ("babelfish" | "victima" | "coalesced", DESIGN.md §16).
     * Stamped by applyExecKnobs, so any bench can run head-to-head
     * under a competitor design.
     */
    translate::BackendKind backend = translate::BackendKind::BabelFish;

    static RunConfig
    fromEnv()
    {
        RunConfig cfg;
        if (const char *fast = std::getenv("BF_FAST");
            fast && fast[0] == '1') {
            cfg.num_cores = 4;
            cfg.warm_ms = 6;
            cfg.measure_ms = 12;
        }
        if (const char *cores = std::getenv("BF_CORES"))
            cfg.num_cores = static_cast<unsigned>(std::atoi(cores));
        if (const char *ms = std::getenv("BF_MEASURE_MS"))
            cfg.measure_ms = std::atof(ms);
        if (const char *ms = std::getenv("BF_SAMPLE_MS"))
            cfg.sample_ms = std::atof(ms);
        if (const char *jobs = std::getenv("BF_JOBS"))
            cfg.jobs = static_cast<unsigned>(std::atoi(jobs));
        if (const char *workers = std::getenv("BF_WORKERS"))
            cfg.system_workers =
                std::max(1, std::atoi(workers));
        if (const char *workers = std::getenv("BF_WEAVE_WORKERS"))
            cfg.weave_workers =
                static_cast<unsigned>(std::max(1, std::atoi(workers)));
        if (const char *batch = std::getenv("BF_BATCH"))
            cfg.batch = static_cast<unsigned>(
                std::max(1, std::atoi(batch)));
        if (const char *chunk = std::getenv("BF_SYNC_CHUNK")) {
            const long long value = std::atoll(chunk);
            if (value <= 0) {
                std::fprintf(stderr,
                             "BF_SYNC_CHUNK must be > 0 (got %s)\n",
                             chunk);
                std::exit(2);
            }
            cfg.sync_chunk = static_cast<Cycles>(value);
        }
        if (const char *dir = std::getenv("BF_CKPT"))
            cfg.ckpt_dir = dir;
        if (const char *dir = std::getenv("BF_RESTORE"))
            cfg.restore_dir = dir;
        if (const char *ms = std::getenv("BF_CKPT_EVERY_MS"))
            cfg.ckpt_every_ms = std::atof(ms);
        if (const char *dir = std::getenv("BF_TRACE"))
            cfg.trace_dir = dir;
        if (const char *mask = std::getenv("BF_TRACE_EVENTS"))
            cfg.trace_events = static_cast<std::uint32_t>(
                std::strtoul(mask, nullptr, 0));
        if (const char *limit = std::getenv("BF_TRACE_LIMIT"))
            cfg.trace_limit = std::strtoull(limit, nullptr, 0);
        if (const char *attrib = std::getenv("BF_ATTRIB"))
            cfg.attrib = !(attrib[0] == '0' && attrib[1] == '\0');
        if (const char *top = std::getenv("BF_TOP"))
            cfg.top_path = top;
        if (const char *backend = std::getenv("BF_BACKEND")) {
            if (!translate::parseBackend(backend, cfg.backend)) {
                std::fprintf(stderr,
                             "BF_BACKEND must be babelfish, victima or "
                             "coalesced (got %s)\n",
                             backend);
                std::exit(2);
            }
        }
        return cfg;
    }

    /**
     * FNV-1a hash over every knob that shapes simulated state,
     * including the TLB geometry (so configurations differing only in
     * TLB sizes, like bench_larger_tlb's, get distinct tags).
     * measure_ms, jobs and BF_WORKERS are deliberately excluded: the
     * measurement window happens after a warm-up checkpoint, and the
     * worker count cannot change simulated state (the bound/weave
     * determinism guarantee) — so one tag serves every measurement
     * length and host parallelism level, and trace files produced at
     * different BF_WORKERS land on the same name for byte comparison.
     */
    std::uint64_t
    configHash(const core::SystemParams &params) const
    {
        std::uint64_t hash = 1469598103934665603ull; // FNV-1a offset
        const auto mix = [&hash](std::uint64_t value) {
            hash ^= value;
            hash *= 1099511628211ull;
        };
        const auto mixDouble = [&mix](double value) {
            std::uint64_t bits;
            std::memcpy(&bits, &value, sizeof bits);
            mix(bits);
        };
        mix(params.kernel.babelfish);
        mix(static_cast<std::uint64_t>(params.kernel.max_share_level));
        mix(params.kernel.thp);
        mix(params.kernel.max_cow_writers);
        mix(static_cast<std::uint64_t>(params.kernel.aslr));
        mix(params.kernel.mem_frames);
        mix(params.mmu.babelfish);
        mix(params.mmu.force_long_l2);
        mix(params.mmu.aslr_transform_cycles);
        mix(static_cast<std::uint64_t>(params.mmu.backend));
        const auto mixTlb = [&mix](const tlb::TlbParams &t) {
            mix(t.entries);
            mix(t.assoc);
            mix(static_cast<std::uint64_t>(t.policy));
        };
        mixTlb(params.mmu.l1i_4k);
        mixTlb(params.mmu.l1d_4k);
        mixTlb(params.mmu.l1d_2m);
        mixTlb(params.mmu.l1d_1g);
        mixTlb(params.mmu.l2_4k);
        mixTlb(params.mmu.l2_2m);
        mixTlb(params.mmu.l2_1g);
        mixDouble(params.core.base_cpi);
        mix(params.core.quantum);
        mix(params.core.context_switch_cycles);
        mix(params.num_cores);
        mix(params.sync_chunk);
        // Attribution does not alter simulated state, but it shapes the
        // checkpoint archive (manifest flag + attrib stats subtree), so
        // BF_ATTRIB=0 runs must not restore a with-attrib checkpoint.
        mix(params.attrib);
        mix(params.seed);
        mix(containers_per_core);
        mixDouble(warm_ms);
        mixDouble(sample_ms);
        mix(seed);
        return hash;
    }

    /** "<profile>-<16 hex of configHash>.<ext>" */
    std::string
    tagFor(const std::string &name, const core::SystemParams &params,
           const char *ext) const
    {
        char hex[17];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(configHash(params)));
        return name + "-" + hex + ext;
    }

    /** Name of the checkpoint file a run saves/loads. */
    std::string
    checkpointTag(const std::string &name,
                  const core::SystemParams &params) const
    {
        return tagFor(name, params, ".ckpt");
    }

    /**
     * Name of the event-trace file a run writes under BF_TRACE. Note
     * that repeated runs of an identical configuration in one bench
     * overwrite each other's trace — the last run's file survives.
     */
    std::string
    traceTag(const std::string &name,
             const core::SystemParams &params) const
    {
        return tagFor(name, params, ".trace");
    }

    /**
     * Point a parameter set's tracing knobs at
     * "<BF_TRACE>/<profile>-<hash>.trace" (no-op without BF_TRACE).
     */
    void
    applyTraceKnobs(core::SystemParams &params,
                    const std::string &name) const
    {
        if (trace_dir.empty())
            return;
        std::error_code ec;
        std::filesystem::create_directories(trace_dir, ec);
        params.trace_path = trace_dir + "/" + traceTag(name, params);
        params.trace_events = trace_events;
        params.trace_limit = trace_limit;
    }

    /** Stamp the System-execution knobs into a parameter set. */
    void
    applyExecKnobs(core::SystemParams &params) const
    {
        params.workers = system_workers;
        params.weave_workers = weave_workers;
        params.sync_chunk = sync_chunk;
        params.core.batch = batch;
        params.mmu.backend = backend;
        params.attrib = attrib;
    }

    /** Sampling period in cycles (0 = sampling off). */
    Cycles sampleInterval() const { return msToCycles(sample_ms); }

    /** Effective worker-thread count. */
    unsigned
    workers() const
    {
        return jobs ? jobs : defaultWorkers();
    }
};

/**
 * Run independent bench configurations on cfg.workers() threads.
 *
 * Thread-safety contract (see common/parallel.hh): every job builds
 * its own System and writes only its own result slot; nothing shared
 * is mutated. Results are identical to running the jobs serially
 * (BF_JOBS=1) — parallelism only cuts wall-clock.
 */
inline void
runJobs(const RunConfig &cfg, std::vector<std::function<void()>> jobs)
{
    runParallel(jobs.size(), cfg.workers(),
                [&](std::size_t i) { jobs[i](); });
}

/** Stamp the harness configuration into a bench report. */
inline void
reportConfig(BenchReport &report, const RunConfig &cfg)
{
    report.config("num_cores", cfg.num_cores);
    report.config("containers_per_core", cfg.containers_per_core);
    report.config("warm_ms", cfg.warm_ms);
    report.config("measure_ms", cfg.measure_ms);
    report.config("sample_ms", cfg.sample_ms);
    report.config("jobs", cfg.workers());
    report.config("workers", cfg.system_workers);
    report.config("weave_workers", cfg.weave_workers);
    report.config("batch", cfg.batch);
    report.config("sync_chunk", static_cast<double>(cfg.sync_chunk));
    report.config("seed", static_cast<double>(cfg.seed));
    report.config("ckpt_dir", cfg.ckpt_dir);
    report.config("restore_dir", cfg.restore_dir);
    report.config("ckpt_every_ms", cfg.ckpt_every_ms);
    report.config("trace", cfg.trace_dir);
    report.config("trace_events", static_cast<double>(cfg.trace_events));
    report.config("trace_limit", static_cast<double>(cfg.trace_limit));
    // Only tag non-reference backends: the reference (default) output
    // must stay byte-identical to pre-zoo golden files.
    if (cfg.backend != translate::BackendKind::BabelFish)
        report.config("backend",
                      std::string(translate::backendName(cfg.backend)));
    // Same idea for attribution: tagged only when disabled.
    if (!cfg.attrib)
        report.config("attrib", 0.0);
}

/** Serialize a finished System's stats + time series + cap flag. */
inline RunArtifacts
captureArtifacts(const core::System &sys)
{
    RunArtifacts artifacts;
    artifacts.stats_json = stats::toJsonString(sys.stats());
    artifacts.timeseries_json = sys.sampler().toJsonString();
    artifacts.capped = sys.run_capped.value() > 0;
    artifacts.trace_path = sys.params().trace_path;
    // Sinks are drained at every chunk barrier, so outside run() the
    // registry already holds the canonical totals.
    if (const auto *attrib = sys.attrib())
        artifacts.tenants_json = attrib->tenantsJson();
    return artifacts;
}

/**
 * Warm a freshly-built System, or restore its warm-up checkpoint.
 *
 * The caller has just rebuilt the world deterministically from the same
 * config, so a matching checkpoint (named by checkpointTag, which
 * hashes every state-shaping knob) drops the system into the identical
 * post-warm-up state — stats included — without re-simulating it. A
 * missing or rejected checkpoint falls back to simulating the warm-up,
 * and BF_CKPT / BF_CKPT_EVERY_MS save checkpoints for later runs.
 */
inline void
warmOrRestore(core::System &sys, const RunConfig &cfg,
              const std::string &name, const core::SystemParams &params)
{
    const std::string tag = cfg.checkpointTag(name, params);
    bool restored = false;
    if (!cfg.restore_dir.empty())
        restored = sys.restoreCheckpoint(cfg.restore_dir + "/" + tag);
    if (!restored)
        sys.run(msToCycles(cfg.warm_ms));
    if (!cfg.ckpt_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cfg.ckpt_dir, ec);
        sys.saveCheckpoint(cfg.ckpt_dir + "/" + tag);
    }
    if (cfg.ckpt_every_ms > 0) {
        const std::string dir =
            cfg.ckpt_dir.empty() ? std::string(".") : cfg.ckpt_dir;
        sys.enableAutoCheckpoint(dir + "/autosave-" + tag,
                                 msToCycles(cfg.ckpt_every_ms));
    }
}

/** Metrics extracted from one Data Serving / Compute run. */
struct AppRunResult
{
    double mean_latency = 0;   //!< Cycles per request (serving).
    double tail_latency = 0;   //!< 95th percentile (serving).
    double units_per_ms = 0;   //!< Work-unit throughput (compute).
    double data_mpki = 0;
    double instr_mpki = 0;
    double data_shared_frac = 0;
    double instr_shared_frac = 0;
    std::uint64_t minor_faults = 0;
    std::uint64_t cow_faults = 0;
    std::uint64_t shared_installs = 0;
    std::uint64_t instructions = 0;
    double l2_long_frac = 0; //!< L2 TLB accesses paying the 12-cycle time.
    RunArtifacts artifacts;  //!< Final stats + time series, serialized.
};

/**
 * Run one application at the paper's co-location level: every core
 * multiplexes containers_per_core containers of the same app, each
 * serving a distinct request stream.
 */
inline AppRunResult
runApp(const workloads::AppProfile &profile,
       core::SystemParams params, const RunConfig &cfg)
{
    params.num_cores = cfg.num_cores;
    cfg.applyExecKnobs(params);
    cfg.applyTraceKnobs(params, profile.name);
    core::System sys(params);
    if (cfg.sampleInterval())
        sys.enableSampling(cfg.sampleInterval());
    if (!cfg.top_path.empty())
        sys.enableTopFile(cfg.top_path);

    const unsigned n = cfg.num_cores * cfg.containers_per_core;
    auto app = workloads::buildApp(sys.kernel(), profile, n, cfg.seed);
    auto threads = workloads::makeAppThreads(app, cfg.seed);
    for (unsigned i = 0; i < n; ++i)
        sys.addThread(i % cfg.num_cores, threads[i].get());

    warmOrRestore(sys, cfg, profile.name, params);
    sys.resetStats();
    for (auto &thread : threads) {
        if (auto *ds =
                dynamic_cast<workloads::DataServingThread *>(thread.get()))
            ds->resetMeasurement();
        if (auto *ct =
                dynamic_cast<workloads::ComputeThread *>(thread.get()))
            ct->resetMeasurement();
    }
    sys.run(msToCycles(cfg.measure_ms));

    AppRunResult r;
    std::uint64_t units = 0;
    // Aggregate request latencies: mean of per-container means and
    // tails (each container is driven by its own YCSB client, §VI).
    double mean_sum = 0, tail_sum = 0;
    unsigned serving_threads = 0;
    for (auto &thread : threads) {
        if (auto *ds = dynamic_cast<workloads::DataServingThread *>(
                thread.get())) {
            if (ds->latency().count() == 0)
                continue;
            mean_sum += ds->latency().mean();
            tail_sum += ds->latency().percentile(95);
            ++serving_threads;
        }
        if (auto *ct = dynamic_cast<workloads::ComputeThread *>(
                thread.get()))
            units += ct->unitsDone();
    }
    if (serving_threads) {
        r.mean_latency = mean_sum / serving_threads;
        r.tail_latency = tail_sum / serving_threads;
    }
    r.units_per_ms = static_cast<double>(units) / cfg.measure_ms;

    const double ki = sys.totalInstructions() / 1000.0;
    r.instructions = sys.totalInstructions();
    r.data_mpki = sys.totalL2TlbMisses(false) / ki;
    r.instr_mpki = sys.totalL2TlbMisses(true) / ki;
    const auto dh = sys.totalL2TlbHits(false);
    const auto ih = sys.totalL2TlbHits(true);
    r.data_shared_frac =
        dh ? static_cast<double>(sys.totalL2TlbSharedHits(false)) / dh : 0;
    r.instr_shared_frac =
        ih ? static_cast<double>(sys.totalL2TlbSharedHits(true)) / ih : 0;
    r.minor_faults = sys.kernel().minor_faults.value();
    r.cow_faults = sys.kernel().cow_faults.value();
    r.shared_installs = sys.kernel().shared_installs.value();
    std::uint64_t l2_accesses = 0, l2_long = 0;
    for (unsigned c = 0; c < sys.numCores(); ++c) {
        auto &mmu = sys.core(c).mmu();
        l2_accesses += mmu.l2_data_hits.value() +
                       mmu.l2_data_misses.value() +
                       mmu.l2_instr_hits.value() +
                       mmu.l2_instr_misses.value();
        l2_long += mmu.l2_long_accesses.value();
    }
    r.l2_long_frac = l2_accesses
                         ? static_cast<double>(l2_long) / l2_accesses
                         : 0;
    r.artifacts = captureArtifacts(sys);
    return r;
}

/** Result of one FaaS group run (per paper: 3 functions per core). */
struct FaasRunResult
{
    double lead_exec = 0;      //!< Leading function (cold), cycles.
    double trail_exec = 0;     //!< Mean of the trailing two, cycles.
    double bringup = 0;        //!< Mean container bring-up, cycles.
    double fork_work = 0;      //!< Kernel fork cycles per container.
    double data_mpki = 0;
    double instr_mpki = 0;
    double data_shared_frac = 0;
    double instr_shared_frac = 0;
    std::uint64_t minor_faults = 0;
    RunArtifacts artifacts;  //!< Final stats + time series, serialized.
};

/**
 * Run one group of the three functions to completion on one core
 * (multiplexed, as in §VI), with dense or sparse inputs.
 */
inline FaasRunResult
runFaas(core::SystemParams params, bool sparse, const RunConfig &cfg)
{
    params.num_cores = 1;
    cfg.applyExecKnobs(params);
    // Functions are latency-sensitive; a fine quantum interleaves the
    // three short-lived containers as the FaaS runtime does (their
    // bring-ups genuinely overlap in time).
    params.core.quantum = msToCycles(0.5);
    cfg.applyTraceKnobs(params,
                        sparse ? "functions-sparse" : "functions-dense");
    core::System sys(params);
    if (cfg.sampleInterval())
        sys.enableSampling(cfg.sampleInterval());
    if (!cfg.top_path.empty())
        sys.enableTopFile(cfg.top_path);

    auto group = workloads::buildFaasGroup(
        sys.kernel(), workloads::FunctionProfile::all(), cfg.seed);
    std::vector<std::unique_ptr<workloads::FunctionThread>> threads;
    for (unsigned i = 0; i < 3; ++i) {
        threads.push_back(std::make_unique<workloads::FunctionThread>(
            group.profiles[i], group.containers[i], sparse,
            cfg.seed + 17 * i));
    }
    // The triggering event reaches the leading function first (paper:
    // the leader behaves the same in Baseline and BabelFish due to cold
    // start; the trailing two are measured).
    sys.addThread(0, threads[0].get());
    sys.run(msToCycles(3));
    sys.addThread(0, threads[1].get());
    sys.addThread(0, threads[2].get());
    sys.runUntilFinished(msToCycles(4000));

    FaasRunResult r;
    r.lead_exec = static_cast<double>(threads[0]->execCycles());
    r.trail_exec = (static_cast<double>(threads[1]->execCycles()) +
                    static_cast<double>(threads[2]->execCycles())) /
                   2.0;
    r.bringup = (static_cast<double>(threads[0]->bringupCycles()) +
                 static_cast<double>(threads[1]->bringupCycles()) +
                 static_cast<double>(threads[2]->bringupCycles())) /
                    3.0 +
                static_cast<double>(group.bringup_work) / 3.0;
    r.fork_work = static_cast<double>(group.bringup_work) / 3.0;
    const double ki = sys.totalInstructions() / 1000.0;
    r.data_mpki = sys.totalL2TlbMisses(false) / ki;
    r.instr_mpki = sys.totalL2TlbMisses(true) / ki;
    const auto dh = sys.totalL2TlbHits(false);
    const auto ih = sys.totalL2TlbHits(true);
    r.data_shared_frac =
        dh ? static_cast<double>(sys.totalL2TlbSharedHits(false)) / dh : 0;
    r.instr_shared_frac =
        ih ? static_cast<double>(sys.totalL2TlbSharedHits(true)) / ih : 0;
    r.minor_faults = sys.kernel().minor_faults.value();
    r.artifacts = captureArtifacts(sys);
    return r;
}

/** Percentage reduction of b relative to a (positive = b is better). */
inline double
reduction(double base, double other)
{
    return base > 0 ? 100.0 * (1.0 - other / base) : 0.0;
}

/** Print a rule line. */
inline void
rule(char c = '-', int n = 74)
{
    for (int i = 0; i < n; ++i)
        std::putchar(c);
    std::putchar('\n');
}

} // namespace bfbench

#endif // BF_BENCH_COMMON_HH
