/**
 * @file
 * Experiment E8 — paper §VII-C: container bring-up time ("docker start"
 * of a function container from a pre-created image).
 *
 * Bring-up = the kernel's fork work (page-table copying vs fusing) plus
 * the runtime-initialization phase of the function container (loading
 * shared libraries, CoW-ing config pages) executed on the timing core.
 *
 * Paper reference point: BabelFish speeds up function bring-up by 8%;
 * most of the remaining overhead is the Docker engine / kernel
 * interaction.
 */

#include "bench/common.hh"

using namespace bfbench;

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();

    std::printf("§VII-C — Function container bring-up time\n");
    rule();
    std::printf("%-12s %14s %14s %14s\n", "config", "fork Kcyc",
                "init Mcyc", "total Mcyc");

    double totals[2] = {0, 0};
    int idx = 0;
    for (bool fish : {false, true}) {
        const auto params = fish ? core::SystemParams::babelfish()
                                 : core::SystemParams::baseline();
        const auto r = runFaas(params, /*sparse=*/false, cfg);
        std::printf("%-12s %14.1f %14.3f %14.3f\n",
                    fish ? "BabelFish" : "Baseline", r.fork_work / 1e3,
                    (r.bringup - r.fork_work) / 1e6, r.bringup / 1e6);
        totals[idx++] = r.bringup;
    }
    rule();
    std::printf("bring-up time reduction: %.1f%%   (paper: 8%%)\n",
                reduction(totals[0], totals[1]));
    return 0;
}
