/**
 * @file
 * Experiment E8 — paper §VII-C: container bring-up time ("docker start"
 * of a function container from a pre-created image).
 *
 * Bring-up = the kernel's fork work (page-table copying vs fusing) plus
 * the runtime-initialization phase of the function container (loading
 * shared libraries, CoW-ing config pages) executed on the timing core.
 *
 * Paper reference point: BabelFish speeds up function bring-up by 8%;
 * most of the remaining overhead is the Docker engine / kernel
 * interaction.
 */

#include "bench/common.hh"

using namespace bfbench;

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();
    BenchReport report("bringup");
    reportConfig(report, cfg);

    FaasRunResult results[2];
    std::vector<std::function<void()>> jobs;
    for (int fish = 0; fish < 2; ++fish) {
        jobs.push_back([&, fish] {
            const auto params = fish ? core::SystemParams::babelfish()
                                     : core::SystemParams::baseline();
            results[fish] = runFaas(params, /*sparse=*/false, cfg);
        });
    }
    runJobs(cfg, std::move(jobs));

    std::printf("§VII-C — Function container bring-up time\n");
    rule();
    std::printf("%-12s %14s %14s %14s\n", "config", "fork Kcyc",
                "init Mcyc", "total Mcyc");

    for (int fish = 0; fish < 2; ++fish) {
        const auto &r = results[fish];
        const char *label = fish ? "BabelFish" : "Baseline";
        std::printf("%-12s %14.1f %14.3f %14.3f\n", label,
                    r.fork_work / 1e3, (r.bringup - r.fork_work) / 1e6,
                    r.bringup / 1e6);
        report.metric(std::string(label) + ".bringup_cycles", r.bringup);
        report.metric(std::string(label) + ".fork_cycles", r.fork_work);
        report.addRun(fish ? "babelfish" : "baseline", r.artifacts);
    }
    rule();
    const double red = reduction(results[0].bringup, results[1].bringup);
    std::printf("bring-up time reduction: %.1f%%   (paper: 8%%)\n", red);
    report.metric("bringup_reduction_pct", red);
    report.write();
    return 0;
}
