/**
 * @file
 * Experiment A1 — ablations of the BabelFish design choices DESIGN.md
 * calls out:
 *
 *  1. The ORPC short-circuit (Fig. 5(b)): without it, every L2 TLB
 *     access pays the long (PC-bitmask) access time.
 *  2. ASLR-HW vs ASLR-SW (§IV-D): ASLR-SW shares L1 TLB entries and
 *     skips the 2-cycle transform, at weaker per-process randomization.
 *  3. The PC bitmask itself (§VII-D): the no-PC-bitmask design stops
 *     sharing a whole PMD table set on the first CoW write.
 *  4. Container co-location density: the paper is conservative at 2
 *     containers/core; savings grow with density.
 *
 * All cells are independent Systems and run concurrently (BF_JOBS).
 */

#include "bench/common.hh"

using namespace bfbench;

namespace
{

/** Total 8-container fleet bring-up (see ablation 3 below). */
std::pair<double, RunArtifacts>
fleetBringup(core::SystemParams params, const RunConfig &cfg)
{
    params.num_cores = 1;
    // Fine-grained interleaving: the fleet's bring-ups overlap.
    params.core.quantum = msToCycles(0.1);
    core::System sys(params);
    if (cfg.sampleInterval())
        sys.enableSampling(cfg.sampleInterval());
    std::vector<workloads::FunctionProfile> profiles(
        8, workloads::FunctionProfile::parse());
    for (auto &p : profiles) {
        p.input_bytes = 1 << 20;   // bring-up dominated
        p.bringup_cow_pages = 128; // config-heavy runtime init
    }
    auto group = workloads::buildFaasGroup(sys.kernel(), profiles,
                                           cfg.seed);
    std::vector<std::unique_ptr<workloads::FunctionThread>> th;
    for (unsigned i = 0; i < profiles.size(); ++i) {
        th.push_back(std::make_unique<workloads::FunctionThread>(
            group.profiles[i], group.containers[i], true,
            cfg.seed + 31 * i));
        // Containers launch staggered, as a scale-out burst does:
        // early ones are already CoW-ing their config while late ones
        // are still reading it.
        sys.addThread(0, th.back().get());
        sys.run(msToCycles(1));
    }
    sys.runUntilFinished(msToCycles(4000));
    double total = static_cast<double>(group.bringup_work);
    for (auto &t : th)
        total += static_cast<double>(t->bringupCycles());
    return { total, captureArtifacts(sys) };
}

} // namespace

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();
    const auto profile = workloads::AppProfile::mongodb();
    BenchReport report("ablations");
    reportConfig(report, cfg);

    // ---- Fan every independent cell out across the workers.
    AppRunResult base, fish, no_orpc, aslr_sw;
    std::pair<double, RunArtifacts> fleet_base, fleet_full, fleet_nomask;
    double share_fork_k[2];
    AppRunResult share_run[2];
    const unsigned densities[] = { 1, 2, 3, 4 };
    AppRunResult dens_base[4], dens_fish[4];
    const auto http = workloads::AppProfile::httpd();

    std::vector<std::function<void()>> jobs;
    jobs.push_back([&] {
        base = runApp(profile, core::SystemParams::baseline(), cfg);
    });
    jobs.push_back([&] {
        fish = runApp(profile, core::SystemParams::babelfish(), cfg);
    });
    jobs.push_back([&] {
        auto params = core::SystemParams::babelfish();
        params.mmu.force_long_l2 = true;
        no_orpc = runApp(profile, params, cfg);
    });
    jobs.push_back([&] {
        auto params = core::SystemParams::babelfish();
        params.kernel.aslr = vm::AslrMode::Sw;
        params.mmu.aslr = vm::AslrMode::Sw;
        aslr_sw = runApp(profile, params, cfg);
    });
    jobs.push_back([&] {
        fleet_base = fleetBringup(core::SystemParams::baseline(), cfg);
    });
    jobs.push_back([&] {
        fleet_full = fleetBringup(core::SystemParams::babelfish(), cfg);
    });
    jobs.push_back([&] {
        auto params = core::SystemParams::babelfish();
        params.kernel.max_cow_writers = 0;
        fleet_nomask = fleetBringup(params, cfg);
    });
    for (int level = 1; level <= 2; ++level) {
        jobs.push_back([&, level] {
            auto params = core::SystemParams::babelfish();
            params.kernel.max_share_level = level;
            params.num_cores = cfg.num_cores;
            core::System sys(params);
            auto app = workloads::buildApp(sys.kernel(), http,
                                           cfg.num_cores * 2, cfg.seed);
            share_fork_k[level - 1] =
                static_cast<double>(app.bringup_work) / 1e3 /
                (cfg.num_cores * 2);
            share_run[level - 1] = runApp(http, params, cfg);
        });
    }
    for (int d = 0; d < 4; ++d) {
        jobs.push_back([&, d] {
            RunConfig dcfg = cfg;
            dcfg.containers_per_core = densities[d];
            dens_base[d] =
                runApp(http, core::SystemParams::baseline(), dcfg);
        });
        jobs.push_back([&, d] {
            RunConfig dcfg = cfg;
            dcfg.containers_per_core = densities[d];
            dens_fish[d] =
                runApp(http, core::SystemParams::babelfish(), dcfg);
        });
    }
    runJobs(cfg, std::move(jobs));

    std::printf("Ablations (MongoDB profile, mean request latency)\n");
    rule();

    std::printf("%-34s %12.0f  %6s\n", "Baseline (conventional)",
                base.mean_latency, "--");
    std::printf("%-34s %12.0f  %5.1f%%\n", "BabelFish (default, ASLR-HW)",
                fish.mean_latency,
                reduction(base.mean_latency, fish.mean_latency));
    report.metric("babelfish_reduction_pct",
                  reduction(base.mean_latency, fish.mean_latency));
    report.addRun("mongodb.baseline", base.artifacts);
    report.addRun("mongodb.babelfish", fish.artifacts);

    // 1. No ORPC short-circuit: every L2 TLB access pays the long
    // (PC-bitmask) time instead of only the ORPC-flagged ones.
    std::printf("%-34s %12.0f  %5.1f%%  (long L2 accesses: "
                "%.1f%% -> %.1f%%)\n",
                "  - without ORPC bit", no_orpc.mean_latency,
                reduction(base.mean_latency, no_orpc.mean_latency),
                100.0 * fish.l2_long_frac, 100.0 * no_orpc.l2_long_frac);
    report.metric("no_orpc_reduction_pct",
                  reduction(base.mean_latency, no_orpc.mean_latency));
    report.addRun("mongodb.no_orpc", no_orpc.artifacts);

    // 2. ASLR-SW: L1 sharing on, no transform penalty.
    std::printf("%-34s %12.0f  %5.1f%%\n",
                "  - ASLR-SW (L1 sharing, no xform)", aslr_sw.mean_latency,
                reduction(base.mean_latency, aslr_sw.mean_latency));
    report.metric("aslr_sw_reduction_pct",
                  reduction(base.mean_latency, aslr_sw.mean_latency));
    report.addRun("mongodb.aslr_sw", aslr_sw.artifacts);

    rule();

    // 3. No PC bitmask: the first CoW write unshares a whole PMD table
    // set. The effect needs a fleet: while a few containers CoW config
    // pages, the many others should keep sharing (paper §III-A,
    // "Rationale for Supporting CoW Sharing"). We bring up 8 function
    // containers together and sum their bring-up times.
    std::printf("No-PC-bitmask design (8-container fleet, total "
                "bring-up):\n");
    std::printf("%-34s %12.2f  %6s\n", "  Baseline",
                fleet_base.first / 1e6, "--");
    std::printf("%-34s %12.2f  %5.1f%%\n", "  BabelFish (PC bitmask)",
                fleet_full.first / 1e6,
                reduction(fleet_base.first, fleet_full.first));
    std::printf("%-34s %12.2f  %5.1f%%\n", "  no PC bitmask",
                fleet_nomask.first / 1e6,
                reduction(fleet_base.first, fleet_nomask.first));
    report.metric("fleet_bringup_reduction_pct",
                  reduction(fleet_base.first, fleet_full.first));
    report.metric("fleet_bringup_nomask_reduction_pct",
                  reduction(fleet_base.first, fleet_nomask.first));
    report.addRun("fleet.baseline", fleet_base.second);
    report.addRun("fleet.babelfish", fleet_full.second);
    report.addRun("fleet.no_pc_bitmask", fleet_nomask.second);

    rule();

    // 4. Page-table sharing level (paper §III-B): the default fuses the
    // tables holding leaf entries (PTE tables); level 2 additionally
    // fuses PMD tables of read-only regions at fork, so one shared
    // pointer covers 1 GB of mappings.
    std::printf("Sharing level (HTTPd profile):\n");
    std::printf("%-10s %16s %14s\n", "level", "fork work Kcyc",
                "mean latency");
    for (int level = 1; level <= 2; ++level) {
        std::printf("%-10d %16.1f %14.0f\n", level,
                    share_fork_k[level - 1],
                    share_run[level - 1].mean_latency);
        report.metric("share_level" + std::to_string(level) +
                          ".fork_kcycles",
                      share_fork_k[level - 1]);
    }
    rule();

    // 5. Co-location density sweep.
    std::printf("Co-location density (containers per core, HTTPd "
                "profile):\n");
    std::printf("%-8s %14s %14s %10s\n", "density", "base dMPKI",
                "bf dMPKI", "reduction");
    std::vector<std::pair<double, double>> density_curve;
    for (int d = 0; d < 4; ++d) {
        const double red =
            reduction(dens_base[d].data_mpki, dens_fish[d].data_mpki);
        std::printf("%-8u %14.4f %14.4f %9.1f%%\n", densities[d],
                    dens_base[d].data_mpki, dens_fish[d].data_mpki, red);
        density_curve.emplace_back(densities[d], red);
    }
    report.addSeries("density_sweep", "containers_per_core",
                     "data_mpki_reduction_pct", density_curve);
    rule();
    std::printf("(expected: larger co-location -> larger BabelFish "
                "advantage; ORPC and the PC\n bitmask each preserve "
                "part of the gain; ASLR-SW is slightly faster than "
                "ASLR-HW)\n");
    report.write();
    return 0;
}
