/**
 * @file
 * Experiment A1 — ablations of the BabelFish design choices DESIGN.md
 * calls out:
 *
 *  1. The ORPC short-circuit (Fig. 5(b)): without it, every L2 TLB
 *     access pays the long (PC-bitmask) access time.
 *  2. ASLR-HW vs ASLR-SW (§IV-D): ASLR-SW shares L1 TLB entries and
 *     skips the 2-cycle transform, at weaker per-process randomization.
 *  3. The PC bitmask itself (§VII-D): the no-PC-bitmask design stops
 *     sharing a whole PMD table set on the first CoW write.
 *  4. Container co-location density: the paper is conservative at 2
 *     containers/core; savings grow with density.
 */

#include "bench/common.hh"

using namespace bfbench;

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();
    const auto profile = workloads::AppProfile::mongodb();

    std::printf("Ablations (MongoDB profile, mean request latency)\n");
    rule();

    const auto base = runApp(profile, core::SystemParams::baseline(), cfg);
    const auto fish =
        runApp(profile, core::SystemParams::babelfish(), cfg);
    std::printf("%-34s %12.0f  %6s\n", "Baseline (conventional)",
                base.mean_latency, "--");
    std::printf("%-34s %12.0f  %5.1f%%\n", "BabelFish (default, ASLR-HW)",
                fish.mean_latency,
                reduction(base.mean_latency, fish.mean_latency));

    // 1. No ORPC short-circuit: every L2 TLB access pays the long
    // (PC-bitmask) time instead of only the ORPC-flagged ones.
    {
        auto params = core::SystemParams::babelfish();
        params.mmu.force_long_l2 = true;
        const auto r = runApp(profile, params, cfg);
        std::printf("%-34s %12.0f  %5.1f%%  (long L2 accesses: "
                    "%.1f%% -> %.1f%%)\n",
                    "  - without ORPC bit", r.mean_latency,
                    reduction(base.mean_latency, r.mean_latency),
                    100.0 * fish.l2_long_frac, 100.0 * r.l2_long_frac);
    }

    // 2. ASLR-SW: L1 sharing on, no transform penalty.
    {
        auto params = core::SystemParams::babelfish();
        params.kernel.aslr = vm::AslrMode::Sw;
        params.mmu.aslr = vm::AslrMode::Sw;
        const auto r = runApp(profile, params, cfg);
        std::printf("%-34s %12.0f  %5.1f%%\n",
                    "  - ASLR-SW (L1 sharing, no xform)", r.mean_latency,
                    reduction(base.mean_latency, r.mean_latency));
    }

    rule();

    // 3. No PC bitmask: the first CoW write unshares a whole PMD table
    // set. The effect needs a fleet: while a few containers CoW config
    // pages, the many others should keep sharing (paper §III-A,
    // "Rationale for Supporting CoW Sharing"). We bring up 8 function
    // containers together and sum their bring-up times.
    {
        auto fleetBringup = [&](core::SystemParams params) {
            params.num_cores = 1;
            // Fine-grained interleaving: the fleet's bring-ups overlap.
            params.core.quantum = msToCycles(0.1);
            core::System sys(params);
            std::vector<workloads::FunctionProfile> profiles(
                8, workloads::FunctionProfile::parse());
            for (auto &p : profiles) {
                p.input_bytes = 1 << 20; // bring-up dominated
                p.bringup_cow_pages = 128; // config-heavy runtime init
            }
            auto group = workloads::buildFaasGroup(sys.kernel(),
                                                   profiles, cfg.seed);
            std::vector<std::unique_ptr<workloads::FunctionThread>> th;
            for (unsigned i = 0; i < profiles.size(); ++i) {
                th.push_back(
                    std::make_unique<workloads::FunctionThread>(
                        group.profiles[i], group.containers[i], true,
                        cfg.seed + 31 * i));
                // Containers launch staggered, as a scale-out burst
                // does: early ones are already CoW-ing their config
                // while late ones are still reading it.
                sys.addThread(0, th.back().get());
                sys.run(msToCycles(1));
            }
            sys.runUntilFinished(msToCycles(4000));
            double total = static_cast<double>(group.bringup_work);
            for (auto &t : th)
                total += static_cast<double>(t->bringupCycles());
            return total;
        };
        std::printf("No-PC-bitmask design (8-container fleet, total "
                    "bring-up):\n");
        const double fbase =
            fleetBringup(core::SystemParams::baseline());
        const double ffull =
            fleetBringup(core::SystemParams::babelfish());
        auto params = core::SystemParams::babelfish();
        params.kernel.max_cow_writers = 0;
        const double fnomask = fleetBringup(params);
        std::printf("%-34s %12.2f  %6s\n", "  Baseline", fbase / 1e6,
                    "--");
        std::printf("%-34s %12.2f  %5.1f%%\n", "  BabelFish (PC bitmask)",
                    ffull / 1e6, reduction(fbase, ffull));
        std::printf("%-34s %12.2f  %5.1f%%\n", "  no PC bitmask",
                    fnomask / 1e6, reduction(fbase, fnomask));
    }

    rule();

    // 4. Page-table sharing level (paper §III-B): the default fuses the
    // tables holding leaf entries (PTE tables); level 2 additionally
    // fuses PMD tables of read-only regions at fork, so one shared
    // pointer covers 1 GB of mappings.
    {
        std::printf("Sharing level (HTTPd profile):\n");
        std::printf("%-10s %16s %14s\n", "level", "fork work Kcyc",
                    "mean latency");
        for (int level : {1, 2}) {
            auto params = core::SystemParams::babelfish();
            params.kernel.max_share_level = level;
            params.num_cores = cfg.num_cores;
            core::System sys(params);
            auto app = workloads::buildApp(
                sys.kernel(), workloads::AppProfile::httpd(),
                cfg.num_cores * 2, cfg.seed);
            const double fork_k =
                static_cast<double>(app.bringup_work) / 1e3 /
                (cfg.num_cores * 2);
            const auto r = runApp(workloads::AppProfile::httpd(), params,
                                  cfg);
            std::printf("%-10d %16.1f %14.0f\n", level, fork_k,
                        r.mean_latency);
        }
    }
    rule();

    // 5. Co-location density sweep.
    std::printf("Co-location density (containers per core, HTTPd "
                "profile):\n");
    std::printf("%-8s %14s %14s %10s\n", "density", "base dMPKI",
                "bf dMPKI", "reduction");
    const auto http = workloads::AppProfile::httpd();
    for (unsigned density : {1u, 2u, 3u, 4u}) {
        RunConfig dcfg = cfg;
        dcfg.containers_per_core = density;
        const auto b = runApp(http, core::SystemParams::baseline(), dcfg);
        const auto f = runApp(http, core::SystemParams::babelfish(), dcfg);
        std::printf("%-8u %14.4f %14.4f %9.1f%%\n", density, b.data_mpki,
                    f.data_mpki, reduction(b.data_mpki, f.data_mpki));
    }
    rule();
    std::printf("(expected: larger co-location -> larger BabelFish "
                "advantage; ORPC and the PC\n bitmask each preserve "
                "part of the gain; ASLR-SW is slightly faster than "
                "ASLR-HW)\n");
    return 0;
}
