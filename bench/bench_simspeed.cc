/**
 * @file
 * Simulation-speed harness: how fast does the *simulator* run on the
 * host? Reports host wall-clock seconds and simulated MIPS (simulated
 * instructions per host-second) for the default 8-core Fig. 11 workload
 * mix (Data Serving + Compute apps under BabelFish, plus one FaaS
 * group), and an aggregate over the whole mix.
 *
 * The numbers here describe the simulator's own throughput — the inner
 * translate/TLB/cache loop — never the modeled machine, so they are the
 * one output allowed to change across purely host-side optimizations.
 * The golden-stats check (tools/check_golden_stats.py) enforces the
 * complement: the architectural stats must not move at all.
 *
 * Environment knobs (on top of bench/common.hh's):
 *   BF_REPEAT=n         time each workload n times, keep the fastest
 *                       (default 1; use 3+ for recorded numbers).
 *   BF_BASELINE=path    a prior BENCH_simspeed.json whose metrics
 *                       .sim_mips is the baseline for the speedup note.
 *   BF_BASELINE_MIPS=x  numeric baseline override (wins over
 *                       BF_BASELINE).
 *   BF_MIPS_GUARD=f     regression gate: exit 1 if the aggregate falls
 *                       below f x baseline (e.g. 0.85 = fail on a >15%
 *                       drop). No-op without a baseline.
 * Without a baseline the speedup note is omitted — there is no
 * hard-coded reference value, so numbers from different machines never
 * get compared silently.
 *
 * The mix always runs serially (BF_JOBS is ignored): wall-clock timing
 * of concurrent cells would measure scheduler contention, not the
 * simulator. BF_WORKERS *is* honored — it parallelizes inside each
 * System and is exactly what this bench exists to measure.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hh"

using namespace bfbench;

namespace
{

/**
 * Baseline aggregate sim-MIPS from a prior BENCH_simspeed.json given
 * via BF_BASELINE: the value of the "sim_mips" key (the report writer
 * emits it once, in metrics). Returns 0 when unset or unparsable.
 */
double
baselineFromFile(const char *path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "BF_BASELINE: cannot read %s\n", path);
        return 0;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const std::string key = "\"sim_mips\":";
    const auto pos = text.find(key);
    if (pos == std::string::npos) {
        std::fprintf(stderr, "BF_BASELINE: no sim_mips in %s\n", path);
        return 0;
    }
    return std::atof(text.c_str() + pos + key.size());
}

/** One timed simulation: host seconds and simulated instructions. */
struct SpeedSample
{
    double host_seconds = 0;
    std::uint64_t instructions = 0;

    double
    mips() const
    {
        return host_seconds > 0
                   ? static_cast<double>(instructions) / host_seconds / 1e6
                   : 0;
    }
};

/** Run one co-located app cell (as Fig. 11 does) and time the run. */
SpeedSample
timeApp(const workloads::AppProfile &profile, core::SystemParams params,
        const RunConfig &cfg)
{
    params.num_cores = cfg.num_cores;
    cfg.applyExecKnobs(params);
    core::System sys(params);

    const unsigned n = cfg.num_cores * cfg.containers_per_core;
    auto app = workloads::buildApp(sys.kernel(), profile, n, cfg.seed);
    auto threads = workloads::makeAppThreads(app, cfg.seed);
    for (unsigned i = 0; i < n; ++i)
        sys.addThread(i % cfg.num_cores, threads[i].get());

    const auto t0 = std::chrono::steady_clock::now();
    sys.run(msToCycles(cfg.warm_ms + cfg.measure_ms));
    const auto t1 = std::chrono::steady_clock::now();

    SpeedSample s;
    s.host_seconds = std::chrono::duration<double>(t1 - t0).count();
    s.instructions = sys.totalInstructions();
    return s;
}

/** Run one FaaS group to completion (as Fig. 11 does) and time it. */
SpeedSample
timeFaas(core::SystemParams params, bool sparse, const RunConfig &cfg)
{
    params.num_cores = 1;
    cfg.applyExecKnobs(params);
    params.core.quantum = msToCycles(0.5);
    core::System sys(params);

    auto group = workloads::buildFaasGroup(
        sys.kernel(), workloads::FunctionProfile::all(), cfg.seed);
    std::vector<std::unique_ptr<workloads::FunctionThread>> threads;
    for (unsigned i = 0; i < 3; ++i) {
        threads.push_back(std::make_unique<workloads::FunctionThread>(
            group.profiles[i], group.containers[i], sparse,
            cfg.seed + 17 * i));
    }

    const auto t0 = std::chrono::steady_clock::now();
    sys.addThread(0, threads[0].get());
    sys.run(msToCycles(3));
    sys.addThread(0, threads[1].get());
    sys.addThread(0, threads[2].get());
    sys.runUntilFinished(msToCycles(4000));
    const auto t1 = std::chrono::steady_clock::now();

    SpeedSample s;
    s.host_seconds = std::chrono::duration<double>(t1 - t0).count();
    s.instructions = sys.totalInstructions();
    return s;
}

/** Best (fastest) of @p repeats runs of a workload. */
SpeedSample
best(unsigned repeats, const std::function<SpeedSample()> &run)
{
    SpeedSample best_sample = run();
    for (unsigned i = 1; i < repeats; ++i) {
        const SpeedSample s = run();
        if (s.host_seconds < best_sample.host_seconds)
            best_sample = s;
    }
    return best_sample;
}

} // namespace

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();

    unsigned repeats = 1;
    if (const char *r = std::getenv("BF_REPEAT"))
        repeats = std::max(1, std::atoi(r));
    double baseline_mips = 0;
    if (const char *b = std::getenv("BF_BASELINE"))
        baseline_mips = baselineFromFile(b);
    if (const char *b = std::getenv("BF_BASELINE_MIPS"))
        baseline_mips = std::atof(b);

    BenchReport report("simspeed");
    reportConfig(report, cfg);
    report.config("repeats", static_cast<double>(repeats));

    // The Fig. 11 workload mix under the BabelFish configuration.
    struct Cell
    {
        std::string label;
        std::function<SpeedSample()> run;
    };
    std::vector<Cell> cells;
    for (const auto &profile : workloads::AppProfile::dataServing()) {
        cells.push_back({ profile.name, [profile, &cfg] {
            return timeApp(profile, core::SystemParams::babelfish(), cfg);
        } });
    }
    for (const auto &profile : workloads::AppProfile::compute()) {
        cells.push_back({ profile.name, [profile, &cfg] {
            return timeApp(profile, core::SystemParams::babelfish(), cfg);
        } });
    }
    cells.push_back({ "fn-dense", [&cfg] {
        return timeFaas(core::SystemParams::babelfish(), false, cfg);
    } });
    cells.push_back({ "fn-sparse", [&cfg] {
        return timeFaas(core::SystemParams::babelfish(), true, cfg);
    } });

    std::printf("Simulation speed — host throughput of the Fig. 11 mix "
                "(%u cores, best of %u)\n", cfg.num_cores, repeats);
    rule();
    std::printf("%-12s %14s %12s %12s\n", "workload", "sim Minstr",
                "host sec", "sim MIPS");
    rule();

    SpeedSample total;
    for (const auto &cell : cells) {
        const SpeedSample s = best(repeats, cell.run);
        std::printf("%-12s %14.2f %12.3f %12.2f\n", cell.label.c_str(),
                    s.instructions / 1e6, s.host_seconds, s.mips());
        report.host(cell.label, s.host_seconds, s.mips());
        total.host_seconds += s.host_seconds;
        total.instructions += s.instructions;
    }
    rule();
    std::printf("%-12s %14.2f %12.3f %12.2f\n", "total",
                total.instructions / 1e6, total.host_seconds,
                total.mips());
    report.host("total", total.host_seconds, total.mips());
    report.metric("sim_mips", total.mips());
    report.metric("host_seconds", total.host_seconds);

    if (baseline_mips > 0) {
        const double speedup = total.mips() / baseline_mips;
        std::printf("baseline %.2f MIPS -> speedup %.2fx\n",
                    baseline_mips, speedup);
        report.note("baseline_mips", baseline_mips);
        report.note("speedup", speedup);
    }
    report.write();

    // Regression gate (CI): with a baseline and BF_MIPS_GUARD set, a
    // drop below guard x baseline is a hard failure. The report above
    // is written either way so the artifact shows the failing numbers.
    if (const char *g = std::getenv("BF_MIPS_GUARD")) {
        const double guard = std::atof(g);
        if (baseline_mips > 0 && guard > 0 &&
            total.mips() < guard * baseline_mips) {
            std::fprintf(stderr,
                         "FAIL: aggregate %.2f MIPS is below %.0f%% of "
                         "the %.2f MIPS baseline\n",
                         total.mips(), guard * 100, baseline_mips);
            return 1;
        }
    }
    return 0;
}
