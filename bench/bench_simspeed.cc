/**
 * @file
 * Simulation-speed harness: how fast does the *simulator* run on the
 * host? Reports host wall-clock seconds and simulated MIPS (simulated
 * instructions per host-second) for the default 8-core Fig. 11 workload
 * mix (Data Serving + Compute apps under BabelFish, plus one FaaS
 * group), and an aggregate over the whole mix.
 *
 * The numbers here describe the simulator's own throughput — the inner
 * translate/TLB/cache loop — never the modeled machine, so they are the
 * one output allowed to change across purely host-side optimizations.
 * The golden-stats check (tools/check_golden_stats.py) enforces the
 * complement: the architectural stats must not move at all.
 *
 * Each row also reports the per-phase host-time breakdown of the chunk
 * loop (System::phaseTimes): bound dispatch, fault service, canonical
 * merge, weave replay. That is the Amdahl decomposition for the
 * parallel knobs — BF_WORKERS scales only the bound share and
 * BF_WEAVE_WORKERS only the weave share — and lands in the JSON host
 * rows as the additive "phases" object (schema v3).
 *
 * Environment knobs (on top of bench/common.hh's):
 *   BF_REPEAT=n         time each workload n times, keep the fastest
 *                       (default 1; use 3+ for recorded numbers).
 *   BF_BASELINE=path    a prior BENCH_simspeed.json whose metrics
 *                       .sim_mips is the baseline for the speedup note;
 *                       its host rows are the per-workload baselines.
 *   BF_BASELINE_MIPS=x  numeric aggregate override (wins over
 *                       BF_BASELINE; carries no per-row baselines).
 *   BF_MIPS_GUARD=f     regression gate: exit 1 if the aggregate falls
 *                       below f x baseline (e.g. 0.85 = fail on a >15%
 *                       drop). No-op without a baseline.
 *   BF_MIPS_GUARD_ROW=f per-workload floor as a fraction of that row's
 *                       baseline sim_mips (default 0.80 whenever
 *                       BF_MIPS_GUARD is active and BF_BASELINE
 *                       supplied rows; 0 disables). Catches a workload
 *                       regressing behind an aggregate that other rows'
 *                       gains keep green.
 * Without a baseline the speedup note is omitted — there is no
 * hard-coded reference value, so numbers from different machines never
 * get compared silently.
 *
 * The mix always runs serially (BF_JOBS is ignored): wall-clock timing
 * of concurrent cells would measure scheduler contention, not the
 * simulator. BF_WORKERS *is* honored — it parallelizes inside each
 * System and is exactly what this bench exists to measure.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hh"

using namespace bfbench;

namespace
{

/**
 * Baselines parsed from a prior BENCH_simspeed.json (BF_BASELINE):
 * the aggregate metrics "sim_mips" plus the per-workload sim-MIPS of
 * every host row, for the per-row guard floors.
 */
struct Baseline
{
    double aggregate_mips = 0;
    std::vector<std::pair<std::string, double>> row_mips;

    /** Baseline sim-MIPS of a host row, or 0 when absent. */
    double
    rowMips(const std::string &label) const
    {
        for (const auto &[row, mips] : row_mips) {
            if (row == label)
                return mips;
        }
        return 0;
    }
};

/**
 * Parse BF_BASELINE. The aggregate is the first "sim_mips" in the file
 * (the metrics section precedes the host rows in the schema); a host
 * row's value follows its '"<label>":{"host_seconds":' opener. Returns
 * zeros for unreadable files so the guards degrade to no-ops.
 */
Baseline
baselineFromFile(const char *path, const std::vector<std::string> &labels)
{
    Baseline base;
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "BF_BASELINE: cannot read %s\n", path);
        return base;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const std::string key = "\"sim_mips\":";
    const auto pos = text.find(key);
    if (pos == std::string::npos) {
        std::fprintf(stderr, "BF_BASELINE: no sim_mips in %s\n", path);
        return base;
    }
    base.aggregate_mips = std::atof(text.c_str() + pos + key.size());
    for (const auto &label : labels) {
        const std::string row_key = "\"" + label + "\":{\"host_seconds\":";
        const auto row = text.find(row_key);
        if (row == std::string::npos)
            continue;
        const auto mips = text.find(key, row + row_key.size());
        if (mips == std::string::npos)
            continue;
        base.row_mips.emplace_back(
            label, std::atof(text.c_str() + mips + key.size()));
    }
    return base;
}

/** One timed simulation: host seconds, instructions, phase breakdown. */
struct SpeedSample
{
    double host_seconds = 0;
    std::uint64_t instructions = 0;
    core::System::PhaseTimes phases{};

    double
    mips() const
    {
        return host_seconds > 0
                   ? static_cast<double>(instructions) / host_seconds / 1e6
                   : 0;
    }

    void
    addPhases(const SpeedSample &other)
    {
        phases.bound_seconds += other.phases.bound_seconds;
        phases.fault_seconds += other.phases.fault_seconds;
        phases.merge_seconds += other.phases.merge_seconds;
        phases.weave_seconds += other.phases.weave_seconds;
    }
};

/** Run one co-located app cell (as Fig. 11 does) and time the run. */
SpeedSample
timeApp(const workloads::AppProfile &profile, core::SystemParams params,
        const RunConfig &cfg)
{
    params.num_cores = cfg.num_cores;
    cfg.applyExecKnobs(params);
    core::System sys(params);

    const unsigned n = cfg.num_cores * cfg.containers_per_core;
    auto app = workloads::buildApp(sys.kernel(), profile, n, cfg.seed);
    auto threads = workloads::makeAppThreads(app, cfg.seed);
    for (unsigned i = 0; i < n; ++i)
        sys.addThread(i % cfg.num_cores, threads[i].get());

    const auto t0 = std::chrono::steady_clock::now();
    sys.run(msToCycles(cfg.warm_ms + cfg.measure_ms));
    const auto t1 = std::chrono::steady_clock::now();

    SpeedSample s;
    s.host_seconds = std::chrono::duration<double>(t1 - t0).count();
    s.instructions = sys.totalInstructions();
    s.phases = sys.phaseTimes();
    return s;
}

/** Run one FaaS group to completion (as Fig. 11 does) and time it. */
SpeedSample
timeFaas(core::SystemParams params, bool sparse, const RunConfig &cfg)
{
    params.num_cores = 1;
    cfg.applyExecKnobs(params);
    params.core.quantum = msToCycles(0.5);
    core::System sys(params);

    auto group = workloads::buildFaasGroup(
        sys.kernel(), workloads::FunctionProfile::all(), cfg.seed);
    std::vector<std::unique_ptr<workloads::FunctionThread>> threads;
    for (unsigned i = 0; i < 3; ++i) {
        threads.push_back(std::make_unique<workloads::FunctionThread>(
            group.profiles[i], group.containers[i], sparse,
            cfg.seed + 17 * i));
    }

    const auto t0 = std::chrono::steady_clock::now();
    sys.addThread(0, threads[0].get());
    sys.run(msToCycles(3));
    sys.addThread(0, threads[1].get());
    sys.addThread(0, threads[2].get());
    sys.runUntilFinished(msToCycles(4000));
    const auto t1 = std::chrono::steady_clock::now();

    SpeedSample s;
    s.host_seconds = std::chrono::duration<double>(t1 - t0).count();
    s.instructions = sys.totalInstructions();
    s.phases = sys.phaseTimes();
    return s;
}

/** Best (fastest) of @p repeats runs of a workload. */
SpeedSample
best(unsigned repeats, const std::function<SpeedSample()> &run)
{
    SpeedSample best_sample = run();
    for (unsigned i = 1; i < repeats; ++i) {
        const SpeedSample s = run();
        if (s.host_seconds < best_sample.host_seconds)
            best_sample = s;
    }
    return best_sample;
}

} // namespace

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();

    unsigned repeats = 1;
    if (const char *r = std::getenv("BF_REPEAT"))
        repeats = std::max(1, std::atoi(r));

    BenchReport report("simspeed");
    reportConfig(report, cfg);
    report.config("repeats", static_cast<double>(repeats));

    // The Fig. 11 workload mix under the BabelFish configuration.
    struct Cell
    {
        std::string label;
        std::function<SpeedSample()> run;
    };
    std::vector<Cell> cells;
    for (const auto &profile : workloads::AppProfile::dataServing()) {
        cells.push_back({ profile.name, [profile, &cfg] {
            return timeApp(profile, core::SystemParams::babelfish(), cfg);
        } });
    }
    for (const auto &profile : workloads::AppProfile::compute()) {
        cells.push_back({ profile.name, [profile, &cfg] {
            return timeApp(profile, core::SystemParams::babelfish(), cfg);
        } });
    }
    cells.push_back({ "fn-dense", [&cfg] {
        return timeFaas(core::SystemParams::babelfish(), false, cfg);
    } });
    cells.push_back({ "fn-sparse", [&cfg] {
        return timeFaas(core::SystemParams::babelfish(), true, cfg);
    } });

    std::vector<std::string> labels;
    for (const auto &cell : cells)
        labels.push_back(cell.label);

    Baseline base;
    if (const char *b = std::getenv("BF_BASELINE"))
        base = baselineFromFile(b, labels);
    if (const char *b = std::getenv("BF_BASELINE_MIPS")) {
        base.aggregate_mips = std::atof(b);
        base.row_mips.clear(); // numeric override carries no rows
    }

    std::printf("Simulation speed — host throughput of the Fig. 11 mix "
                "(%u cores, best of %u)\n", cfg.num_cores, repeats);
    rule();
    std::printf("%-12s %12s %10s %10s %8s %8s %8s %8s\n", "workload",
                "sim Minstr", "host sec", "sim MIPS", "bound", "fault",
                "merge", "weave");
    rule();

    SpeedSample total;
    std::vector<std::pair<std::string, SpeedSample>> rows;
    for (const auto &cell : cells) {
        const SpeedSample s = best(repeats, cell.run);
        const auto &ph = s.phases;
        std::printf("%-12s %12.2f %10.3f %10.2f %8.3f %8.3f %8.3f "
                    "%8.3f\n",
                    cell.label.c_str(), s.instructions / 1e6,
                    s.host_seconds, s.mips(), ph.bound_seconds,
                    ph.fault_seconds, ph.merge_seconds,
                    ph.weave_seconds);
        report.hostPhases(cell.label, s.host_seconds, s.mips(),
                          ph.bound_seconds, ph.fault_seconds,
                          ph.merge_seconds, ph.weave_seconds);
        rows.emplace_back(cell.label, s);
        total.host_seconds += s.host_seconds;
        total.instructions += s.instructions;
        total.addPhases(s);
    }
    rule();
    const auto &tp = total.phases;
    std::printf("%-12s %12.2f %10.3f %10.2f %8.3f %8.3f %8.3f %8.3f\n",
                "total", total.instructions / 1e6, total.host_seconds,
                total.mips(), tp.bound_seconds, tp.fault_seconds,
                tp.merge_seconds, tp.weave_seconds);
    report.hostPhases("total", total.host_seconds, total.mips(),
                      tp.bound_seconds, tp.fault_seconds,
                      tp.merge_seconds, tp.weave_seconds);
    report.metric("sim_mips", total.mips());
    report.metric("host_seconds", total.host_seconds);

    if (base.aggregate_mips > 0) {
        const double speedup = total.mips() / base.aggregate_mips;
        std::printf("baseline %.2f MIPS -> speedup %.2fx\n",
                    base.aggregate_mips, speedup);
        report.note("baseline_mips", base.aggregate_mips);
        report.note("speedup", speedup);
    }
    report.write();

    // Regression gates (CI): with a baseline and BF_MIPS_GUARD set, an
    // aggregate drop below guard x baseline is a hard failure, and each
    // workload row is additionally held to BF_MIPS_GUARD_ROW x its own
    // baseline row (default 0.80) — a single workload regressing badly
    // cannot hide behind other rows' gains. The report above is written
    // either way so the artifact shows the failing numbers.
    if (const char *g = std::getenv("BF_MIPS_GUARD")) {
        const double guard = std::atof(g);
        bool failed = false;
        if (base.aggregate_mips > 0 && guard > 0 &&
            total.mips() < guard * base.aggregate_mips) {
            std::fprintf(stderr,
                         "FAIL: aggregate %.2f MIPS is below %.0f%% of "
                         "the %.2f MIPS baseline\n",
                         total.mips(), guard * 100, base.aggregate_mips);
            failed = true;
        }
        double row_guard = 0.80;
        if (const char *rg = std::getenv("BF_MIPS_GUARD_ROW"))
            row_guard = std::atof(rg);
        if (guard > 0 && row_guard > 0) {
            for (const auto &[label, s] : rows) {
                const double row_base = base.rowMips(label);
                if (row_base <= 0)
                    continue;
                if (s.mips() < row_guard * row_base) {
                    std::fprintf(stderr,
                                 "FAIL: %s %.2f MIPS is below %.0f%% of "
                                 "its %.2f MIPS baseline row\n",
                                 label.c_str(), s.mips(), row_guard * 100,
                                 row_base);
                    failed = true;
                }
            }
        }
        if (failed)
            return 1;
    }
    return 0;
}
