/**
 * @file
 * Experiment E3 — paper Fig. 10b: hits on L2 TLB entries brought in by
 * processes other than the one issuing the access ("Shared Hits"), as a
 * fraction of all L2 TLB hits, under BabelFish.
 *
 * Paper reference points: sizable but application-dependent; GraphChi
 * shows ~48% shared hits for instructions and ~12% for data (regular
 * code, low-locality data).
 */

#include "bench/common.hh"

using namespace bfbench;

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();
    BenchReport report("fig10b_shared_hits");
    reportConfig(report, cfg);

    std::vector<workloads::AppProfile> apps;
    for (auto p : workloads::AppProfile::dataServing())
        apps.push_back(p);
    for (auto p : workloads::AppProfile::compute())
        apps.push_back(p);

    std::vector<AppRunResult> app_fish(apps.size());
    FaasRunResult faas_fish[2];

    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        jobs.push_back([&, i] {
            app_fish[i] =
                runApp(apps[i], core::SystemParams::babelfish(), cfg);
        });
    }
    for (int s = 0; s < 2; ++s) {
        jobs.push_back([&, s] {
            faas_fish[s] =
                runFaas(core::SystemParams::babelfish(), s == 1, cfg);
        });
    }
    runJobs(cfg, std::move(jobs));

    std::printf("Fig. 10b — Shared Hits fraction of all L2 TLB hits "
                "(BabelFish)\n");
    rule();
    std::printf("%-12s %12s %12s\n", "workload", "data", "instruction");
    rule();

    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &fish = app_fish[i];
        std::printf("%-12s %11.1f%% %11.1f%%\n", apps[i].name.c_str(),
                    100.0 * fish.data_shared_frac,
                    100.0 * fish.instr_shared_frac);
        report.metric(apps[i].name + ".data_shared_pct",
                      100.0 * fish.data_shared_frac);
        report.metric(apps[i].name + ".instr_shared_pct",
                      100.0 * fish.instr_shared_frac);
        report.addRun(apps[i].name + ".babelfish", fish.artifacts);
    }
    for (int s = 0; s < 2; ++s) {
        const std::string label = s ? "fn-sparse" : "fn-dense";
        const auto &fish = faas_fish[s];
        std::printf("%-12s %11.1f%% %11.1f%%\n", label.c_str(),
                    100.0 * fish.data_shared_frac,
                    100.0 * fish.instr_shared_frac);
        report.metric(label + ".data_shared_pct",
                      100.0 * fish.data_shared_frac);
        report.metric(label + ".instr_shared_pct",
                      100.0 * fish.instr_shared_frac);
        report.addRun(label + ".babelfish", fish.artifacts);
    }
    rule();
    std::printf("(paper: sizable, pattern-dependent; e.g. GraphChi "
                "~48%% instruction / ~12%% data)\n");
    report.write();
    return 0;
}
