/**
 * @file
 * Experiment E3 — paper Fig. 10b: hits on L2 TLB entries brought in by
 * processes other than the one issuing the access ("Shared Hits"), as a
 * fraction of all L2 TLB hits, under BabelFish.
 *
 * Paper reference points: sizable but application-dependent; GraphChi
 * shows ~48% shared hits for instructions and ~12% for data (regular
 * code, low-locality data).
 */

#include "bench/common.hh"

using namespace bfbench;

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();

    std::printf("Fig. 10b — Shared Hits fraction of all L2 TLB hits "
                "(BabelFish)\n");
    rule();
    std::printf("%-12s %12s %12s\n", "workload", "data", "instruction");
    rule();

    std::vector<workloads::AppProfile> apps;
    for (auto p : workloads::AppProfile::dataServing())
        apps.push_back(p);
    for (auto p : workloads::AppProfile::compute())
        apps.push_back(p);

    for (const auto &profile : apps) {
        const auto fish =
            runApp(profile, core::SystemParams::babelfish(), cfg);
        std::printf("%-12s %11.1f%% %11.1f%%\n", profile.name.c_str(),
                    100.0 * fish.data_shared_frac,
                    100.0 * fish.instr_shared_frac);
    }
    for (bool sparse : {false, true}) {
        const auto fish =
            runFaas(core::SystemParams::babelfish(), sparse, cfg);
        std::printf("%-12s %11.1f%% %11.1f%%\n",
                    sparse ? "fn-sparse" : "fn-dense",
                    100.0 * fish.data_shared_frac,
                    100.0 * fish.instr_shared_frac);
    }
    rule();
    std::printf("(paper: sizable, pattern-dependent; e.g. GraphChi "
                "~48%% instruction / ~12%% data)\n");
    return 0;
}
