/**
 * @file
 * Experiment E7 — paper §VII-C, "BabelFish vs Larger TLB": spend the
 * CCID + O-PC storage on a bigger conventional L2 TLB instead, and
 * compare.
 *
 * Paper reference points: the equal-area larger conventional TLB gains
 * only 2.1% mean latency (data serving), 0.6% (compute), 1.1% / 0.3%
 * (dense / sparse functions) — no match for BabelFish, which also
 * benefits from page-table effects and cross-process prefetching.
 */

#include "bench/common.hh"

#include "analysis/cacti_lite.hh"

using namespace bfbench;

namespace
{

core::SystemParams
largerTlbParams()
{
    core::SystemParams params = core::SystemParams::baseline();
    analysis::CactiLite cacti;
    const auto entries = cacti.equalAreaConventionalEntries();
    params.mmu.l2_4k.entries = static_cast<unsigned>(entries);
    params.mmu.l2_2m.entries = static_cast<unsigned>(entries);
    return params;
}

} // namespace

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();
    const core::SystemParams larger = largerTlbParams();
    BenchReport report("larger_tlb");
    reportConfig(report, cfg);
    report.config("larger_tlb_entries", larger.mmu.l2_4k.entries);

    const auto serving = workloads::AppProfile::dataServing();
    const auto compute = workloads::AppProfile::compute();

    std::vector<AppRunResult> s_base(serving.size()), s_big(serving.size()),
        s_fish(serving.size());
    std::vector<AppRunResult> c_base(compute.size()), c_big(compute.size()),
        c_fish(compute.size());
    FaasRunResult f_base[2], f_big[2], f_fish[2];

    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < serving.size(); ++i) {
        jobs.push_back([&, i] {
            s_base[i] =
                runApp(serving[i], core::SystemParams::baseline(), cfg);
        });
        jobs.push_back([&, i] { s_big[i] = runApp(serving[i], larger, cfg); });
        jobs.push_back([&, i] {
            s_fish[i] =
                runApp(serving[i], core::SystemParams::babelfish(), cfg);
        });
    }
    for (std::size_t i = 0; i < compute.size(); ++i) {
        jobs.push_back([&, i] {
            c_base[i] =
                runApp(compute[i], core::SystemParams::baseline(), cfg);
        });
        jobs.push_back([&, i] { c_big[i] = runApp(compute[i], larger, cfg); });
        jobs.push_back([&, i] {
            c_fish[i] =
                runApp(compute[i], core::SystemParams::babelfish(), cfg);
        });
    }
    for (int s = 0; s < 2; ++s) {
        jobs.push_back([&, s] {
            f_base[s] =
                runFaas(core::SystemParams::baseline(), s == 1, cfg);
        });
        jobs.push_back([&, s] { f_big[s] = runFaas(larger, s == 1, cfg); });
        jobs.push_back([&, s] {
            f_fish[s] =
                runFaas(core::SystemParams::babelfish(), s == 1, cfg);
        });
    }
    runJobs(cfg, std::move(jobs));

    std::printf("§VII-C — BabelFish vs an equal-area larger conventional "
                "L2 TLB (%u entries)\n", larger.mmu.l2_4k.entries);
    rule();
    std::printf("%-12s %12s %12s\n", "workload", "larger-TLB",
                "BabelFish");
    rule();

    double ds_l = 0, ds_b = 0;
    for (std::size_t i = 0; i < serving.size(); ++i) {
        const double rl =
            reduction(s_base[i].mean_latency, s_big[i].mean_latency);
        const double rb =
            reduction(s_base[i].mean_latency, s_fish[i].mean_latency);
        std::printf("%-12s %11.1f%% %11.1f%%   (mean latency)\n",
                    serving[i].name.c_str(), rl, rb);
        ds_l += rl;
        ds_b += rb;
        report.metric(serving[i].name + ".larger_tlb_reduction_pct", rl);
        report.metric(serving[i].name + ".babelfish_reduction_pct", rb);
        report.addRun(serving[i].name + ".baseline", s_base[i].artifacts);
        report.addRun(serving[i].name + ".larger_tlb", s_big[i].artifacts);
        report.addRun(serving[i].name + ".babelfish", s_fish[i].artifacts);
    }
    std::printf("%-12s %11.1f%% %11.1f%%   (paper: 2.1%% vs 11%%)\n",
                "serving avg", ds_l / serving.size(),
                ds_b / serving.size());
    rule();

    double c_l = 0, c_b = 0;
    for (std::size_t i = 0; i < compute.size(); ++i) {
        const double rl = reduction(1.0 / c_base[i].units_per_ms,
                                    1.0 / c_big[i].units_per_ms);
        const double rb = reduction(1.0 / c_base[i].units_per_ms,
                                    1.0 / c_fish[i].units_per_ms);
        std::printf("%-12s %11.1f%% %11.1f%%   (execution time)\n",
                    compute[i].name.c_str(), rl, rb);
        c_l += rl;
        c_b += rb;
        report.metric(compute[i].name + ".larger_tlb_reduction_pct", rl);
        report.metric(compute[i].name + ".babelfish_reduction_pct", rb);
        report.addRun(compute[i].name + ".baseline", c_base[i].artifacts);
        report.addRun(compute[i].name + ".larger_tlb", c_big[i].artifacts);
        report.addRun(compute[i].name + ".babelfish", c_fish[i].artifacts);
    }
    std::printf("%-12s %11.1f%% %11.1f%%   (paper: 0.6%% vs 11%%)\n",
                "compute avg", c_l / compute.size(), c_b / compute.size());
    rule();

    for (int s = 0; s < 2; ++s) {
        const std::string label = s ? "fn-sparse" : "fn-dense";
        const double rl =
            reduction(f_base[s].trail_exec, f_big[s].trail_exec);
        const double rb =
            reduction(f_base[s].trail_exec, f_fish[s].trail_exec);
        std::printf("%-12s %11.1f%% %11.1f%%   (paper: %s)\n",
                    label.c_str(), rl, rb,
                    s ? "0.3%% vs 55%%" : "1.1%% vs 10%%");
        report.metric(label + ".larger_tlb_reduction_pct", rl);
        report.metric(label + ".babelfish_reduction_pct", rb);
        report.addRun(label + ".baseline", f_base[s].artifacts);
        report.addRun(label + ".larger_tlb", f_big[s].artifacts);
        report.addRun(label + ".babelfish", f_fish[s].artifacts);
    }
    report.write();
    return 0;
}
