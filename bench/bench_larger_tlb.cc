/**
 * @file
 * Experiment E7 — paper §VII-C, "BabelFish vs Larger TLB": spend the
 * CCID + O-PC storage on a bigger conventional L2 TLB instead, and
 * compare.
 *
 * Paper reference points: the equal-area larger conventional TLB gains
 * only 2.1% mean latency (data serving), 0.6% (compute), 1.1% / 0.3%
 * (dense / sparse functions) — no match for BabelFish, which also
 * benefits from page-table effects and cross-process prefetching.
 */

#include "bench/common.hh"

#include "analysis/cacti_lite.hh"

using namespace bfbench;

namespace
{

core::SystemParams
largerTlbParams()
{
    core::SystemParams params = core::SystemParams::baseline();
    analysis::CactiLite cacti;
    const auto entries = cacti.equalAreaConventionalEntries();
    params.mmu.l2_4k.entries = static_cast<unsigned>(entries);
    params.mmu.l2_2m.entries = static_cast<unsigned>(entries);
    return params;
}

} // namespace

int
main()
{
    bf::detail::setVerbose(false);
    const RunConfig cfg = RunConfig::fromEnv();
    const core::SystemParams larger = largerTlbParams();

    std::printf("§VII-C — BabelFish vs an equal-area larger conventional "
                "L2 TLB (%u entries)\n", larger.mmu.l2_4k.entries);
    rule();
    std::printf("%-12s %12s %12s\n", "workload", "larger-TLB",
                "BabelFish");
    rule();

    double ds_l = 0, ds_b = 0;
    for (const auto &profile : workloads::AppProfile::dataServing()) {
        const auto base =
            runApp(profile, core::SystemParams::baseline(), cfg);
        const auto big = runApp(profile, larger, cfg);
        const auto fish =
            runApp(profile, core::SystemParams::babelfish(), cfg);
        const double rl = reduction(base.mean_latency, big.mean_latency);
        const double rb = reduction(base.mean_latency, fish.mean_latency);
        std::printf("%-12s %11.1f%% %11.1f%%   (mean latency)\n",
                    profile.name.c_str(), rl, rb);
        ds_l += rl;
        ds_b += rb;
    }
    std::printf("%-12s %11.1f%% %11.1f%%   (paper: 2.1%% vs 11%%)\n",
                "serving avg", ds_l / 3, ds_b / 3);
    rule();

    double c_l = 0, c_b = 0;
    for (const auto &profile : workloads::AppProfile::compute()) {
        const auto base =
            runApp(profile, core::SystemParams::baseline(), cfg);
        const auto big = runApp(profile, larger, cfg);
        const auto fish =
            runApp(profile, core::SystemParams::babelfish(), cfg);
        const double rl = reduction(1.0 / base.units_per_ms,
                                    1.0 / big.units_per_ms);
        const double rb = reduction(1.0 / base.units_per_ms,
                                    1.0 / fish.units_per_ms);
        std::printf("%-12s %11.1f%% %11.1f%%   (execution time)\n",
                    profile.name.c_str(), rl, rb);
        c_l += rl;
        c_b += rb;
    }
    std::printf("%-12s %11.1f%% %11.1f%%   (paper: 0.6%% vs 11%%)\n",
                "compute avg", c_l / 2, c_b / 2);
    rule();

    for (bool sparse : {false, true}) {
        const auto base =
            runFaas(core::SystemParams::baseline(), sparse, cfg);
        const auto big = runFaas(larger, sparse, cfg);
        const auto fish =
            runFaas(core::SystemParams::babelfish(), sparse, cfg);
        std::printf("%-12s %11.1f%% %11.1f%%   (paper: %s)\n",
                    sparse ? "fn-sparse" : "fn-dense",
                    reduction(base.trail_exec, big.trail_exec),
                    reduction(base.trail_exec, fish.trail_exec),
                    sparse ? "0.3%% vs 55%%" : "1.1%% vs 10%%");
    }
    return 0;
}
