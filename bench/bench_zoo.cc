/**
 * @file
 * Head-to-head ablation grid over the translation-backend zoo
 * (DESIGN.md §16): every backend — the BabelFish reference, the
 * Victima-style L2-data-array spill design and the coalesced
 * range-TLB design — runs the same workloads under the same harness,
 * so the paper's gains can be read against real competitor designs
 * instead of only against the non-sharing baseline.
 *
 * Two tiers, mirroring the repo's replay-first methodology:
 *
 *  1. Full simulation: backend x workload grid (3 x 3 by default:
 *     mongodb, arangodb, graphchi). The BabelFish row runs the paper
 *     configuration (SystemParams::babelfish()); the competitors run
 *     on the non-sharing baseline their designs assume. One run entry
 *     per cell, labeled "fullsim.<backend>.<workload>".
 *  2. Trace-driven replay: a self-recorded reference mongodb trace is
 *     replayed under backend x L2-geometry points (3 x 3 by default),
 *     labeled "replay.<backend>.l2-<entries>" — the cheap outer sweep
 *     that answers how each design scales with TLB reach. The replay
 *     competitor models are functional approximations (see
 *     replay/replay.hh); the reference point at the recording geometry
 *     is validated exactly and fails the bench on any divergence.
 *
 * Output: schema-v3 BENCH_zoo.json with one run per grid cell and
 * headline metrics grid_backends / grid_workloads / replay_points.
 *
 * Extra environment knobs (on top of bench/common.hh's):
 *   BF_ZOO_GRID=n  cap on replay sweep points (default 9).
 */

#include "bench/common.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/trace/trace.hh"
#include "replay/replay.hh"
#include "translate/kind.hh"

using namespace bfbench;

namespace
{

constexpr translate::BackendKind kBackends[] = {
    translate::BackendKind::BabelFish,
    translate::BackendKind::Victima,
    translate::BackendKind::Coalesced,
};

/** The system each backend is benchmarked on: the reference design
 *  runs the paper configuration, the competitors the non-sharing
 *  baseline their papers assume (no CCID tagging, no O-PC). */
core::SystemParams
systemFor(translate::BackendKind backend)
{
    core::SystemParams params =
        backend == translate::BackendKind::BabelFish
            ? core::SystemParams::babelfish()
            : core::SystemParams::baseline();
    params.mmu.backend = backend;
    return params;
}

/** One full-simulation grid cell. */
struct FullSimCell
{
    translate::BackendKind backend;
    workloads::AppProfile profile;
    std::string label;
    AppRunResult result;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main()
{
    bf::detail::setVerbose(false);
    RunConfig cfg = RunConfig::fromEnv();
    BenchReport report("zoo");
    reportConfig(report, cfg);

    unsigned replay_cap = 9;
    if (const char *grid = std::getenv("BF_ZOO_GRID"))
        replay_cap = static_cast<unsigned>(std::atoi(grid));
    report.config("zoo_grid", replay_cap);

    // ---- Tier 1: full-simulation backend x workload grid.
    const workloads::AppProfile profiles[] = {
        workloads::AppProfile::mongodb(),
        workloads::AppProfile::arangodb(),
        workloads::AppProfile::graphchi(),
    };

    std::vector<FullSimCell> cells;
    for (translate::BackendKind backend : kBackends)
        for (const workloads::AppProfile &profile : profiles) {
            FullSimCell cell;
            cell.backend = backend;
            cell.profile = profile;
            cell.label = std::string("fullsim.") +
                         translate::backendName(backend) + "." +
                         profile.name;
            cells.push_back(std::move(cell));
        }

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        jobs.push_back([&, i] {
            FullSimCell &cell = cells[i];
            // Per-cell backend override: the grid spans backends, so
            // the global BF_BACKEND knob is ignored here.
            RunConfig cell_cfg = cfg;
            cell_cfg.backend = cell.backend;
            cell_cfg.trace_dir.clear(); // traces only for the replay tier
            cell.result = runApp(cell.profile, systemFor(cell.backend),
                                 cell_cfg);
        });
    }
    runJobs(cfg, std::move(jobs));
    const double fullsim_seconds = secondsSince(t0);

    std::printf("translation-backend zoo — full-simulation grid\n");
    rule();
    std::printf("%-28s %10s %10s %10s %10s\n", "cell", "lat/req",
                "units/ms", "d-mpki", "i-mpki");
    rule();
    for (FullSimCell &cell : cells) {
        std::printf("%-28s %10.0f %10.1f %10.2f %10.2f\n",
                    cell.label.c_str(), cell.result.mean_latency,
                    cell.result.units_per_ms, cell.result.data_mpki,
                    cell.result.instr_mpki);
        report.addRun(cell.label, cell.result.artifacts);
    }
    rule();
    report.metric("grid_backends",
                  static_cast<double>(std::size(kBackends)));
    report.metric("grid_workloads",
                  static_cast<double>(std::size(profiles)));
    report.metric("fullsim_seconds", fullsim_seconds);

    // ---- Tier 2: replay sweep of backend x L2 geometry over one
    //      reference trace.
    //
    // Self-record a reference-backend mongodb run (replay needs the
    // cold-start fill history, so no warm-up restore), then fan the
    // swept points across BF_JOBS.
    RunConfig record_cfg = cfg;
    record_cfg.backend = translate::BackendKind::BabelFish;
    record_cfg.restore_dir.clear();
    if (record_cfg.trace_dir.empty())
        record_cfg.trace_dir = "bf-replay-traces";
    const AppRunResult recording_run =
        runApp(workloads::AppProfile::mongodb(),
               systemFor(translate::BackendKind::BabelFish), record_cfg);
    const std::string trace_path = recording_run.artifacts.trace_path;
    report.config("replay_trace", trace_path);

    try {
        trace::TraceReader file_reader(trace_path);
        const trace::TraceHeader header = file_reader.header();
        std::vector<std::vector<trace::Record>> blocks;
        {
            std::vector<trace::Record> block;
            while (file_reader.nextBlock(block))
                blocks.push_back(block);
        }
        const replay::ReplaySchedule schedule(header, std::move(blocks));

        // Fidelity gate: the reference backend at the recording
        // geometry must replay every counter exactly.
        const replay::ReplayParams recording =
            replay::paramsFromTrace(header.config);
        replay::ReplayEngine base(recording, header);
        base.run(schedule);
        const auto diffs = base.validate();
        report.metric("validated_mismatches",
                      static_cast<double>(diffs.size()));
        if (!diffs.empty()) {
            std::fprintf(stderr,
                         "zoo replay diverges at the recording config on "
                         "%zu counter(s); first: %s recorded=%llu "
                         "replayed=%llu\n",
                         diffs.size(), diffs[0].name.c_str(),
                         static_cast<unsigned long long>(diffs[0].recorded),
                         static_cast<unsigned long long>(diffs[0].replayed));
            report.write();
            return 1;
        }

        struct ReplayPoint
        {
            translate::BackendKind backend;
            unsigned l2_entries, l2_assoc;
            std::string label;
        };
        static const std::pair<unsigned, unsigned> l2_geom[] = {
            { 768, 6 }, { 1536, 12 }, { 3072, 24 },
        };
        std::vector<ReplayPoint> points;
        for (translate::BackendKind backend : kBackends)
            for (const auto &[l2e, l2a] : l2_geom) {
                if (points.size() >= replay_cap)
                    break;
                ReplayPoint p{ backend, l2e, l2a, "" };
                p.label = std::string("replay.") +
                          translate::backendName(backend) + ".l2-" +
                          std::to_string(l2e);
                points.push_back(std::move(p));
            }

        std::vector<std::unique_ptr<replay::ReplayEngine>> engines(
            points.size());
        const auto t1 = std::chrono::steady_clock::now();
        std::vector<std::function<void()>> replay_jobs;
        for (std::size_t i = 0; i < points.size(); ++i) {
            replay_jobs.push_back([&, i] {
                replay::ReplayParams params = recording;
                params.backend = points[i].backend;
                for (tlb::TlbParams *tp :
                     { &params.l2_4k, &params.l2_2m, &params.l2_1g }) {
                    tp->entries = points[i].l2_entries;
                    tp->assoc = points[i].l2_assoc;
                }
                auto engine = std::make_unique<replay::ReplayEngine>(
                    params, header);
                engine->run(schedule);
                engines[i] = std::move(engine);
            });
        }
        runJobs(cfg, std::move(replay_jobs));
        const double replay_seconds = secondsSince(t1);

        std::printf("replay sweep of %s\n", trace_path.c_str());
        rule();
        std::printf("%-28s %10s %10s %10s\n", "point", "l2-misses",
                    "walks", "lat/walk");
        rule();
        for (std::size_t i = 0; i < points.size(); ++i) {
            const auto total = engines[i]->replayedTotal();
            const std::uint64_t l2_misses =
                total.l2_data_misses + total.l2_instr_misses;
            const double lat =
                total.miss_latency_count
                    ? static_cast<double>(total.miss_latency_sum) /
                          total.miss_latency_count
                    : 0;
            std::printf("%-28s %10llu %10llu %10.1f\n",
                        points[i].label.c_str(),
                        static_cast<unsigned long long>(l2_misses),
                        static_cast<unsigned long long>(total.walks), lat);
            RunArtifacts artifacts;
            artifacts.stats_json = engines[i]->statsJson();
            artifacts.trace_path = trace_path;
            report.addRun(points[i].label, artifacts);
        }
        rule();
        report.metric("replay_points",
                      static_cast<double>(points.size()));
        report.metric("replay_seconds", replay_seconds);
        std::printf("%zu full-sim cells in %.2fs, %zu replay points in "
                    "%.2fs\n",
                    cells.size(), fullsim_seconds, points.size(),
                    replay_seconds);
        report.write();
        return 0;
    } catch (const trace::TraceError &err) {
        std::fprintf(stderr, "bench_zoo: %s: %s\n", trace_path.c_str(),
                     err.what());
        return 1;
    } catch (const replay::ReplayError &err) {
        std::fprintf(stderr, "bench_zoo: %s: %s\n", trace_path.c_str(),
                     err.what());
        return 1;
    }
}
