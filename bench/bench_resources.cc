/**
 * @file
 * Experiment E9 — paper §VII-D: BabelFish resource analysis.
 *
 * Software memory-space overheads, measured from the kernel structures
 * after a representative run:
 *  - one MaskPage (PC bitmasks + pid_list) per 512 pages of pte_ts:
 *    0.19% space overhead;
 *  - one 16-bit sharer counter per 512 pte_ts: 0.048%;
 *  - total 0.238%; without the PC bitmask design, 0.048%.
 *
 * Hardware overheads (CCID + O-PC fields in the L2 TLB) are reported by
 * bench_table3_cacti; the paper estimates +0.4% core area with the PC
 * bitmask and +0.07% without.
 */

#include "bench/common.hh"

using namespace bfbench;

int
main()
{
    bf::detail::setVerbose(false);
    RunConfig cfg = RunConfig::fromEnv();
    cfg.num_cores = std::min(cfg.num_cores, 4u);
    BenchReport report("resources");
    reportConfig(report, cfg);

    // Run a fault-heavy mixed workload so MaskPages actually appear.
    core::SystemParams params = core::SystemParams::babelfish();
    params.num_cores = cfg.num_cores;
    core::System sys(params);
    if (cfg.sampleInterval())
        sys.enableSampling(cfg.sampleInterval());

    auto profile = workloads::AppProfile::mongodb();
    const unsigned n = cfg.num_cores * cfg.containers_per_core;
    auto app = workloads::buildApp(sys.kernel(), profile, n, cfg.seed);
    auto threads = workloads::makeAppThreads(app, cfg.seed);
    for (unsigned i = 0; i < n; ++i)
        sys.addThread(i % cfg.num_cores, threads[i].get());
    sys.run(msToCycles(cfg.warm_ms + cfg.measure_ms));

    // Count mapped leaf translations and page-table pages.
    std::uint64_t pte_count = 0;
    std::uint64_t table_pages = 0;
    for (auto *proc : sys.kernel().processes()) {
        sys.kernel().forEachTranslation(
            *proc, [&](Addr, const vm::Entry &, PageSize) { ++pte_count; });
        table_pages += sys.kernel().countTablePages(*proc);
    }

    // MaskPage overhead: one 4 KB MaskPage per PMD table set, which
    // holds 512 pages of pte_ts (paper: 0.19%).
    const double mask_pct = 100.0 * 4096.0 / (512.0 * 4096.0);

    // Counter overhead: 16 bits per 512 pte_ts (each pte_t is 8 B).
    const double counter_pct = 100.0 * 2.0 / (512.0 * 8.0);

    std::printf("§VII-D — BabelFish resource analysis\n");
    rule();
    std::printf("run state: %llu leaf translations, %llu page-table "
                "pages across %u processes\n",
                static_cast<unsigned long long>(pte_count),
                static_cast<unsigned long long>(table_pages), n + 1);
    rule();
    std::printf("%-52s %8s %8s\n", "software structure", "model",
                "paper");
    std::printf("%-52s %7.3f%% %8s\n",
                "MaskPage per 512 pages of pte_ts (PC bitmasks+pids)",
                mask_pct, "0.190%");
    std::printf("%-52s %7.3f%% %8s\n",
                "16-bit sharer counter per 512 pte_ts", counter_pct,
                "0.048%");
    std::printf("%-52s %7.3f%% %8s\n", "total space overhead",
                mask_pct + counter_pct, "0.238%");
    std::printf("%-52s %7.3f%% %8s\n",
                "without PC bitmask (no-CoW-sharing design)", counter_pct,
                "0.048%");
    rule();
    std::printf("hardware (paper estimates): +0.4%% core area with the "
                "PC bitmask, +0.07%% without;\nsee bench_table3_cacti "
                "for the L2 TLB array costs.\n");
    report.metric("leaf_translations", static_cast<double>(pte_count));
    report.metric("table_pages", static_cast<double>(table_pages));
    report.metric("maskpage_overhead_pct", mask_pct);
    report.metric("counter_overhead_pct", counter_pct);
    report.metric("total_overhead_pct", mask_pct + counter_pct);
    report.addRun("mongodb.babelfish", captureArtifacts(sys));
    report.write();
    return 0;
}
