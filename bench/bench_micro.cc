/**
 * @file
 * Microbenchmarks (google-benchmark) of the simulator's hot components:
 * TLB lookups (conventional vs BabelFish), cache and DRAM accesses,
 * page walks, fault handling, fork, and the weave machinery (ladder
 * merge vs the sort it replaced, pooled vs fresh epoch-log buffers).
 * These quantify the cost of the BabelFish lookup logic in the model
 * and keep the simulator's own performance in check.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>

#include "bench/common.hh"
#include "common/object_pool.hh"
#include "core/epoch.hh"
#include "core/mmu.hh"
#include "mem/hierarchy.hh"
#include "tlb/page_walker.hh"
#include "tlb/tlb.hh"
#include "vm/kernel.hh"

using namespace bf;

namespace
{

/** Silence inform() chatter in benchmark output. */
const bool quiet = [] {
    bf::detail::setVerbose(false);
    return true;
}();

constexpr Addr kVa = 0x7f00'0000'0000ull;

std::unique_ptr<tlb::Tlb>
makeFilledTlb(unsigned entries)
{
    tlb::TlbParams params;
    params.entries = entries;
    params.assoc = 12;
    auto tlb_ptr = std::make_unique<tlb::Tlb>(params);
    tlb::Tlb &tlb = *tlb_ptr;
    for (Vpn vpn = 0; vpn < entries; ++vpn) {
        tlb::TlbEntry entry;
        entry.valid = true;
        entry.vpn = vpn;
        entry.ppn = vpn + 100;
        entry.pcid = 1 + (vpn % 3);
        entry.fill_pcid = entry.pcid;
        entry.ccid = 7;
        entry.orpc = (vpn % 7) == 0;
        entry.pc_bitmask = entry.orpc ? 0b10 : 0;
        tlb.fill(entry, true);
    }
    return tlb_ptr;
}

void
BM_TlbLookupConventional(benchmark::State &state)
{
    auto tlb = makeFilledTlb(1536);
    Vpn vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb->lookupConventional(vpn, 1));
        vpn = (vpn + 97) % 1536;
    }
}
BENCHMARK(BM_TlbLookupConventional);

void
BM_TlbLookupBabelFish(benchmark::State &state)
{
    auto tlb = makeFilledTlb(1536);
    Vpn vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb->lookupBabelFish(vpn, 7, 1, 0));
        vpn = (vpn + 97) % 1536;
    }
}
BENCHMARK(BM_TlbLookupBabelFish);

/**
 * AoS replica of the pre-SoA TLB set layout: the whole entry in one
 * struct, sets scanned way by way. Kept here as the "before" model so
 * the SoA win (BM_TlbLookupConventional walks the real split arrays)
 * stays measurable.
 */
struct AosTlb
{
    struct Entry
    {
        Vpn vpn = 0;
        Ppn ppn = 0;
        Pcid pcid = 0;
        Ccid ccid = 0;
        std::uint32_t pc_bitmask = 0;
        std::uint64_t lru = 0;
        bool valid = false;
        bool orpc = false;
    };

    unsigned sets, assoc;
    std::vector<Entry> entries;

    AosTlb(unsigned n, unsigned a)
        : sets(n / a), assoc(a), entries(n)
    {}

    const Entry *
    lookup(Vpn vpn, Pcid pcid)
    {
        Entry *base = &entries[(vpn % sets) * assoc];
        for (unsigned w = 0; w < assoc; ++w) {
            Entry &e = base[w];
            if (e.valid && e.vpn == vpn && e.pcid == pcid) {
                e.lru = ++tick;
                return &e;
            }
        }
        return nullptr;
    }

    std::uint64_t tick = 0;
};

void
fillAosTlb(AosTlb &tlb)
{
    for (Vpn vpn = 0; vpn < tlb.entries.size(); ++vpn) {
        AosTlb::Entry &e = tlb.entries[(vpn % tlb.sets) * tlb.assoc +
                                       (vpn / tlb.sets) % tlb.assoc];
        e.valid = true;
        e.vpn = vpn;
        e.ppn = vpn + 100;
        e.pcid = 1 + (vpn % 3);
    }
}

void
BM_TlbScanAoS(benchmark::State &state)
{
    // Single hot instance: the whole structure is cache-resident, so
    // this measures pure scan arithmetic (where AoS and SoA are close);
    // the Pressured pair below measures the layout's cache footprint,
    // which is what the SoA refactor bought end-to-end.
    AosTlb tlb(1536, 12);
    fillAosTlb(tlb);
    Vpn vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(vpn, 1 + (vpn % 3)));
        vpn = (vpn + 97) % 1536;
    }
}
BENCHMARK(BM_TlbScanAoS);

constexpr unsigned kPressureTlbs = 48; //!< ~8 cores x 6 structures.

void
BM_TlbScanAoSPressured(benchmark::State &state)
{
    // Round-robin over as many instances as a full 8-core system keeps
    // live, spilling the private caches: every AoS probe drags whole
    // entries (lru, ppn, bitmask) through them. How much that costs
    // depends on the host's cache sizes — the authoritative number for
    // the SoA refactor is the end-to-end A/B in EXPERIMENTS.md; this
    // pair isolates the layout for profiling.
    std::vector<std::unique_ptr<AosTlb>> tlbs;
    for (unsigned i = 0; i < kPressureTlbs; ++i) {
        tlbs.push_back(std::make_unique<AosTlb>(1536, 12));
        fillAosTlb(*tlbs.back());
    }
    Vpn vpn = 0;
    unsigned j = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlbs[j]->lookup(vpn, 1 + (vpn % 3)));
        vpn = (vpn + 97) % 1536;
        j = (j + 1) % kPressureTlbs;
    }
}
BENCHMARK(BM_TlbScanAoSPressured);

void
BM_TlbScanSoAPressured(benchmark::State &state)
{
    // The same pressure on the real SoA sets: the probe loop walks only
    // the packed tag lanes; the payload lanes are touched on hits only.
    std::vector<std::unique_ptr<tlb::Tlb>> tlbs;
    for (unsigned i = 0; i < kPressureTlbs; ++i)
        tlbs.push_back(makeFilledTlb(1536));
    Vpn vpn = 0;
    unsigned j = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tlbs[j]->lookupConventional(vpn, 1 + (vpn % 3)));
        vpn = (vpn + 97) % 1536;
        j = (j + 1) % kPressureTlbs;
    }
}
BENCHMARK(BM_TlbScanSoAPressured);

/**
 * MMU translate fixture for the L0 inline-cache microbenches: one warm
 * 4K-mapped region, faults pre-taken so the loop measures only the
 * TLB-hit path. @p no_l0 constructs the Mmu with BF_NO_L0 set, i.e.
 * the slow-path L1 probe sequence the L0 short-circuits.
 */
struct MmuFixture
{
    vm::Kernel kernel;
    mem::CacheHierarchy mem;
    std::unique_ptr<core::Mmu> mmu;
    vm::Process *proc;

    explicit MmuFixture(bool no_l0 = false)
        : kernel([] {
              auto p = core::SystemParams::babelfish().kernel;
              p.mem_frames = 1 << 22;
              return p;
          }()),
          mem(mem::HierarchyParams{}, 1)
    {
        if (no_l0)
            ::setenv("BF_NO_L0", "1", 1);
        auto p = core::SystemParams::babelfish();
        auto m = p.mmu;
        m.aslr = p.kernel.aslr;
        mmu = std::make_unique<core::Mmu>(0, m, mem, kernel);
        if (no_l0)
            ::unsetenv("BF_NO_L0");

        const Ccid g = kernel.createGroup("g", 1);
        proc = kernel.createProcess(g, "p");
        auto *file = kernel.createFile("f", 16 << 20);
        file->preload(kernel.frames());
        kernel.mmapObject(*proc, file, kVa, 16 << 20, 0, false, false,
                          false);
        for (Addr va = kVa; va < kVa + (16ull << 20); va += 4096)
            mmu->translate(*proc, va, AccessType::Read, 0);
    }
};

void
BM_MmuTranslateL0Hit(benchmark::State &state)
{
    MmuFixture fx;
    // A small strided working set: every access is an L0 hit after the
    // first lap (32 pages, distinct L0 slots).
    Addr va = kVa;
    Cycles now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fx.mmu->translate(*fx.proc, va, AccessType::Read, now += 10));
        va = kVa + ((va - kVa + 4096) & (32 * 4096 - 1));
    }
}
BENCHMARK(BM_MmuTranslateL0Hit);

void
BM_MmuTranslateL0Disabled(benchmark::State &state)
{
    MmuFixture fx(/*no_l0=*/true);
    // Identical access stream to BM_MmuTranslateL0Hit, answered by the
    // full L1 probe sequence — the delta is the L0's saving.
    Addr va = kVa;
    Cycles now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fx.mmu->translate(*fx.proc, va, AccessType::Read, now += 10));
        va = kVa + ((va - kVa + 4096) & (32 * 4096 - 1));
    }
}
BENCHMARK(BM_MmuTranslateL0Disabled);

void
BM_MmuTranslateL0Conflict(benchmark::State &state)
{
    MmuFixture fx;
    // Two pages 1 MiB apart alias the same direct-mapped L0 slot but
    // coexist in the 4-way L1 set: every access misses the L0 and
    // falls back to the L1 probe, measuring the miss-side overhead.
    const Addr a = kVa, b = kVa + 256 * 4096;
    bool flip = false;
    Cycles now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fx.mmu->translate(
            *fx.proc, flip ? a : b, AccessType::Read, now += 10));
        flip = !flip;
    }
}
BENCHMARK(BM_MmuTranslateL0Conflict);

void
BM_MmuApplyInvalidatePage(benchmark::State &state)
{
    MmuFixture fx;
    // Steady-state shootdown cost: one page invalidate against warm
    // structures (includes the L0 generation bump) plus the re-warming
    // translate that refills what the shootdown dropped.
    Cycles now = 0;
    for (auto _ : state) {
        fx.mmu->applyInvalidate({vm::TlbInvalidate::Kind::Page,
                                 fx.proc->ccid(), fx.proc->pcid(),
                                 kVa >> 12, 1, PageSize::Size4K});
        benchmark::DoNotOptimize(fx.mmu->translate(
            *fx.proc, kVa, AccessType::Read, now += 100));
    }
}
BENCHMARK(BM_MmuApplyInvalidatePage);

/** Heap-churn payload sized like a kernel PageTablePage. */
struct ChurnObj
{
    std::uint64_t words[72];

    explicit ChurnObj(std::uint64_t seed) { words[0] = seed; }
};

void
BM_ObjectPoolChurn(benchmark::State &state)
{
    ObjectPool<ChurnObj> pool;
    std::vector<ChurnObj *> live;
    live.reserve(64);
    std::uint64_t i = 0;
    for (auto _ : state) {
        live.push_back(pool.acquire(i++));
        if (live.size() == 64) {
            for (ChurnObj *obj : live)
                pool.release(obj);
            live.clear();
        }
    }
    for (ChurnObj *obj : live)
        pool.release(obj);
}
BENCHMARK(BM_ObjectPoolChurn);

void
BM_HeapChurn(benchmark::State &state)
{
    // The malloc/free baseline BM_ObjectPoolChurn replaces.
    std::vector<ChurnObj *> live;
    live.reserve(64);
    std::uint64_t i = 0;
    for (auto _ : state) {
        live.push_back(new ChurnObj(i++));
        if (live.size() == 64) {
            for (ChurnObj *obj : live)
                delete obj;
            live.clear();
        }
    }
    for (ChurnObj *obj : live)
        delete obj;
}
BENCHMARK(BM_HeapChurn);

/**
 * Per-core epoch logs shaped like one sync chunk of an 8-core run:
 * monotonic per-core timestamps with irregular strides, ~1/4 writes,
 * ~1/8 walker events, scattered paddrs. Shared fixture for the merge
 * and pooling microbenches.
 */
std::vector<std::unique_ptr<core::EpochLog>>
makeEpochLogs(unsigned cores, std::size_t events_per_core)
{
    std::vector<std::unique_ptr<core::EpochLog>> logs;
    std::uint64_t rng = 0x2545F4914F6CDD1Dull;
    for (unsigned c = 0; c < cores; ++c) {
        auto log = std::make_unique<core::EpochLog>();
        Cycles ts = 1000 + 37 * c;
        for (std::size_t i = 0; i < events_per_core; ++i) {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            ts += 1 + (rng % 40);
            const Addr paddr = (rng >> 8) % (1ull << 32) & ~Addr{63};
            const auto type = (rng & 3) == 0 ? AccessType::Write
                                             : AccessType::Read;
            log->appendAccess(ts, paddr, type, (rng & 7) == 0);
        }
        logs.push_back(std::move(log));
    }
    return logs;
}

constexpr unsigned kMergeCores = 8;
constexpr std::size_t kMergeEvents = 4096; //!< Per core, one chunk's worth.

void
BM_EpochMergeLadder(benchmark::State &state)
{
    const auto logs = makeEpochLogs(kMergeCores, kMergeEvents);
    core::WeaveStream out;
    for (auto _ : state) {
        out.clear();
        core::mergeEpochLogs(logs, out, true);
        benchmark::DoNotOptimize(out.ts.data());
    }
    state.SetItemsProcessed(state.iterations() * kMergeCores *
                            kMergeEvents);
}
BENCHMARK(BM_EpochMergeLadder);

void
BM_EpochMergeSort(benchmark::State &state)
{
    // The pre-ladder merge this PR replaced: gather every event into one
    // keyed array, std::sort by (ts, core, seq), then emit. Kept as the
    // "before" model so the ladder's win stays measurable.
    const auto logs = makeEpochLogs(kMergeCores, kMergeEvents);
    struct Key
    {
        Cycles ts;
        std::uint32_t core;
        std::uint32_t seq;
    };
    std::vector<Key> keys;
    core::WeaveStream out;
    for (auto _ : state) {
        keys.clear();
        for (unsigned c = 0; c < kMergeCores; ++c) {
            for (std::size_t i = 0; i < logs[c]->size(); ++i)
                keys.push_back({logs[c]->ts(i), c,
                                static_cast<std::uint32_t>(i)});
        }
        std::sort(keys.begin(), keys.end(),
                  [](const Key &a, const Key &b) {
                      if (a.ts != b.ts)
                          return a.ts < b.ts;
                      if (a.core != b.core)
                          return a.core < b.core;
                      return a.seq < b.seq;
                  });
        out.clear();
        for (const Key &k : keys) {
            const core::EpochLog &log = *logs[k.core];
            const std::uint8_t flags = log.flags(k.seq);
            if (flags & core::EpochLog::flagWrite) {
                out.probe_paddr.push_back(log.paddr(k.seq));
                out.probe_core.push_back(
                    static_cast<std::uint8_t>(k.core));
            }
            if (!(flags & core::EpochLog::flagProbe)) {
                out.ts.push_back(k.ts);
                out.paddr.push_back(log.paddr(k.seq));
                out.core.push_back(static_cast<std::uint8_t>(k.core));
                out.flags.push_back(flags);
            }
        }
        benchmark::DoNotOptimize(out.ts.data());
    }
    state.SetItemsProcessed(state.iterations() * kMergeCores *
                            kMergeEvents);
}
BENCHMARK(BM_EpochMergeSort);

void
BM_EpochLogPooled(benchmark::State &state)
{
    // Steady-state chunk loop: clearEvents() keeps the lane capacity, so
    // every append after the first lap is a pure store.
    core::EpochLog log;
    std::uint64_t i = 0;
    for (auto _ : state) {
        log.clearEvents();
        for (std::size_t e = 0; e < kMergeEvents; ++e) {
            log.appendAccess(1000 + e, (i + e) * 64,
                             (e & 3) == 0 ? AccessType::Write
                                          : AccessType::Read,
                             false);
        }
        benchmark::DoNotOptimize(log.size());
        ++i;
    }
    state.SetItemsProcessed(state.iterations() * kMergeEvents);
}
BENCHMARK(BM_EpochLogPooled);

void
BM_EpochLogFresh(benchmark::State &state)
{
    // The allocation-per-chunk baseline the pooling replaced: fresh lane
    // vectors every round, growing from empty.
    std::uint64_t i = 0;
    for (auto _ : state) {
        core::EpochLog log;
        for (std::size_t e = 0; e < kMergeEvents; ++e) {
            log.appendAccess(1000 + e, (i + e) * 64,
                             (e & 3) == 0 ? AccessType::Write
                                          : AccessType::Read,
                             false);
        }
        benchmark::DoNotOptimize(log.size());
        ++i;
    }
    state.SetItemsProcessed(state.iterations() * kMergeEvents);
}
BENCHMARK(BM_EpochLogFresh);

void
BM_CacheHierarchyAccess(benchmark::State &state)
{
    mem::CacheHierarchy hierarchy(mem::HierarchyParams{}, 1);
    Addr addr = 0;
    Cycles now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hierarchy.access(0, addr, AccessType::Read, now));
        addr = (addr + 64) % (16ull << 20);
        now += 10;
    }
}
BENCHMARK(BM_CacheHierarchyAccess);

void
BM_DramAccess(benchmark::State &state)
{
    mem::Dram dram(mem::DramParams{});
    Addr addr = 0;
    Cycles now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dram.access(addr, now, false));
        addr += 64;
        now += 100;
    }
}
BENCHMARK(BM_DramAccess);

struct WalkFixture
{
    vm::Kernel kernel;
    mem::CacheHierarchy mem;
    tlb::Pwc pwc;
    tlb::PageWalker walker;
    vm::Process *proc;

    WalkFixture()
        : kernel([] {
              vm::KernelParams p;
              p.mem_frames = 1 << 22;
              return p;
          }()),
          mem(mem::HierarchyParams{}, 1), pwc(tlb::PwcParams{}),
          walker(0, mem, kernel, pwc, true)
    {
        const Ccid g = kernel.createGroup("g", 1);
        proc = kernel.createProcess(g, "p");
        auto *file = kernel.createFile("f", 64 << 20);
        file->preload(kernel.frames());
        kernel.mmapObject(*proc, file, kVa, 64 << 20, 0, false, false,
                          false);
        for (Addr va = kVa; va < kVa + (64ull << 20); va += 4096)
            kernel.handleFault(*proc, va, AccessType::Read);
    }
};

void
BM_PageWalk(benchmark::State &state)
{
    WalkFixture fx;
    Addr va = kVa;
    Cycles now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fx.walker.walk(*fx.proc, va, AccessType::Read, now));
        va = kVa + ((va - kVa + 4096 * 513) % (64ull << 20));
        now += 100;
    }
}
BENCHMARK(BM_PageWalk);

void
BM_HandleFaultMinor(benchmark::State &state)
{
    vm::KernelParams params;
    params.mem_frames = 1 << 23;
    vm::Kernel kernel(params);
    const Ccid g = kernel.createGroup("g", 1);
    vm::Process *proc = kernel.createProcess(g, "p");
    auto *file = kernel.createFile("f", 2048ull << 20);
    file->preload(kernel.frames());
    kernel.mmapObject(*proc, file, kVa, 2048ull << 20, 0, false, false,
                      false);
    // Wraps around once the mapping is fully populated, so long runs mix
    // first-touch minor faults with the resolved fast path.
    const std::uint64_t pages = (2048ull << 20) / basePageBytes;
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernel.handleFault(
            *proc, kVa + (i++ % pages) * basePageBytes,
            AccessType::Read));
    }
}
BENCHMARK(BM_HandleFaultMinor);

void
BM_ForkWarmProcess(benchmark::State &state)
{
    vm::KernelParams params;
    params.mem_frames = 1 << 23;
    vm::Kernel kernel(params);
    const Ccid g = kernel.createGroup("g", 1);
    vm::Process *proc = kernel.createProcess(g, "p");
    auto *file = kernel.createFile("f", 32ull << 20);
    file->preload(kernel.frames());
    kernel.mmapObject(*proc, file, kVa, 32ull << 20, 0, false, true,
                      false);
    for (Addr va = kVa; va < kVa + (32ull << 20); va += 4096)
        kernel.handleFault(*proc, va, AccessType::Read);
    std::uint64_t i = 0;
    vm::Process *prev = nullptr;
    for (auto _ : state) {
        vm::Process *child = kernel.fork(*proc, "c" + std::to_string(i++));
        benchmark::DoNotOptimize(child);
        // Retire the previous child so the sharer counters and process
        // table stay bounded however many iterations the harness runs.
        if (prev)
            kernel.exitProcess(*prev);
        prev = child;
    }
    if (prev)
        kernel.exitProcess(*prev);
}
BENCHMARK(BM_ForkWarmProcess);

} // namespace

/**
 * Custom main: run the google-benchmark suite, then a short self-check
 * System so this binary also emits a BENCH_micro.json in the common
 * schema (timer results live in benchmark's own --benchmark_format
 * output, not here).
 */
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    bfbench::RunConfig cfg = bfbench::RunConfig::fromEnv();
    cfg.num_cores = 1;
    cfg.warm_ms = std::min(cfg.warm_ms, 1.0);
    cfg.measure_ms = std::min(cfg.measure_ms, 2.0);
    bfbench::BenchReport report("micro");
    bfbench::reportConfig(report, cfg);
    const auto r = bfbench::runApp(workloads::AppProfile::mongodb(),
                                   core::SystemParams::babelfish(), cfg);
    report.metric("selfcheck.mean_latency", r.mean_latency);
    report.metric("selfcheck.data_mpki", r.data_mpki);
    report.addRun("selfcheck.mongodb.babelfish", r.artifacts);
    report.write();
    return 0;
}
