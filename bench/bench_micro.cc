/**
 * @file
 * Microbenchmarks (google-benchmark) of the simulator's hot components:
 * TLB lookups (conventional vs BabelFish), cache and DRAM accesses,
 * page walks, fault handling, and fork. These quantify the cost of the
 * BabelFish lookup logic in the model and keep the simulator's own
 * performance in check.
 */

#include <benchmark/benchmark.h>

#include "bench/common.hh"
#include "core/mmu.hh"
#include "mem/hierarchy.hh"
#include "tlb/page_walker.hh"
#include "tlb/tlb.hh"
#include "vm/kernel.hh"

using namespace bf;

namespace
{

/** Silence inform() chatter in benchmark output. */
const bool quiet = [] {
    bf::detail::setVerbose(false);
    return true;
}();

constexpr Addr kVa = 0x7f00'0000'0000ull;

std::unique_ptr<tlb::Tlb>
makeFilledTlb(unsigned entries)
{
    tlb::TlbParams params;
    params.entries = entries;
    params.assoc = 12;
    auto tlb_ptr = std::make_unique<tlb::Tlb>(params);
    tlb::Tlb &tlb = *tlb_ptr;
    for (Vpn vpn = 0; vpn < entries; ++vpn) {
        tlb::TlbEntry entry;
        entry.valid = true;
        entry.vpn = vpn;
        entry.ppn = vpn + 100;
        entry.pcid = 1 + (vpn % 3);
        entry.fill_pcid = entry.pcid;
        entry.ccid = 7;
        entry.orpc = (vpn % 7) == 0;
        entry.pc_bitmask = entry.orpc ? 0b10 : 0;
        tlb.fill(entry, true);
    }
    return tlb_ptr;
}

void
BM_TlbLookupConventional(benchmark::State &state)
{
    auto tlb = makeFilledTlb(1536);
    Vpn vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb->lookupConventional(vpn, 1));
        vpn = (vpn + 97) % 1536;
    }
}
BENCHMARK(BM_TlbLookupConventional);

void
BM_TlbLookupBabelFish(benchmark::State &state)
{
    auto tlb = makeFilledTlb(1536);
    Vpn vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb->lookupBabelFish(vpn, 7, 1, 0));
        vpn = (vpn + 97) % 1536;
    }
}
BENCHMARK(BM_TlbLookupBabelFish);

void
BM_CacheHierarchyAccess(benchmark::State &state)
{
    mem::CacheHierarchy hierarchy(mem::HierarchyParams{}, 1);
    Addr addr = 0;
    Cycles now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hierarchy.access(0, addr, AccessType::Read, now));
        addr = (addr + 64) % (16ull << 20);
        now += 10;
    }
}
BENCHMARK(BM_CacheHierarchyAccess);

void
BM_DramAccess(benchmark::State &state)
{
    mem::Dram dram(mem::DramParams{});
    Addr addr = 0;
    Cycles now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dram.access(addr, now, false));
        addr += 64;
        now += 100;
    }
}
BENCHMARK(BM_DramAccess);

struct WalkFixture
{
    vm::Kernel kernel;
    mem::CacheHierarchy mem;
    tlb::Pwc pwc;
    tlb::PageWalker walker;
    vm::Process *proc;

    WalkFixture()
        : kernel([] {
              vm::KernelParams p;
              p.mem_frames = 1 << 22;
              return p;
          }()),
          mem(mem::HierarchyParams{}, 1), pwc(tlb::PwcParams{}),
          walker(0, mem, kernel, pwc, true)
    {
        const Ccid g = kernel.createGroup("g", 1);
        proc = kernel.createProcess(g, "p");
        auto *file = kernel.createFile("f", 64 << 20);
        file->preload(kernel.frames());
        kernel.mmapObject(*proc, file, kVa, 64 << 20, 0, false, false,
                          false);
        for (Addr va = kVa; va < kVa + (64ull << 20); va += 4096)
            kernel.handleFault(*proc, va, AccessType::Read);
    }
};

void
BM_PageWalk(benchmark::State &state)
{
    WalkFixture fx;
    Addr va = kVa;
    Cycles now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fx.walker.walk(*fx.proc, va, AccessType::Read, now));
        va = kVa + ((va - kVa + 4096 * 513) % (64ull << 20));
        now += 100;
    }
}
BENCHMARK(BM_PageWalk);

void
BM_HandleFaultMinor(benchmark::State &state)
{
    vm::KernelParams params;
    params.mem_frames = 1 << 23;
    vm::Kernel kernel(params);
    const Ccid g = kernel.createGroup("g", 1);
    vm::Process *proc = kernel.createProcess(g, "p");
    auto *file = kernel.createFile("f", 2048ull << 20);
    file->preload(kernel.frames());
    kernel.mmapObject(*proc, file, kVa, 2048ull << 20, 0, false, false,
                      false);
    // Wraps around once the mapping is fully populated, so long runs mix
    // first-touch minor faults with the resolved fast path.
    const std::uint64_t pages = (2048ull << 20) / basePageBytes;
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernel.handleFault(
            *proc, kVa + (i++ % pages) * basePageBytes,
            AccessType::Read));
    }
}
BENCHMARK(BM_HandleFaultMinor);

void
BM_ForkWarmProcess(benchmark::State &state)
{
    vm::KernelParams params;
    params.mem_frames = 1 << 23;
    vm::Kernel kernel(params);
    const Ccid g = kernel.createGroup("g", 1);
    vm::Process *proc = kernel.createProcess(g, "p");
    auto *file = kernel.createFile("f", 32ull << 20);
    file->preload(kernel.frames());
    kernel.mmapObject(*proc, file, kVa, 32ull << 20, 0, false, true,
                      false);
    for (Addr va = kVa; va < kVa + (32ull << 20); va += 4096)
        kernel.handleFault(*proc, va, AccessType::Read);
    std::uint64_t i = 0;
    vm::Process *prev = nullptr;
    for (auto _ : state) {
        vm::Process *child = kernel.fork(*proc, "c" + std::to_string(i++));
        benchmark::DoNotOptimize(child);
        // Retire the previous child so the sharer counters and process
        // table stay bounded however many iterations the harness runs.
        if (prev)
            kernel.exitProcess(*prev);
        prev = child;
    }
    if (prev)
        kernel.exitProcess(*prev);
}
BENCHMARK(BM_ForkWarmProcess);

} // namespace

/**
 * Custom main: run the google-benchmark suite, then a short self-check
 * System so this binary also emits a BENCH_micro.json in the common
 * schema (timer results live in benchmark's own --benchmark_format
 * output, not here).
 */
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    bfbench::RunConfig cfg = bfbench::RunConfig::fromEnv();
    cfg.num_cores = 1;
    cfg.warm_ms = std::min(cfg.warm_ms, 1.0);
    cfg.measure_ms = std::min(cfg.measure_ms, 2.0);
    bfbench::BenchReport report("micro");
    bfbench::reportConfig(report, cfg);
    const auto r = bfbench::runApp(workloads::AppProfile::mongodb(),
                                   core::SystemParams::babelfish(), cfg);
    report.metric("selfcheck.mean_latency", r.mean_latency);
    report.metric("selfcheck.data_mpki", r.data_mpki);
    report.addRun("selfcheck.mongodb.babelfish", r.artifacts);
    report.write();
    return 0;
}
