/**
 * @file
 * Docker-image model.
 *
 * A container image contributes four kinds of file-backed mappings, all
 * of which create cross-container translation replication in the
 * baseline (paper §II-C): the container runtime + base-layer libraries
 * (shared by every container on the host), the application middleware,
 * the application binary, and writable configuration (mapped private, so
 * written pages CoW).
 */

#ifndef BF_WORKLOADS_IMAGE_HH
#define BF_WORKLOADS_IMAGE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "vm/aslr.hh"
#include "vm/kernel.hh"
#include "vm/object.hh"

namespace bf::workloads
{

/** Sizes of the image layers. */
struct ImageParams
{
    std::uint64_t runtime_lib_bytes = 24ull << 20; //!< libc, runtime, ld.
    std::uint64_t middleware_bytes = 16ull << 20;  //!< app libraries.
    std::uint64_t binary_bytes = 6ull << 20;       //!< app executable.
    std::uint64_t config_bytes = 2ull << 20;       //!< writable config.
};

/** One container image: the file objects plus their canonical layout. */
class ContainerImage
{
  public:
    /**
     * Create the image's file objects in the page cache.
     * @param warm preload the pages (image layers already pulled).
     */
    ContainerImage(vm::Kernel &kernel, const std::string &name,
                   const ImageParams &params, bool warm = true)
        : params_(params)
    {
        runtime_libs_ =
            kernel.createFile(name + ":runtime", params.runtime_lib_bytes);
        middleware_ =
            kernel.createFile(name + ":middleware",
                              params.middleware_bytes);
        binary_ = kernel.createFile(name + ":binary", params.binary_bytes);
        config_ = kernel.createFile(name + ":config", params.config_bytes);
        if (warm) {
            runtime_libs_->preload(kernel.frames());
            middleware_->preload(kernel.frames());
            binary_->preload(kernel.frames());
            config_->preload(kernel.frames());
        }
    }

    /**
     * Map the image into a process at its canonical addresses: binary in
     * the Code segment, libraries in the Mmap segment, config privately
     * writable in the Data segment.
     */
    void
    mapInto(vm::Kernel &kernel, vm::Process &proc) const
    {
        kernel.mmapObject(proc, binary_, binaryBase(),
                          params_.binary_bytes, 0,
                          /*writable=*/false, /*exec=*/true,
                          /*shared=*/false);
        kernel.mmapObject(proc, runtime_libs_, runtimeLibBase(),
                          params_.runtime_lib_bytes, 0, false, true,
                          false);
        kernel.mmapObject(proc, middleware_, middlewareBase(),
                          params_.middleware_bytes, 0, false, true, false);
        kernel.mmapObject(proc, config_, configBase(),
                          params_.config_bytes, 0, /*writable=*/true,
                          /*exec=*/false, /*shared=*/false);
    }

    /** @{ @name Canonical layout */
    Addr binaryBase() const { return vm::segmentBase(vm::Segment::Code); }
    Addr runtimeLibBase() const
    {
        return vm::segmentBase(vm::Segment::Mmap);
    }
    Addr middlewareBase() const
    {
        return vm::segmentBase(vm::Segment::Mmap) + (1ull << 32);
    }
    Addr configBase() const { return vm::segmentBase(vm::Segment::Data); }
    /** @} */

    vm::MappedObject *runtimeLibs() const { return runtime_libs_; }
    vm::MappedObject *middleware() const { return middleware_; }
    vm::MappedObject *binary() const { return binary_; }
    vm::MappedObject *config() const { return config_; }
    const ImageParams &params() const { return params_; }

  private:
    ImageParams params_;
    vm::MappedObject *runtime_libs_;
    vm::MappedObject *middleware_;
    vm::MappedObject *binary_;
    vm::MappedObject *config_;
};

} // namespace bf::workloads

#endif // BF_WORKLOADS_IMAGE_HH
