#include "workloads/trace.hh"

#include <sstream>

namespace bf::workloads
{

std::vector<core::MemRef>
parseTrace(std::istream &input)
{
    std::vector<core::MemRef> trace;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(input, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string kind;
        if (!(fields >> kind))
            continue; // blank / comment-only line

        core::MemRef ref;
        if (kind == "R" || kind == "r") {
            ref.type = AccessType::Read;
        } else if (kind == "W" || kind == "w") {
            ref.type = AccessType::Write;
        } else if (kind == "I" || kind == "i") {
            ref.type = AccessType::Ifetch;
        } else {
            bf_fatal("trace line ", line_no, ": unknown access kind '",
                     kind, "'");
        }

        std::string va_text;
        if (!(fields >> va_text))
            bf_fatal("trace line ", line_no, ": missing address");
        ref.va = std::stoull(va_text, nullptr, 0); // 0x... or decimal

        std::uint64_t instrs = 1;
        if (fields >> instrs) {
            if (instrs == 0 || instrs > 0xffffffffull)
                bf_fatal("trace line ", line_no, ": bad instr count");
        }
        ref.instrs = static_cast<std::uint32_t>(instrs);
        trace.push_back(ref);
    }
    return trace;
}

} // namespace bf::workloads
