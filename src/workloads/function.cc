#include "workloads/function.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace bf::workloads
{

FunctionProfile
FunctionProfile::parse()
{
    FunctionProfile p;
    p.name = "parse";
    p.input_bytes = 28ull << 20; // tokenizes a large input string
    p.instrs_per_ref = 170;
    p.write_fraction = 0.12;
    return p;
}

FunctionProfile
FunctionProfile::hash()
{
    FunctionProfile p;
    p.name = "hash";
    p.input_bytes = 24ull << 20; // djb2 over the input
    p.instrs_per_ref = 140;
    p.write_fraction = 0.05;
    return p;
}

FunctionProfile
FunctionProfile::marshal()
{
    FunctionProfile p;
    p.name = "marshal";
    p.input_bytes = 20ull << 20; // string -> integer transformation
    p.instrs_per_ref = 200;
    p.write_fraction = 0.18;
    return p;
}

std::vector<FunctionProfile>
FunctionProfile::all()
{
    return {parse(), hash(), marshal()};
}

Addr
functionCodeBase()
{
    return vm::segmentBase(vm::Segment::Code) + (1ull << 30) / 2;
}

Addr
functionInputBase()
{
    return vm::segmentBase(vm::Segment::Shm);
}

Addr
functionScratchBase()
{
    return vm::segmentBase(vm::Segment::Heap);
}

FaasGroup
buildFaasGroup(vm::Kernel &kernel,
               const std::vector<FunctionProfile> &profiles,
               std::uint64_t seed)
{
    FaasGroup group;
    group.profiles = profiles;
    group.ccid = kernel.createGroup("faas", seed);

    // The GCC base image from Docker Hub: a sizable shared runtime.
    ImageParams image_params;
    image_params.runtime_lib_bytes = 36ull << 20;
    image_params.middleware_bytes = 18ull << 20; // OpenFaaS watchdog etc.
    image_params.binary_bytes = 4ull << 20;
    image_params.config_bytes = 2ull << 20;
    group.image = std::make_unique<ContainerImage>(kernel, "gcc-image",
                                                   image_params);

    group.runtime = kernel.createProcess(group.ccid, "faas:runtime");
    group.image->mapInto(kernel, *group.runtime);
    prefault(kernel, *group.runtime, group.image->runtimeLibBase(),
             image_params.runtime_lib_bytes, AccessType::Read);
    prefault(kernel, *group.runtime, group.image->binaryBase(),
             image_params.binary_bytes, AccessType::Ifetch);

    // The functions operate on one event payload: the input pages
    // partially overlap across the three containers (paper §VI), which
    // is what lets BabelFish eliminate the later functions' input
    // faults. One shared input file, mapped by every function.
    std::uint64_t max_input = 0;
    for (const auto &profile : profiles)
        max_input = std::max(max_input, profile.input_bytes);
    vm::MappedObject *input = kernel.createFile("faas:input", max_input);
    input->preload(kernel.frames());

    for (const auto &profile : profiles) {
        Cycles work = 0;
        vm::Process *proc =
            kernel.fork(*group.runtime, "fn:" + profile.name, work);
        group.bringup_work += work;

        vm::MappedObject *code =
            kernel.createFile(profile.name + ":code", profile.code_bytes);
        code->preload(kernel.frames());

        kernel.mmapObject(*proc, code, functionCodeBase(),
                          profile.code_bytes, 0, /*writable=*/false,
                          /*exec=*/true, /*shared=*/false);
        kernel.mmapObject(*proc, input, functionInputBase(),
                          profile.input_bytes, 0, /*writable=*/false,
                          /*exec=*/false, /*shared=*/false);
        kernel.mmapAnon(*proc, functionScratchBase(),
                        profile.scratch_bytes, /*writable=*/true,
                        /*allow_huge=*/false);
        group.containers.push_back(proc);
        group.inputs.push_back(input);
    }
    return group;
}

FunctionThread::FunctionThread(const FunctionProfile &profile,
                               vm::Process *proc, bool sparse,
                               std::uint64_t seed)
    : QueueThread("fn:" + profile.name, proc, seed), profile_(profile),
      sparse_(sparse)
{}

void
FunctionThread::refillBringup()
{
    // Container bring-up, in the order the paper describes (§III-A,
    // "Rationale for Supporting CoW Sharing"): the container first CoWs
    // a few config/GOT pages, then reads many more pages of the same
    // region read-only, then loads the shared libraries. Selective CoW
    // sharing keeps the read-only majority fused even after the writes;
    // the no-PC-bitmask design unshares the whole PMD table set on the
    // first write and replicates every later fault.
    const Addr lib_base = vm::segmentBase(vm::Segment::Mmap);
    const Addr config_base = vm::segmentBase(vm::Segment::Data);
    // 2 reads per write, spread across the whole bring-up so the
    // containers' config reads and writes overlap in time.
    const std::uint64_t config_ops = profile_.bringup_cow_pages * 3;

    for (unsigned burst = 0; burst < 32; ++burst) {
        const bool libs_left =
            bringup_cursor_ < profile_.bringup_read_bytes;
        const bool config_left =
            config_read_done_ + cow_done_ < config_ops;
        // One config op per 4 bursts while libraries load; any
        // remainder drains afterwards.
        const bool config_due =
            config_left && (!libs_left || burst % 4 == 0);
        if (config_due) {
            const std::uint64_t k = config_read_done_ + cow_done_;
            core::MemRef ref;
            ref.va = config_base + k * basePageBytes;
            // The container parses its configuration read-only first and
            // CoWs (relocations, rewritten settings) at the end — so at
            // any point some containers share pages read-only while
            // earlier ones hold private copies (paper §III-A).
            if (k >= config_ops - profile_.bringup_cow_pages) {
                ref.type = AccessType::Write;
                ref.instrs = 120;
                ++cow_done_;
            } else {
                ref.type = AccessType::Read;
                ref.instrs = 80;
                ++config_read_done_;
            }
            push(ref);
        } else if (libs_left) {
            core::MemRef code;
            code.va = vm::segmentBase(vm::Segment::Code) +
                      rng().below(64) * basePageBytes;
            code.type = AccessType::Ifetch;
            code.instrs = 60;
            push(code);

            core::MemRef ref;
            ref.va = lib_base + bringup_cursor_;
            ref.type = AccessType::Read;
            ref.instrs = 60;
            push(ref);
            bringup_cursor_ += basePageBytes / 2;
        } else {
            // Bring-up complete.
            core::MemRef ref;
            ref.va = functionCodeBase();
            ref.type = AccessType::Ifetch;
            ref.instrs = 50;
            ref.request_end = true; // phase boundary marker
            push(ref);
            return;
        }
    }
}

void
FunctionThread::refillExec()
{
    // Stream over the input. Dense touches every line of a page before
    // advancing; sparse touches ~10% of a page then moves on.
    const unsigned lines = sparse_ ? 6 : 64;
    if (input_cursor_ >= profile_.input_bytes) {
        core::MemRef ref;
        ref.va = functionScratchBase();
        ref.type = AccessType::Write;
        ref.instrs = 50;
        ref.request_end = true; // function returns
        push(ref);
        return;
    }

    const Addr page_va =
        functionInputBase() + (input_cursor_ & ~(basePageBytes - 1));
    for (unsigned i = 0; i < lines; ++i) {
        core::MemRef code;
        code.va = functionCodeBase() + rng().below(24) * basePageBytes +
                  rng().below(64) * 64;
        code.type = AccessType::Ifetch;
        code.instrs = profile_.instrs_per_ref;
        push(code);

        core::MemRef ref;
        ref.va = page_va + (i * 64) % basePageBytes;
        ref.type = AccessType::Read;
        ref.instrs = profile_.instrs_per_ref;
        push(ref);

        if (rng().chance(profile_.write_fraction)) {
            core::MemRef w;
            w.va = functionScratchBase() +
                   rng().below(profile_.scratch_bytes / basePageBytes) *
                       basePageBytes;
            w.type = AccessType::Write;
            w.instrs = profile_.instrs_per_ref / 2;
            push(w);
        }
    }
    input_cursor_ += basePageBytes;
}

void
FunctionThread::refill()
{
    switch (phase_) {
      case Phase::BringUp:
        refillBringup();
        break;
      case Phase::Exec:
        refillExec();
        break;
      case Phase::Done:
        break;
    }
}

void
FunctionThread::completed(const core::MemRef &ref, Cycles now)
{
    if (!started_) {
        started_ = true;
        start_ = now;
    }
    if (!ref.request_end)
        return;
    if (phase_ == Phase::BringUp) {
        bringup_end_ = now;
        phase_ = Phase::Exec;
    } else if (phase_ == Phase::Exec) {
        exec_end_ = now;
        phase_ = Phase::Done;
    }
}

void
FunctionThread::saveState(snap::ArchiveWriter &ar) const
{
    QueueThread::saveState(ar);
    ar.u8(static_cast<std::uint8_t>(phase_));
    ar.u64(bringup_cursor_);
    ar.u32(cow_done_);
    ar.u64(config_read_done_);
    ar.u64(input_cursor_);
    ar.b(started_);
    ar.u64(start_);
    ar.u64(bringup_end_);
    ar.u64(exec_end_);
}

void
FunctionThread::restoreState(snap::ArchiveReader &ar)
{
    QueueThread::restoreState(ar);
    phase_ = static_cast<Phase>(ar.u8());
    bringup_cursor_ = ar.u64();
    cow_done_ = ar.u32();
    config_read_done_ = ar.u64();
    input_cursor_ = ar.u64();
    started_ = ar.b();
    start_ = ar.u64();
    bringup_end_ = ar.u64();
    exec_end_ = ar.u64();
}

} // namespace bf::workloads
