/**
 * @file
 * Function-as-a-Service workloads (paper §VI): the three containerized
 * C/C++ functions — Parse, Hash (djb2), Marshal — built on an
 * OpenFaaS-style GCC base image. Functions are short-lived: they bring
 * up (touch shared image pages, CoW a few), then stream over an input
 * dataset with a dense or sparse pattern:
 *
 *  - dense: access all the data in a page before moving to the next;
 *  - sparse: access about 10% of a page before moving on.
 */

#ifndef BF_WORKLOADS_FUNCTION_HH
#define BF_WORKLOADS_FUNCTION_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/thread.hh"
#include "vm/kernel.hh"
#include "workloads/apps.hh"
#include "workloads/image.hh"

namespace bf::workloads
{

/** One FaaS function's shape. */
struct FunctionProfile
{
    std::string name;
    std::uint64_t code_bytes = 1ull << 20;   //!< Function + wrapper code.
    std::uint64_t input_bytes = 24ull << 20; //!< Input dataset (mmap'ed).
    std::uint64_t scratch_bytes = 2ull << 20;
    std::uint32_t instrs_per_ref = 180;
    double write_fraction = 0.1;  //!< Scratch writes during execution.

    /** @{ @name Bring-up shape (docker start + runtime init) */
    std::uint64_t bringup_read_bytes = 10ull << 20; //!< Infra touched.
    unsigned bringup_cow_pages = 96;                //!< Config/GOT writes.
    /** @} */

    static FunctionProfile parse();
    static FunctionProfile hash();
    static FunctionProfile marshal();
    static std::vector<FunctionProfile> all();
};

/** A group of functions sharing one CCID and one base image. */
struct FaasGroup
{
    Ccid ccid = invalidCcid;
    std::unique_ptr<ContainerImage> image; //!< GCC base image.
    vm::Process *runtime = nullptr;
    std::vector<vm::Process *> containers; //!< One per function.
    std::vector<FunctionProfile> profiles;
    std::vector<vm::MappedObject *> inputs;
    Cycles bringup_work = 0; //!< Kernel fork work per container, summed.
};

/**
 * Build a FaaS group: the base image, the runtime, one forked container
 * per function with its code and input mapped.
 */
FaasGroup buildFaasGroup(vm::Kernel &kernel,
                         const std::vector<FunctionProfile> &profiles,
                         std::uint64_t seed);

/** One function invocation running in a container. */
class FunctionThread : public QueueThread
{
  public:
    /**
     * @param sparse use the sparse access pattern (~10% of each page).
     */
    FunctionThread(const FunctionProfile &profile, vm::Process *proc,
                   bool sparse, std::uint64_t seed);

    bool finished() const override { return phase_ == Phase::Done; }
    void completed(const core::MemRef &ref, Cycles now) override;

    void saveState(snap::ArchiveWriter &ar) const override;
    void restoreState(snap::ArchiveReader &ar) override;

    /** @{ @name Measurements (cycles) */
    Cycles bringupCycles() const { return bringup_end_ - start_; }
    Cycles execCycles() const { return exec_end_ - bringup_end_; }
    Cycles totalCycles() const { return exec_end_ - start_; }
    bool started() const { return started_; }
    /** @} */

  private:
    enum class Phase : std::uint8_t { BringUp, Exec, Done };

    const FunctionProfile &profile_;
    bool sparse_;
    Phase phase_ = Phase::BringUp;
    std::uint64_t bringup_cursor_ = 0;
    unsigned cow_done_ = 0;
    std::uint64_t config_read_done_ = 0;
    std::uint64_t input_cursor_ = 0; //!< Byte offset into the input.
    bool started_ = false;
    Cycles start_ = 0;
    Cycles bringup_end_ = 0;
    Cycles exec_end_ = 0;

    void refill() override;
    void refillBringup();
    void refillExec();
};

/** Canonical layout of per-function mappings. */
Addr functionCodeBase();
Addr functionInputBase();
Addr functionScratchBase();

} // namespace bf::workloads

#endif // BF_WORKLOADS_FUNCTION_HH
