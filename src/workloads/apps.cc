#include "workloads/apps.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace
{

void
saveRngState(bf::snap::ArchiveWriter &ar, const bf::Rng &rng)
{
    std::uint64_t state[4];
    rng.getState(state);
    for (const std::uint64_t word : state)
        ar.u64(word);
}

void
restoreRngState(bf::snap::ArchiveReader &ar, bf::Rng &rng)
{
    std::uint64_t state[4];
    for (std::uint64_t &word : state)
        word = ar.u64();
    rng.setState(state);
}

} // namespace

namespace bf::workloads
{

AppProfile
AppProfile::mongodb()
{
    AppProfile p;
    p.name = "mongodb";
    // Memory-mapped storage engine: most data refs land in the shared
    // mmap'ed dataset; THP disabled per the server's startup warning.
    p.dataset_bytes = 192ull << 20;
    p.dataset_shared_mapping = true;
    p.dataset_writable = true;
    p.private_buffer_bytes = 28ull << 20;
    p.thp_friendly = false;
    p.hot_code_pages = 300;
    p.code_ref_fraction = 0.32;
    p.shared_data_fraction = 0.80;
    p.pages_per_record = 2;
    p.hot_records = 480;
    p.hot_theta = 0.4;
    p.cold_fraction = 0.07;
    p.hot_buffer_pages = 160;
    p.instrs_per_ref = 210;
    p.scan_fraction = 0.065;
    p.scan_pages = 14;
    p.refs_per_request = 26;
    return p;
}

AppProfile
AppProfile::arangodb()
{
    AppProfile p;
    p.name = "arangodb";
    // RocksDB storage engine: SST files are read-only mappings, but a
    // large private block cache absorbs many accesses.
    p.dataset_bytes = 128ull << 20;
    p.dataset_shared_mapping = false;
    p.dataset_writable = false;
    p.private_buffer_bytes = 72ull << 20;
    p.thp_friendly = false;
    p.hot_code_pages = 340;
    p.code_ref_fraction = 0.30;
    p.shared_data_fraction = 0.45;
    p.pages_per_record = 2;
    p.hot_records = 420;
    p.hot_theta = 0.4;
    p.cold_fraction = 0.08;
    p.hot_buffer_pages = 240;
    p.instrs_per_ref = 230;
    p.scan_fraction = 0.09;
    p.scan_pages = 16;
    p.refs_per_request = 30;
    return p;
}

AppProfile
AppProfile::httpd()
{
    AppProfile p;
    p.name = "httpd";
    // Streaming static content: small working set per request, strong
    // code locality, modest private buffering.
    p.dataset_bytes = 96ull << 20;
    p.dataset_shared_mapping = false;
    p.dataset_writable = false;
    p.private_buffer_bytes = 10ull << 20;
    p.thp_friendly = true;
    p.buffer_thp_fraction = 0.5;
    p.hot_code_pages = 190;
    p.code_ref_fraction = 0.38;
    p.shared_data_fraction = 0.62;
    p.pages_per_record = 3;
    p.hot_records = 250;
    p.hot_theta = 0.4;
    p.cold_fraction = 0.04;
    p.hot_buffer_pages = 120;
    p.instrs_per_ref = 190;
    p.scan_fraction = 0.035;
    p.scan_pages = 10;
    p.refs_per_request = 18;
    return p;
}

AppProfile
AppProfile::graphchi()
{
    AppProfile p;
    p.name = "graphchi";
    // PageRank over a shared graph: regular code, random low-locality
    // vertex accesses, heavy private edge buffering.
    p.request_based = false;
    p.dataset_bytes = 96ull << 20;
    p.dataset_shared_mapping = false;
    p.dataset_writable = false;
    p.private_buffer_bytes = 128ull << 20;
    p.thp_friendly = true;
    p.buffer_thp_fraction = 0.2;
    p.hot_code_pages = 110;
    p.code_ref_fraction = 0.30;
    p.shared_data_fraction = 0.25;
    p.uniform_dataset = true;
    p.instrs_per_ref = 260;
    p.refs_per_request = 64; //!< refs per work unit.
    return p;
}

AppProfile
AppProfile::fio()
{
    AppProfile p;
    p.name = "fio";
    // In-memory I/O benchmark: regular streaming over a shared random
    // dataset, small private state.
    p.request_based = false;
    p.dataset_bytes = 192ull << 20;
    p.dataset_shared_mapping = true;
    p.dataset_writable = true;
    p.private_buffer_bytes = 14ull << 20;
    p.thp_friendly = true;
    p.buffer_thp_fraction = 0.3;
    p.hot_code_pages = 70;
    p.code_ref_fraction = 0.24;
    p.shared_data_fraction = 0.85;
    p.sequential_dataset = true;
    p.instrs_per_ref = 230;
    p.refs_per_request = 64;
    return p;
}

std::vector<AppProfile>
AppProfile::dataServing()
{
    return {arangodb(), mongodb(), httpd()};
}

std::vector<AppProfile>
AppProfile::compute()
{
    return {graphchi(), fio()};
}

void
prefault(vm::Kernel &kernel, vm::Process &proc, Addr start,
         std::uint64_t bytes, AccessType type)
{
    for (Addr va = start; va < start + bytes; va += basePageBytes) {
        const auto outcome = kernel.handleFault(proc, va, type);
        bf_assert(outcome.kind != vm::FaultKind::Protection,
                  "prefault protection at ", va);
    }
}

AppInstance
buildApp(vm::Kernel &kernel, const AppProfile &profile,
         unsigned num_containers, std::uint64_t seed)
{
    AppInstance inst;
    inst.profile = profile;
    inst.ccid = kernel.createGroup(profile.name, seed);
    inst.image = std::make_unique<ContainerImage>(kernel, profile.name,
                                                  profile.image);
    inst.dataset =
        kernel.createFile(profile.name + ":dataset", profile.dataset_bytes);
    inst.dataset->preload(kernel.frames());

    // The container runtime maps the image and warms its own hot
    // infrastructure (libraries are resident before any fork).
    inst.runtime = kernel.createProcess(inst.ccid,
                                        profile.name + ":runtime");
    inst.image->mapInto(kernel, *inst.runtime);
    prefault(kernel, *inst.runtime, inst.image->runtimeLibBase(),
             profile.image.runtime_lib_bytes, AccessType::Read);
    prefault(kernel, *inst.runtime, inst.image->binaryBase(),
             profile.image.binary_bytes, AccessType::Ifetch);

    for (unsigned c = 0; c < num_containers; ++c) {
        Cycles work = 0;
        vm::Process *proc = kernel.fork(
            *inst.runtime, profile.name + ":c" + std::to_string(c), work);
        inst.bringup_work += work;

        // The container maps the application dataset at the canonical
        // shared address, and its own private buffers.
        kernel.mmapObject(*proc, inst.dataset, AppInstance::datasetBase(),
                          profile.dataset_bytes, 0,
                          profile.dataset_writable, /*exec=*/false,
                          profile.dataset_shared_mapping);
        const std::uint64_t huge_step = 2ull << 20;
        std::uint64_t huge_bytes = 0;
        if (profile.thp_friendly && profile.buffer_thp_fraction > 0) {
            huge_bytes = static_cast<std::uint64_t>(
                             profile.private_buffer_bytes *
                             profile.buffer_thp_fraction) /
                         huge_step * huge_step;
        }
        if (huge_bytes > 0) {
            kernel.mmapAnon(*proc, AppInstance::bufferBase(), huge_bytes,
                            /*writable=*/true, /*allow_huge=*/true);
        }
        if (profile.private_buffer_bytes > huge_bytes) {
            kernel.mmapAnon(*proc, AppInstance::bufferBase() + huge_bytes,
                            profile.private_buffer_bytes - huge_bytes,
                            /*writable=*/true, /*allow_huge=*/false);
        }
        if (profile.request_based) {
            // Allocator arenas are written during container start-up:
            // this private state is what makes translations
            // unshareable (paper Fig. 9's unshareable segments).
            prefault(kernel, *proc, AppInstance::bufferBase(),
                     profile.private_buffer_bytes, AccessType::Write);
        }
        if (!profile.request_based) {
            // Long-running compute reaches steady state well before the
            // measurement window (§VI warms for a minute): bring every
            // page in up front.
            prefault(kernel, *proc, AppInstance::datasetBase(),
                     profile.dataset_bytes, AccessType::Read);
            prefault(kernel, *proc, AppInstance::bufferBase(),
                     profile.private_buffer_bytes, AccessType::Write);
        }
        inst.containers.push_back(proc);
    }
    return inst;
}

void
saveMemRef(snap::ArchiveWriter &ar, const core::MemRef &ref)
{
    ar.u64(ref.va);
    ar.u8(static_cast<std::uint8_t>(ref.type));
    ar.u32(ref.instrs);
    ar.b(ref.request_end);
    ar.b(ref.yield_after);
}

core::MemRef
restoreMemRef(snap::ArchiveReader &ar)
{
    core::MemRef ref;
    ref.va = ar.u64();
    ref.type = static_cast<AccessType>(ar.u8());
    ref.instrs = ar.u32();
    ref.request_end = ar.b();
    ref.yield_after = ar.b();
    return ref;
}

void
QueueThread::saveState(snap::ArchiveWriter &ar) const
{
    saveRngState(ar, rng_);
    ar.u32(static_cast<std::uint32_t>(queue_.size()));
    for (const core::MemRef &ref : queue_)
        saveMemRef(ar, ref);
}

void
QueueThread::restoreState(snap::ArchiveReader &ar)
{
    restoreRngState(ar, rng_);
    queue_.clear();
    const std::uint32_t count = ar.u32();
    for (std::uint32_t i = 0; i < count; ++i)
        queue_.push_back(restoreMemRef(ar));
}

// ---------------------------------------------------------------------
// DataServingThread
// ---------------------------------------------------------------------

DataServingThread::DataServingThread(const AppProfile &profile,
                                     vm::Process *proc, std::uint64_t seed)
    : QueueThread(profile.name, proc, seed), profile_(profile),
      client_(profile.hot_records
                  ? profile.hot_records
                  : profile.dataset_bytes /
                        (profile.pages_per_record * basePageBytes),
              profile.update_fraction, seed ^ 0xdeadbeef,
              profile.hot_records ? profile.hot_theta
                                  : profile.zipf_theta),
      dataset_pages_(profile.dataset_bytes / basePageBytes),
      buffer_pages_(profile.private_buffer_bytes / basePageBytes),
      tail_client_(profile.dataset_bytes /
                       (profile.pages_per_record * basePageBytes),
                   profile.update_fraction, seed ^ 0xfeedface,
                   profile.zipf_theta)
{}

std::uint64_t
DataServingThread::pickRecord()
{
    // Two-level popularity, like YCSB over a large dataset: most
    // requests stay in the hot working set; the rest follow the zipfian
    // tail over the whole dataset. Tail records are shared across the
    // app's containers, so the baseline replicates their faults while
    // BabelFish takes each only once per group.
    if (profile_.hot_records && rng().chance(profile_.cold_fraction))
        return tail_client_.next().record;
    return client_.next().record;
}

Addr
DataServingThread::codeVa()
{
    // Zipf-ish hot code: most fetches in a few hot pages, tail across
    // the binary and middleware.
    const auto page = static_cast<std::uint64_t>(
        profile_.hot_code_pages * std::pow(rng().uniform(), 2.2));
    const Addr base = page < profile_.hot_code_pages / 3
                          ? vm::segmentBase(vm::Segment::Code)
                          : vm::segmentBase(vm::Segment::Mmap);
    return base + page * basePageBytes + rng().below(64) * 64;
}

Addr
DataServingThread::datasetPageVa(std::uint64_t page)
{
    return AppInstance::datasetBase() + page * basePageBytes +
           rng().below(64) * 64;
}

Addr
DataServingThread::bufferVa()
{
    const std::uint64_t window =
        profile_.hot_buffer_pages
            ? std::min<std::uint64_t>(profile_.hot_buffer_pages,
                                      buffer_pages_)
            : buffer_pages_;
    return AppInstance::bufferBase() +
           rng().below(window) * basePageBytes + rng().below(64) * 64;
}

void
DataServingThread::refill()
{
    if (profile_.scan_fraction > 0 &&
        rng().chance(profile_.scan_fraction)) {
        // Range scan / compaction churn: a burst of sequential dataset
        // pages, advancing a cursor every container follows.
        for (unsigned i = 0; i < profile_.scan_pages; ++i) {
            core::MemRef code;
            code.va = codeVa();
            code.type = AccessType::Ifetch;
            code.instrs = profile_.instrs_per_ref;
            push(code);

            core::MemRef ref;
            ref.va = datasetPageVa(scan_cursor_ % dataset_pages_);
            ref.type = AccessType::Read;
            ref.instrs = profile_.instrs_per_ref;
            push(ref);
            ++scan_cursor_;
        }
        core::MemRef end;
        end.va = bufferVa();
        end.type = AccessType::Write;
        end.instrs = profile_.instrs_per_ref;
        end.request_end = true;
        end.yield_after = endOfBatch();
        push(end);
        return;
    }

    // One YCSB request: index lookups, record pages, private buffering,
    // interleaved with instruction fetches.
    YcsbOp op = client_.next();
    op.record = pickRecord();
    const std::uint64_t first_page = op.record * profile_.pages_per_record;

    std::vector<core::MemRef> data;

    // B-tree / hash index probes: hot, shared.
    for (unsigned i = 0; i < 2; ++i) {
        core::MemRef ref;
        ref.va = datasetPageVa(rng().below(profile_.index_pages));
        ref.type = AccessType::Read;
        data.push_back(ref);
    }
    // The record itself.
    for (unsigned i = 0; i < profile_.pages_per_record; ++i) {
        core::MemRef ref;
        ref.va = datasetPageVa(std::min(first_page + i,
                                        dataset_pages_ - 1));
        ref.type = op.is_update && profile_.dataset_shared_mapping
                       ? AccessType::Write
                       : AccessType::Read;
        data.push_back(ref);
    }
    // Request-processing work split between dataset and private buffers.
    while (data.size() < profile_.refs_per_request) {
        core::MemRef ref;
        if (rng().chance(profile_.shared_data_fraction)) {
            ref.va = datasetPageVa(pickRecord() *
                                   profile_.pages_per_record %
                                   dataset_pages_);
            ref.type = AccessType::Read;
        } else {
            ref.va = bufferVa();
            ref.type = rng().chance(0.6) ? AccessType::Write
                                         : AccessType::Read;
        }
        data.push_back(ref);
    }

    // Interleave ifetch refs at the configured fraction.
    const double code_per_data =
        profile_.code_ref_fraction / (1.0 - profile_.code_ref_fraction);
    double carry = 0;
    for (auto &ref : data) {
        carry += code_per_data;
        while (carry >= 1.0) {
            core::MemRef code;
            code.va = codeVa();
            code.type = AccessType::Ifetch;
            code.instrs = profile_.instrs_per_ref;
            push(code);
            carry -= 1.0;
        }
        ref.instrs = profile_.instrs_per_ref;
        push(ref);
    }

    // Mark the request boundary on a trailing response-write; block on
    // the network at batch boundaries.
    core::MemRef end;
    end.va = bufferVa();
    end.type = AccessType::Write;
    end.instrs = profile_.instrs_per_ref;
    end.request_end = true;
    end.yield_after = endOfBatch();
    push(end);
}

bool
DataServingThread::endOfBatch()
{
    if (profile_.requests_per_batch == 0)
        return false;
    if (++batch_count_ >= profile_.requests_per_batch) {
        batch_count_ = 0;
        return true;
    }
    return false;
}

void
DataServingThread::completed(const core::MemRef &ref, Cycles now)
{
    // Service time: from the first completed reference of the request to
    // the request boundary. The wait while co-located containers hold
    // the core (between batches) is queueing, not service, and is
    // excluded — as a server-side latency probe would.
    if (!measuring_) {
        measuring_ = true;
        request_start_ = now;
    }
    if (!ref.request_end)
        return;
    latency_.sample(static_cast<double>(now - request_start_));
    measuring_ = false;
}

void
DataServingThread::saveState(snap::ArchiveWriter &ar) const
{
    QueueThread::saveState(ar);
    saveRngState(ar, client_.rng());
    saveRngState(ar, tail_client_.rng());
    ar.u64(scan_cursor_);
    ar.u32(batch_count_);
    const std::vector<double> &samples = latency_.rawSamples();
    ar.u64(samples.size());
    for (const double sample : samples)
        ar.f64(sample);
    ar.u64(request_start_);
    ar.b(measuring_);
}

void
DataServingThread::restoreState(snap::ArchiveReader &ar)
{
    QueueThread::restoreState(ar);
    restoreRngState(ar, client_.rng());
    restoreRngState(ar, tail_client_.rng());
    scan_cursor_ = ar.u64();
    batch_count_ = ar.u32();
    std::vector<double> samples(ar.u64());
    for (double &sample : samples)
        sample = ar.f64();
    latency_.restoreSamples(std::move(samples));
    request_start_ = ar.u64();
    measuring_ = ar.b();
}

// ---------------------------------------------------------------------
// ComputeThread
// ---------------------------------------------------------------------

ComputeThread::ComputeThread(const AppProfile &profile, vm::Process *proc,
                             std::uint64_t seed)
    : QueueThread(profile.name, proc, seed), profile_(profile),
      dataset_pages_(profile.dataset_bytes / basePageBytes),
      buffer_pages_(profile.private_buffer_bytes / basePageBytes)
{}

void
ComputeThread::refill()
{
    // One work unit (e.g.\ a batch of PageRank vertex updates or one FIO
    // block batch).
    const double code_per_data =
        profile_.code_ref_fraction / (1.0 - profile_.code_ref_fraction);
    double carry = 0;

    for (unsigned i = 0; i < profile_.refs_per_request; ++i) {
        carry += code_per_data;
        while (carry >= 1.0) {
            core::MemRef code;
            // Tight kernel loop: tiny hot code footprint.
            code.va = vm::segmentBase(vm::Segment::Code) +
                      rng().below(profile_.hot_code_pages) *
                          basePageBytes +
                      rng().below(64) * 64;
            code.type = AccessType::Ifetch;
            code.instrs = profile_.instrs_per_ref;
            push(code);
            carry -= 1.0;
        }

        core::MemRef ref;
        if (rng().chance(profile_.shared_data_fraction)) {
            std::uint64_t page;
            if (profile_.sequential_dataset) {
                page = seq_cursor_ % dataset_pages_;
                seq_cursor_ += 1 + rng().below(2);
            } else if (profile_.uniform_dataset) {
                page = rng().below(dataset_pages_); // no locality at all
            } else {
                page = rng().below(dataset_pages_ / 4);
            }
            ref.va = AppInstance::datasetBase() + page * basePageBytes +
                     rng().below(64) * 64;
            ref.type = profile_.dataset_shared_mapping && rng().chance(0.2)
                           ? AccessType::Write
                           : AccessType::Read;
        } else {
            // Private buffers: streaming with reuse (edge blocks).
            const std::uint64_t page =
                (seq_cursor_ / 2 + rng().below(32)) % buffer_pages_;
            ref.va = AppInstance::bufferBase() + page * basePageBytes +
                     rng().below(64) * 64;
            ref.type = rng().chance(0.5) ? AccessType::Write
                                         : AccessType::Read;
        }
        ref.instrs = profile_.instrs_per_ref;
        ref.request_end = i + 1 == profile_.refs_per_request;
        push(ref);
    }
}

void
ComputeThread::completed(const core::MemRef &ref, Cycles now)
{
    if (ref.request_end) {
        ++units_done_;
        last_unit_end_ = now;
    }
}

void
ComputeThread::saveState(snap::ArchiveWriter &ar) const
{
    QueueThread::saveState(ar);
    ar.u64(seq_cursor_);
    ar.u64(units_done_);
    ar.u64(last_unit_end_);
}

void
ComputeThread::restoreState(snap::ArchiveReader &ar)
{
    QueueThread::restoreState(ar);
    seq_cursor_ = ar.u64();
    units_done_ = ar.u64();
    last_unit_end_ = ar.u64();
}

std::vector<std::unique_ptr<core::Thread>>
makeAppThreads(const AppInstance &instance, std::uint64_t seed)
{
    std::vector<std::unique_ptr<core::Thread>> threads;
    const AppProfile &profile = instance.profile;
    std::uint64_t i = 0;
    for (vm::Process *proc : instance.containers) {
        const std::uint64_t tseed = seed + 0x1234567 * ++i;
        if (profile.request_based) {
            threads.push_back(
                std::make_unique<DataServingThread>(profile, proc, tseed));
        } else {
            threads.push_back(
                std::make_unique<ComputeThread>(profile, proc, tseed));
        }
    }
    return threads;
}

} // namespace bf::workloads
