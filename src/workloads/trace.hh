/**
 * @file
 * Trace replay: drive a core with a recorded memory-reference stream
 * instead of a synthetic generator. This is the adoption path for
 * downstream users who have their own application traces (e.g.\ from a
 * binary-instrumentation tool): map the address space, parse the trace,
 * and hand a TraceThread per container to the System.
 *
 * Text format, one reference per line, '#' comments:
 *
 *     <R|W|I> <hex or decimal va> [instrs]
 *
 * e.g. `R 0x7f0000001000 200`. Addresses are canonical (group) VAs.
 */

#ifndef BF_WORKLOADS_TRACE_HH
#define BF_WORKLOADS_TRACE_HH

#include <istream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/snapshot.hh"
#include "core/thread.hh"

namespace bf::workloads
{

/** Parse a text trace into memory references. */
std::vector<core::MemRef> parseTrace(std::istream &input);

/** A thread that replays a fixed reference stream. */
class TraceThread : public core::Thread
{
  public:
    /**
     * @param trace the references to replay.
     * @param loops how many times to replay the trace (0 = forever).
     */
    TraceThread(std::string name, vm::Process *proc,
                std::vector<core::MemRef> trace, std::uint64_t loops = 1)
        : name_(std::move(name)), proc_(proc), trace_(std::move(trace)),
          loops_(loops)
    {}

    vm::Process *process() override { return proc_; }
    const std::string &name() const override { return name_; }

    bool
    next(core::MemRef &ref) override
    {
        if (finished() || trace_.empty())
            return false;
        ref = trace_[pos_];
        if (++pos_ == trace_.size()) {
            pos_ = 0;
            ++done_loops_;
        }
        return true;
    }

    bool
    finished() const override
    {
        return trace_.empty() || (loops_ != 0 && done_loops_ >= loops_);
    }

    /** References replayed so far. */
    std::uint64_t
    replayed() const
    {
        return done_loops_ * trace_.size() + pos_;
    }

    /** The trace itself is config (rebuilt); only the cursor is state. */
    void
    saveState(snap::ArchiveWriter &ar) const override
    {
        ar.u64(pos_);
        ar.u64(done_loops_);
    }

    void
    restoreState(snap::ArchiveReader &ar) override
    {
        pos_ = static_cast<std::size_t>(ar.u64());
        done_loops_ = ar.u64();
    }

  private:
    std::string name_;
    vm::Process *proc_;
    std::vector<core::MemRef> trace_;
    std::uint64_t loops_;
    std::size_t pos_ = 0;
    std::uint64_t done_loops_ = 0;
};

} // namespace bf::workloads

#endif // BF_WORKLOADS_TRACE_HH
