/**
 * @file
 * Models of the paper's containerized applications (§VI, Workloads).
 *
 * Each AppProfile reproduces the page-sharing structure and access
 * pattern of one application, calibrated against the paper's Fig. 9
 * (shareable vs unshareable pte fractions) and the qualitative
 * descriptions in §VII (e.g.\ GraphChi's low-locality graph traversals
 * vs FIO's regular accesses, MongoDB's memory-mapped engine vs
 * ArangoDB's RocksDB-style private block cache).
 *
 * Three kinds of container threads implement core::Thread:
 *  - DataServingThread: YCSB-driven request/response loop with request
 *    latency tracking (ArangoDB, MongoDB, HTTPd).
 *  - ComputeThread: a long-running compute kernel (GraphChi PageRank,
 *    FIO).
 *  - FunctionThread lives in workloads/function.hh.
 */

#ifndef BF_WORKLOADS_APPS_HH
#define BF_WORKLOADS_APPS_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/thread.hh"
#include "vm/kernel.hh"
#include "workloads/image.hh"
#include "workloads/ycsb.hh"

namespace bf::workloads
{

/** The shape of one containerized application. */
struct AppProfile
{
    std::string name;
    ImageParams image{};

    /** @{ @name Dataset (shared across the app's containers) */
    std::uint64_t dataset_bytes = 192ull << 20;
    bool dataset_shared_mapping = true; //!< MAP_SHARED vs read-only.
    bool dataset_writable = true;
    /** @} */

    /** @{ @name Private state (unshareable) */
    std::uint64_t private_buffer_bytes = 24ull << 20;
    bool thp_friendly = true; //!< Mongo/Arango recommend THP off.
    /**
     * Fraction of the private buffers that THP actually backs with huge
     * pages (allocator alignment defeats THP for the rest). Only
     * meaningful when thp_friendly.
     */
    double buffer_thp_fraction = 0.0;
    /** @} */

    /** @{ @name Access pattern */
    unsigned hot_code_pages = 256;   //!< Hot instruction working set.
    double code_ref_fraction = 0.3;  //!< Ifetch share of all refs.
    double shared_data_fraction = 0.7; //!< Dataset share of data refs.
    double zipf_theta = 0.99;        //!< Dataset popularity skew.
    /**
     * Bounded request working set: most requests draw from this many
     * hot records (zipfian within them); cold_fraction of requests
     * range over the whole dataset. 0 = unbounded.
     */
    std::uint64_t hot_records = 0;
    double cold_fraction = 0.03;
    double hot_theta = 0.6; //!< Skew inside the hot set.
    /** Hot private-buffer window in pages (0 = whole buffer). */
    std::uint64_t hot_buffer_pages = 0;
    bool uniform_dataset = false;    //!< GraphChi: no locality at all.
    bool sequential_dataset = false; //!< FIO: streaming scans.
    unsigned pages_per_record = 2;
    unsigned index_pages = 64;       //!< Hot index/btree pages.
    /**
     * Range-scan / insert churn: this fraction of requests reads a
     * sequential burst of fresh dataset pages. The burst pages are the
     * same for every container of the app (same object, same cursor
     * trajectory), so the baseline replicates their page faults while
     * BabelFish takes each once per group.
     */
    double scan_fraction = 0.0;
    unsigned scan_pages = 12;
    double update_fraction = 0.05;   //!< YCSB-B style.
    std::uint32_t instrs_per_ref = 350;
    unsigned refs_per_request = 24;  //!< Data-serving request length.
    /**
     * Requests served per scheduling batch: the server then blocks on
     * network I/O and the core switches containers. 0 = never yield
     * (CPU-bound).
     */
    unsigned requests_per_batch = 8;
    /** @} */

    bool request_based = true; //!< Data serving vs compute loop.

    /** @{ @name The five applications of the paper */
    static AppProfile mongodb();
    static AppProfile arangodb();
    static AppProfile httpd();
    static AppProfile graphchi();
    static AppProfile fio();
    /** @} */

    /** All data-serving profiles. */
    static std::vector<AppProfile> dataServing();
    /** All compute profiles. */
    static std::vector<AppProfile> compute();
};

/** One application instance: a CCID group with its containers. */
struct AppInstance
{
    Ccid ccid = invalidCcid;
    /** Held by value: callers routinely pass buildApp a temporary. */
    AppProfile profile;
    std::unique_ptr<ContainerImage> image;
    vm::MappedObject *dataset = nullptr;
    vm::Process *runtime = nullptr;         //!< The container runtime.
    std::vector<vm::Process *> containers;  //!< One process each.
    Cycles bringup_work = 0;                //!< Kernel work of the forks.

    /** Canonical base address of the shared dataset mapping. */
    static Addr datasetBase() { return vm::segmentBase(vm::Segment::Shm); }
    /** Canonical base address of each container's private buffers. */
    static Addr bufferBase() { return vm::segmentBase(vm::Segment::Heap); }
};

/**
 * Build one application instance: create the CCID group and the runtime
 * process, map the image, pre-fault the runtime's infrastructure (the
 * OS warm-up of §VI), fork the containers, and give each its dataset and
 * private-buffer mappings.
 */
AppInstance buildApp(vm::Kernel &kernel, const AppProfile &profile,
                     unsigned num_containers, std::uint64_t seed);

/** Touch a VA range through the kernel (OS warm-up, not timed). */
void prefault(vm::Kernel &kernel, vm::Process &proc, Addr start,
              std::uint64_t bytes, AccessType type);

/** @{ @name MemRef (de)serialization, shared by the thread classes. */
void saveMemRef(snap::ArchiveWriter &ar, const core::MemRef &ref);
core::MemRef restoreMemRef(snap::ArchiveReader &ar);
/** @} */

/** Common machinery: a thread fed from a replenishable ref queue. */
class QueueThread : public core::Thread
{
  public:
    QueueThread(std::string name, vm::Process *proc, std::uint64_t seed)
        : name_(std::move(name)), proc_(proc), rng_(seed)
    {}

    vm::Process *process() override { return proc_; }
    const std::string &name() const override { return name_; }

    /** RNG state and the queued burst; subclasses call these first. */
    void saveState(snap::ArchiveWriter &ar) const override;
    void restoreState(snap::ArchiveReader &ar) override;

    bool
    next(core::MemRef &ref) override
    {
        if (queue_.empty())
            refill();
        if (queue_.empty())
            return false;
        ref = queue_.front();
        queue_.pop_front();
        return true;
    }

    /**
     * Batched pull: refill once if the queue is empty, then drain up to
     * @p max queued references. Stops at the queue boundary instead of
     * refilling mid-batch, so the next refill() still runs only after
     * the core has delivered every completion of this batch — the
     * refill-vs-completed() ordering (which FunctionThread's phase
     * machine depends on) is exactly that of repeated next() calls.
     */
    unsigned
    nextBatch(core::MemRef *out, unsigned max) override
    {
        if (queue_.empty())
            refill();
        unsigned n = 0;
        while (n < max && !queue_.empty()) {
            out[n] = queue_.front();
            queue_.pop_front();
            ++n;
        }
        return n;
    }

  protected:
    /** Subclasses push the next burst of refs. */
    virtual void refill() = 0;

    void push(const core::MemRef &ref) { queue_.push_back(ref); }
    Rng &rng() { return rng_; }

  private:
    std::string name_;
    vm::Process *proc_;
    Rng rng_;
    std::deque<core::MemRef> queue_;
};

/** YCSB-driven data-serving container (ArangoDB / MongoDB / HTTPd). */
class DataServingThread : public QueueThread
{
  public:
    DataServingThread(const AppProfile &profile, vm::Process *proc,
                      std::uint64_t seed);

    void completed(const core::MemRef &ref, Cycles now) override;

    void saveState(snap::ArchiveWriter &ar) const override;
    void restoreState(snap::ArchiveReader &ar) override;

    /** Request latencies in cycles (mean / p95 for Fig. 11). */
    stats::LatencyTracker &latency() { return latency_; }
    /** Discard warm-up samples. */
    void resetMeasurement() { latency_.reset(); }

  private:
    const AppProfile &profile_;
    YcsbClient client_;
    std::uint64_t dataset_pages_;
    std::uint64_t buffer_pages_;
    YcsbClient tail_client_; //!< Zipf over the whole dataset (cold).
    std::uint64_t scan_cursor_ = 0;
    unsigned batch_count_ = 0;
    stats::LatencyTracker latency_;
    Cycles request_start_ = 0;
    bool measuring_ = false;

    void refill() override;

    /** Record index: zipf within the hot set, rare cold excursions. */
    std::uint64_t pickRecord();
    /** Whether the current request completes an I/O batch. */
    bool endOfBatch();
    Addr codeVa();
    Addr datasetPageVa(std::uint64_t page);
    Addr bufferVa();
};

/** Long-running compute container (GraphChi PageRank / FIO). */
class ComputeThread : public QueueThread
{
  public:
    ComputeThread(const AppProfile &profile, vm::Process *proc,
                  std::uint64_t seed);

    void completed(const core::MemRef &ref, Cycles now) override;

    void saveState(snap::ArchiveWriter &ar) const override;
    void restoreState(snap::ArchiveReader &ar) override;

    /** Work units completed (normalized execution-time metric). */
    std::uint64_t unitsDone() const { return units_done_; }
    Cycles lastUnitEnd() const { return last_unit_end_; }
    void resetMeasurement() { units_done_ = 0; }

  private:
    const AppProfile &profile_;
    std::uint64_t dataset_pages_;
    std::uint64_t buffer_pages_;
    std::uint64_t seq_cursor_ = 0;
    std::uint64_t units_done_ = 0;
    Cycles last_unit_end_ = 0;

    void refill() override;
};

/** Make one thread per container of an instance. */
std::vector<std::unique_ptr<core::Thread>>
makeAppThreads(const AppInstance &instance, std::uint64_t seed);

} // namespace bf::workloads

#endif // BF_WORKLOADS_APPS_HH
