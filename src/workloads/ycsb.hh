/**
 * @file
 * A Yahoo Cloud Serving Benchmark-style request generator.
 *
 * The paper drives its Data Serving applications with YCSB over a 500 MB
 * dataset. We reproduce the load shape: zipfian record popularity (the
 * YCSB default, theta = 0.99), a read-mostly operation mix, and one
 * client per container so each container serves different requests over
 * partially overlapping data.
 */

#ifndef BF_WORKLOADS_YCSB_HH
#define BF_WORKLOADS_YCSB_HH

#include <cmath>
#include <cstdint>

#include "common/logging.hh"
#include "common/rng.hh"

namespace bf::workloads
{

/**
 * Zipfian integer generator over [0, n) using the Gray et al.\ method —
 * the same algorithm the YCSB core uses.
 */
class ZipfianGenerator
{
  public:
    /**
     * @param n number of items.
     * @param theta skew (YCSB default 0.99).
     */
    ZipfianGenerator(std::uint64_t n, double theta = 0.99)
        : n_(n), theta_(theta)
    {
        bf_assert(n > 0, "zipfian over empty set");
        zetan_ = zeta(n_, theta_);
        zeta2_ = zeta(2, theta_);
        alpha_ = 1.0 / (1.0 - theta_);
        eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_),
                               1.0 - theta_)) /
               (1.0 - zeta2_ / zetan_);
    }

    /** Draw the next item (0 is the most popular). */
    std::uint64_t
    next(Rng &rng)
    {
        const double u = rng.uniform();
        const double uz = u * zetan_;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta_))
            return 1;
        const auto idx = static_cast<std::uint64_t>(
            static_cast<double>(n_) *
            std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return idx >= n_ ? n_ - 1 : idx;
    }

    std::uint64_t items() const { return n_; }

  private:
    static double
    zeta(std::uint64_t n, double theta)
    {
        // For large n use the integral approximation; exact for small n.
        if (n <= 10000) {
            double sum = 0;
            for (std::uint64_t i = 1; i <= n; ++i)
                sum += 1.0 / std::pow(static_cast<double>(i), theta);
            return sum;
        }
        double sum = 0;
        for (std::uint64_t i = 1; i <= 10000; ++i)
            sum += 1.0 / std::pow(static_cast<double>(i), theta);
        // Integral of x^-theta from 10000 to n.
        sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
                std::pow(10000.0, 1.0 - theta)) /
               (1.0 - theta);
        return sum;
    }

    std::uint64_t n_;
    double theta_;
    double zetan_;
    double zeta2_;
    double alpha_;
    double eta_;
};

/** YCSB operation kinds (we use the read-mostly workload B mix). */
struct YcsbOp
{
    std::uint64_t record = 0;
    bool is_update = false;
};

/** One YCSB client driving one container. */
class YcsbClient
{
  public:
    /**
     * @param records number of records in the dataset.
     * @param update_fraction fraction of update ops (YCSB-B: 0.05).
     * @param seed per-client seed so each container serves a distinct
     *        request stream (paper §VI).
     */
    YcsbClient(std::uint64_t records, double update_fraction,
               std::uint64_t seed, double theta = 0.99)
        : rng_(seed), zipf_(records, theta),
          update_fraction_(update_fraction)
    {}

    /** Draw the next operation. */
    YcsbOp
    next()
    {
        YcsbOp op;
        op.record = zipf_.next(rng_);
        op.is_update = rng_.chance(update_fraction_);
        return op;
    }

    Rng &rng() { return rng_; }
    const Rng &rng() const { return rng_; }

  private:
    Rng rng_;
    ZipfianGenerator zipf_;
    double update_fraction_;
};

} // namespace bf::workloads

#endif // BF_WORKLOADS_YCSB_HH
