/**
 * @file
 * Backing objects for virtual memory areas.
 *
 * A MappedObject models either a file in the page cache (container image
 * layers, shared libraries, mmap'ed data sets) or an anonymous region
 * whose identity survives fork (so parent and child CoW-share its frames).
 * Frames are populated lazily, exactly once: every mapping of the same
 * object page resolves to the same physical frame, which is what makes
 * translations replicate across containers in the baseline.
 */

#ifndef BF_VM_OBJECT_HH
#define BF_VM_OBJECT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "vm/frame_allocator.hh"

namespace bf::vm
{

/** A lazily materialized page-cache object (file or anonymous). */
class MappedObject
{
  public:
    /**
     * @param id unique object id.
     * @param name debug name ("libc.so", "dataset", ...).
     * @param bytes object size.
     * @param is_file file-backed (major fault on first touch) vs anonymous.
     */
    MappedObject(std::uint64_t id, std::string name, std::uint64_t bytes,
                 bool is_file)
        : id_(id), name_(std::move(name)), bytes_(bytes), is_file_(is_file),
          frames_((bytes + basePageBytes - 1) / basePageBytes, 0)
    {}

    std::uint64_t id() const { return id_; }
    const std::string &name() const { return name_; }
    std::uint64_t bytes() const { return bytes_; }
    bool isFile() const { return is_file_; }

    /**
     * @{
     * @name Mapper accounting
     * How many VMAs (across processes) map this object. A private anon
     * object with a single mapper cannot produce shareable translations,
     * so the kernel keeps its tables out of the sharing registry.
     */
    void addMapper() { ++mappers_; }
    void removeMapper() { if (mappers_) --mappers_; }
    unsigned mappers() const { return mappers_; }
    /** @} */

    /** Number of 4 KB pages in the object. */
    std::uint64_t numPages() const { return frames_.size(); }

    /** Whether page @p index is already resident in the page cache. */
    bool
    resident(std::uint64_t index) const
    {
        return frames_[index] != 0;
    }

    /**
     * Frame of page @p index, faulting it in if needed.
     * @param[out] was_major set true when the page had to be "read from
     *             disk" (first touch of a file page).
     */
    Ppn
    frameFor(std::uint64_t index, FrameAllocator &allocator, bool &was_major)
    {
        was_major = false;
        if (frames_[index] == 0) {
            frames_[index] = allocator.allocate();
            was_major = is_file_ && !preloaded_;
        }
        return frames_[index];
    }

    /**
     * Frame of the first page of huge chunk @p chunk of
     * @p pages_per_chunk 4 KB pages (512 for 2 MB pages, 512*512 for
     * 1 GB pages), materializing the whole chunk as physically
     * contiguous frames.
     * @param[out] was_major true when a file chunk was "read from disk".
     */
    Ppn
    chunkFrameFor(std::uint64_t chunk, std::uint64_t pages_per_chunk,
                  FrameAllocator &allocator, bool &was_major)
    {
        const std::uint64_t first = chunk * pages_per_chunk;
        was_major = false;
        if (frames_[first] == 0) {
            const Ppn base = allocator.allocateContiguous(pages_per_chunk);
            for (std::uint64_t i = 0;
                 i < pages_per_chunk && first + i < frames_.size(); ++i) {
                frames_[first + i] = base + i;
            }
            was_major = is_file_ && !preloaded_;
        }
        return frames_[first];
    }

    /** 2 MB chunk convenience wrapper. */
    Ppn
    hugeFrameFor(std::uint64_t chunk, FrameAllocator &allocator,
                 bool &was_major)
    {
        return chunkFrameFor(chunk, 512, allocator, was_major);
    }

    /**
     * Materialize every page now (warm page cache). Bring-up experiments
     * call this for image layers that a previous container already pulled.
     */
    void
    preload(FrameAllocator &allocator)
    {
        for (auto &frame : frames_) {
            if (frame == 0)
                frame = allocator.allocate();
        }
        preloaded_ = true;
    }

    /** Mark all future first-touches as minor faults (page cache warm). */
    void markResident() { preloaded_ = true; }

    /** @{ @name Checkpointing (Kernel only) */
    bool preloaded() const { return preloaded_; }
    const std::vector<Ppn> &frames() const { return frames_; }
    /** Overwrite the mutable state; id/name/size/kind stay immutable. */
    void
    restoreState(bool preloaded, unsigned mappers, std::vector<Ppn> frames)
    {
        bf_assert(frames.size() == frames_.size(),
                  "object frame-vector size mismatch for ", name_);
        preloaded_ = preloaded;
        mappers_ = mappers;
        frames_ = std::move(frames);
    }
    /** @} */

  private:
    std::uint64_t id_;
    std::string name_;
    std::uint64_t bytes_;
    bool is_file_;
    bool preloaded_ = false;
    unsigned mappers_ = 0;
    std::vector<Ppn> frames_;
};

} // namespace bf::vm

#endif // BF_VM_OBJECT_HH
