/**
 * @file
 * Address Space Layout Randomization support (paper §IV-D).
 *
 * Two configurations:
 *  - ASLR-SW: one seed per CCID group; every process in the group gets the
 *    same segment layout, so translations are directly shareable. Minimal
 *    OS change, no hardware.
 *  - ASLR-HW: one seed per process. Each process stores, per segment, the
 *    difference between the CCID group's offsets and its own
 *    (diff_i_offset[] = CCID_offset[] - i_offset[]). A logic module with
 *    comparators and one adder sits between the L1 and L2 TLB: on an L1
 *    miss it classifies the VA into a segment and adds the diff, yielding
 *    the group-canonical VA used by the L2 TLB and the page walk. The
 *    transform costs 2 cycles, and the L1 TLB does not share entries.
 *
 * The AslrTransform class implements the logic module faithfully
 * (segment classification + adder) over the 7 Linux segments.
 */

#ifndef BF_VM_ASLR_HH
#define BF_VM_ASLR_HH

#include <array>
#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"

namespace bf::vm
{

/** Which ASLR configuration the system runs. */
enum class AslrMode : std::uint8_t
{
    Off, //!< No randomization (debug).
    Sw,  //!< Per-CCID seed; shared layouts.
    Hw,  //!< Per-process seed + hardware diff-offset module (default).
};

/** The 7 Linux process segments the paper randomizes. */
enum class Segment : std::uint8_t
{
    Code,
    Data,
    Heap,
    Stack,
    Mmap,  //!< mmap area: libraries and file mappings.
    Vdso,
    Shm,
};

/** Number of segments. */
inline constexpr unsigned numSegments = 7;

/** Canonical (un-randomized) base address of each segment. */
Addr segmentBase(Segment seg);

/** Size of each segment's reservation. */
std::uint64_t segmentSpan(Segment seg);

/** Segment that canonically contains @p va. */
Segment segmentOf(Addr va);

/** A set of per-segment randomized offsets. */
struct AslrOffsets
{
    std::array<std::int64_t, numSegments> offset{};

    /**
     * Draw page-aligned offsets from a seed. Offsets stay within a
     * quarter of the segment span so mappings never escape their segment.
     */
    static AslrOffsets randomize(std::uint64_t seed);
};

/**
 * The ASLR-HW logic module: comparators that classify a VA into a segment
 * plus one adder that applies diff_i_offset[segment].
 */
class AslrTransform
{
  public:
    /** Latency of the module, applied on every L1 TLB miss (Table I). */
    static constexpr Cycles transformCycles = 2;

    AslrTransform() = default;

    /**
     * @param group_offsets the CCID group's offsets.
     * @param process_offsets this process's private offsets.
     */
    AslrTransform(const AslrOffsets &group_offsets,
                  const AslrOffsets &process_offsets)
    {
        for (unsigned s = 0; s < numSegments; ++s) {
            diff_.offset[s] =
                group_offsets.offset[s] - process_offsets.offset[s];
        }
    }

    /** Process VA -> group-canonical VA (used below the L1 TLB). */
    Addr
    toShared(Addr process_va) const
    {
        const auto seg = static_cast<unsigned>(segmentOf(process_va));
        return static_cast<Addr>(static_cast<std::int64_t>(process_va) +
                                 diff_.offset[seg]);
    }

    /** Group-canonical VA -> process VA (inverse, for fault reporting). */
    Addr
    toProcess(Addr shared_va) const
    {
        const auto seg = static_cast<unsigned>(segmentOf(shared_va));
        return static_cast<Addr>(static_cast<std::int64_t>(shared_va) -
                                 diff_.offset[seg]);
    }

    /** The stored per-segment differences. */
    const AslrOffsets &diff() const { return diff_; }

  private:
    AslrOffsets diff_{};
};

} // namespace bf::vm

#endif // BF_VM_ASLR_HH
