/**
 * @file
 * The OS model: processes, containers (CCID groups), fork with lazy CoW,
 * file-backed mmap, page-fault handling, and the BabelFish page-table
 * fusion machinery (shared lower-level tables, MaskPages, sharer counters,
 * the >32-writer fallback).
 *
 * The kernel operates on canonical (group) virtual addresses. Under
 * ASLR-HW the hardware diff-offset module converts per-process VAs to
 * canonical ones below the L1 TLB (see vm/aslr.hh); the timing of that
 * transform is charged by the MMU.
 */

#ifndef BF_VM_KERNEL_HH
#define BF_VM_KERNEL_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/object_pool.hh"
#include "common/stats.hh"
#include "common/trace/trace.hh"
#include "common/types.hh"
#include "vm/aslr.hh"
#include "vm/frame_allocator.hh"
#include "vm/mask_page.hh"
#include "vm/object.hh"
#include "vm/page_table.hh"
#include "vm/paging.hh"
#include "vm/process.hh"
#include "vm/tlb_hooks.hh"

namespace bf::attrib
{
class Registry;
}

namespace bf::vm
{

/** What a page fault turned out to be. */
enum class FaultKind : std::uint8_t
{
    None,          //!< No fault was needed (raced fill).
    Minor,         //!< Page resident, pte filled.
    Major,         //!< Page "read from disk" into the page cache.
    Cow,           //!< Copy-on-write resolution.
    SharedInstall, //!< BabelFish: pointed an upper entry at a shared table.
    Protection,    //!< Access not permitted by any VMA.
};

/** Result of Kernel::handleFault. */
struct FaultOutcome
{
    FaultKind kind = FaultKind::None;
    Cycles cycles = 0; //!< Kernel time to charge the faulting core.
};

/**
 * A page fault captured during a bound phase (see core/epoch.hh) and
 * serviced later through Kernel::serviceFault, outside any parallel
 * section. Carries everything the MMU knew at the fault site so the
 * serialized service can reproduce the serial-mode handling exactly.
 */
struct DeferredFault
{
    Process *proc = nullptr;
    Addr canonical_va = 0;
    AccessType type = AccessType::Read;
    /**
     * The fault site pre-declared this a CoW fault (a write hit a
     * TLB entry with the CoW mark) — the MMU counts it as cow_faults
     * regardless of the service outcome, as the serial path does.
     */
    bool declared_cow = false;
    /** Page size of the stale TLB entry (for the raced-fill shootdown). */
    PageSize stale_size = PageSize::Size4K;
};

/** Tunables of the OS model. */
struct KernelParams
{
    bool babelfish = true;      //!< Enable page-table fusion.
    /**
     * Highest table level that may be group-shared: 1 shares tables that
     * hold 4 KB leaf entries (paper default), 2 additionally shares PMD
     * tables of read-only regions, 3 PUD tables likewise.
     */
    int max_share_level = 1;
    bool thp = true;            //!< Transparent huge pages for large anon.
    /**
     * CoW writers per PMD table set before the fallback reverts the set
     * to private translations. 32 matches the PC bitmask; 0 models the
     * paper's no-PC-bitmask design, where the first CoW write
     * immediately stops sharing for the whole set (Section VII-D).
     */
    unsigned max_cow_writers = 32;
    AslrMode aslr = AslrMode::Hw;
    std::uint64_t mem_frames = (32ull << 30) / basePageBytes;

    /** @{ @name Kernel work costs in cycles (2 GHz core) */
    Cycles minor_fault_cycles = 2200;
    Cycles major_fault_cycles = 24000;
    Cycles cow_fault_cycles = 3400;
    Cycles shared_install_cycles = 650;
    Cycles fork_base_cycles = 18000;
    Cycles fork_per_entry_cycles = 14;
    Cycles fork_per_table_cycles = 180;
    Cycles shootdown_cycles = 900;
    /** @} */
};

/**
 * The operating-system model. One instance per simulated machine; all
 * cores' MMUs walk the page tables it maintains.
 */
class Kernel
{
  public:
    /**
     * @param params OS tunables.
     * @param parent stat group to register under, may be null.
     */
    explicit Kernel(const KernelParams &params,
                    stats::StatGroup *parent = nullptr);
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** @{ @name Containers and processes */

    /**
     * Create a container security-domain group (one user, one
     * application). All containers in it share a CCID.
     */
    Ccid createGroup(const std::string &name, std::uint64_t aslr_seed);

    /** Create a fresh process (e.g.\ a container runtime) in a group. */
    Process *createProcess(Ccid ccid, const std::string &name);

    /**
     * Fork a child from a parent — how containers are created. Copies the
     * VMA list and the page tables; present writable-private translations
     * become CoW in both parent and child. Under BabelFish, clean lower
     * tables are group-shared instead of copied.
     * @param[out] work_cycles kernel time the fork cost.
     */
    Process *fork(Process &parent, const std::string &name,
                  Cycles &work_cycles);

    /** Convenience overload discarding the cost. */
    Process *
    fork(Process &parent, const std::string &name)
    {
        Cycles ignored;
        return fork(parent, name, ignored);
    }

    /** Tear down a process: unmap everything, drop table sharer counts. */
    void exitProcess(Process &proc);

    Process *processByPid(Pid pid);
    const std::vector<Pid> &groupMembers(Ccid ccid) const;
    /** @} */

    /** @{ @name Memory mapping */

    /** Create a file-like object (image layer, library, data set). */
    MappedObject *createFile(const std::string &name, std::uint64_t bytes);

    /** Create an anonymous backing object (used internally and by shm). */
    MappedObject *createAnonObject(std::uint64_t bytes);

    /**
     * Map an object into a process.
     * @param canonical_va page-aligned canonical address (segments come
     *        from vm/aslr.hh's canonical map).
     * @param shared MAP_SHARED (writes hit the object) vs MAP_PRIVATE
     *        (writes CoW).
     */
    void mmapObject(Process &proc, MappedObject *object, Addr canonical_va,
                    std::uint64_t bytes, std::uint64_t object_offset,
                    bool writable, bool exec, bool shared,
                    PageSize page_size = PageSize::Size4K);

    /**
     * Map fresh anonymous memory (heap, buffers). THP-backed when the
     * region is >= 2 MB, thp is on, and @p allow_huge.
     */
    void mmapAnon(Process &proc, Addr canonical_va, std::uint64_t bytes,
                  bool writable, bool allow_huge = true);

    /**
     * Unmap the whole VMA starting at @p start. Drops the process'
     * pointers to the covered leaf tables — decrementing the sharer
     * counter of group-shared ones and freeing tables whose count
     * reaches zero (paper §IV-B: "when the last sharer of the table
     * terminates or removes its pointer to the table"). Leaf tables that
     * also map a neighbouring VMA are dropped too; the survivor refaults
     * and re-attaches on its next access.
     * @return kernel work cycles.
     */
    Cycles munmap(Process &proc, Addr start);
    /** @} */

    /** @{ @name Fault handling and walking */

    /**
     * Resolve a page fault at a canonical VA. Called by the MMU when the
     * walk finds a non-present entry or a write to a read-only/CoW page.
     */
    FaultOutcome handleFault(Process &proc, Addr canonical_va,
                             AccessType type);

    /**
     * Service a fault deferred by a bound phase. Must only be called
     * from a serialized window (no core is executing): fault handling
     * mutates page tables, MaskPages and sharer counters, and may
     * broadcast TLB shootdowns through the invalidate hook.
     */
    FaultOutcome serviceFault(const DeferredFault &fault);

    /**
     * @{
     * @name Fault-service batching
     * A chunk's deferred faults form one service batch: between
     * beginFaultBatch() and endFaultBatch() the kernel may memoize the
     * VMA and leaf-table lookups at the top of handleFault, which
     * same-region fault storms (a thread touching a fresh mapping page
     * by page) amortize to O(1). Exactly behavior-preserving: memos are
     * keyed by a mutation epoch that every structural change (table
     * alloc/free, mmap/munmap, fork/exit, shared-table attach, restore)
     * bumps, so a memo is only ever consulted when a fresh walk would
     * return the identical result. Nested batches are not supported.
     */
    void beginFaultBatch() { fault_batch_active_ = true; }
    void endFaultBatch() { fault_batch_active_ = false; }
    /** @} */

    /** Table object for a physical frame (used by the page walker). */
    PageTablePage *tableByFrame(Ppn frame);

    /**
     * MaskPage covering @p canonical_va for a group, or nullptr. The
     * hardware reads the PC bitmask from it on walks when ORPC is set.
     */
    MaskPage *maskFor(Ccid ccid, Addr canonical_va);

    /**
     * PC-bitmask bit index of a process for the mask region covering
     * @p canonical_va, or -1 when the process never CoW'ed there.
     * O(1) for the common process with no private copies anywhere
     * (Process::hasMaskBits), O(log regions) otherwise.
     */
    int processBit(const Process &proc, Addr canonical_va) const;

    /**
     * Address of a group's mask-generation counter, or nullptr for an
     * unknown CCID. The counter's address is stable for the life of the
     * Kernel (groups are never destroyed); MMUs watch it to know when a
     * cached processBit() answer may be stale.
     */
    const std::uint64_t *maskGenerationPtr(Ccid ccid) const;

    /** Register the TLB shootdown callback (System wires the MMUs in). */
    void setTlbInvalidateHook(TlbInvalidateFn hook) { tlb_hook_ = std::move(hook); }

    /**
     * Attach the run's event tracer (System wires it; null detaches).
     * Kernel events record through the tracer's kernel context, which
     * the fault-service drivers stamp with the faulting core and time;
     * mutations outside a fault-service window (setup-time forks,
     * mmap/munmap) record nothing.
     */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /**
     * Attach the per-container attribution registry (System wires it;
     * null detaches). With a registry attached, createProcess registers
     * every new process as a tenant, CoW privatizations and shootdowns
     * (caused and received, same- vs cross-group) are booked to the
     * responsible container, and the kernel entry points (fault
     * service, fork, munmap, exit) stamp the causing container for
     * shootdown attribution. All of these run in single-threaded
     * windows, so booking goes straight into the registry's scalars.
     */
    void setAttribRegistry(attrib::Registry *registry)
    {
        attrib_ = registry;
    }
    /** @} */

    /** @{ @name Introspection (Fig. 9 pagemap scans, tests) */

    /** Visit every present leaf translation of a process. */
    void forEachTranslation(
        const Process &proc,
        const std::function<void(Addr va, const Entry &leaf,
                                 PageSize size)> &fn) const;

    /** Clear all accessed bits (LRU aging between measurements). */
    void clearAccessedBits();

    /** All live processes. */
    std::vector<Process *> processes();

    /** Number of distinct page-table pages owned/shared by a process. */
    std::uint64_t countTablePages(const Process &proc) const;

    FrameAllocator &frames() { return allocator_; }
    const KernelParams &params() const { return params_; }

    /** Number of mapped objects ever created (checkpoint manifest). */
    std::size_t objectCount() const { return objects_.size(); }

    /** All group CCIDs, ascending (checkpoint manifest). */
    std::vector<Ccid>
    groupCcids() const
    {
        std::vector<Ccid> ccids;
        for (const auto &[ccid, group] : groups_)
            ccids.push_back(ccid);
        return ccids;
    }
    /** @} */

    /**
     * @{
     * @name Checkpointing (DESIGN.md §11)
     * Serialize / overwrite all mutable OS state: counters, the frame
     * allocator, object residency, every page-table page (raw entries
     * including O/ORPC/CoW bits), process VMAs + ASLR transforms, and the
     * group sharing registries (shared tables, MaskPages, fallbacks).
     * restore() expects a world rebuilt with the identical configuration;
     * identity is matched by pid / object id / ccid / table frame, and
     * any divergence throws snap::SnapshotError. Stats are restored by
     * the owner of the stats tree, not here.
     */
    void save(snap::ArchiveWriter &ar) const;
    void restore(snap::ArchiveReader &ar);
    /** @} */

    /** @{ @name Statistics */
    stats::Scalar minor_faults;
    stats::Scalar major_faults;
    stats::Scalar cow_faults;
    stats::Scalar shared_installs;     //!< Upper entries pointed at shared tables.
    stats::Scalar tables_allocated;
    stats::Scalar tables_shared;       //!< Sharer-count increments.
    stats::Scalar tables_freed;
    stats::Scalar fork_entries_copied;
    stats::Scalar cow_privatizations;  //!< 512-entry private table copies.
    stats::Scalar mask_fallbacks;      //!< >32-writer reverts.
    stats::Scalar shootdowns;
    /** @} */

  private:
    struct SharedTableKey
    {
        Addr region_base; //!< First canonical VA covered by the table.
        int level;        //!< Table level.
        auto operator<=>(const SharedTableKey &) const = default;
    };

    struct SharedTableRecord
    {
        PageTablePage *table = nullptr;
        std::uint64_t signature = 0; //!< VMA identity hash of the region.
        /**
         * The table's translations diverged from the backing objects
         * (the creator CoW'ed pages before forking). Fork children may
         * still share it — their clean view IS the parent's view — but a
         * demand fault of an unrelated group member must not attach.
         */
        bool fork_only = false;
    };

    struct Group
    {
        Ccid ccid;
        std::string name;
        AslrOffsets offsets; //!< Canonical (group) layout.
        std::uint64_t aslr_seed = 0;
        std::vector<Pid> members;
        std::map<SharedTableKey, SharedTableRecord> shared_tables;
        std::map<Addr, PoolPtr<MaskPage>> masks; //!< By region base.
        std::map<Addr, bool> mask_fallback; //!< Regions past 32 writers.
        /**
         * Bumped whenever mask/PC-bitmask bookkeeping that can change a
         * processBit() answer mutates (bit assignment, region revert,
         * process exit). MMUs cache processBit() per {pid, region} and
         * use this counter to invalidate (see Mmu::cachedProcessBit);
         * starts at 1 so a zero-initialized cache never matches.
         */
        std::uint64_t mask_generation = 1;
    };

    KernelParams params_;
    stats::StatGroup stat_group_;
    FrameAllocator allocator_;

    /**
     * @{
     * @name Object pools (common/object_pool.hh)
     * Declared before every container that stores PoolPtr handles:
     * members destroy in reverse declaration order, so the containers
     * release their objects while the pools are still alive.
     */
    ObjectPool<PageTablePage> table_pool_;
    ObjectPool<MaskPage> mask_pool_;
    ObjectPool<Process> process_pool_;
    /** @} */
    Pid next_pid_ = 100;
    Pcid next_pcid_ = 1;
    Ccid next_ccid_ = 1;
    std::uint64_t next_object_id_ = 1;

    std::map<Pid, PoolPtr<Process>> processes_;
    std::map<Ccid, Group> groups_;
    std::vector<std::unique_ptr<MappedObject>> objects_;
    std::unordered_map<Ppn, PoolPtr<PageTablePage>> tables_;
    TlbInvalidateFn tlb_hook_;
    trace::Tracer *tracer_ = nullptr;

    /**
     * @{
     * @name Shootdown attribution (common/attrib)
     * The kernel entry points stamp the container on whose behalf the
     * kernel is mutating; invalidateTlbs bills the shootdown it causes
     * to that slot. Kept as slot + ccid (not a Process*) so a stale
     * stamp can never dangle.
     */
    attrib::Registry *attrib_ = nullptr;
    int attrib_causer_slot_ = -1;
    Ccid attrib_causer_ccid_ = invalidCcid;

    void
    noteAttribCauser(const Process &proc)
    {
        attrib_causer_slot_ = proc.attribSlot();
        attrib_causer_ccid_ = proc.ccid();
    }
    /** @} */

    /**
     * @{
     * @name Fault-batch memos (beginFaultBatch)
     * Consulted only while a batch is active and only when their epoch
     * matches mutation_epoch_, which every structural mutation bumps —
     * so a matching memo is provably what the fresh lookup would
     * return. Both start with epoch 0 (never matches: the counter
     * starts at 1) and survive across batches, staying valid exactly
     * as long as nothing mutated.
     */
    bool fault_batch_active_ = false;
    std::uint64_t mutation_epoch_ = 1;
    struct
    {
        Pid pid = 0;
        Vma *vma = nullptr;
        std::uint64_t epoch = 0;
    } vma_memo_;
    struct
    {
        Pid pid = 0;
        Addr region_base = 0;
        int level = -1;
        PageTablePage *table = nullptr;
        std::uint64_t epoch = 0;
    } table_memo_;
    /** Structural mutation: any cached fault-path lookup may be stale. */
    void noteMutation() { ++mutation_epoch_; }
    /** @} */

    /** Allocate a fresh table page at a level. */
    PageTablePage *allocateTable(int level);
    /** Free a table page. */
    void freeTable(PageTablePage *table);

    /**
     * Get or create the chain of tables so that the entry for @p va at
     * level @p leaf_level exists in a table owned (not shared) by proc.
     * Never creates the leaf entry itself.
     */
    PageTablePage *ensurePrivateChain(Process &proc, Addr va,
                                      int leaf_table_level);

    /** Table at @p level reached by walking proc's tables, or nullptr. */
    PageTablePage *tableAt(const Process &proc, Addr va, int level) const;

    /** Identity hash of the VMAs overlapping [base, base+span). */
    std::uint64_t regionSignature(const Process &proc, Addr base,
                                  std::uint64_t span) const;

    /** Whether any translation in the table diverged from its object. */
    bool tableDiverged(const Process &proc, const PageTablePage &table,
                       Addr region_base) const;

    /** Fill one leaf entry from the VMA's backing object. */
    FaultOutcome fillLeaf(Process &proc, Vma &vma, Addr va,
                          PageTablePage &leaf_table, AccessType type);

    /** Resolve a write to a CoW translation. */
    FaultOutcome resolveCow(Process &proc, Vma &vma, Addr va,
                            PageTablePage &leaf_table, Entry &leaf);

    /**
     * BabelFish: privatize the 512-entry leaf table covering @p va for
     * proc (copy entries, set O bits, update mask bookkeeping).
     * @return the private table, or nullptr when the MaskPage overflowed
     * and the whole region reverted (mask_fallbacks path).
     */
    PageTablePage *privatizeLeafTable(Process &proc, Addr va,
                                      PageTablePage &shared_table);

    /** >32 writers: revert every sharer of the mask region to private. */
    void revertMaskRegion(Group &group, Addr mask_region_base);

    /**
     * Drop one pointer to a table: decrement its sharer counter if it
     * is group-shared, and when the last pointer disappears, cascade
     * through its children and free the subtree.
     */
    void releaseTablePointer(Group &group, PageTablePage *table);

    /** Whether every VMA overlapping [base, base+span) is read-only. */
    bool regionReadOnly(const Process &proc, Addr base,
                        std::uint64_t span) const;

    /** Whether all present entries point at group-shared tables. */
    bool pointerTableShareable(const PageTablePage &table);

    /** Update O/ORPC bits in every group member's upper entry for va. */
    void propagateOrpc(Group &group, Addr va, int leaf_table_level);

    /** Broadcast a shootdown if a hook is registered. */
    void invalidateTlbs(const TlbInvalidate &inv);

    /** The leaf-table level for va in proc (2 for huge VMAs, else 1). */
    int leafTableLevel(const Process &proc, Addr va) const;

    Group &groupOf(const Process &proc);
    const Group &groupOf(const Process &proc) const;
};

} // namespace bf::vm

#endif // BF_VM_KERNEL_HH
