/**
 * @file
 * Virtual memory areas: contiguous mappings of a backing object.
 */

#ifndef BF_VM_VMA_HH
#define BF_VM_VMA_HH

#include <cstdint>

#include "common/types.hh"
#include "vm/paging.hh"

namespace bf::vm
{

class MappedObject;

/** One contiguous mapping in a process address space. */
struct Vma
{
    Addr start = 0;                //!< First canonical VA (page aligned).
    Addr end = 0;                  //!< One past the last VA.
    bool writable = false;
    bool exec = false;
    bool shared = false;           //!< MAP_SHARED vs MAP_PRIVATE.
    /**
     * Backing page size: 4 KB normally, 2 MB for THP / hugetlbfs
     * mappings, 1 GB for giga-page mappings. BabelFish merges the table
     * holding the leaf entries in every case: PTE tables for 4 KB
     * pages, PMD tables for 2 MB pages, PUD tables for 1 GB pages
     * (paper §IV-C).
     */
    PageSize page_size = PageSize::Size4K;
    MappedObject *object = nullptr;
    std::uint64_t object_offset = 0; //!< Byte offset of 'start' in object.

    bool
    contains(Addr va) const
    {
        return va >= start && va < end;
    }

    std::uint64_t bytes() const { return end - start; }

    /** Whether the mapping is huge-page backed (2 MB or 1 GB). */
    bool hugeBacked() const { return page_size != PageSize::Size4K; }

    /** Page-table level of the leaf entries mapping this VMA. */
    int
    leafLevel() const
    {
        switch (page_size) {
          case PageSize::Size4K: return LevelPte;
          case PageSize::Size2M: return LevelPmd;
          case PageSize::Size1G: return LevelPud;
        }
        return LevelPte;
    }

    /** Object page index (4 KB granularity) backing the page of va. */
    std::uint64_t
    objectPageFor(Addr va) const
    {
        return (object_offset + (va - start)) / basePageBytes;
    }

    /** Index of the huge chunk (in page_size units) backing va. */
    std::uint64_t
    objectChunkFor(Addr va) const
    {
        return (object_offset + (entryBase(va, leafLevel()) - start)) /
               pageBytes(page_size);
    }

    /**
     * Whether translations of this VMA can be identical across processes
     * mapping the same object at the same VA: shared mappings always;
     * private mappings only while clean (CoW preserves identity until a
     * write, and read-only private mappings are never written).
     */
    bool
    shareableBacking() const
    {
        return object != nullptr;
    }
};

} // namespace bf::vm

#endif // BF_VM_VMA_HH
