#include "vm/aslr.hh"

#include "common/logging.hh"

namespace bf::vm
{

namespace
{

/**
 * Canonical segment map. Each segment owns a large, disjoint slice of the
 * 48-bit address space; randomized offsets move mappings within the slice.
 */
struct SegmentRange
{
    Addr base;
    std::uint64_t span;
};

constexpr SegmentRange segmentRanges[numSegments] = {
    { 0x0000'0040'0000ull, 0x0000'4000'0000ull },  // Code
    { 0x0000'8000'0000ull, 0x0000'4000'0000ull },  // Data
    { 0x0001'0000'0000ull, 0x0010'0000'0000ull },  // Heap
    { 0x7ffd'0000'0000ull, 0x0002'0000'0000ull },  // Stack
    { 0x7f00'0000'0000ull, 0x0080'0000'0000ull },  // Mmap
    { 0x7fff'f000'0000ull, 0x0000'1000'0000ull },  // Vdso
    { 0x7e00'0000'0000ull, 0x0100'0000'0000ull },  // Shm
};

} // namespace

Addr
segmentBase(Segment seg)
{
    return segmentRanges[static_cast<unsigned>(seg)].base;
}

std::uint64_t
segmentSpan(Segment seg)
{
    return segmentRanges[static_cast<unsigned>(seg)].span;
}

Segment
segmentOf(Addr va)
{
    for (unsigned s = 0; s < numSegments; ++s) {
        const auto &range = segmentRanges[s];
        if (va >= range.base && va < range.base + range.span)
            return static_cast<Segment>(s);
    }
    // Unmapped slices classify as Heap so the transform is total; faults
    // on genuinely unmapped addresses are caught by the VMA lookup.
    return Segment::Heap;
}

AslrOffsets
AslrOffsets::randomize(std::uint64_t seed)
{
    Rng rng(seed);
    AslrOffsets offsets;
    for (unsigned s = 0; s < numSegments; ++s) {
        const std::uint64_t quarter = segmentRanges[s].span / 4;
        const std::uint64_t pages = quarter / basePageBytes;
        offsets.offset[s] =
            static_cast<std::int64_t>(rng.below(pages) * basePageBytes);
    }
    return offsets;
}

} // namespace bf::vm
