/**
 * @file
 * Physical frame allocator for the simulated 32 GB of main memory.
 *
 * Frames are handed out by a bump pointer with a free list for reuse.
 * Frame 0 is reserved so that Ppn 0 can serve as a null value.
 */

#ifndef BF_VM_FRAME_ALLOCATOR_HH
#define BF_VM_FRAME_ALLOCATOR_HH

#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace bf::vm
{

/** Allocates and frees 4 KB physical frames. */
class FrameAllocator
{
  public:
    /**
     * @param total_frames capacity in 4 KB frames (default 32 GB).
     * @param parent stat group to register under, may be null.
     */
    explicit FrameAllocator(std::uint64_t total_frames = (32ull << 30) /
                                                          basePageBytes,
                            stats::StatGroup *parent = nullptr)
        : total_frames_(total_frames), stat_group_("frames", parent)
    {
        stat_group_.addStat("allocated", &allocated);
        stat_group_.addStat("freed", &freed);
    }

    /** Allocate one frame. */
    Ppn
    allocate()
    {
        ++allocated;
        if (!free_list_.empty()) {
            const Ppn ppn = free_list_.back();
            free_list_.pop_back();
            return ppn;
        }
        if (next_ >= total_frames_)
            bf_fatal("out of physical memory: ", total_frames_, " frames");
        return next_++;
    }

    /**
     * Allocate @p count physically contiguous frames (huge pages).
     * Contiguity comes from the bump pointer; the free list is not
     * defragmented, matching the simple buddy-free behaviour we need.
     */
    Ppn
    allocateContiguous(std::uint64_t count)
    {
        allocated += count;
        if (next_ + count > total_frames_)
            bf_fatal("out of physical memory for contiguous alloc");
        const Ppn base = next_;
        next_ += count;
        return base;
    }

    /** Return one frame to the allocator. */
    void
    free(Ppn ppn)
    {
        ++freed;
        free_list_.push_back(ppn);
    }

    /** Frames currently live. */
    std::uint64_t
    inUse() const
    {
        return allocated.value() - freed.value();
    }

    std::uint64_t totalFrames() const { return total_frames_; }

    /** @{ @name Checkpointing (Kernel only; stats ride the stats tree) */
    Ppn nextFrame() const { return next_; }
    const std::vector<Ppn> &freeList() const { return free_list_; }
    void
    restoreState(Ppn next, std::vector<Ppn> free_list)
    {
        next_ = next;
        free_list_ = std::move(free_list);
    }
    /** @} */

    /** @{ @name Statistics */
    stats::Scalar allocated;
    stats::Scalar freed;
    /** @} */

  private:
    std::uint64_t total_frames_;
    Ppn next_ = 1; //!< Frame 0 reserved as null.
    std::vector<Ppn> free_list_;
    stats::StatGroup stat_group_;
};

} // namespace bf::vm

#endif // BF_VM_FRAME_ALLOCATOR_HH
