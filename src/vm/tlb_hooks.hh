/**
 * @file
 * Kernel-to-TLB shootdown interface.
 *
 * The kernel publishes TLB invalidations (CoW privatization, unmap,
 * process exit) to the MMUs through a callback, keeping src/vm free of a
 * dependency on src/tlb.
 */

#ifndef BF_VM_TLB_HOOKS_HH
#define BF_VM_TLB_HOOKS_HH

#include <functional>

#include "common/types.hh"

namespace bf::vm
{

/** One TLB invalidation request, broadcast to every core. */
struct TlbInvalidate
{
    enum class Kind : std::uint8_t
    {
        /** Drop the (pcid, vpn) entry — conventional single-page flush. */
        Page,
        /**
         * Drop only shared (Ownership-clear) entries of a CCID group for
         * a VPN range — the single-entry shootdown of paper §III-A and
         * the region shootdown of the >32-writer fallback.
         */
        SharedRange,
        /** Drop every entry of a PCID (process exit). */
        Pcid,
    };

    Kind kind = Kind::Page;
    Ccid ccid = invalidCcid;
    Pcid pcid = 0;
    Vpn vpn = 0;                        //!< First canonical (group) VPN.
    std::uint64_t num_pages = 1;        //!< Length of the VPN range.
    PageSize size = PageSize::Size4K;
};

/** Callback the MMUs register with the kernel. */
using TlbInvalidateFn = std::function<void(const TlbInvalidate &)>;

} // namespace bf::vm

#endif // BF_VM_TLB_HOOKS_HH
