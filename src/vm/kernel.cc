#include "vm/kernel.hh"

#include <algorithm>

#include "common/attrib/attrib.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"

namespace bf::vm
{

namespace
{

/** FNV-1a step for region signatures. */
std::uint64_t
hashCombine(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

} // namespace

Kernel::Kernel(const KernelParams &params, stats::StatGroup *parent)
    : params_(params), stat_group_("kernel", parent),
      allocator_(params.mem_frames, &stat_group_)
{
    stat_group_.addStat("minor_faults", &minor_faults);
    stat_group_.addStat("major_faults", &major_faults);
    stat_group_.addStat("cow_faults", &cow_faults);
    stat_group_.addStat("shared_installs", &shared_installs);
    stat_group_.addStat("tables_allocated", &tables_allocated);
    stat_group_.addStat("tables_shared", &tables_shared);
    stat_group_.addStat("tables_freed", &tables_freed);
    stat_group_.addStat("fork_entries_copied", &fork_entries_copied);
    stat_group_.addStat("cow_privatizations", &cow_privatizations);
    stat_group_.addStat("mask_fallbacks", &mask_fallbacks);
    stat_group_.addStat("shootdowns", &shootdowns);
}

Kernel::~Kernel() = default;

PageTablePage *
Kernel::allocateTable(int level)
{
    noteMutation();
    const Ppn frame = allocator_.allocate();
    auto table = table_pool_.make(level, frame);
    PageTablePage *raw = table.get();
    tables_[frame] = std::move(table);
    ++tables_allocated;
    return raw;
}

void
Kernel::freeTable(PageTablePage *table)
{
    noteMutation();
    ++tables_freed;
    const Ppn frame = table->frame();
    allocator_.free(frame);
    tables_.erase(frame);
}

PageTablePage *
Kernel::tableByFrame(Ppn frame)
{
    auto it = tables_.find(frame);
    return it == tables_.end() ? nullptr : it->second.get();
}

Kernel::Group &
Kernel::groupOf(const Process &proc)
{
    auto it = groups_.find(proc.ccid());
    bf_assert(it != groups_.end(), "process ", proc.pid(), " has no group");
    return it->second;
}

const Kernel::Group &
Kernel::groupOf(const Process &proc) const
{
    return const_cast<Kernel *>(this)->groupOf(proc);
}

Ccid
Kernel::createGroup(const std::string &name, std::uint64_t aslr_seed)
{
    const Ccid ccid = next_ccid_++;
    Group group;
    group.ccid = ccid;
    group.name = name;
    group.aslr_seed = aslr_seed;
    group.offsets = AslrOffsets::randomize(aslr_seed);
    groups_[ccid] = std::move(group);
    inform("created CCID group ", ccid, " (", name, ")");
    return ccid;
}

Process *
Kernel::createProcess(Ccid ccid, const std::string &name)
{
    auto git = groups_.find(ccid);
    bf_assert(git != groups_.end(), "unknown CCID ", ccid);
    Group &group = git->second;

    const Pid pid = next_pid_++;
    const Pcid pcid = next_pcid_++ & 0xfff;
    PageTablePage *pgd = allocateTable(LevelPgd);

    auto proc = process_pool_.make(pid, pcid, ccid, name, pgd);
    if (params_.aslr == AslrMode::Hw) {
        proc->aslr_offsets =
            AslrOffsets::randomize(group.aslr_seed ^ (0x5bd1e995ull * pid));
        proc->aslr_transform =
            AslrTransform(group.offsets, proc->aslr_offsets);
    } else {
        proc->aslr_offsets = group.offsets;
        proc->aslr_transform = AslrTransform(group.offsets, group.offsets);
    }

    Process *raw = proc.get();
    processes_[pid] = std::move(proc);
    group.members.push_back(pid);
    if (attrib_)
        raw->setAttribSlot(attrib_->registerTenant(pid, ccid, pcid, name));
    return raw;
}

Process *
Kernel::processByPid(Pid pid)
{
    auto it = processes_.find(pid);
    return it == processes_.end() ? nullptr : it->second.get();
}

const std::vector<Pid> &
Kernel::groupMembers(Ccid ccid) const
{
    auto it = groups_.find(ccid);
    bf_assert(it != groups_.end(), "unknown CCID ", ccid);
    return it->second.members;
}

MappedObject *
Kernel::createFile(const std::string &name, std::uint64_t bytes)
{
    objects_.push_back(std::make_unique<MappedObject>(
        next_object_id_++, name, bytes, /*is_file=*/true));
    return objects_.back().get();
}

MappedObject *
Kernel::createAnonObject(std::uint64_t bytes)
{
    objects_.push_back(std::make_unique<MappedObject>(
        next_object_id_++, "anon", bytes, /*is_file=*/false));
    return objects_.back().get();
}

void
Kernel::mmapObject(Process &proc, MappedObject *object, Addr canonical_va,
                   std::uint64_t bytes, std::uint64_t object_offset,
                   bool writable, bool exec, bool shared,
                   PageSize page_size)
{
    const std::uint64_t align = pageBytes(page_size);
    bf_assert(canonical_va % align == 0, "unaligned mmap va");
    bf_assert(object_offset % align == 0, "unaligned mmap offset");
    bf_assert(bytes % align == 0 || page_size == PageSize::Size4K,
              "huge mmap length not a multiple of the page size");
    bf_assert(object_offset + bytes <= object->bytes(),
              "mmap beyond object ", object->name());
    Vma vma;
    vma.start = canonical_va;
    vma.end = canonical_va + bytes;
    vma.writable = writable;
    vma.exec = exec;
    vma.shared = shared;
    vma.page_size = page_size;
    vma.object = object;
    vma.object_offset = object_offset;
    object->addMapper();
    proc.addVma(vma); // may reallocate the VMA list
    noteMutation();
}

void
Kernel::mmapAnon(Process &proc, Addr canonical_va, std::uint64_t bytes,
                 bool writable, bool allow_huge)
{
    bf_assert(canonical_va % basePageBytes == 0, "unaligned mmap va");
    MappedObject *object = createAnonObject(bytes);
    Vma vma;
    vma.start = canonical_va;
    vma.end = canonical_va + bytes;
    vma.writable = writable;
    vma.exec = false;
    vma.shared = false;
    vma.object = object;
    vma.object_offset = 0;
    const std::uint64_t huge_bytes = pageBytes(PageSize::Size2M);
    if (params_.thp && allow_huge && bytes >= huge_bytes &&
        canonical_va % huge_bytes == 0 && bytes % huge_bytes == 0)
        vma.page_size = PageSize::Size2M;
    object->addMapper();
    proc.addVma(vma); // may reallocate the VMA list
    noteMutation();
}

int
Kernel::leafTableLevel(const Process &proc, Addr va) const
{
    const Vma *vma = proc.findVma(va);
    return vma ? vma->leafLevel() : LevelPte;
}

PageTablePage *
Kernel::tableAt(const Process &proc, Addr va, int level) const
{
    PageTablePage *table = proc.pgd();
    for (int cur = LevelPgd; cur > level; --cur) {
        const Entry &entry = table->entryFor(va);
        if (!entry.present() || entry.huge())
            return nullptr;
        auto it = tables_.find(entry.frame());
        if (it == tables_.end())
            return nullptr;
        table = it->second.get();
    }
    return table;
}

PageTablePage *
Kernel::ensurePrivateChain(Process &proc, Addr va, int leaf_table_level)
{
    PageTablePage *table = proc.pgd();
    for (int cur = LevelPgd; cur > leaf_table_level; --cur) {
        Entry &entry = table->entryFor(va);
        if (!entry.present()) {
            PageTablePage *next = allocateTable(cur - 1);
            entry.setFrame(next->frame());
            entry.set(bits::present);
            entry.set(bits::writable);
            entry.set(bits::user);
            if (params_.babelfish && cur - 1 == leafTableLevel(proc, va)) {
                // A freshly created private leaf table: translations in it
                // are owned, not shared (paper O bit in the upper entry).
                entry.set(bits::owned);
            }
            table = next;
        } else {
            bf_assert(!entry.huge(), "chain hits huge leaf at level ", cur);
            table = tableByFrame(entry.frame());
            bf_assert(table, "dangling table frame");
        }
    }
    return table;
}

std::uint64_t
Kernel::regionSignature(const Process &proc, Addr base,
                        std::uint64_t span) const
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const auto &vma : proc.vmas()) {
        const Addr lo = std::max(vma.start, base);
        const Addr hi = std::min(vma.end, base + span);
        if (lo >= hi)
            continue;
        h = hashCombine(h, lo - base);
        h = hashCombine(h, hi - base);
        h = hashCombine(h, vma.object->id());
        h = hashCombine(h, vma.object_offset + (lo - vma.start));
        h = hashCombine(h, (vma.writable ? 1 : 0) | (vma.exec ? 2 : 0) |
                               (vma.shared ? 4 : 0) |
                               (static_cast<std::uint64_t>(vma.page_size)
                                << 3));
    }
    return h;
}

bool
Kernel::regionReadOnly(const Process &proc, Addr base,
                       std::uint64_t span) const
{
    bool any = false;
    for (const auto &vma : proc.vmas()) {
        if (vma.start >= base + span || vma.end <= base)
            continue;
        if (vma.writable)
            return false;
        any = true;
    }
    return any;
}

bool
Kernel::pointerTableShareable(const PageTablePage &table)
{
    // Every present entry must point at a group-shared table (never a
    // huge leaf or a private subtree).
    for (unsigned i = 0; i < entriesPerTable; ++i) {
        const Entry &entry = table.entry(i);
        if (!entry.present())
            continue;
        if (entry.huge())
            return false;
        PageTablePage *child = tableByFrame(entry.frame());
        if (!child || !child->group_shared)
            return false;
    }
    return true;
}

bool
Kernel::tableDiverged(const Process &proc, const PageTablePage &table,
                      Addr region_base) const
{
    const std::uint64_t span = entrySpan(table.level());
    for (unsigned i = 0; i < entriesPerTable; ++i) {
        const Entry &entry = table.entry(i);
        if (!entry.present())
            continue;
        const Addr va = region_base + i * span;
        const Vma *vma = proc.findVma(va);
        if (!vma)
            return true;
        if (vma->hugeBacked() != entry.huge())
            return true;
        const std::uint64_t page = vma->objectPageFor(va);
        if (!vma->object->resident(page))
            return true;
        bool dummy = false;
        // resident() guarantees no allocation happens here.
        const Ppn expect = vma->object->frameFor(page,
            const_cast<Kernel *>(this)->allocator_, dummy);
        if (entry.frame() != expect)
            return true;
    }
    return false;
}

FaultOutcome
Kernel::fillLeaf(Process &proc, Vma &vma, Addr va,
                 PageTablePage &leaf_table, AccessType type)
{
    Entry &entry = leaf_table.entryFor(va);
    bf_assert(!entry.present(), "fillLeaf on present entry");

    const bool is_write = type == AccessType::Write;
    bool was_major = false;
    FaultOutcome outcome;

    if (vma.hugeBacked()) {
        bf_assert(leaf_table.level() == vma.leafLevel(),
                  "huge fill at wrong level");
        const std::uint64_t chunk = vma.objectChunkFor(va);
        const std::uint64_t chunk_pages =
            pageBytes(vma.page_size) / basePageBytes;
        entry.set(bits::huge);

        if (is_write && vma.writable && !vma.shared) {
            // Private write on first touch: back with a fresh huge frame.
            entry.setFrame(allocator_.allocateContiguous(chunk_pages));
            entry.set(bits::writable);
        } else {
            entry.setFrame(vma.object->chunkFrameFor(chunk, chunk_pages,
                                                     allocator_,
                                                     was_major));
            if (vma.writable && vma.shared)
                entry.set(bits::writable);
            else if (vma.writable)
                entry.set(bits::cow);
        }
    } else {
        const std::uint64_t page = vma.objectPageFor(va);
        if (is_write && vma.writable && !vma.shared) {
            if (vma.object->isFile()) {
                // MAP_PRIVATE file write: copy the file page immediately.
                bool file_major = false;
                vma.object->frameFor(page, allocator_, file_major);
                was_major = file_major;
                entry.setFrame(allocator_.allocate());
                outcome.kind = FaultKind::Cow;
            } else {
                entry.setFrame(allocator_.allocate());
            }
            entry.set(bits::writable);
        } else {
            entry.setFrame(vma.object->frameFor(page, allocator_,
                                                was_major));
            if (vma.writable && vma.shared)
                entry.set(bits::writable);
            else if (vma.writable)
                entry.set(bits::cow);
        }
    }

    entry.set(bits::present);
    entry.set(bits::user);
    entry.set(bits::nx, !vma.exec);
    entry.set(bits::accessed);
    if (is_write)
        entry.set(bits::dirty);
    if (params_.babelfish && !leaf_table.group_shared) {
        // Translations in private tables are owned entries in the TLB.
        entry.set(bits::owned);
    }

    if (params_.babelfish && is_write && vma.writable && !vma.shared &&
        !leaf_table.group_shared) {
        // The fill created a diverged private translation; drop any
        // stale shared (O-clear) entry other sharers may have cached for
        // this VPN — its PC bitmask predates this process' privatization
        // of the region.
        const PageSize size = vma.page_size;
        invalidateTlbs(TlbInvalidate{TlbInvalidate::Kind::SharedRange,
                                     proc.ccid(), 0,
                                     va >> pageShift(size), 1, size});
    }

    if (was_major) {
        ++major_faults;
        outcome.kind = FaultKind::Major;
        outcome.cycles = params_.major_fault_cycles;
    } else if (outcome.kind == FaultKind::Cow) {
        ++cow_faults;
        outcome.cycles = params_.cow_fault_cycles;
    } else {
        ++minor_faults;
        outcome.kind = FaultKind::Minor;
        outcome.cycles = params_.minor_fault_cycles;
    }
    return outcome;
}

PageTablePage *
Kernel::privatizeLeafTable(Process &proc, Addr va,
                           PageTablePage &shared_table)
{
    Group &group = groupOf(proc);
    const int level = shared_table.level();
    const Addr mask_region = tableBase(va, level + 1);

    auto &mask_ptr = group.masks[mask_region];
    if (!mask_ptr) {
        mask_ptr = mask_pool_.make(allocator_.allocate(), mask_region);
    }
    MaskPage &mask = *mask_ptr;

    int bit = mask.bitFor(proc.pid());
    if (bit < 0) {
        bit = mask.writerCount() < params_.max_cow_writers
                  ? mask.addWriter(proc.pid())
                  : -1;
        if (bit < 0) {
            // 33rd writer: the PC bitmask is out of space. Revert every
            // sharer in this PMD table set to private translations
            // (paper Appendix, Fig. 12(b)).
            ++mask_fallbacks;
            revertMaskRegion(group, mask_region);
            return nullptr;
        }
        proc.setBitIn(mask_region, bit);
        ++group.mask_generation; // Cached processBit() answers are stale.
    }

    const unsigned pmd_index = tableIndex(va, level + 1);
    mask.setBit(pmd_index, bit);

    // Copy the 512 pte_t translations; every copy is an owned entry.
    PageTablePage *priv = allocateTable(level);
    for (unsigned i = 0; i < entriesPerTable; ++i) {
        priv->entry(i) = shared_table.entry(i);
        if (priv->entry(i).present())
            priv->entry(i).set(bits::owned);
    }

    PageTablePage *upper = tableAt(proc, va, level + 1);
    bf_assert(upper, "privatize without upper table");
    Entry &upper_entry = upper->entryFor(va);
    bf_assert(upper_entry.present() &&
                  upper_entry.frame() == shared_table.frame(),
              "privatize: upper entry does not point at shared table");
    upper_entry.setFrame(priv->frame());
    upper_entry.set(bits::owned);
    upper_entry.set(bits::orpc, false);

    bf_assert(shared_table.sharers > 0, "sharer underflow");
    if (--shared_table.sharers == 0) {
        group.shared_tables.erase(
            SharedTableKey{entryBase(va, level + 1), level});
        freeTable(&shared_table);
    }

    ++cow_privatizations;
    if (attrib_)
        attrib_->noteCow(proc.attribSlot());
    if (tracer_)
        tracer_->recordKernel(trace::EventType::CowPrivatize, proc.ccid(),
                              proc.pid(), va);
    propagateOrpc(group, va, level);
    return priv;
}

void
Kernel::propagateOrpc(Group &group, Addr va, int leaf_table_level)
{
    for (const Pid pid : group.members) {
        Process *member = processByPid(pid);
        if (!member || !member->alive())
            continue;
        PageTablePage *upper = tableAt(*member, va, leaf_table_level + 1);
        if (!upper)
            continue;
        Entry &entry = upper->entryFor(va);
        if (entry.present() && !entry.owned())
            entry.set(bits::orpc);
    }
}

void
Kernel::revertMaskRegion(Group &group, Addr mask_region_base)
{
    if (tracer_)
        tracer_->recordKernel(trace::EventType::MaskFallback, group.ccid,
                              0, mask_region_base);
    // Collect the shared tables of this PMD table set.
    std::vector<std::pair<SharedTableKey, SharedTableRecord>> victims;
    for (const auto &[key, rec] : group.shared_tables) {
        const std::uint64_t set_span = tableSpan(rec.table->level() + 1);
        if (tableBase(key.region_base, rec.table->level() + 1) ==
                mask_region_base &&
            set_span == tableSpan(rec.table->level() + 1) &&
            key.region_base >= mask_region_base &&
            key.region_base < mask_region_base + set_span) {
            victims.emplace_back(key, rec);
        }
    }

    for (auto &[key, rec] : victims) {
        PageTablePage *shared = rec.table;
        const int level = shared->level();
        for (const Pid pid : group.members) {
            Process *member = processByPid(pid);
            if (!member || !member->alive())
                continue;
            PageTablePage *upper = tableAt(*member, key.region_base,
                                           level + 1);
            if (!upper)
                continue;
            Entry &entry = upper->entryFor(key.region_base);
            if (!entry.present() || entry.frame() != shared->frame())
                continue;
            PageTablePage *priv = allocateTable(level);
            for (unsigned i = 0; i < entriesPerTable; ++i) {
                priv->entry(i) = shared->entry(i);
                if (priv->entry(i).present())
                    priv->entry(i).set(bits::owned);
            }
            entry.setFrame(priv->frame());
            entry.set(bits::owned);
            entry.set(bits::orpc, false);
            bf_assert(shared->sharers > 0, "sharer underflow in revert");
            --shared->sharers;
        }
        group.shared_tables.erase(key);
        freeTable(shared);

        // Drop every shared TLB entry of the reverted 2 MB region.
        invalidateTlbs(TlbInvalidate{
            TlbInvalidate::Kind::SharedRange, group.ccid, 0,
            addrToVpn(key.region_base), tableSpan(level) / basePageBytes,
            PageSize::Size4K});
    }

    group.mask_fallback[mask_region_base] = true;
    ++group.mask_generation;
}

FaultOutcome
Kernel::resolveCow(Process &proc, Vma &vma, Addr va,
                   PageTablePage &leaf_table, Entry &leaf)
{
    FaultOutcome outcome;
    outcome.kind = FaultKind::Cow;
    outcome.cycles = params_.cow_fault_cycles;

    PageTablePage *target_table = &leaf_table;
    Entry *target = &leaf;

    if (params_.babelfish && leaf_table.group_shared) {
        PageTablePage *priv = privatizeLeafTable(proc, va, leaf_table);
        if (!priv) {
            // Mask overflow: region reverted; our translations are now in
            // a private table installed by revertMaskRegion.
            priv = tableAt(proc, va, leafTableLevel(proc, va));
            bf_assert(priv, "revert left no private table");
        }
        target_table = priv;
        target = &target_table->entryFor(va);
        outcome.cycles += params_.shootdown_cycles;
        // Single-entry shootdown: only the shared (O=0) entry for this
        // VPN is stale (its PC bitmask changed); the other 511 shared
        // translations stay valid in all TLBs (paper §III-A).
        invalidateTlbs(TlbInvalidate{
            TlbInvalidate::Kind::SharedRange, proc.ccid(), 0,
            va >> pageShift(vma.page_size), 1, vma.page_size});
    } else {
        const PageSize size = vma.page_size;
        invalidateTlbs(TlbInvalidate{TlbInvalidate::Kind::Page,
                                     proc.ccid(), proc.pcid(),
                                     va >> pageShift(size), 1, size});
        if (params_.babelfish) {
            // Even a CoW in an already-private table must drop the
            // shared (O-clear) entry for this VPN from all TLBs: other
            // sharers' cached copies carry a PC bitmask that predates
            // this process' privatization of the region (paper §III-A:
            // the OS invalidates the O=0 entry on every CoW event).
            invalidateTlbs(TlbInvalidate{TlbInvalidate::Kind::SharedRange,
                                         proc.ccid(), 0,
                                         va >> pageShift(size), 1, size});
        }
        outcome.cycles += params_.shootdown_cycles;
    }

    // Allocate the private copy of the written page only; for huge pages
    // the whole chunk is copied.
    if (vma.hugeBacked()) {
        const std::uint64_t chunk_pages =
            pageBytes(vma.page_size) / basePageBytes;
        target->setFrame(allocator_.allocateContiguous(chunk_pages));
        outcome.cycles += chunk_pages * 40; // copy the chunk
    } else {
        target->setFrame(allocator_.allocate());
    }
    target->set(bits::writable);
    target->set(bits::cow, false);
    target->set(bits::dirty);
    target->set(bits::accessed);
    if (params_.babelfish)
        target->set(bits::owned);

    ++cow_faults;
    return outcome;
}

FaultOutcome
Kernel::serviceFault(const DeferredFault &fault)
{
    bf_assert(fault.proc, "deferred fault without a process");
    return handleFault(*fault.proc, fault.canonical_va, fault.type);
}

FaultOutcome
Kernel::handleFault(Process &proc, Addr canonical_va, AccessType type)
{
    // Any shootdown this fault triggers (CoW privatization, mask-region
    // revert, raced-fill flush) is billed to the faulting container.
    noteAttribCauser(proc);
    // Batched service (beginFaultBatch): same-region fault storms skip
    // the linear VMA scan and the root-to-leaf table walk when the memo
    // epoch proves nothing structural changed since the last fault.
    Vma *vma;
    if (fault_batch_active_ && vma_memo_.epoch == mutation_epoch_ &&
        vma_memo_.pid == proc.pid() &&
        vma_memo_.vma->contains(canonical_va)) {
        vma = vma_memo_.vma;
    } else {
        vma = proc.findVma(canonical_va);
        if (fault_batch_active_ && vma)
            vma_memo_ = {proc.pid(), vma, mutation_epoch_};
    }
    if (!vma)
        return {FaultKind::Protection, 0};
    if (type == AccessType::Write && !vma->writable)
        return {FaultKind::Protection, 0};
    if (type == AccessType::Ifetch && !vma->exec)
        return {FaultKind::Protection, 0};

    const int leaf_level = vma->leafLevel();
    PageTablePage *leaf_table;
    if (fault_batch_active_ && table_memo_.epoch == mutation_epoch_ &&
        table_memo_.pid == proc.pid() &&
        table_memo_.level == leaf_level &&
        table_memo_.region_base ==
            entryBase(canonical_va, leaf_level + 1)) {
        leaf_table = table_memo_.table;
    } else {
        leaf_table = tableAt(proc, canonical_va, leaf_level);
        if (fault_batch_active_ && leaf_table)
            table_memo_ = {proc.pid(),
                           entryBase(canonical_va, leaf_level + 1),
                           leaf_level, leaf_table, mutation_epoch_};
    }

    // Fill a leaf entry, keeping group-shared tables clean: a write
    // first-touch of a private-writable page in a shared table fills the
    // clean CoW translation (the view every sharer must see) and then
    // resolves the write through the privatization machinery.
    auto fillAndResolve = [&](PageTablePage &table) -> FaultOutcome {
        if (params_.babelfish && table.group_shared &&
            type == AccessType::Write && vma->writable && !vma->shared) {
            FaultOutcome fill =
                fillLeaf(proc, *vma, canonical_va, table, AccessType::Read);
            Entry &leaf = table.entryFor(canonical_va);
            bf_assert(leaf.cow(), "clean fill of private-writable not CoW");
            FaultOutcome cow =
                resolveCow(proc, *vma, canonical_va, table, leaf);
            cow.cycles += fill.cycles;
            if (fill.kind == FaultKind::Major)
                cow.kind = FaultKind::Major;
            return cow;
        }
        return fillLeaf(proc, *vma, canonical_va, table, type);
    };

    if (leaf_table) {
        Entry &leaf = leaf_table->entryFor(canonical_va);
        if (leaf.present()) {
            if (type == AccessType::Write && leaf.cow())
                return resolveCow(proc, *vma, canonical_va, *leaf_table,
                                  leaf);
            if (type == AccessType::Write && !leaf.writable())
                return {FaultKind::Protection, 0};
            // Already resolved (e.g. filled through a shared table by a
            // sibling between the walk and the fault).
            leaf.set(bits::accessed);
            return {FaultKind::None, 0};
        }
        return fillAndResolve(*leaf_table);
    }

    // No leaf table yet: build the chain. Under BabelFish, try to attach
    // to (or create) a group-shared leaf table.
    Group &group = groupOf(proc);
    const Addr region_base = entryBase(canonical_va, leaf_level + 1);
    const Addr mask_region = tableBase(canonical_va, leaf_level + 1);

    // A region is worth registering for sharing only if some overlapping
    // VMA could produce identical translations in another process: file
    // backing, or an anon object that more than one process maps.
    bool shareworthy = false;
    for (const auto &region_vma : proc.vmas()) {
        if (region_vma.start >= region_base + entrySpan(leaf_level + 1) ||
            region_vma.end <= region_base)
            continue;
        if (region_vma.object->isFile() ||
            region_vma.object->mappers() > 1) {
            shareworthy = true;
            break;
        }
    }

    if (params_.babelfish && shareworthy &&
        !group.mask_fallback[mask_region]) {
        const std::uint64_t sig =
            regionSignature(proc, region_base, entrySpan(leaf_level + 1));
        const SharedTableKey key{region_base, leaf_level};
        PageTablePage *upper =
            ensurePrivateChain(proc, canonical_va, leaf_level + 1);
        Entry &upper_entry = upper->entryFor(canonical_va);
        bf_assert(!upper_entry.present(), "upper entry races leaf table");

        auto it = group.shared_tables.find(key);
        if (it != group.shared_tables.end() &&
            it->second.signature == sig && !it->second.fork_only) {
            // Attach to the existing shared table. No table is
            // allocated or freed, yet the walkable tree changed shape.
            noteMutation();
            PageTablePage *shared = it->second.table;
            upper_entry.setFrame(shared->frame());
            upper_entry.set(bits::present);
            upper_entry.set(bits::writable);
            upper_entry.set(bits::user);
            auto mit = group.masks.find(mask_region);
            if (mit != group.masks.end() &&
                mit->second->orpc(tableIndex(canonical_va, leaf_level + 1)))
                upper_entry.set(bits::orpc);
            bf_assert(shared->sharers < 0xffff,
                      "16-bit sharer counter saturated");
            ++shared->sharers;
            ++tables_shared;
            ++shared_installs;

            Entry &leaf = shared->entryFor(canonical_va);
            if (leaf.present()) {
                if (type == AccessType::Write && leaf.cow())
                    return resolveCow(proc, *vma, canonical_va, *shared,
                                      leaf);
                leaf.set(bits::accessed);
                return {FaultKind::SharedInstall,
                        params_.shared_install_cycles};
            }
            FaultOutcome outcome = fillAndResolve(*shared);
            outcome.cycles += params_.shared_install_cycles;
            return outcome;
        }

        if (it == group.shared_tables.end()) {
            // First process to touch the region: create the table and
            // register it for the group.
            PageTablePage *table = allocateTable(leaf_level);
            table->group_shared = true;
            group.shared_tables[key] = SharedTableRecord{table, sig};
            upper_entry.setFrame(table->frame());
            upper_entry.set(bits::present);
            upper_entry.set(bits::writable);
            upper_entry.set(bits::user);
            return fillAndResolve(*table);
        }
        // Signature mismatch: fall through to a private table.
        upper_entry.clear();
    }

    PageTablePage *table =
        ensurePrivateChain(proc, canonical_va, leaf_level);
    return fillLeaf(proc, *vma, canonical_va, *table, type);
}

Process *
Kernel::fork(Process &parent, const std::string &name, Cycles &work_cycles)
{
    Process *child = createProcess(parent.ccid(), name);
    work_cycles = params_.fork_base_cycles;
    // The end-of-fork CoW-protection flush is the parent's doing.
    noteAttribCauser(parent);

    // Children inherit the parent's mappings (objects shared by pointer).
    for (const auto &vma : parent.vmas()) {
        vma.object->addMapper();
        child->addVma(vma);
    }

    Group &group = groupOf(parent);

    // Copy the page tables level by level. At the leaf-table level, clean
    // tables are group-shared under BabelFish instead of being copied.
    struct Frame
    {
        PageTablePage *src;
        PageTablePage *dst;
        Addr base;
    };
    std::vector<Frame> stack{{parent.pgd(), child->pgd(), 0}};

    while (!stack.empty()) {
        auto [src, dst, base] = stack.back();
        stack.pop_back();
        const int level = src->level();
        const std::uint64_t span = entrySpan(level);

        for (unsigned i = 0; i < entriesPerTable; ++i) {
            Entry &src_entry = src->entry(i);
            if (!src_entry.present())
                continue;
            const Addr va = base + i * span;

            const bool is_leaf = level == LevelPte || src_entry.huge();
            if (is_leaf) {
                // CoW-protect writable private translations in both.
                const Vma *vma = parent.findVma(va);
                if (vma && vma->writable && !vma->shared &&
                    src_entry.writable()) {
                    src_entry.set(bits::writable, false);
                    src_entry.set(bits::cow);
                }
                dst->entry(i) = src_entry;
                if (params_.babelfish && !dst->group_shared)
                    dst->entry(i).set(bits::owned);
                ++fork_entries_copied;
                work_cycles += params_.fork_per_entry_cycles;
                continue;
            }

            PageTablePage *next = tableByFrame(src_entry.frame());
            bf_assert(next, "fork: dangling table");
            const int next_level = next->level();
            const Addr next_base = va;

            bool next_is_leaf_table = next_level == LevelPte;
            if (!next_is_leaf_table && next_level < LevelPgd) {
                // A PMD/PUD table whose first present entry is a huge
                // leaf holds leaf entries; mixed tables are treated as
                // pointer tables (their huge leaves copy entry-wise
                // above).
                for (unsigned j = 0; j < entriesPerTable; ++j) {
                    if (next->entry(j).present()) {
                        next_is_leaf_table = next->entry(j).huge();
                        break;
                    }
                }
            }

            if (params_.babelfish && next_is_leaf_table) {
                const std::uint64_t sig = regionSignature(
                    parent, next_base, entrySpan(next_level + 1));
                const Addr mask_region =
                    tableBase(next_base, next_level + 1);
                const SharedTableKey key{next_base, next_level};

                if (!group.mask_fallback[mask_region]) {
                    auto it = group.shared_tables.find(key);
                    PageTablePage *shared = nullptr;
                    if (it != group.shared_tables.end() &&
                        it->second.signature == sig &&
                        it->second.table == next) {
                        shared = next;
                    } else if (it == group.shared_tables.end() &&
                               !next->group_shared) {
                        // Promote the parent's table to group-shared. If
                        // the parent already CoW'ed pages in it, only
                        // fork descendants may join.
                        next->group_shared = true;
                        for (unsigned j = 0; j < entriesPerTable; ++j) {
                            if (next->entry(j).present())
                                next->entry(j).set(bits::owned, false);
                        }
                        group.shared_tables[key] = SharedTableRecord{
                            next, sig,
                            tableDiverged(parent, *next, next_base)};
                        shared = next;
                    }
                    if (shared) {
                        // CoW-protect writable private leaves inside the
                        // shared table (one update covers every sharer).
                        for (unsigned j = 0; j < entriesPerTable; ++j) {
                            Entry &leaf = shared->entry(j);
                            if (!leaf.present())
                                continue;
                            const Addr lva =
                                next_base + j * entrySpan(next_level);
                            const Vma *vma = parent.findVma(lva);
                            if (vma && vma->writable && !vma->shared &&
                                leaf.writable()) {
                                leaf.set(bits::writable, false);
                                leaf.set(bits::cow);
                            }
                        }
                        Entry &dst_entry = dst->entry(i);
                        dst_entry = src_entry;
                        dst_entry.setFrame(shared->frame());
                        dst_entry.set(bits::owned, false);
                        src_entry.set(bits::owned, false);
                        bf_assert(shared->sharers < 0xffff,
                      "16-bit sharer counter saturated");
            ++shared->sharers;
                        ++tables_shared;
                        work_cycles += params_.fork_per_table_cycles;
                        continue;
                    }
                }
            }

            // Higher-level sharing (paper §III-B): a PMD (or PUD) table
            // of an all-read-only region whose present entries all point
            // at group-shared tables can itself be group-shared, so PUD
            // entries of multiple processes point at the same PMD table.
            if (params_.babelfish &&
                next_level <= params_.max_share_level &&
                regionReadOnly(parent, next_base, entrySpan(next_level + 1))) {
                const SharedTableKey key{next_base, next_level};
                const std::uint64_t sig = regionSignature(
                    parent, next_base, entrySpan(next_level + 1));
                auto it = group.shared_tables.find(key);
                PageTablePage *shared = nullptr;
                if (it != group.shared_tables.end() &&
                    it->second.signature == sig &&
                    it->second.table == next) {
                    shared = next;
                } else if (it == group.shared_tables.end() &&
                           !next->group_shared &&
                           pointerTableShareable(*next)) {
                    next->group_shared = true;
                    group.shared_tables[key] = SharedTableRecord{next, sig};
                    shared = next;
                }
                if (shared) {
                    Entry &dst_entry = dst->entry(i);
                    dst_entry = src_entry;
                    dst_entry.setFrame(shared->frame());
                    dst_entry.set(bits::owned, false);
                    src_entry.set(bits::owned, false);
                    bf_assert(shared->sharers < 0xffff,
                      "16-bit sharer counter saturated");
            ++shared->sharers;
                    ++tables_shared;
                    work_cycles += params_.fork_per_table_cycles;
                    continue;
                }
            }

            // Private copy of the next-level table.
            PageTablePage *copy = allocateTable(next_level);
            Entry &dst_entry = dst->entry(i);
            dst_entry = src_entry;
            dst_entry.setFrame(copy->frame());
            work_cycles += params_.fork_per_table_cycles;
            stack.push_back({next, copy, next_base});
        }
    }

    // The parent's cached translations may have lost write permission
    // (CoW protection); drop them in one flush, as Linux does.
    invalidateTlbs(TlbInvalidate{TlbInvalidate::Kind::Pcid, parent.ccid(),
                                 parent.pcid(), 0, 0, PageSize::Size4K});

    return child;
}

void
Kernel::releaseTablePointer(Group &group, PageTablePage *table)
{
    if (table->group_shared) {
        bf_assert(table->sharers > 0, "sharer underflow on release");
        if (--table->sharers > 0)
            return; // other sharers keep the subtree alive
        // Last pointer removed: unregister (the paper's 16-bit counter
        // reaching zero) and fall through to free the subtree.
        for (auto it = group.shared_tables.begin();
             it != group.shared_tables.end(); ++it) {
            if (it->second.table == table) {
                group.shared_tables.erase(it);
                break;
            }
        }
    }
    if (table->level() > LevelPte) {
        for (unsigned i = 0; i < entriesPerTable; ++i) {
            const Entry &entry = table->entry(i);
            if (entry.present() && !entry.huge()) {
                PageTablePage *next = tableByFrame(entry.frame());
                if (next)
                    releaseTablePointer(group, next);
            }
        }
    }
    freeTable(table);
}

Cycles
Kernel::munmap(Process &proc, Addr start)
{
    noteAttribCauser(proc);
    Vma *vma = proc.findVma(start);
    bf_assert(vma && vma->start == start,
              "munmap: no VMA starts at ", start);
    Group &group = groupOf(proc);
    const int leaf_level = vma->leafLevel();
    const Addr end = vma->end;
    Cycles work = 1200; // base syscall + VMA bookkeeping

    // Drop the pointer to every leaf table overlapping the VMA.
    const std::uint64_t region_span = entrySpan(leaf_level + 1);
    for (Addr region = entryBase(start, leaf_level + 1); region < end;
         region += region_span) {
        PageTablePage *upper = tableAt(proc, region, leaf_level + 1);
        if (!upper)
            continue;
        Entry &entry = upper->entryFor(region);
        if (!entry.present() || entry.huge())
            continue;
        PageTablePage *leaf = tableByFrame(entry.frame());
        if (!leaf)
            continue;
        entry.clear();
        work += 300;
        releaseTablePointer(group, leaf);
    }
    vma->object->removeMapper();
    proc.removeVma(start);
    noteMutation();

    // Flush the process' cached translations (coarse, like a full-VMA
    // shootdown with an invpcid).
    invalidateTlbs(TlbInvalidate{TlbInvalidate::Kind::Pcid, proc.ccid(),
                                 proc.pcid(), 0, 0, PageSize::Size4K});
    return work;
}

void
Kernel::exitProcess(Process &proc)
{
    noteAttribCauser(proc);
    Group &group = groupOf(proc);

    // Release the page-table tree: one pointer drop at the root cascades
    // through shared subtrees via the sharer counters.
    releaseTablePointer(group, proc.pgd());

    invalidateTlbs(TlbInvalidate{TlbInvalidate::Kind::Pcid, proc.ccid(),
                                 proc.pcid(), 0, 0, PageSize::Size4K});
    proc.markDead();
    std::erase(group.members, proc.pid());
    processes_.erase(proc.pid());
    noteMutation();
    // Pids are never reused, so stale {pid, region} cache entries can
    // never match a future process — the bump is belt and braces.
    ++group.mask_generation;
}

MaskPage *
Kernel::maskFor(Ccid ccid, Addr canonical_va)
{
    auto git = groups_.find(ccid);
    if (git == groups_.end())
        return nullptr;
    // Mask regions are keyed by the base of the span of the table above
    // the leaf table (1 GB for 4 KB leaves); try every leaf level.
    for (int leaf_level : {LevelPte, LevelPmd, LevelPud}) {
        const Addr base = tableBase(canonical_va, leaf_level + 1);
        auto it = git->second.masks.find(base);
        if (it != git->second.masks.end())
            return it->second.get();
    }
    return nullptr;
}

int
Kernel::processBit(const Process &proc, Addr canonical_va) const
{
    // Fast path: a process that never CoW'ed in a shared region owns no
    // bit anywhere, and that is the overwhelmingly common translate-time
    // case. One flag test, no per-level region lookups.
    if (!proc.hasMaskBits())
        return -1;
    for (int leaf_level : {LevelPte, LevelPmd, LevelPud}) {
        const Addr base = tableBase(canonical_va, leaf_level + 1);
        const int bit = proc.bitIn(base);
        if (bit >= 0)
            return bit;
    }
    return -1;
}

const std::uint64_t *
Kernel::maskGenerationPtr(Ccid ccid) const
{
    const auto it = groups_.find(ccid);
    return it == groups_.end() ? nullptr : &it->second.mask_generation;
}

void
Kernel::invalidateTlbs(const TlbInvalidate &inv)
{
    ++shootdowns;
    if (attrib_) {
        // Causer: the container the current kernel entry point stamped.
        // Every shootdown bills exactly one causer, so the per-tenant
        // sums reconcile with the global `shootdowns` counter.
        attrib_->noteShootdownCaused(attrib_causer_slot_,
                                     inv.ccid != attrib_causer_ccid_);
        // Receivers: who loses cached translations. Page/Pcid kinds
        // target one PCID; SharedRange reaches every live group member
        // (their shared O-clear entries are the ones dropped).
        if (inv.kind == TlbInvalidate::Kind::SharedRange) {
            const auto git = groups_.find(inv.ccid);
            if (git != groups_.end()) {
                for (const Pid pid : git->second.members) {
                    const Process *member = processByPid(pid);
                    if (!member || !member->alive())
                        continue;
                    attrib_->noteShootdownReceived(
                        member->attribSlot(),
                        member->ccid() != attrib_causer_ccid_);
                }
            }
        } else {
            const int slot = attrib_->slotOfPcid(inv.pcid);
            if (slot >= 0)
                attrib_->noteShootdownReceived(
                    slot, attrib_->tenant(slot).ccid !=
                              attrib_causer_ccid_);
        }
    }
    if (tracer_)
        tracer_->recordKernel(
            trace::EventType::Shootdown, inv.ccid, 0,
            inv.vpn << pageShift(inv.size),
            trace::packShootdown(inv.num_pages, inv.pcid,
                                 static_cast<unsigned>(inv.size)),
            static_cast<std::uint8_t>(inv.kind));
    if (tlb_hook_)
        tlb_hook_(inv);
}

void
Kernel::forEachTranslation(
    const Process &proc,
    const std::function<void(Addr, const Entry &, PageSize)> &fn) const
{
    struct Frame
    {
        const PageTablePage *table;
        Addr base;
    };
    std::vector<Frame> stack{{proc.pgd(), 0}};
    while (!stack.empty()) {
        auto [table, base] = stack.back();
        stack.pop_back();
        const int level = table->level();
        const std::uint64_t span = entrySpan(level);
        for (unsigned i = 0; i < entriesPerTable; ++i) {
            const Entry &entry = table->entry(i);
            if (!entry.present())
                continue;
            const Addr va = base + i * span;
            if (level == LevelPte) {
                fn(va, entry, PageSize::Size4K);
            } else if (entry.huge()) {
                fn(va, entry,
                   level == LevelPmd ? PageSize::Size2M : PageSize::Size1G);
            } else {
                auto it = tables_.find(entry.frame());
                if (it != tables_.end())
                    stack.push_back({it->second.get(), va});
            }
        }
    }
}

void
Kernel::clearAccessedBits()
{
    for (auto &[frame, table] : tables_) {
        for (unsigned i = 0; i < entriesPerTable; ++i) {
            Entry &entry = table->entry(i);
            if (entry.present() &&
                (table->level() == LevelPte || entry.huge()))
                entry.set(bits::accessed, false);
        }
    }
}

std::vector<Process *>
Kernel::processes()
{
    std::vector<Process *> result;
    for (auto &[pid, proc] : processes_)
        result.push_back(proc.get());
    return result;
}

std::uint64_t
Kernel::countTablePages(const Process &proc) const
{
    std::uint64_t count = 0;
    std::vector<const PageTablePage *> stack{proc.pgd()};
    while (!stack.empty()) {
        const PageTablePage *table = stack.back();
        stack.pop_back();
        ++count;
        if (table->level() == LevelPte)
            continue;
        for (unsigned i = 0; i < entriesPerTable; ++i) {
            const Entry &entry = table->entry(i);
            if (!entry.present() || entry.huge())
                continue;
            auto it = tables_.find(entry.frame());
            if (it != tables_.end())
                stack.push_back(it->second.get());
        }
    }
    return count;
}

namespace
{

/** Restore-side invariant check: throw, never crash, on divergence. */
void
ckptCheck(bool ok, const char *what)
{
    if (!ok) {
        throw snap::SnapshotError(
            std::string("kernel checkpoint mismatch: ") + what);
    }
}

} // namespace

void
Kernel::save(snap::ArchiveWriter &ar) const
{
    // Configuration fingerprint first: restore() refuses a checkpoint
    // taken under a different OS model before touching any state.
    ar.b(params_.babelfish);
    ar.u32(static_cast<std::uint32_t>(params_.max_share_level));
    ar.b(params_.thp);
    ar.u32(params_.max_cow_writers);
    ar.u8(static_cast<std::uint8_t>(params_.aslr));
    ar.u64(params_.mem_frames);

    ar.u64(next_pid_);
    ar.u64(next_pcid_);
    ar.u64(next_ccid_);
    ar.u64(next_object_id_);

    ar.u64(allocator_.nextFrame());
    ar.u64(allocator_.freeList().size());
    for (const Ppn ppn : allocator_.freeList())
        ar.u64(ppn);

    ar.u32(static_cast<std::uint32_t>(objects_.size()));
    for (const auto &obj : objects_) {
        ar.u64(obj->id());
        ar.u64(obj->bytes());
        ar.b(obj->isFile());
        ar.b(obj->preloaded());
        ar.u32(obj->mappers());
        ar.u64(obj->frames().size());
        for (const Ppn frame : obj->frames())
            ar.u64(frame);
    }

    // Emit tables sorted by frame so the archive bytes are independent
    // of the unordered_map's iteration order.
    std::vector<const PageTablePage *> tables;
    tables.reserve(tables_.size());
    for (const auto &[frame, table] : tables_)
        tables.push_back(table.get());
    std::sort(tables.begin(), tables.end(),
              [](const PageTablePage *a, const PageTablePage *b) {
                  return a->frame() < b->frame();
              });
    ar.u32(static_cast<std::uint32_t>(tables.size()));
    for (const PageTablePage *table : tables) {
        ar.u64(table->frame());
        ar.u8(static_cast<std::uint8_t>(table->level()));
        ar.u16(table->sharers);
        ar.b(table->group_shared);
        for (unsigned i = 0; i < entriesPerTable; ++i)
            ar.u64(table->entry(i).raw);
    }

    ar.u32(static_cast<std::uint32_t>(processes_.size()));
    for (const auto &[pid, proc] : processes_) {
        ar.u32(pid);
        ar.str(proc->name());
        ar.u16(proc->pcid());
        ar.u16(proc->ccid());
        ar.u64(proc->pgd() ? proc->pgd()->frame() : 0);

        ar.u32(static_cast<std::uint32_t>(proc->vmas().size()));
        for (const Vma &vma : proc->vmas()) {
            ar.u64(vma.start);
            ar.u64(vma.end);
            ar.b(vma.writable);
            ar.b(vma.exec);
            ar.b(vma.shared);
            ar.u8(static_cast<std::uint8_t>(vma.page_size));
            ar.u64(vma.object ? vma.object->id() : 0);
            ar.u64(vma.object_offset);
        }

        ar.u32(static_cast<std::uint32_t>(proc->maskBits().size()));
        for (const auto &[region, bit] : proc->maskBits()) {
            ar.u64(region);
            ar.u32(static_cast<std::uint32_t>(bit));
        }

        for (unsigned s = 0; s < numSegments; ++s)
            ar.i64(proc->aslr_offsets.offset[s]);
        for (unsigned s = 0; s < numSegments; ++s)
            ar.i64(proc->aslr_transform.diff().offset[s]);
    }

    ar.u32(static_cast<std::uint32_t>(groups_.size()));
    for (const auto &[ccid, group] : groups_) {
        ar.u16(ccid);
        ar.str(group.name);
        for (unsigned s = 0; s < numSegments; ++s)
            ar.i64(group.offsets.offset[s]);
        ar.u64(group.aslr_seed);

        ar.u32(static_cast<std::uint32_t>(group.members.size()));
        for (const Pid member : group.members)
            ar.u32(member);
        ar.u64(group.mask_generation);

        ar.u32(static_cast<std::uint32_t>(group.masks.size()));
        for (const auto &[region_base, mask] : group.masks) {
            ar.u64(region_base);
            ar.u64(mask->frame());
            for (unsigned i = 0; i < entriesPerTable; ++i)
                ar.u32(mask->bitmasks()[i]);
            ar.u32(static_cast<std::uint32_t>(mask->pidList().size()));
            for (const Pid writer : mask->pidList())
                ar.u32(writer);
        }

        ar.u32(static_cast<std::uint32_t>(group.mask_fallback.size()));
        for (const auto &[region_base, reverted] : group.mask_fallback) {
            ar.u64(region_base);
            ar.b(reverted);
        }

        ar.u32(static_cast<std::uint32_t>(group.shared_tables.size()));
        for (const auto &[key, rec] : group.shared_tables) {
            ar.u64(key.region_base);
            ar.u8(static_cast<std::uint8_t>(key.level));
            ar.u64(rec.table->frame());
            ar.u64(rec.signature);
            ar.b(rec.fork_only);
        }
    }
}

void
Kernel::restore(snap::ArchiveReader &ar)
{
    noteMutation(); // everything the fault memos point at is replaced
    ckptCheck(ar.b() == params_.babelfish, "babelfish flag");
    ckptCheck(ar.u32() ==
                  static_cast<std::uint32_t>(params_.max_share_level),
              "max_share_level");
    ckptCheck(ar.b() == params_.thp, "thp");
    ckptCheck(ar.u32() == params_.max_cow_writers, "max_cow_writers");
    ckptCheck(ar.u8() == static_cast<std::uint8_t>(params_.aslr),
              "aslr mode");
    ckptCheck(ar.u64() == params_.mem_frames, "mem_frames");

    next_pid_ = static_cast<Pid>(ar.u64());
    next_pcid_ = static_cast<Pcid>(ar.u64());
    next_ccid_ = static_cast<Ccid>(ar.u64());
    next_object_id_ = ar.u64();

    const Ppn alloc_next = ar.u64();
    std::vector<Ppn> free_list(ar.u64());
    for (Ppn &ppn : free_list)
        ppn = ar.u64();
    allocator_.restoreState(alloc_next, std::move(free_list));

    // Objects are matched by id: ids are assigned sequentially and
    // objects are never destroyed, so the rebuilt world created the
    // same set in the same order.
    std::map<std::uint64_t, MappedObject *> objects_by_id;
    for (const auto &obj : objects_)
        objects_by_id[obj->id()] = obj.get();
    ckptCheck(ar.u32() == objects_.size(), "object count");
    for (std::size_t i = 0; i < objects_.size(); ++i) {
        const std::uint64_t id = ar.u64();
        const auto it = objects_by_id.find(id);
        ckptCheck(it != objects_by_id.end(), "unknown object id");
        MappedObject &obj = *it->second;
        ckptCheck(ar.u64() == obj.bytes(), "object size");
        ckptCheck(ar.b() == obj.isFile(), "object kind");
        const bool preloaded = ar.b();
        const unsigned mappers = ar.u32();
        std::vector<Ppn> frames(ar.u64());
        ckptCheck(frames.size() == obj.frames().size(),
                  "object frame count");
        for (Ppn &frame : frames)
            frame = ar.u64();
        obj.restoreState(preloaded, mappers, std::move(frames));
    }

    // Page tables are rebuilt wholesale, keyed by backing frame. Direct
    // construction, not allocateTable(): frames come from the archive
    // and the allocation stats were already counted by the saving run.
    tables_.clear();
    const std::uint32_t table_count = ar.u32();
    for (std::uint32_t t = 0; t < table_count; ++t) {
        const Ppn frame = ar.u64();
        const int level = ar.u8();
        auto table = table_pool_.make(level, frame);
        table->sharers = ar.u16();
        table->group_shared = ar.b();
        for (unsigned i = 0; i < entriesPerTable; ++i)
            table->entry(i).raw = ar.u64();
        tables_[frame] = std::move(table);
    }

    ckptCheck(ar.u32() == processes_.size(), "process count");
    for (std::size_t i = 0; i < processes_.size(); ++i) {
        const Pid pid = ar.u32();
        const auto it = processes_.find(pid);
        ckptCheck(it != processes_.end(), "unknown pid");
        Process &proc = *it->second;
        ckptCheck(ar.str() == proc.name(), "process name");
        ckptCheck(ar.u16() == proc.pcid(), "process pcid");
        ckptCheck(ar.u16() == proc.ccid(), "process ccid");
        PageTablePage *pgd = tableByFrame(ar.u64());
        ckptCheck(pgd != nullptr, "process pgd frame");
        proc.setPgd(pgd);

        proc.vmas().clear();
        const std::uint32_t vma_count = ar.u32();
        for (std::uint32_t v = 0; v < vma_count; ++v) {
            Vma vma;
            vma.start = ar.u64();
            vma.end = ar.u64();
            vma.writable = ar.b();
            vma.exec = ar.b();
            vma.shared = ar.b();
            vma.page_size = static_cast<PageSize>(ar.u8());
            const std::uint64_t object_id = ar.u64();
            if (object_id != 0) {
                const auto obj_it = objects_by_id.find(object_id);
                ckptCheck(obj_it != objects_by_id.end(),
                          "vma object id");
                vma.object = obj_it->second;
            }
            vma.object_offset = ar.u64();
            proc.vmas().push_back(vma);
        }

        std::vector<std::pair<Addr, int>> mask_bits(ar.u32());
        for (auto &[region, bit] : mask_bits) {
            region = ar.u64();
            bit = static_cast<int>(ar.u32());
        }
        proc.setMaskBits(std::move(mask_bits));

        for (unsigned s = 0; s < numSegments; ++s)
            proc.aslr_offsets.offset[s] = ar.i64();
        // The transform stores diff = group - process; feeding the
        // saved diff as "group" against zero "process" offsets rebuilds
        // the identical module state.
        AslrOffsets diff;
        for (unsigned s = 0; s < numSegments; ++s)
            diff.offset[s] = ar.i64();
        proc.aslr_transform = AslrTransform(diff, AslrOffsets{});
    }

    ckptCheck(ar.u32() == groups_.size(), "group count");
    for (std::size_t i = 0; i < groups_.size(); ++i) {
        const Ccid ccid = ar.u16();
        const auto it = groups_.find(ccid);
        ckptCheck(it != groups_.end(), "unknown ccid");
        Group &group = it->second;
        ckptCheck(ar.str() == group.name, "group name");
        for (unsigned s = 0; s < numSegments; ++s)
            group.offsets.offset[s] = ar.i64();
        group.aslr_seed = ar.u64();

        ckptCheck(ar.u32() == group.members.size(), "group member count");
        for (const Pid member : group.members)
            ckptCheck(ar.u32() == member, "group member pid");
        group.mask_generation = ar.u64();

        group.masks.clear();
        const std::uint32_t mask_count = ar.u32();
        for (std::uint32_t m = 0; m < mask_count; ++m) {
            const Addr region_base = ar.u64();
            const Ppn frame = ar.u64();
            auto mask = mask_pool_.make(frame, region_base);
            std::array<std::uint32_t, entriesPerTable> bitmasks;
            for (auto &bits : bitmasks)
                bits = ar.u32();
            std::vector<Pid> pid_list(ar.u32());
            for (Pid &writer : pid_list)
                writer = ar.u32();
            mask->restoreState(bitmasks, std::move(pid_list));
            group.masks[region_base] = std::move(mask);
        }

        group.mask_fallback.clear();
        const std::uint32_t fallback_count = ar.u32();
        for (std::uint32_t f = 0; f < fallback_count; ++f) {
            const Addr region_base = ar.u64();
            group.mask_fallback[region_base] = ar.b();
        }

        group.shared_tables.clear();
        const std::uint32_t shared_count = ar.u32();
        for (std::uint32_t s = 0; s < shared_count; ++s) {
            SharedTableKey key;
            key.region_base = ar.u64();
            key.level = ar.u8();
            SharedTableRecord rec;
            rec.table = tableByFrame(ar.u64());
            ckptCheck(rec.table != nullptr, "shared table frame");
            rec.signature = ar.u64();
            rec.fork_only = ar.b();
            group.shared_tables[key] = rec;
        }
    }
}

} // namespace bf::vm
