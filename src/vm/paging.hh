/**
 * @file
 * x86-64 page-table entry layout and address decomposition.
 *
 * Entries follow the hardware layout: present/writable/user/accessed/dirty
 * at their architectural positions, PS (huge) at bit 7, and the physical
 * frame number in bits 12..51. BabelFish claims the currently-unused bits
 * 9 and 10 of pmd_t for ORPC and O respectively (paper Fig. 5(a)). We add
 * one software bit (bit 11, ignored by hardware) to mark Copy-on-Write
 * translations, as Linux does with its software bits.
 */

#ifndef BF_VM_PAGING_HH
#define BF_VM_PAGING_HH

#include <atomic>
#include <cstdint>

#include "common/types.hh"

namespace bf::vm
{

/** Page-table levels, numbered as in the x86-64 walk. */
enum PageLevel : int
{
    LevelPte = 1, //!< Page Table; entries map 4 KB pages.
    LevelPmd = 2, //!< Page Middle Directory; leaf entries map 2 MB pages.
    LevelPud = 3, //!< Page Upper Directory; leaf entries map 1 GB pages.
    LevelPgd = 4, //!< Page Global Directory (root, CR3 points here).
};

/** Entries per table page (512 in x86-64). */
inline constexpr unsigned entriesPerTable = 512;

/** Bytes of one page-table entry. */
inline constexpr unsigned bytesPerEntry = 8;

/** Architectural bit positions. */
namespace bits
{
inline constexpr std::uint64_t present = 1ull << 0;
inline constexpr std::uint64_t writable = 1ull << 1;
inline constexpr std::uint64_t user = 1ull << 2;
inline constexpr std::uint64_t accessed = 1ull << 5;
inline constexpr std::uint64_t dirty = 1ull << 6;
inline constexpr std::uint64_t huge = 1ull << 7;   //!< PS bit.
inline constexpr std::uint64_t orpc = 1ull << 9;   //!< BabelFish OR-of-PC.
inline constexpr std::uint64_t owned = 1ull << 10; //!< BabelFish Ownership.
inline constexpr std::uint64_t cow = 1ull << 11;   //!< Software CoW mark.
inline constexpr std::uint64_t nx = 1ull << 63;    //!< No-execute.
inline constexpr std::uint64_t frame_mask = 0x000f'ffff'ffff'f000ull;
} // namespace bits

/** One 64-bit page-table entry at any level. */
struct Entry
{
    std::uint64_t raw = 0;

    bool present() const { return raw & bits::present; }
    bool writable() const { return raw & bits::writable; }
    bool user() const { return raw & bits::user; }
    bool accessed() const { return raw & bits::accessed; }
    bool dirty() const { return raw & bits::dirty; }
    bool huge() const { return raw & bits::huge; }
    bool orpc() const { return raw & bits::orpc; }
    bool owned() const { return raw & bits::owned; }
    bool cow() const { return raw & bits::cow; }
    bool noExec() const { return raw & bits::nx; }

    /** Physical frame number held in bits 12..51. */
    Ppn
    frame() const
    {
        return (raw & bits::frame_mask) >> basePageShift;
    }

    void
    setFrame(Ppn ppn)
    {
        raw = (raw & ~bits::frame_mask) |
              ((ppn << basePageShift) & bits::frame_mask);
    }

    void set(std::uint64_t bit, bool value = true)
    {
        if (value)
            raw |= bit;
        else
            raw &= ~bit;
    }

    void clear() { raw = 0; }

    /**
     * Snapshot of the entry for walkers running concurrently with other
     * cores' walks. Page tables are read-only during bound phases except
     * for A/D updates through fetchOr(), so a relaxed load is enough —
     * like the hardware, a walker decodes one self-consistent 64-bit
     * value. (atomic_ref on a const object needs C++26, hence the cast.)
     */
    Entry
    load() const
    {
        std::atomic_ref<std::uint64_t> ref(const_cast<Entry *>(this)->raw);
        return Entry{ref.load(std::memory_order_relaxed)};
    }

    /**
     * Idempotent bit-set for the hardware A/D update, race-free against
     * concurrent walks of group-shared tables. The final value is the
     * same under every interleaving (bits are only ORed in), which keeps
     * parallel bound phases deterministic.
     */
    void
    fetchOr(std::uint64_t mask)
    {
        std::atomic_ref<std::uint64_t> ref(raw);
        ref.fetch_or(mask, std::memory_order_relaxed);
    }

    /**
     * Permission signature used when deciding whether two translations are
     * identical (shareable): W, U, NX and CoW must all match.
     */
    std::uint64_t
    permBits() const
    {
        return raw & (bits::writable | bits::user | bits::nx | bits::cow);
    }
};

static_assert(sizeof(Entry) == bytesPerEntry);

/** Index into the table at a given level for a virtual address. */
constexpr unsigned
tableIndex(Addr va, int level)
{
    const int shift = basePageShift + 9 * (level - 1);
    return static_cast<unsigned>((va >> shift) & 0x1ff);
}

/** Bytes of address space mapped by ONE ENTRY at a level. */
constexpr std::uint64_t
entrySpan(int level)
{
    return std::uint64_t{1} << (basePageShift + 9 * (level - 1));
}

/** Bytes of address space mapped by a WHOLE TABLE at a level. */
constexpr std::uint64_t
tableSpan(int level)
{
    return entrySpan(level) * entriesPerTable;
}

/** First VA covered by the table containing va at a level. */
constexpr Addr
tableBase(Addr va, int level)
{
    return va & ~(tableSpan(level) - 1);
}

/** First VA covered by the entry containing va at a level. */
constexpr Addr
entryBase(Addr va, int level)
{
    return va & ~(entrySpan(level) - 1);
}

/** Page size mapped by a leaf entry at a level. */
constexpr PageSize
leafPageSize(int level)
{
    switch (level) {
      case LevelPte: return PageSize::Size4K;
      case LevelPmd: return PageSize::Size2M;
      case LevelPud: return PageSize::Size1G;
    }
    return PageSize::Size4K;
}

} // namespace bf::vm

#endif // BF_VM_PAGING_HH
