/**
 * @file
 * The BabelFish MaskPage (paper Appendix, Figs. 12 and 13).
 *
 * One MaskPage is associated with each "PMD table set" of a CCID group:
 * the per-process PMD tables that map the same 1 GB canonical region. It
 * holds 512 PrivateCopy bitmasks — one per pmd_t entry, i.e. one per 2 MB
 * region — and a single ordered pid_list of up to 32 processes that have
 * performed a CoW anywhere in the region. The position of a pid in the
 * list is the bit that process owns in every PC bitmask of the page.
 *
 * The MaskPage is backed by a physical frame: on a TLB miss with ORPC set
 * the hardware fetches the PC bitmask through the cache hierarchy in
 * parallel with the pte_t (paper: the 12-cycle L2 TLB access time).
 */

#ifndef BF_VM_MASK_PAGE_HH
#define BF_VM_MASK_PAGE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "vm/paging.hh"

namespace bf::vm
{

/** PC bitmasks and pid_list for one PMD table set of a CCID group. */
class MaskPage
{
  public:
    /** Maximum distinct CoW-writing processes per PMD table set. */
    static constexpr unsigned maxWriters = 32;

    /**
     * @param frame physical frame backing this MaskPage.
     * @param region_base first canonical VA of the 1 GB region covered.
     */
    MaskPage(Ppn frame, Addr region_base)
        : frame_(frame), region_base_(region_base)
    {}

    Ppn frame() const { return frame_; }
    Addr regionBase() const { return region_base_; }

    /** Bit index owned by pid, or -1 if pid is not in the pid_list. */
    int
    bitFor(Pid pid) const
    {
        for (unsigned i = 0; i < pid_list_.size(); ++i) {
            if (pid_list_[i] == pid)
                return static_cast<int>(i);
        }
        return -1;
    }

    /**
     * Add a process to the pid_list (its first CoW in this PMD table set).
     * @return the bit index assigned, or -1 when the 32 slots are full
     *         (the caller must then revert the whole set to private
     *         translations, paper Fig. 12(b)).
     */
    int
    addWriter(Pid pid)
    {
        bf_assert(bitFor(pid) < 0, "pid ", pid, " already in pid_list");
        if (pid_list_.size() >= maxWriters)
            return -1;
        pid_list_.push_back(pid);
        return static_cast<int>(pid_list_.size() - 1);
    }

    /** PC bitmask of pmd_t entry @p pmd_index (one per 2 MB region). */
    std::uint32_t
    bitmask(unsigned pmd_index) const
    {
        return bitmasks_[pmd_index];
    }

    /** PC bitmask covering canonical address @p va. */
    std::uint32_t
    bitmaskFor(Addr va) const
    {
        return bitmasks_[tableIndex(va, LevelPmd)];
    }

    /** Set bit @p bit in the bitmask of pmd_t entry @p pmd_index. */
    void
    setBit(unsigned pmd_index, unsigned bit)
    {
        bf_assert(bit < maxWriters, "PC bit out of range");
        bitmasks_[pmd_index] |= (1u << bit);
    }

    /** OR of all bits of the bitmask for a pmd_t entry. */
    bool
    orpc(unsigned pmd_index) const
    {
        return bitmasks_[pmd_index] != 0;
    }

    /** Number of processes in the pid_list. */
    unsigned writerCount() const
    {
        return static_cast<unsigned>(pid_list_.size());
    }

    /** Physical address the hardware reads the bitmask from. */
    Addr
    bitmaskPaddr(unsigned pmd_index) const
    {
        return frame_ * basePageBytes + pmd_index * sizeof(std::uint32_t);
    }

    /** @{ @name Checkpointing (Kernel only) */
    const std::array<std::uint32_t, entriesPerTable> &bitmasks() const
    {
        return bitmasks_;
    }
    const std::vector<Pid> &pidList() const { return pid_list_; }
    void
    restoreState(const std::array<std::uint32_t, entriesPerTable> &bitmasks,
                 std::vector<Pid> pid_list)
    {
        bitmasks_ = bitmasks;
        pid_list_ = std::move(pid_list);
    }
    /** @} */

  private:
    Ppn frame_;
    Addr region_base_;
    std::array<std::uint32_t, entriesPerTable> bitmasks_{};
    std::vector<Pid> pid_list_;
};

} // namespace bf::vm

#endif // BF_VM_MASK_PAGE_HH
