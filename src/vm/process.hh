/**
 * @file
 * The process abstraction: address space root, VMAs, identifiers.
 *
 * Containers use the process abstraction for isolation (paper §II-A); one
 * container is modeled as one process, as Docker best practice prescribes.
 */

#ifndef BF_VM_PROCESS_HH
#define BF_VM_PROCESS_HH

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "vm/aslr.hh"
#include "vm/vma.hh"

namespace bf::vm
{

class PageTablePage;

/** One simulated process / container instance. */
class Process
{
  public:
    Process(Pid pid, Pcid pcid, Ccid ccid, std::string name,
            PageTablePage *pgd)
        : pid_(pid), pcid_(pcid), ccid_(ccid), name_(std::move(name)),
          pgd_(pgd)
    {}

    Pid pid() const { return pid_; }
    Pcid pcid() const { return pcid_; }
    Ccid ccid() const { return ccid_; }
    const std::string &name() const { return name_; }
    PageTablePage *pgd() const { return pgd_; }
    bool alive() const { return alive_; }
    void markDead() { alive_ = false; }

    /**
     * @{
     * @name Attribution (common/attrib)
     * Dense tenant slot in the attrib::Registry, -1 when no registry is
     * attached (standalone kernels, BF_ATTRIB=0). Cached here so the
     * translate hot path books per-tenant counters without a map
     * lookup.
     */
    int attribSlot() const { return attrib_slot_; }
    void setAttribSlot(int slot) { attrib_slot_ = slot; }
    /** @} */

    /** VMA containing a canonical VA, or nullptr. */
    Vma *
    findVma(Addr va)
    {
        for (auto &vma : vmas_) {
            if (vma.contains(va))
                return &vma;
        }
        return nullptr;
    }

    const Vma *
    findVma(Addr va) const
    {
        return const_cast<Process *>(this)->findVma(va);
    }

    /** Append a mapping; ranges must not overlap. */
    void
    addVma(const Vma &vma)
    {
        for (const auto &existing : vmas_) {
            bf_assert(vma.end <= existing.start ||
                          vma.start >= existing.end,
                      "overlapping mmap at ", vma.start, " in ", name_);
        }
        vmas_.push_back(vma);
    }

    std::vector<Vma> &vmas() { return vmas_; }
    const std::vector<Vma> &vmas() const { return vmas_; }

    /** Remove the VMA starting at @p start; false if absent. */
    bool
    removeVma(Addr start)
    {
        for (auto it = vmas_.begin(); it != vmas_.end(); ++it) {
            if (it->start == start) {
                vmas_.erase(it);
                return true;
            }
        }
        return false;
    }

    /**
     * @{
     * @name BabelFish PC-bitmask bit assignment
     * Bit index this process owns in the MaskPage covering a region
     * (assigned at the first CoW there), keyed by mask-region base VA.
     *
     * Kept as a flat sorted vector: the set is tiny (one entry per
     * 1 GB region the process CoW'ed in) and bitIn() sits on the MMU's
     * translate path, where a binary search over contiguous storage
     * beats chasing std::map nodes. hasMaskBits() lets callers skip
     * the search entirely for the common process that never CoW'ed.
     */
    bool hasMaskBits() const { return !mask_bits_.empty(); }

    int
    bitIn(Addr mask_region) const
    {
        const auto it = std::lower_bound(
            mask_bits_.begin(), mask_bits_.end(), mask_region,
            [](const std::pair<Addr, int> &e, Addr key) {
                return e.first < key;
            });
        return it != mask_bits_.end() && it->first == mask_region
                   ? it->second
                   : -1;
    }

    void
    setBitIn(Addr mask_region, int bit)
    {
        const auto it = std::lower_bound(
            mask_bits_.begin(), mask_bits_.end(), mask_region,
            [](const std::pair<Addr, int> &e, Addr key) {
                return e.first < key;
            });
        if (it != mask_bits_.end() && it->first == mask_region)
            it->second = bit;
        else
            mask_bits_.insert(it, { mask_region, bit });
    }
    /** @} */

    /** @{ @name ASLR state */
    AslrOffsets aslr_offsets{};
    AslrTransform aslr_transform{};
    /** @} */

    /** @{ @name Checkpointing (Kernel::restore only) */
    void setPgd(PageTablePage *pgd) { pgd_ = pgd; }
    const std::vector<std::pair<Addr, int>> &maskBits() const
    {
        return mask_bits_;
    }
    void setMaskBits(std::vector<std::pair<Addr, int>> bits)
    {
        mask_bits_ = std::move(bits);
    }
    /** @} */

  private:
    Pid pid_;
    Pcid pcid_;
    Ccid ccid_;
    std::string name_;
    PageTablePage *pgd_;
    int attrib_slot_ = -1;
    bool alive_ = true;
    std::vector<Vma> vmas_;
    std::vector<std::pair<Addr, int>> mask_bits_; //!< Sorted by region.
};

} // namespace bf::vm

#endif // BF_VM_PROCESS_HH
