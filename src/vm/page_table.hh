/**
 * @file
 * Page-table pages.
 *
 * Each table page is backed by a real simulated physical frame, so a page
 * walk can issue cache-hierarchy requests with the true physical address
 * of every entry it reads. Sharing a table page between processes (the
 * BabelFish page-table fusion) therefore automatically produces the cache
 * reuse the paper describes: two walks that read the same pte_t touch the
 * same physical cache line.
 */

#ifndef BF_VM_PAGE_TABLE_HH
#define BF_VM_PAGE_TABLE_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "vm/paging.hh"

namespace bf::vm
{

/** One 4 KB page of 512 page-table entries at some level. */
class PageTablePage
{
  public:
    /**
     * @param level table level (LevelPte..LevelPgd).
     * @param frame physical frame backing this page.
     */
    PageTablePage(int level, Ppn frame) : level_(level), frame_(frame) {}

    int level() const { return level_; }
    Ppn frame() const { return frame_; }

    Entry &entry(unsigned idx) { return entries_[idx]; }
    const Entry &entry(unsigned idx) const { return entries_[idx]; }

    /** Entry for a virtual address at this table's level. */
    Entry &entryFor(Addr va) { return entries_[tableIndex(va, level_)]; }
    const Entry &
    entryFor(Addr va) const
    {
        return entries_[tableIndex(va, level_)];
    }

    /** Physical byte address of entry idx (what the walker fetches). */
    Addr
    entryPaddr(unsigned idx) const
    {
        return frame_ * basePageBytes + idx * bytesPerEntry;
    }

    /** Physical byte address of the entry covering va. */
    Addr
    entryPaddrFor(Addr va) const
    {
        return entryPaddr(tableIndex(va, level_));
    }

    /** Number of present entries (bookkeeping / tests). */
    unsigned
    presentCount() const
    {
        unsigned n = 0;
        for (const auto &e : entries_)
            if (e.present())
                ++n;
        return n;
    }

    /**
     * @{
     * @name BabelFish sharing bookkeeping
     * The paper attaches a 16-bit counter to each table at the sharing
     * level; when the last sharer unmaps, the table is freed.
     */
    std::uint16_t sharers = 1;
    bool group_shared = false; //!< Registered in a CCID sharing registry.
    /** @} */

  private:
    int level_;
    Ppn frame_;
    std::array<Entry, entriesPerTable> entries_{};
};

} // namespace bf::vm

#endif // BF_VM_PAGE_TABLE_HH
