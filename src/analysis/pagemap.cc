#include "analysis/pagemap.hh"

#include <map>
#include <tuple>

namespace bf::analysis
{

namespace
{

/** Identity of a translation for shareability comparison. */
using Key = std::tuple<Addr /*va*/, Ppn, std::uint64_t /*perms*/,
                       PageSize>;

struct KeyInfo
{
    unsigned copies = 0;        //!< Processes holding this translation.
    unsigned active_copies = 0; //!< ... with the accessed bit set.
};

} // namespace

PagemapStats
scanGroup(const vm::Kernel &kernel,
          const std::vector<const vm::Process *> &processes)
{
    std::map<Key, KeyInfo> keys;

    for (const vm::Process *proc : processes) {
        kernel.forEachTranslation(
            *proc, [&](Addr va, const vm::Entry &leaf, PageSize size) {
                Key key{va, leaf.frame(), leaf.permBits(), size};
                KeyInfo &info = keys[key];
                ++info.copies;
                if (leaf.accessed())
                    ++info.active_copies;
            });
    }

    PagemapStats stats;
    for (const auto &[key, info] : keys) {
        const auto size = std::get<3>(key);
        const bool thp = size != PageSize::Size4K;
        const bool shareable = !thp && info.copies >= 2;

        stats.total += info.copies;
        stats.active += info.active_copies;
        if (thp) {
            stats.total_thp += info.copies;
            stats.active_thp += info.active_copies;
            stats.babelfish_active += info.active_copies;
        } else if (shareable) {
            stats.total_shareable += info.copies;
            stats.active_shareable += info.active_copies;
            if (info.active_copies > 0) {
                ++stats.babelfish_active;          // fused to one copy
                ++stats.babelfish_active_shareable;
            }
        } else {
            stats.total_unshareable += info.copies;
            stats.active_unshareable += info.active_copies;
            stats.babelfish_active += info.active_copies;
        }
    }
    return stats;
}

} // namespace bf::analysis
