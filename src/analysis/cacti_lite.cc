#include "analysis/cacti_lite.hh"

#include <cmath>

#include "common/logging.hh"

namespace bf::analysis
{

CactiLite::CactiLite(unsigned node_nm)
{
    bf_assert(node_nm == 22, "CactiLite is calibrated for 22 nm only");
    // Calibration against the paper's CACTI 7 run of the baseline L2 TLB
    // (Table III): 0.030 mm^2, 327 ps, 10.22 pJ, 4.16 mW.
    cam_factor_ = 2.2;
    const SramConfig base = baselineL2Tlb();
    const double base_eq_bits =
        (base.data_bits + cam_factor_ * base.tag_bits) *
        static_cast<double>(base.entries);
    cell_area_um2_ = 30000.0 / base_eq_bits;
    time_coeff_ = 327.0 / std::sqrt(30000.0);
    energy_coeff_ = 10.22 / 30000.0;
    const double base_raw_bits =
        static_cast<double>(base.entries) *
        (base.data_bits + base.tag_bits);
    leak_coeff_ = 4.16 / base_raw_bits;
}

SramConfig
CactiLite::baselineL2Tlb()
{
    SramConfig c;
    c.entries = 1536;
    c.assoc = 12;
    // 36-bit VPN minus 7 set-index bits = 29 tag bits, plus 12-bit PCID.
    c.tag_bits = 29 + 12;
    // 28-bit PPN + valid + 8 flag bits.
    c.data_bits = 28 + 1 + 8;
    return c;
}

SramConfig
CactiLite::babelFishL2Tlb()
{
    SramConfig c = baselineL2Tlb();
    // CCID joins the compared tag; O, ORPC and the 32-bit PC bitmask are
    // part of the lookup decision as well (Fig. 3).
    c.tag_bits += 12 + 1 + 1 + 32;
    return c;
}

double
CactiLite::equivalentBits(const SramConfig &config) const
{
    return (config.data_bits + cam_factor_ * config.tag_bits) *
           static_cast<double>(config.entries);
}

SramCosts
CactiLite::evaluate(const SramConfig &config) const
{
    SramCosts costs;
    const double area_um2 = equivalentBits(config) * cell_area_um2_;
    costs.area_mm2 = area_um2 / 1e6;
    costs.access_ps = time_coeff_ * std::sqrt(area_um2);
    costs.dyn_energy_pj = energy_coeff_ * area_um2;
    costs.leakage_mw = leak_coeff_ *
                       static_cast<double>(config.entries) *
                       (config.data_bits + config.tag_bits);
    return costs;
}

std::uint64_t
CactiLite::equalAreaConventionalEntries() const
{
    const SramConfig base = baselineL2Tlb();
    const double target = evaluate(babelFishL2Tlb()).area_mm2;
    const double per_entry =
        evaluate(base).area_mm2 / static_cast<double>(base.entries);
    auto entries = static_cast<std::uint64_t>(target / per_entry);
    entries -= entries % base.assoc;
    return entries;
}

} // namespace bf::analysis
