/**
 * @file
 * The Fig. 9 measurement: scan the page tables of a CCID group (the way
 * the paper uses Linux Pagemap natively) and classify every leaf
 * translation as shareable, unshareable or THP, in total and among the
 * recently-used ("active") set.
 *
 * Definitions (paper §VII-A):
 *  - shareable: an identical {VPN, PPN} pair with identical permission
 *    bits exists in another process of the group;
 *  - THP: transparent-huge-page translations (counted separately; they
 *    are anonymous and unshareable);
 *  - active: the translation's accessed bit is set (proxy for the
 *    kernel's active LRU list);
 *  - BabelFish active: active translations after fusion — each group of
 *    identical shareable translations collapses to one.
 */

#ifndef BF_ANALYSIS_PAGEMAP_HH
#define BF_ANALYSIS_PAGEMAP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "vm/kernel.hh"

namespace bf::analysis
{

/** Fig. 9 bars for one application. */
struct PagemapStats
{
    /** @{ @name Total pte_ts mapped by the group's containers */
    std::uint64_t total = 0;
    std::uint64_t total_shareable = 0;
    std::uint64_t total_unshareable = 0;
    std::uint64_t total_thp = 0;
    /** @} */

    /** @{ @name Active (recently-touched) pte_ts */
    std::uint64_t active = 0;
    std::uint64_t active_shareable = 0;
    std::uint64_t active_unshareable = 0;
    std::uint64_t active_thp = 0;
    /** @} */

    /** @{ @name Active pte_ts after enabling BabelFish (fused) */
    std::uint64_t babelfish_active = 0;
    std::uint64_t babelfish_active_shareable = 0; //!< Distinct fused.
    /** @} */

    double
    shareableFraction() const
    {
        return total ? static_cast<double>(total_shareable) /
                           static_cast<double>(total)
                     : 0.0;
    }

    double
    activeReduction() const
    {
        return active ? 1.0 - static_cast<double>(babelfish_active) /
                                  static_cast<double>(active)
                      : 0.0;
    }
};

/**
 * Scan one CCID group.
 * @param processes the group's container processes (the runtime process
 *        may be included or not, matching what is measured).
 */
PagemapStats scanGroup(const vm::Kernel &kernel,
                       const std::vector<const vm::Process *> &processes);

} // namespace bf::analysis

#endif // BF_ANALYSIS_PAGEMAP_HH
