/**
 * @file
 * CactiLite: an analytical SRAM-array model for TLB area, access time,
 * dynamic energy and leakage at 22 nm — a stand-in for CACTI 7, which
 * the paper uses for Table III.
 *
 * Model: a structure holds `entries` entries of `data_bits` payload and
 * `tag_bits` searched tag. Tag cells carry comparator overhead
 * (cam_factor per bit). Area scales linearly in equivalent bits with a
 * peripheral overhead factor; access time scales with the square root of
 * area (wire-dominated); dynamic read energy scales with area; leakage
 * scales with raw bit count. The coefficients are calibrated so the
 * baseline 1536-entry 12-way L2 TLB matches the paper's CACTI numbers
 * (0.030 mm^2, 327 ps, 10.22 pJ, 4.16 mW).
 */

#ifndef BF_ANALYSIS_CACTI_LITE_HH
#define BF_ANALYSIS_CACTI_LITE_HH

#include <cstdint>

namespace bf::analysis
{

/** Description of one tagged SRAM structure. */
struct SramConfig
{
    std::uint64_t entries = 1536;
    unsigned assoc = 12;
    unsigned tag_bits = 41;  //!< Compared on lookup (VPN tag + PCID).
    unsigned data_bits = 37; //!< Payload (PPN + flags).
};

/** CACTI-style outputs. */
struct SramCosts
{
    double area_mm2 = 0;
    double access_ps = 0;
    double dyn_energy_pj = 0;
    double leakage_mw = 0;
};

/** The analytical model. */
class CactiLite
{
  public:
    /** Technology node in nm (only 22 nm is calibrated). */
    explicit CactiLite(unsigned node_nm = 22);

    /** Evaluate a structure. */
    SramCosts evaluate(const SramConfig &config) const;

    /** The baseline L2 TLB of Table I/III. */
    static SramConfig baselineL2Tlb();

    /**
     * The BabelFish L2 TLB: adds the 12-bit CCID and the O-PC field
     * (O + ORPC + 32-bit PC bitmask) to every entry (Table I).
     */
    static SramConfig babelFishL2Tlb();

    /**
     * A conventional L2 TLB grown to the same area as the BabelFish one
     * (the "BabelFish vs larger TLB" comparison of §VII-C). Returns the
     * entry count, rounded down to a multiple of the associativity.
     */
    std::uint64_t equalAreaConventionalEntries() const;

  private:
    double cell_area_um2_;  //!< Effective area per equivalent bit.
    double cam_factor_;     //!< Tag-bit comparator overhead.
    double time_coeff_;     //!< ps per sqrt(um^2).
    double energy_coeff_;   //!< pJ per um^2.
    double leak_coeff_;     //!< mW per raw bit.

    double equivalentBits(const SramConfig &config) const;
};

} // namespace bf::analysis

#endif // BF_ANALYSIS_CACTI_LITE_HH
