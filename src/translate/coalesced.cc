#include "translate/coalesced.hh"

namespace bf::translate
{

CoalescedBackend::CoalescedBackend(unsigned core_id,
                                   const core::MmuParams &params,
                                   mem::CacheHierarchy &hierarchy,
                                   vm::Kernel &kernel,
                                   TranslateStats &stats,
                                   stats::StatGroup &group)
    : PipelineBackend(core_id, params, hierarchy, kernel, stats, group),
      cgroup_("coalesced", &group)
{
    cgroup_.addStat("range_hits", &range_hits_);
    cgroup_.addStat("range_installs", &range_installs_);
}

tlb::TlbLookup
CoalescedBackend::lookupL2(vm::Process &proc, Addr va, AccessType type,
                           PageSize &size_out, int process_bit)
{
    tlb::TlbLookup base =
        PipelineBackend::lookupL2(proc, va, type, size_out, process_bit);
    if (base.hit())
        return base;

    const Vpn vpn = va >> pageShift(PageSize::Size4K);
    const RangeEntry *range = ranges_.lookup(vpn, proc.pcid());
    if (!range)
        return base;

    ++range_hits_;
    scratch_ = tlb::TlbEntry{};
    scratch_.valid = true;
    scratch_.vpn = vpn;
    scratch_.ppn = range->base_ppn + (vpn - range->base_vpn);
    scratch_.size = PageSize::Size4K;
    scratch_.pcid = proc.pcid();
    scratch_.ccid = range->ccid;
    scratch_.writable = true;
    scratch_.user = true;
    // Private entry: the PCID matched, so it behaves as owned with no
    // private-copy bitmask (coalescing excludes all O-PC cases).
    scratch_.owned = true;
    scratch_.fill_pcid = proc.pcid();

    tlb::TlbLookup lookup;
    lookup.entry = &scratch_;
    lookup.bitmask_checked = base.bitmask_checked;
    size_out = PageSize::Size4K;
    return lookup;
}

void
CoalescedBackend::fillL2(const tlb::TlbEntry &entry, vm::Process &proc,
                         Cycles now)
{
    PipelineBackend::fillL2(entry, proc, now);
    if (entry.size != PageSize::Size4K || entry.cow || entry.orpc ||
        entry.pc_bitmask != 0)
        return;
    RunDetector::Run run;
    if (detector_.note(proc.pcid(), entry.vpn, entry.ppn, run)) {
        ranges_.insert(run.base_vpn, run.base_ppn, run.len, proc.pcid(),
                       proc.ccid());
        ++range_installs_;
    }
}

void
CoalescedBackend::invalidateExtra(const vm::TlbInvalidate &inv)
{
    ranges_.invalidate(inv);
    // A live run could span a just-remapped page and later install a
    // stale range; resetting the detector forfeits only coalescing
    // opportunity, never correctness.
    detector_.clear();
}

void
CoalescedBackend::flushExtra()
{
    ranges_.clear();
    detector_.clear();
}

void
CoalescedBackend::resetExtraStats()
{
    range_hits_.reset();
    range_installs_.reset();
}

void
CoalescedBackend::saveExtra(snap::ArchiveWriter &ar) const
{
    ranges_.save(ar);
    detector_.save(ar);
}

void
CoalescedBackend::restoreExtra(snap::ArchiveReader &ar)
{
    ranges_.restore(ar);
    detector_.restore(ar);
}

} // namespace bf::translate
