#include "translate/backend.hh"

#include <cstring>

#include "common/logging.hh"
#include "core/params.hh"
#include "translate/coalesced.hh"
#include "translate/pipeline.hh"
#include "translate/victima.hh"

namespace bf::translate
{

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::BabelFish: return "babelfish";
      case BackendKind::Victima: return "victima";
      case BackendKind::Coalesced: return "coalesced";
    }
    return "unknown";
}

bool
parseBackend(const char *name, BackendKind &out)
{
    if (!name)
        return false;
    for (unsigned i = 0; i < numBackendKinds; ++i) {
        const auto kind = static_cast<BackendKind>(i);
        if (std::strcmp(name, backendName(kind)) == 0) {
            out = kind;
            return true;
        }
    }
    return false;
}

std::unique_ptr<Backend>
createBackend(unsigned core_id, const core::MmuParams &params,
              mem::CacheHierarchy &hierarchy, vm::Kernel &kernel,
              TranslateStats &stats, stats::StatGroup &group)
{
    switch (params.backend) {
      case BackendKind::BabelFish:
        return std::make_unique<PipelineBackend>(core_id, params,
                                                 hierarchy, kernel, stats,
                                                 group);
      case BackendKind::Victima:
        return std::make_unique<VictimaBackend>(core_id, params,
                                                hierarchy, kernel, stats,
                                                group);
      case BackendKind::Coalesced:
        return std::make_unique<CoalescedBackend>(core_id, params,
                                                  hierarchy, kernel,
                                                  stats, group);
    }
    bf_panic("unknown translation backend id ",
             static_cast<unsigned>(params.backend));
}

} // namespace bf::translate
