/**
 * @file
 * Coalesced-TLB translation backend (CoLT-style, arxiv 1908.08774): the
 * reference pipeline plus a small fully-associative range TLB fed by a
 * fill-time contiguity detector.
 *
 * What is modeled:
 *  - Each 4K L2-TLB fill is run through a per-process detector; a fill
 *    at {vpn+1, ppn+1} extends the current run, and runs of two or more
 *    pages are packed into a range entry {base_vpn, base_ppn, len}
 *    (cap RunDetector::kMaxRun) in the RangeTlb.
 *  - The range TLB is probed alongside the L2 TLB (after a base miss,
 *    at no extra cycles — it is a small parallel structure); a covering
 *    range synthesizes the 4K translation and counts as an L2 hit.
 *
 * What is approximated (see DESIGN.md §16):
 *  - Only private, non-CoW, bitmask-free 4K fills coalesce, so the
 *    O-PC machinery never applies inside a range; range entries are
 *    PCID-tagged and never produce Shared Hits.
 *  - Permission bits are not re-derived on a range hit: the pipeline
 *    consults only the CoW bit, which coalescing excludes.
 *  - Shootdown handling is conservative: any overlapping invalidation
 *    drops the whole range entry and resets the detector.
 */

#ifndef BF_TRANSLATE_COALESCED_HH
#define BF_TRANSLATE_COALESCED_HH

#include "translate/pipeline.hh"
#include "translate/structures.hh"

namespace bf::translate
{

/** The reference pipeline plus a coalesced range TLB. */
class CoalescedBackend : public PipelineBackend
{
  public:
    CoalescedBackend(unsigned core_id, const core::MmuParams &params,
                     mem::CacheHierarchy &hierarchy, vm::Kernel &kernel,
                     TranslateStats &stats, stats::StatGroup &group);

    BackendKind kind() const override { return BackendKind::Coalesced; }

    /** Range entries in the coalesced structure. */
    static constexpr std::size_t kRangeEntries = 64;

    /** The range TLB (tests inspect install/shootdown reach). */
    const RangeTlb &ranges() const { return ranges_; }

  protected:
    tlb::TlbLookup lookupL2(vm::Process &proc, Addr va, AccessType type,
                            PageSize &size_out,
                            int process_bit) override;
    void fillL2(const tlb::TlbEntry &entry, vm::Process &proc,
                Cycles now) override;
    void invalidateExtra(const vm::TlbInvalidate &inv) override;
    void flushExtra() override;
    void resetExtraStats() override;
    void saveExtra(snap::ArchiveWriter &ar) const override;
    void restoreExtra(snap::ArchiveReader &ar) override;

  private:
    RangeTlb ranges_{ kRangeEntries };
    RunDetector detector_;
    /**
     * A range hit synthesizes the covered 4K entry here so the base
     * translate() loop can treat it exactly like an L2 TLB hit (the
     * member outlives the lookup; fillL1 copies it immediately).
     */
    tlb::TlbEntry scratch_;
    stats::StatGroup cgroup_;
    stats::Scalar range_hits_;     //!< Base-L2 misses covered by a range.
    stats::Scalar range_installs_; //!< Range (re-)installs from runs.
};

} // namespace bf::translate

#endif // BF_TRANSLATE_COALESCED_HH
