#include "translate/victima.hh"

namespace bf::translate
{

VictimaBackend::VictimaBackend(unsigned core_id,
                               const core::MmuParams &params,
                               mem::CacheHierarchy &hierarchy,
                               vm::Kernel &kernel, TranslateStats &stats,
                               stats::StatGroup &group)
    : PipelineBackend(core_id, params, hierarchy, kernel, stats, group),
      vgroup_("victima", &group)
{
    vgroup_.addStat("spills", &spills_);
    vgroup_.addStat("probes", &probes_);
    vgroup_.addStat("store_hits", &store_hits_);
}

Addr
VictimaBackend::storeAddr(std::size_t slot) const
{
    // One cache line per slot, placed above the top of simulated DRAM
    // so the metadata lines never alias real data. Per-core disjoint:
    // parked translations live in the owning core's private cache and
    // must not be probed away by another core's spills.
    const Addr base = kernel_.params().mem_frames << 12;
    const Addr core_base = static_cast<Addr>(core_id_) *
                           kStoreEntries * 64;
    return base + core_base + static_cast<Addr>(slot) * 64;
}

void
VictimaBackend::fillL2(const tlb::TlbEntry &entry, vm::Process &proc,
                       Cycles now)
{
    (void)now;
    tlb::TlbEntry copy = entry;
    copy.ccid = proc.ccid();
    copy.pcid = proc.pcid();
    copy.fill_pcid = proc.pcid();
    tlb::TlbEntry evicted;
    if (l2_[sizeIndex(copy.size)]->fill(copy, params_.babelfish,
                                        &evicted)) {
        noteL2Evicted(proc, evicted);
        const std::size_t slot = store_.insert(evicted);
        ++spills_;
        // The spill models data-array occupancy of the parked line in
        // the core's private L2 — where Victima stores translations —
        // off the translation's critical path, so no latency is billed
        // and no epoch event is logged (an unbilled logged access would
        // carry a timestamp ahead of the core's next billed event and
        // break the per-core append-order invariant; see core/epoch.cc).
        // If L2 later evicts the line, the backfill probe's billed read
        // naturally pays the L3/DRAM trip to fetch it back.
        bool dirty = false;
        hierarchy_.l2(core_id_).accessAndFill(storeAddr(slot),
                                              /*is_write=*/true, dirty);
        (void)dirty;
    }
}

bool
VictimaBackend::backfill(vm::Process &proc, Addr va, AccessType type,
                         int process_bit, Cycles now, Cycles &cycles,
                         tlb::TlbEntry &out)
{
    ++probes_;
    for (PageSize size : {PageSize::Size4K, PageSize::Size2M,
                          PageSize::Size1G}) {
        std::size_t slot = 0;
        const tlb::TlbEntry *e = store_.probe(
            va >> pageShift(size), size, proc.pcid(), proc.ccid(),
            params_.babelfish, process_bit, &slot);
        if (!e)
            continue;
        // A write to a CoW-marked spilled entry must fault: fall
        // through to the walk so the kernel privatizes the page.
        if (type == AccessType::Write && e->cow)
            return false;
        const mem::MemAccessResult res = hierarchy_.access(
            core_id_, storeAddr(slot), AccessType::Read, now,
            /*start_at_l2=*/true);
        cycles += res.latency;
        out = *e;
        out.lru = 0;
        store_.erase(slot); // migrate back into the TLBs
        ++store_hits_;
        return true;
    }
    return false;
}

void
VictimaBackend::invalidateExtra(const vm::TlbInvalidate &inv)
{
    store_.invalidate(inv);
}

void
VictimaBackend::flushExtra()
{
    store_.clear();
}

void
VictimaBackend::resetExtraStats()
{
    spills_.reset();
    probes_.reset();
    store_hits_.reset();
}

void
VictimaBackend::saveExtra(snap::ArchiveWriter &ar) const
{
    store_.save(ar);
}

void
VictimaBackend::restoreExtra(snap::ArchiveReader &ar)
{
    store_.restore(ar);
}

} // namespace bf::translate
