/**
 * @file
 * Victima-style translation backend (arxiv 2310.04158): the reference
 * pipeline plus a backing store that parks L2-TLB evictions in the
 * simulated cache hierarchy, extending TLB reach with the data arrays.
 *
 * What is modeled:
 *  - Every valid entry evicted from the L2 TLB spills into a
 *    direct-mapped VictimStore. The spill issues a write access into
 *    the cache hierarchy at the slot's synthetic physical address
 *    (above the top of simulated DRAM frames), so spilled metadata
 *    competes for L2/L3 cache capacity like Victima's TLB-block lines;
 *    the spill latency itself is off the translation's critical path
 *    and is not billed.
 *  - On an L2 TLB miss, the store is probed before the page walk. A
 *    hit bills the hierarchy read latency of the slot's line (entering
 *    at the L2 data cache, like page-walker requests) and migrates the
 *    entry back into the TLBs, skipping the walk.
 *
 * What is approximated (see DESIGN.md §16):
 *  - Presence metadata is perfect: the probe is only issued when the
 *    functional store holds a matching entry, so misses cost nothing
 *    (Victima's PTW-cost-predictor false positives are not modeled).
 *  - Store capacity is a fixed direct-mapped array rather than actual
 *    cache ways; occupancy pressure is modeled through the synthetic
 *    line traffic, not through eviction of the metadata by data lines.
 *  - Write hits on CoW-marked spilled entries are not recovered — the
 *    walk-and-fault path runs so privatization stays architectural.
 */

#ifndef BF_TRANSLATE_VICTIMA_HH
#define BF_TRANSLATE_VICTIMA_HH

#include "translate/pipeline.hh"
#include "translate/structures.hh"

namespace bf::translate
{

/** The reference pipeline plus a Victima-style backing store. */
class VictimaBackend : public PipelineBackend
{
  public:
    VictimaBackend(unsigned core_id, const core::MmuParams &params,
                   mem::CacheHierarchy &hierarchy, vm::Kernel &kernel,
                   TranslateStats &stats, stats::StatGroup &group);

    BackendKind kind() const override { return BackendKind::Victima; }

    /** Spilled-entry slots in the backing store. */
    static constexpr std::size_t kStoreEntries = 8192;

    /** The backing store (tests inspect spill/shootdown reach). */
    const VictimStore &store() const { return store_; }

  protected:
    void fillL2(const tlb::TlbEntry &entry, vm::Process &proc,
                Cycles now) override;
    bool backfill(vm::Process &proc, Addr va, AccessType type,
                  int process_bit, Cycles now, Cycles &cycles,
                  tlb::TlbEntry &out) override;
    void invalidateExtra(const vm::TlbInvalidate &inv) override;
    void flushExtra() override;
    void resetExtraStats() override;
    void saveExtra(snap::ArchiveWriter &ar) const override;
    void restoreExtra(snap::ArchiveReader &ar) override;

  private:
    /** Synthetic paddr of a store slot's cache line. */
    Addr storeAddr(std::size_t slot) const;

    VictimStore store_{ kStoreEntries };
    stats::StatGroup vgroup_;
    stats::Scalar spills_;     //!< L2-TLB evictions parked in the store.
    stats::Scalar probes_;     //!< L2 TLB misses that consulted the store.
    stats::Scalar store_hits_; //!< Walks avoided by a store hit.
};

} // namespace bf::translate

#endif // BF_TRANSLATE_VICTIMA_HH
