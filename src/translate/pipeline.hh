/**
 * @file
 * The reference translation backend: L1 I/D TLBs, the unified L2 TLB,
 * the ASLR-HW transform between them, the page-walk cache and walker,
 * and the page-fault retry loop — the pre-interface core::Mmu pipeline,
 * extracted behind translate::Backend (DESIGN.md §16).
 *
 * The competitor backends (Victima, Coalesced) subclass this and plug
 * into the protected hook points: the L2 lookup/fill paths, a backfill
 * probe between the L2 miss and the page walk, and the invalidate /
 * flush / checkpoint extension hooks. The reference implementation of
 * every hook is a no-op or the plain pipeline behavior, so the
 * BabelFish backend's stats stay byte-identical to the pre-interface
 * Mmu (the golden gate enforces this).
 */

#ifndef BF_TRANSLATE_PIPELINE_HH
#define BF_TRANSLATE_PIPELINE_HH

#include <array>
#include <memory>

#include "common/trace/trace.hh"
#include "core/params.hh"
#include "mem/hierarchy.hh"
#include "tlb/page_walk_cache.hh"
#include "tlb/page_walker.hh"
#include "tlb/tlb.hh"
#include "translate/backend.hh"

namespace bf::translate
{

/** The reference (BabelFish-capable) pipeline backend. */
class PipelineBackend : public Backend
{
  public:
    PipelineBackend(unsigned core_id, const core::MmuParams &params,
                    mem::CacheHierarchy &hierarchy, vm::Kernel &kernel,
                    TranslateStats &stats, stats::StatGroup &group);

    BackendKind kind() const override { return BackendKind::BabelFish; }

    Translation translate(vm::Process &proc, Addr canonical_va,
                          AccessType type, Cycles now) override;
    void applyInvalidate(const vm::TlbInvalidate &inv) override;
    void setEpochLog(core::EpochLog *log) override { epoch_log_ = log; }
    void setTracer(trace::Tracer *tracer) override;
    void setAttrib(attrib::Registry *registry,
                   attrib::CoreSink *sink) override
    {
        areg_ = registry;
        sink_ = sink;
    }
    void flushAll() override;
    void resetStats() override;
    void save(snap::ArchiveWriter &ar) const override;
    void restore(snap::ArchiveReader &ar) override;

    tlb::Tlb &l1i() override { return *l1i_4k_; }
    tlb::Tlb &l1d(PageSize size) override
    {
        return *l1d_[sizeIndex(size)];
    }
    tlb::Tlb &l2(PageSize size) override
    {
        return *l2_[sizeIndex(size)];
    }
    tlb::Pwc &pwc() override { return *pwc_; }
    tlb::PageWalker &walker() override { return *walker_; }

  protected:
    /**
     * @{
     * @name Competitor hook points
     * All default to the plain pipeline behavior.
     */
    /** Probe the L2 structures (Coalesced adds its range probe). */
    virtual tlb::TlbLookup lookupL2(vm::Process &proc, Addr va,
                                    AccessType type, PageSize &size_out,
                                    int process_bit);

    /**
     * Insert a walked/backfilled translation into the L2. @p now is the
     * core cycle at fill time, for hooks that model memory traffic.
     */
    virtual void fillL2(const tlb::TlbEntry &entry, vm::Process &proc,
                        Cycles now);

    /**
     * Last-chance probe after an L2 TLB miss, before the page walk
     * (Victima's backing-store lookup). On a hit, write the recovered
     * translation into @p out, add the probe latency to @p cycles and
     * return true — translate() then fills the TLBs from @p out and
     * skips the walk. The default always misses.
     */
    virtual bool backfill(vm::Process &proc, Addr va, AccessType type,
                          int process_bit, Cycles now, Cycles &cycles,
                          tlb::TlbEntry &out);

    /** Extend a shootdown into competitor structures. */
    virtual void invalidateExtra(const vm::TlbInvalidate &inv);

    /** Extend flushAll / resetStats into competitor structures. */
    virtual void flushExtra();
    virtual void resetExtraStats();

    /** Extend the checkpoint with competitor structures. */
    virtual void saveExtra(snap::ArchiveWriter &ar) const;
    virtual void restoreExtra(snap::ArchiveReader &ar);
    /** @} */

    /**
     * @{
     * @name Eviction attribution (common/attrib)
     * Book "filler @p proc displaced @p evicted" edges; the victim is
     * resolved through the owner tag of the displaced entry. No-ops
     * without a sink. Subclasses with their own fill paths (Victima)
     * call these with the evicted entry their fill reports.
     */
    void noteL1Evicted(const vm::Process &proc,
                       const tlb::TlbEntry &evicted);
    void noteL2Evicted(const vm::Process &proc,
                       const tlb::TlbEntry &evicted);
    /** @} */

    static unsigned sizeIndex(PageSize size)
    {
        return static_cast<unsigned>(size);
    }

    unsigned core_id_;
    core::MmuParams params_;
    mem::CacheHierarchy &hierarchy_;
    vm::Kernel &kernel_;
    TranslateStats &st_;
    stats::StatGroup &group_;

    std::unique_ptr<tlb::Tlb> l1i_4k_;
    std::array<std::unique_ptr<tlb::Tlb>, numPageSizes> l1d_;
    std::array<std::unique_ptr<tlb::Tlb>, numPageSizes> l2_;
    std::unique_ptr<tlb::Pwc> pwc_;
    std::unique_ptr<tlb::PageWalker> walker_;
    core::EpochLog *epoch_log_ = nullptr;
    trace::Tracer *tracer_ = nullptr;
    attrib::Registry *areg_ = nullptr; //!< Victim-slot resolution.
    attrib::CoreSink *sink_ = nullptr; //!< Per-tenant counter sink.

  private:
    /**
     * Direct-mapped cache of Kernel::processBit answers keyed by
     * {process, 1 GB region}. A thread's request loop strides across
     * several regions (code, stack, dataset, buffers), so a single
     * entry thrashes — a handful indexed by region ⊕ pid captures the
     * whole working set and turns the per-translate region lookups
     * into one compare. Correctness: the kernel bumps the group's
     * mask_generation counter on every mutation that can change a
     * processBit() answer; each entry stores the counter's address and
     * the value observed at fill, so a bump — or a different process
     * or region, including one from another CCID group — misses and
     * re-queries. Pids are never reused, so a dead process' entry can
     * never match a live one.
     */
    struct PbCache
    {
        const std::uint64_t *gen_ptr = nullptr;
        std::uint64_t gen = 0;
        Pid pid = 0;
        Addr region = ~0ull;
        int bit = -1;
    };
    static constexpr std::size_t kPbCacheSize = 16; //!< Power of two.
    std::array<PbCache, kPbCacheSize> pb_cache_{};

    /** Kernel::processBit through pb_cache_. */
    int cachedProcessBit(const vm::Process &proc, Addr canonical_va);

    /**
     * L0 inline translation cache: a small direct-mapped front cache
     * over lookupL1 that short-circuits the common repeated hit. Each
     * slot remembers which live TLB entry answered a {VPN, PCID, kind}
     * lookup; a hit re-validates the entry in place (valid, VPN, PCID)
     * and replays the exact side effects of the bypassed probe
     * sequence — per-structure hit/miss counters, the LRU touch, the
     * +1 cycle, the trace record — so architectural stats stay
     * byte-identical with the cache on or off.
     *
     * Coherence: shootdowns, CoW privatization and eviction all mark
     * or overwrite the referenced TlbEntry, which the live check
     * catches. Entries for huge pages additionally replay the misses
     * of the smaller structures probed before the hit; those replays
     * assume the earlier structures still miss, so such slots carry
     * the generation l0_gen_, bumped on every L1 fill and every
     * shootdown applied to this backend. Only enabled when the L1 uses
     * the conventional (non-CCID-shared) lookup; the BabelFish L1
     * lookup's candidate semantics are left on the slow path.
     */
    struct L0Entry
    {
        Vpn vpn4k = ~0ull;            //!< VA >> 12 (slot tag).
        tlb::TlbEntry *entry = nullptr;
        tlb::Tlb *owner = nullptr;
        std::uint64_t gen = 0;
        Pcid pcid = 0;
        std::uint8_t shift = 0;       //!< Page shift of the entry.
        std::uint8_t owner_kind = 0;  //!< 0=l1i, 1+sizeIndex for data.
        bool is_ifetch = false;
        bool gen_sensitive = false;   //!< Huge-page slot: check gen.
    };
    static constexpr std::size_t kL0Size = 256; //!< Power of two.
    std::array<L0Entry, kL0Size> l0_{};
    std::uint64_t l0_gen_ = 1;
    bool l0_enabled_ = false;

    static std::size_t
    l0Index(Vpn vpn4k, Pcid pcid, bool ifetch)
    {
        return (vpn4k ^ (vpn4k >> 14) ^ (static_cast<Vpn>(pcid) << 3) ^
                (ifetch ? 0x55u : 0u)) &
               (kL0Size - 1);
    }

    /** Remember a slow-path L1 hit for the L0 fast path. */
    void installL0(Addr va, Pcid pcid, AccessType type, PageSize size,
                   const tlb::TlbEntry *entry);

    /** Probe the right L1 structures; returns the lookup and size. */
    tlb::TlbLookup lookupL1(vm::Process &proc, Addr va, AccessType type,
                            PageSize &size_out, int process_bit);

    void fillL1(const tlb::TlbEntry &entry, vm::Process &proc,
                AccessType type);
};

} // namespace bf::translate

#endif // BF_TRANSLATE_PIPELINE_HH
