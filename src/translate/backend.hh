/**
 * @file
 * The translation-backend interface (DESIGN.md §16).
 *
 * A Backend owns everything between a core's "translate this VA" request
 * and the returned physical address: the TLB structures, the page-walk
 * machinery and whatever extra reach mechanism the design adds. The
 * surrounding world — core::Mmu (the facade), System, the kernel's
 * shootdown hook, checkpointing and the golden-stats gate — talks only
 * through this interface, so competing designs from the literature drop
 * in behind one knob (BF_BACKEND / MmuParams::backend).
 *
 * Contract highlights:
 *  - translate() performs the full lookup→fill→walk→fault sequence and
 *    books its access-level statistics into the TranslateStats the
 *    facade registered (the stats-tree shape is part of the contract:
 *    the reference backend's tree is byte-identical to the
 *    pre-interface Mmu, which the golden gate enforces).
 *  - applyInvalidate() must reach *every* translation-caching structure
 *    the backend owns — including competitor-specific ones like the
 *    Victima backing store or coalesced range entries — so kernel
 *    shootdowns keep all backends architecturally coherent.
 *  - save()/restore() round-trip all backend state byte-identically.
 *  - Bound-phase discipline: while the attached EpochLog is active,
 *    faults are deferred into it (never call the kernel) and any
 *    cache-hierarchy traffic must go through CacheHierarchy::access,
 *    which defers shared-level state to the weave. This is what keeps
 *    every backend byte-identical at any BF_WORKERS.
 */

#ifndef BF_TRANSLATE_BACKEND_HH
#define BF_TRANSLATE_BACKEND_HH

#include <memory>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/epoch.hh"
#include "translate/kind.hh"
#include "vm/kernel.hh"
#include "vm/tlb_hooks.hh"

namespace bf::attrib
{
class CoreSink;
class Registry;
}

namespace bf::core
{
struct MmuParams;
}

namespace bf::mem
{
class CacheHierarchy;
}

namespace bf::tlb
{
class Tlb;
class Pwc;
class PageWalker;
}

namespace bf::trace
{
class Tracer;
}

namespace bf::translate
{

/** Result of one address translation. */
struct Translation
{
    Cycles cycles = 0;     //!< Total translation latency incl. faults.
    Addr paddr = 0;        //!< Physical address of the access.
    PageSize size = PageSize::Size4K;
    bool faulted = false;  //!< Any page fault was taken.
    /**
     * Bound phase only: the translation hit a page fault, which was
     * deferred to the core's epoch log instead of being handled. cycles
     * holds the probe time spent up to the fault; paddr is invalid. The
     * core suspends and re-issues after the fault is serviced.
     */
    bool blocked = false;
};

/**
 * The access-level counters every backend books (the facade owns and
 * registers them, so their stats-tree names and order are identical
 * across backends — and identical to the pre-interface Mmu).
 */
struct TranslateStats
{
    stats::Scalar l1_hits;
    stats::Scalar l1_misses;
    stats::Scalar l2_data_hits;
    stats::Scalar l2_data_misses;
    stats::Scalar l2_instr_hits;
    stats::Scalar l2_instr_misses;
    stats::Scalar l2_data_shared_hits;
    stats::Scalar l2_instr_shared_hits;
    stats::Scalar l2_long_accesses;   //!< 12-cycle PC-bitmask lookups.
    stats::Scalar minor_faults;
    stats::Scalar major_faults;
    stats::Scalar cow_faults;
    stats::Scalar shared_installs;
    stats::Scalar fault_cycles;
    /** Full translate() latency of accesses that missed both TLB levels. */
    stats::Distribution miss_latency;
};

/** One core's translation backend. */
class Backend
{
  public:
    virtual ~Backend() = default;

    virtual BackendKind kind() const = 0;

    /**
     * Translate a canonical VA for a process, handling faults.
     * @param now the core's current cycle.
     */
    virtual Translation translate(vm::Process &proc, Addr canonical_va,
                                  AccessType type, Cycles now) = 0;

    /**
     * Apply a kernel shootdown. Must reach every structure that caches
     * translations, including backend-specific ones.
     */
    virtual void applyInvalidate(const vm::TlbInvalidate &inv) = 0;

    /**
     * Attach the core's bound-phase event log (null detaches). While
     * the log is active, translate() defers page faults into it and
     * returns Translation::blocked instead of calling the kernel.
     */
    virtual void setEpochLog(core::EpochLog *log) = 0;

    /** Attach the run's event tracer (null detaches). */
    virtual void setTracer(trace::Tracer *tracer) = 0;

    /**
     * Attach the per-container attribution registry and this core's
     * private sink (System wires them; nulls detach). A backend with a
     * sink books per-tenant counters at the same sites as the
     * TranslateStats it already books — the sum over tenants must
     * equal the global counters bit-for-bit — and attributes TLB
     * evictions via the owner tags of displaced entries. Part of the
     * shared Backend surface so the zoo stays comparable per-tenant;
     * the default keeps attribution off for backends that opt out.
     */
    virtual void setAttrib(attrib::Registry *registry,
                           attrib::CoreSink *sink)
    {
        (void)registry;
        (void)sink;
    }

    /** Drop all cached translation state (tests / phase changes). */
    virtual void flushAll() = 0;

    /** Reset statistics of the owned structures (not TranslateStats). */
    virtual void resetStats() = 0;

    /**
     * @{
     * @name Checkpointing
     * Full backend state: the TLB structures, the PWC, and any
     * competitor-specific structures, in a fixed order.
     */
    virtual void save(snap::ArchiveWriter &ar) const = 0;
    virtual void restore(snap::ArchiveReader &ar) = 0;
    /** @} */

    /**
     * @{
     * @name Structure access
     * Every backend in the zoo is built around the common TLB/PWC/
     * walker pipeline (the competitors extend it); tests, the sampler
     * and the benches reach the shared structures through these.
     */
    virtual tlb::Tlb &l1i() = 0;
    virtual tlb::Tlb &l1d(PageSize size) = 0;
    virtual tlb::Tlb &l2(PageSize size) = 0;
    virtual tlb::Pwc &pwc() = 0;
    virtual tlb::PageWalker &walker() = 0;
    /** @} */
};

/**
 * Build the backend selected by @p params.backend (see MmuParams).
 *
 * @param core_id owning core.
 * @param params TLB geometry and BabelFish/ASLR/backend configuration.
 * @param hierarchy cache hierarchy for walks (and, for Victima, the
 *        spilled-entry traffic).
 * @param kernel page-table owner / fault handler.
 * @param stats the facade's registered access-level counters.
 * @param group the facade's "mmu" stat group; the backend registers
 *        its structure subgroups under it.
 */
std::unique_ptr<Backend> createBackend(unsigned core_id,
                                       const core::MmuParams &params,
                                       mem::CacheHierarchy &hierarchy,
                                       vm::Kernel &kernel,
                                       TranslateStats &stats,
                                       stats::StatGroup &group);

} // namespace bf::translate

#endif // BF_TRANSLATE_BACKEND_HH
