/**
 * @file
 * Header-only functional models shared by the competitor backends and
 * the replay engine's backend models (DESIGN.md §16):
 *
 *  - VictimStore: a direct-mapped store of L2-TLB evictions, the
 *    functional half of a Victima-style design (arxiv 2310.04158) that
 *    parks TLB-reach overflow in the data cache arrays.
 *  - RangeTlb + RunDetector: a CoLT-style coalesced range TLB (arxiv
 *    1908.08774) and the fill-time detector that feeds it.
 *
 * Both are pure containers: no statistics, no latency — owners bill
 * cycles and count events so full-sim and replay can share the exact
 * same eviction/coalescing decisions.
 */

#ifndef BF_TRANSLATE_STRUCTURES_HH
#define BF_TRANSLATE_STRUCTURES_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/snapshot.hh"
#include "common/types.hh"
#include "tlb/tlb_entry.hh"
#include "vm/tlb_hooks.hh"

namespace bf::translate
{

/**
 * Direct-mapped store of spilled TLB entries. Conflict misses are part
 * of the model (Victima's cache-resident metadata is direct-mapped by
 * set); shootdowns scan the whole array, which is fine because they are
 * orders of magnitude rarer than probes.
 */
class VictimStore
{
  public:
    /** @param entries slot count, must be a power of two. */
    explicit VictimStore(std::size_t entries = 8192) : slots_(entries) {}

    std::size_t capacity() const { return slots_.size(); }

    /** Slot a {VPN, size} pair maps to (also keys the synthetic paddr). */
    std::size_t
    slotIndex(Vpn vpn, PageSize size) const
    {
        const std::uint64_t h =
            vpn ^ (vpn >> 13) ^
            (static_cast<std::uint64_t>(size) * 0x9e3779b1ull);
        return h & (slots_.size() - 1);
    }

    /** Park an evicted entry, replacing any conflict victim. */
    std::size_t
    insert(const tlb::TlbEntry &entry)
    {
        const std::size_t slot = slotIndex(entry.vpn, entry.size);
        slots_[slot] = entry;
        return slot;
    }

    /**
     * Probe for a translation, mirroring the TLB match rules: owned (or
     * conventional) entries need a PCID match; shared entries need a
     * CCID match and pass the ORPC/process-bit check of paper Fig. 8.
     * @return the entry, or nullptr; @p slot_out gets its slot on a hit.
     */
    const tlb::TlbEntry *
    probe(Vpn vpn, PageSize size, Pcid pcid, Ccid ccid, bool babelfish,
          int process_bit, std::size_t *slot_out = nullptr) const
    {
        const std::size_t slot = slotIndex(vpn, size);
        const tlb::TlbEntry &e = slots_[slot];
        if (!e.valid || e.vpn != vpn || e.size != size)
            return nullptr;
        bool match;
        if (!babelfish || e.owned) {
            match = e.pcid == pcid;
        } else {
            match = e.ccid == ccid &&
                    !(e.orpc && process_bit >= 0 &&
                      (e.pc_bitmask >> process_bit) & 1u);
        }
        if (!match)
            return nullptr;
        if (slot_out)
            *slot_out = slot;
        return &e;
    }

    /** Drop one slot (entry migrated back into the TLB). */
    void erase(std::size_t slot) { slots_[slot].valid = false; }

    /** Apply a kernel shootdown (same reach rules as the TLBs). */
    void
    invalidate(const vm::TlbInvalidate &inv)
    {
        using Kind = vm::TlbInvalidate::Kind;
        for (auto &e : slots_) {
            if (!e.valid)
                continue;
            switch (inv.kind) {
              case Kind::Page:
                if (e.pcid == inv.pcid && e.size == inv.size &&
                    e.vpn == inv.vpn)
                    e.valid = false;
                break;
              case Kind::SharedRange: {
                if (e.owned || e.ccid != inv.ccid)
                    break;
                // Cover huge entries overlapping a 4K-expressed range.
                Vpn first = inv.vpn;
                Vpn last = inv.vpn + inv.num_pages - 1;
                if (e.size != inv.size) {
                    if (inv.size != PageSize::Size4K)
                        break;
                    const int shift = pageShift(e.size) -
                                      pageShift(PageSize::Size4K);
                    first >>= shift;
                    last >>= shift;
                }
                if (e.vpn >= first && e.vpn <= last)
                    e.valid = false;
                break;
              }
              case Kind::Pcid:
                if (e.pcid == inv.pcid)
                    e.valid = false;
                break;
            }
        }
    }

    void
    clear()
    {
        for (auto &e : slots_)
            e.valid = false;
    }

    std::size_t
    validCount() const
    {
        std::size_t n = 0;
        for (const auto &e : slots_)
            n += e.valid;
        return n;
    }

    /** @{ @name Checkpointing (valid slots only, fixed order) */
    void
    save(snap::ArchiveWriter &ar) const
    {
        ar.u64(slots_.size());
        ar.u64(validCount());
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            const tlb::TlbEntry &e = slots_[i];
            if (!e.valid)
                continue;
            ar.u64(i);
            ar.u64(e.vpn);
            ar.u64(e.ppn);
            ar.u8(static_cast<std::uint8_t>(e.size));
            ar.u32(e.pcid);
            ar.u32(e.ccid);
            ar.b(e.writable);
            ar.b(e.user);
            ar.b(e.no_exec);
            ar.b(e.cow);
            ar.b(e.owned);
            ar.b(e.orpc);
            ar.u32(e.pc_bitmask);
            ar.u32(e.fill_pcid);
        }
    }

    void
    restore(snap::ArchiveReader &ar)
    {
        const std::uint64_t n_slots = ar.u64();
        if (n_slots != slots_.size())
            throw snap::SnapshotError("victim-store size mismatch");
        clear();
        const std::uint64_t n = ar.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t slot = ar.u64();
            if (slot >= slots_.size())
                throw snap::SnapshotError("victim-store slot out of range");
            tlb::TlbEntry &e = slots_[slot];
            e.valid = true;
            e.vpn = ar.u64();
            e.ppn = ar.u64();
            e.size = static_cast<PageSize>(ar.u8());
            e.pcid = ar.u32();
            e.ccid = ar.u32();
            e.writable = ar.b();
            e.user = ar.b();
            e.no_exec = ar.b();
            e.cow = ar.b();
            e.owned = ar.b();
            e.orpc = ar.b();
            e.pc_bitmask = ar.u32();
            e.fill_pcid = ar.u32();
            e.lru = 0;
        }
    }
    /** @} */

  private:
    std::vector<tlb::TlbEntry> slots_;
};

/** One coalesced range: len contiguous 4K VPN→PPN pairs. */
struct RangeEntry
{
    bool valid = false;
    Vpn base_vpn = 0;
    Ppn base_ppn = 0;
    std::uint32_t len = 0;
    Pcid pcid = 0;
    Ccid ccid = invalidCcid;
    std::uint64_t lru = 0;
};

/**
 * Fully-associative LRU range TLB over 4K pages. Entries are private
 * (PCID-tagged): only non-CoW, bitmask-free fills are coalesced, so the
 * O-PC machinery never applies inside a range.
 */
class RangeTlb
{
  public:
    explicit RangeTlb(std::size_t entries = 64) : entries_(entries) {}

    std::size_t capacity() const { return entries_.size(); }

    /**
     * Find the range covering @p vpn for @p pcid, touch its LRU and
     * return it (nullptr on miss). The covered PPN is
     * base_ppn + (vpn - base_vpn).
     */
    const RangeEntry *
    lookup(Vpn vpn, Pcid pcid)
    {
        for (auto &e : entries_) {
            if (e.valid && e.pcid == pcid && vpn >= e.base_vpn &&
                vpn < e.base_vpn + e.len) {
                e.lru = ++lru_clock_;
                return &e;
            }
        }
        return nullptr;
    }

    /**
     * Install or grow a detected run. A range with the same {pcid,
     * base_vpn} is updated in place (the detector re-announces a run as
     * it extends); otherwise the LRU entry is evicted.
     */
    void
    insert(Vpn base_vpn, Ppn base_ppn, std::uint32_t len, Pcid pcid,
           Ccid ccid)
    {
        RangeEntry *victim = nullptr;
        for (auto &e : entries_) {
            if (e.valid && e.pcid == pcid && e.base_vpn == base_vpn) {
                victim = &e;
                break;
            }
        }
        if (!victim) {
            for (auto &e : entries_) {
                if (!e.valid) {
                    victim = &e;
                    break;
                }
            }
        }
        if (!victim) {
            victim = &entries_[0];
            for (auto &e : entries_)
                if (e.lru < victim->lru)
                    victim = &e;
        }
        victim->valid = true;
        victim->base_vpn = base_vpn;
        victim->base_ppn = base_ppn;
        victim->len = len;
        victim->pcid = pcid;
        victim->ccid = ccid;
        victim->lru = ++lru_clock_;
    }

    /**
     * Apply a kernel shootdown. Ranges cache only private 4K leaf
     * translations, but invalidation is conservative: any overlap of
     * the shot-down VPN range — whatever its kind, tag or page size —
     * drops the whole range entry.
     */
    void
    invalidate(const vm::TlbInvalidate &inv)
    {
        using Kind = vm::TlbInvalidate::Kind;
        if (inv.kind == Kind::Pcid) {
            for (auto &e : entries_)
                if (e.valid && e.pcid == inv.pcid)
                    e.valid = false;
            return;
        }
        // Express the shot-down range in 4K VPNs.
        const int shift = pageShift(inv.size) - pageShift(PageSize::Size4K);
        const Vpn first = inv.vpn << shift;
        const Vpn last = ((inv.vpn + inv.num_pages) << shift) - 1;
        for (auto &e : entries_) {
            if (e.valid && e.base_vpn <= last &&
                e.base_vpn + e.len - 1 >= first)
                e.valid = false;
        }
    }

    void
    clear()
    {
        for (auto &e : entries_)
            e.valid = false;
    }

    std::size_t
    validCount() const
    {
        std::size_t n = 0;
        for (const auto &e : entries_)
            n += e.valid;
        return n;
    }

    /** @{ @name Checkpointing (full array, LRU clock included) */
    void
    save(snap::ArchiveWriter &ar) const
    {
        ar.u64(entries_.size());
        ar.u64(lru_clock_);
        for (const auto &e : entries_) {
            ar.b(e.valid);
            ar.u64(e.base_vpn);
            ar.u64(e.base_ppn);
            ar.u32(e.len);
            ar.u32(e.pcid);
            ar.u32(e.ccid);
            ar.u64(e.lru);
        }
    }

    void
    restore(snap::ArchiveReader &ar)
    {
        const std::uint64_t n = ar.u64();
        if (n != entries_.size())
            throw snap::SnapshotError("range-tlb size mismatch");
        lru_clock_ = ar.u64();
        for (auto &e : entries_) {
            e.valid = ar.b();
            e.base_vpn = ar.u64();
            e.base_ppn = ar.u64();
            e.len = ar.u32();
            e.pcid = ar.u32();
            e.ccid = ar.u32();
            e.lru = ar.u64();
        }
    }
    /** @} */

  private:
    std::vector<RangeEntry> entries_;
    std::uint64_t lru_clock_ = 0;
};

/**
 * Fill-time contiguity detector: per-process tracking of the last
 * filled {VPN, PPN}. A fill at {vpn+1, ppn+1} extends the current run;
 * once a run reaches two pages it is announced (and re-announced as it
 * grows, up to the cap) for installation into the RangeTlb. Slots are
 * direct-mapped by PCID — a conflict just resets a run, costing
 * coalescing opportunity, never correctness.
 */
class RunDetector
{
  public:
    static constexpr std::uint32_t kMaxRun = 32;

    struct Run
    {
        Vpn base_vpn = 0;
        Ppn base_ppn = 0;
        std::uint32_t len = 0;
    };

    /**
     * Note one 4K fill. Returns true and sets @p out when the run is
     * worth (re-)installing (length >= 2).
     */
    bool
    note(Pcid pcid, Vpn vpn, Ppn ppn, Run &out)
    {
        Slot &s = slots_[pcid & (kSlots - 1)];
        if (s.live && s.pcid == pcid && vpn == s.last_vpn + 1 &&
            ppn == s.last_ppn + 1 && s.len < kMaxRun) {
            ++s.len;
        } else {
            s.live = true;
            s.pcid = pcid;
            s.base_vpn = vpn;
            s.base_ppn = ppn;
            s.len = 1;
        }
        s.last_vpn = vpn;
        s.last_ppn = ppn;
        if (s.len < 2)
            return false;
        out = {s.base_vpn, s.base_ppn, s.len};
        return true;
    }

    void
    clear()
    {
        for (auto &s : slots_)
            s.live = false;
    }

    /** @{ @name Checkpointing */
    void
    save(snap::ArchiveWriter &ar) const
    {
        ar.u64(kSlots);
        for (const auto &s : slots_) {
            ar.b(s.live);
            ar.u32(s.pcid);
            ar.u64(s.base_vpn);
            ar.u64(s.base_ppn);
            ar.u64(s.last_vpn);
            ar.u64(s.last_ppn);
            ar.u32(s.len);
        }
    }

    void
    restore(snap::ArchiveReader &ar)
    {
        if (ar.u64() != kSlots)
            throw snap::SnapshotError("run-detector size mismatch");
        for (auto &s : slots_) {
            s.live = ar.b();
            s.pcid = ar.u32();
            s.base_vpn = ar.u64();
            s.base_ppn = ar.u64();
            s.last_vpn = ar.u64();
            s.last_ppn = ar.u64();
            s.len = ar.u32();
        }
    }
    /** @} */

  private:
    static constexpr std::size_t kSlots = 32; //!< Power of two.

    struct Slot
    {
        bool live = false;
        Pcid pcid = 0;
        Vpn base_vpn = 0;
        Ppn base_ppn = 0;
        Vpn last_vpn = 0;
        Ppn last_ppn = 0;
        std::uint32_t len = 0;
    };
    std::array<Slot, kSlots> slots_{};
};

} // namespace bf::translate

#endif // BF_TRANSLATE_STRUCTURES_HH
