#include "translate/pipeline.hh"

#include "common/attrib/attrib.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"

#include <cstdlib>

namespace bf::translate
{

PipelineBackend::PipelineBackend(unsigned core_id,
                                 const core::MmuParams &params,
                                 mem::CacheHierarchy &hierarchy,
                                 vm::Kernel &kernel,
                                 TranslateStats &stats,
                                 stats::StatGroup &group)
    : core_id_(core_id), params_(params), hierarchy_(hierarchy),
      kernel_(kernel), st_(stats), group_(group)
{
    l1i_4k_ = std::make_unique<tlb::Tlb>(params_.l1i_4k, &group_);
    l1d_[sizeIndex(PageSize::Size4K)] =
        std::make_unique<tlb::Tlb>(params_.l1d_4k, &group_);
    l1d_[sizeIndex(PageSize::Size2M)] =
        std::make_unique<tlb::Tlb>(params_.l1d_2m, &group_);
    l1d_[sizeIndex(PageSize::Size1G)] =
        std::make_unique<tlb::Tlb>(params_.l1d_1g, &group_);
    l2_[sizeIndex(PageSize::Size4K)] =
        std::make_unique<tlb::Tlb>(params_.l2_4k, &group_);
    l2_[sizeIndex(PageSize::Size2M)] =
        std::make_unique<tlb::Tlb>(params_.l2_2m, &group_);
    l2_[sizeIndex(PageSize::Size1G)] =
        std::make_unique<tlb::Tlb>(params_.l2_1g, &group_);
    pwc_ = std::make_unique<tlb::Pwc>(params_.pwc, &group_);
    walker_ = std::make_unique<tlb::PageWalker>(
        core_id_, hierarchy_, kernel_, *pwc_, params_.babelfish,
        &group_);

    // The L0 front cache replays conventional-lookup side effects; with
    // CCID-shared L1 structures the candidate scan of Fig. 8 is left on
    // the slow path (see the header comment on L0Entry).
    l0_enabled_ = !params_.l1Sharing() && !std::getenv("BF_NO_L0");
}

void
PipelineBackend::setTracer(trace::Tracer *tracer)
{
    tracer_ = tracer;
    walker_->setTracer(tracer);
}

namespace
{

/** Flag byte of the TLB hit/miss events. */
std::uint8_t
hitFlags(AccessType type, const tlb::TlbLookup &lookup)
{
    std::uint8_t flags = 0;
    if (isIfetch(type))
        flags |= trace::flagInstr;
    if (type == AccessType::Write)
        flags |= trace::flagWrite;
    if (lookup.shared_hit)
        flags |= trace::flagSharedHit;
    if (lookup.entry) {
        if (lookup.entry->owned)
            flags |= trace::flagOwned;
        if (lookup.entry->orpc)
            flags |= trace::flagOrpc;
    }
    return flags;
}

} // namespace

tlb::TlbLookup
PipelineBackend::lookupL1(vm::Process &proc, Addr va, AccessType type,
                          PageSize &size_out, int process_bit)
{
    const bool share = params_.l1Sharing();

    auto probeOne = [&](tlb::Tlb &tlb, PageSize size) {
        const Vpn vpn = va >> pageShift(size);
        tlb::TlbLookup lookup =
            share ? tlb.lookupBabelFish(vpn, proc.ccid(), proc.pcid(),
                                        process_bit)
                  : tlb.lookupConventional(vpn, proc.pcid());
        if (lookup.hit())
            size_out = size;
        return lookup;
    };

    if (isIfetch(type))
        return probeOne(*l1i_4k_, PageSize::Size4K);

    // The three size structures are probed in parallel in hardware.
    for (PageSize size : {PageSize::Size4K, PageSize::Size2M,
                          PageSize::Size1G}) {
        tlb::TlbLookup lookup = probeOne(*l1d_[sizeIndex(size)], size);
        if (lookup.hit())
            return lookup;
    }
    return {};
}

tlb::TlbLookup
PipelineBackend::lookupL2(vm::Process &proc, Addr va, AccessType type,
                          PageSize &size_out, int process_bit)
{
    (void)type;
    tlb::TlbLookup result;
    for (PageSize size : {PageSize::Size4K, PageSize::Size2M,
                          PageSize::Size1G}) {
        tlb::Tlb &tlb = *l2_[sizeIndex(size)];
        const Vpn vpn = va >> pageShift(size);
        tlb::TlbLookup lookup =
            params_.babelfish
                ? tlb.lookupBabelFish(vpn, proc.ccid(), proc.pcid(),
                                      process_bit)
                : tlb.lookupConventional(vpn, proc.pcid());
        result.bitmask_checked |= lookup.bitmask_checked;
        if (lookup.hit()) {
            size_out = size;
            lookup.bitmask_checked = result.bitmask_checked;
            return lookup;
        }
    }
    return result;
}

void
PipelineBackend::noteL1Evicted(const vm::Process &proc,
                               const tlb::TlbEntry &evicted)
{
    // L1 copies are per-process: the PCID tag is the victim's owner.
    if (sink_)
        sink_->noteL1Eviction(proc.attribSlot(),
                              areg_->slotOfPcid(evicted.pcid));
}

void
PipelineBackend::noteL2Evicted(const vm::Process &proc,
                               const tlb::TlbEntry &evicted)
{
    // Owned entries are tagged with the owner; shared (O-clear) entries
    // carry the filler in fill_pcid — bill the victim that paid for the
    // fill.
    if (sink_)
        sink_->noteL2Eviction(
            proc.attribSlot(),
            areg_->slotOfPcid(evicted.owned ? evicted.pcid
                                            : evicted.fill_pcid));
}

void
PipelineBackend::fillL1(const tlb::TlbEntry &entry, vm::Process &proc,
                        AccessType type)
{
    tlb::TlbEntry copy = entry;
    copy.pcid = proc.pcid();
    copy.ccid = proc.ccid();
    tlb::TlbEntry evicted;
    if (isIfetch(type)) {
        if (copy.size == PageSize::Size4K &&
            l1i_4k_->fill(copy, params_.l1Sharing(),
                          sink_ ? &evicted : nullptr))
            noteL1Evicted(proc, evicted);
        return;
    }
    // A data fill can turn a "structure probed before the owner still
    // misses" assumption stale; retire the huge-page L0 slots.
    ++l0_gen_;
    if (l1d_[sizeIndex(copy.size)]->fill(copy, params_.l1Sharing(),
                                         sink_ ? &evicted : nullptr))
        noteL1Evicted(proc, evicted);
}

void
PipelineBackend::fillL2(const tlb::TlbEntry &entry, vm::Process &proc,
                        Cycles now)
{
    (void)now;
    tlb::TlbEntry copy = entry;
    copy.ccid = proc.ccid();
    // Shared entries keep the PCID of the filler so Shared Hits can be
    // recognized; owned entries are tagged with the owner.
    copy.pcid = proc.pcid();
    copy.fill_pcid = proc.pcid();
    tlb::TlbEntry evicted;
    if (l2_[sizeIndex(copy.size)]->fill(copy, params_.babelfish,
                                        sink_ ? &evicted : nullptr))
        noteL2Evicted(proc, evicted);
}

bool
PipelineBackend::backfill(vm::Process &proc, Addr va, AccessType type,
                          int process_bit, Cycles now, Cycles &cycles,
                          tlb::TlbEntry &out)
{
    (void)proc;
    (void)va;
    (void)type;
    (void)process_bit;
    (void)now;
    (void)cycles;
    (void)out;
    return false;
}

void
PipelineBackend::invalidateExtra(const vm::TlbInvalidate &inv)
{
    (void)inv;
}

void
PipelineBackend::flushExtra()
{
}

void
PipelineBackend::resetExtraStats()
{
}

void
PipelineBackend::saveExtra(snap::ArchiveWriter &ar) const
{
    (void)ar;
}

void
PipelineBackend::restoreExtra(snap::ArchiveReader &ar)
{
    (void)ar;
}

void
PipelineBackend::installL0(Addr va, Pcid pcid, AccessType type,
                           PageSize size, const tlb::TlbEntry *entry)
{
    if (!l0_enabled_)
        return;
    const bool ifetch = isIfetch(type);
    const unsigned kind = ifetch ? 0 : 1 + sizeIndex(size);
    L0Entry &slot = l0_[l0Index(va >> 12, pcid, ifetch)];
    slot.vpn4k = va >> 12;
    // The entry pointer stays valid for the structure's lifetime
    // (entries_ never reallocates); the fast path re-validates its
    // identity and re-reads the payload on every use.
    slot.entry = const_cast<tlb::TlbEntry *>(entry);
    slot.owner = ifetch ? l1i_4k_.get() : l1d_[sizeIndex(size)].get();
    slot.gen = l0_gen_;
    slot.pcid = pcid;
    slot.shift = static_cast<std::uint8_t>(pageShift(size));
    slot.owner_kind = static_cast<std::uint8_t>(kind);
    slot.is_ifetch = ifetch;
    // A huge-page hit replays misses of the structures probed first;
    // those replays die with the generation on the next data fill.
    slot.gen_sensitive = kind > 1;
}

int
PipelineBackend::cachedProcessBit(const vm::Process &proc,
                                  Addr canonical_va)
{
    // processBit() depends on the VA only through the region bases at
    // the three possible leaf levels, and the finest (1 GB) base
    // determines the coarser two — so {pid, 1 GB region} keys the
    // answer exactly.
    const Addr region = vm::tableBase(canonical_va, vm::LevelPte + 1);
    // 1 GB regions make the low 30 bits of `region` zero; fold the
    // next bits with the pid for the slot index.
    const std::size_t slot =
        ((region >> 30) ^ proc.pid()) & (kPbCacheSize - 1);
    PbCache &pb = pb_cache_[slot];
    if (pb.gen_ptr && pb.pid == proc.pid() && pb.region == region &&
        *pb.gen_ptr == pb.gen)
        return pb.bit;

    const std::uint64_t *gen_ptr = kernel_.maskGenerationPtr(proc.ccid());
    pb.gen_ptr = gen_ptr;
    pb.gen = gen_ptr ? *gen_ptr : 0;
    pb.pid = proc.pid();
    pb.region = region;
    pb.bit = kernel_.processBit(proc, canonical_va);
    return pb.bit;
}

Translation
PipelineBackend::translate(vm::Process &proc, Addr canonical_va,
                           AccessType type, Cycles now)
{
    Translation result;
    const bool is_write = type == AccessType::Write;

    // ---- L0 fast path: a direct-mapped memo of the last slow-path L1
    // hit for this {page, PCID, kind}. A hit re-validates the live TLB
    // entry and replays the bypassed probe sequence's exact side
    // effects, so stats and traces are byte-identical either way.
    // Faulting accesses always fall through to the slow path, as do
    // the retries after a fault (the loop below never consults L0).
    if (l0_enabled_) {
        const bool ifetch = isIfetch(type);
        L0Entry &slot =
            l0_[l0Index(canonical_va >> 12, proc.pcid(), ifetch)];
        if (slot.vpn4k == (canonical_va >> 12) &&
            slot.pcid == proc.pcid() && slot.is_ifetch == ifetch &&
            (!slot.gen_sensitive || slot.gen == l0_gen_)) {
            tlb::TlbEntry *e = slot.entry;
            // Live re-validation: fills never duplicate a {VPN, PCID}
            // in a conventional structure (a stale match is shot down
            // before the refill), so a live identity match means this
            // entry is exactly what lookupL1 would return — with its
            // current ppn/cow/O-PC payload, re-read below.
            if (e->valid && e->pcid == slot.pcid &&
                e->vpn == (canonical_va >> slot.shift) &&
                !(is_write && e->cow)) {
                for (unsigned k = 1; k < slot.owner_kind; ++k)
                    l1d_[k - 1]->recordL0Miss();
                const bool shared = e->fill_pcid != slot.pcid;
                slot.owner->recordL0Hit(e, shared);
                ++st_.l1_hits;
                result.cycles += 1;
                if (tracer_) {
                    tlb::TlbLookup lk;
                    lk.entry = e;
                    lk.shared_hit = shared;
                    const int pbit =
                        params_.babelfish
                            ? cachedProcessBit(proc, canonical_va)
                            : -1;
                    tracer_->record(core_id_, trace::EventType::TlbL1Hit,
                                    now + result.cycles, proc.ccid(),
                                    proc.pid(), canonical_va,
                                    trace::packAttempt(proc.pcid(), pbit),
                                    hitFlags(type, lk));
                }
                result.size = e->size;
                result.paddr = (e->ppn << pageShift(e->size)) |
                               (canonical_va &
                                (pageBytes(e->size) - 1));
                return result;
            }
        }
    }

    // The PC-bitmask bit this process owns for the page's region (-1 for
    // the common case of no private copies). Computed once per translate,
    // as before — the cache only changes who does the computing.
    const int process_bit =
        params_.babelfish ? cachedProcessBit(proc, canonical_va) : -1;

    for (int attempt = 0; attempt < 8; ++attempt) {
        PageSize size = PageSize::Size4K;

        // ---- L1 TLB: 1 cycle.
        tlb::TlbLookup l1 = lookupL1(proc, canonical_va, type, size,
                                     process_bit);
        result.cycles += 1;
        if (l1.hit()) {
            const tlb::TlbEntry &entry = *l1.entry;
            if (is_write && entry.cow) {
                // Write to a CoW page: declared as a CoW page fault
                // (Fig. 8, step 6). No hit is counted and no L1 state
                // beyond the probe changes; the flagCowFault event lets
                // replay tell this apart from a counted hit.
                const PageSize esize = entry.size;
                if (tracer_) {
                    tracer_->record(
                        core_id_, trace::EventType::TlbL1Hit,
                        now + result.cycles, proc.ccid(), proc.pid(),
                        canonical_va,
                        trace::packAttempt(proc.pcid(), process_bit),
                        static_cast<std::uint8_t>(hitFlags(type, l1) |
                                                  trace::flagCowFault));
                }
                if (epoch_log_ && epoch_log_->active()) {
                    epoch_log_->deferFault(
                        {&proc, canonical_va, type, true, esize},
                        now + result.cycles);
                    result.blocked = true;
                    return result;
                }
                if (tracer_)
                    tracer_->setKernelContext(core_id_,
                                              now + result.cycles);
                const auto outcome =
                    kernel_.handleFault(proc, canonical_va, type);
                bf_assert(outcome.kind != vm::FaultKind::Protection,
                          "protection fault at ", canonical_va);
                if (tracer_) {
                    tracer_->record(
                        core_id_, trace::EventType::FaultService,
                        now + result.cycles, proc.ccid(), proc.pid(),
                        canonical_va,
                        trace::packFault(outcome.cycles, proc.pcid(),
                                         static_cast<unsigned>(esize),
                                         true),
                        static_cast<std::uint8_t>(outcome.kind));
                    tracer_->clearKernelContext();
                }
                if (outcome.kind == vm::FaultKind::None) {
                    // Already resolved; only this core's copy is stale.
                    applyInvalidate({vm::TlbInvalidate::Kind::Page,
                                     proc.ccid(), proc.pcid(),
                                     canonical_va >> pageShift(esize), 1,
                                     esize});
                }
                result.cycles += outcome.cycles;
                st_.fault_cycles += outcome.cycles;
                result.faulted = true;
                ++st_.cow_faults;
                continue; // retry; the stale entries were shot down
            }
            ++st_.l1_hits;
            installL0(canonical_va, proc.pcid(), type, size, l1.entry);
            if (tracer_)
                tracer_->record(core_id_, trace::EventType::TlbL1Hit,
                                now + result.cycles, proc.ccid(),
                                proc.pid(), canonical_va,
                                trace::packAttempt(proc.pcid(),
                                                   process_bit),
                                hitFlags(type, l1));
            result.size = entry.size;
            result.paddr = (entry.ppn << pageShift(entry.size)) |
                           (canonical_va & (pageBytes(entry.size) - 1));
            return result;
        }
        ++st_.l1_misses;

        // ---- ASLR-HW transform between L1 and L2 (paper §IV-D).
        if (params_.babelfish && params_.aslr == vm::AslrMode::Hw)
            result.cycles += params_.aslr_transform_cycles;

        // ---- L2 TLB: 10 cycles, 12 when the PC bitmask is consulted.
        tlb::TlbLookup l2 = lookupL2(proc, canonical_va, type, size,
                                     process_bit);
        const bool long_access =
            l2.bitmask_checked ||
            (params_.force_long_l2 && params_.babelfish);
        const Cycles l2_time =
            params_.l2_4k.access_cycles +
            (long_access ? params_.l2_4k.bitmask_extra_cycles : 0);
        result.cycles += l2_time;
        if (long_access)
            ++st_.l2_long_accesses;

        if (l2.hit()) {
            const tlb::TlbEntry &entry = *l2.entry;
            if (isIfetch(type)) {
                ++st_.l2_instr_hits;
                if (l2.shared_hit)
                    ++st_.l2_instr_shared_hits;
            } else {
                ++st_.l2_data_hits;
                if (l2.shared_hit)
                    ++st_.l2_data_shared_hits;
            }
            if (tracer_) {
                std::uint8_t flags = hitFlags(type, l2);
                if (long_access)
                    flags |= trace::flagLongL2;
                if (is_write && entry.cow)
                    flags |= trace::flagCowFault;
                tracer_->record(core_id_, trace::EventType::TlbL2Hit,
                                now + result.cycles, proc.ccid(),
                                proc.pid(), canonical_va,
                                trace::packAttempt(proc.pcid(),
                                                   process_bit),
                                flags);
            }
            if (is_write && entry.cow) {
                const PageSize esize = entry.size;
                if (epoch_log_ && epoch_log_->active()) {
                    epoch_log_->deferFault(
                        {&proc, canonical_va, type, true, esize},
                        now + result.cycles);
                    result.blocked = true;
                    return result;
                }
                if (tracer_)
                    tracer_->setKernelContext(core_id_,
                                              now + result.cycles);
                const auto outcome =
                    kernel_.handleFault(proc, canonical_va, type);
                bf_assert(outcome.kind != vm::FaultKind::Protection,
                          "protection fault at ", canonical_va);
                if (tracer_) {
                    tracer_->record(
                        core_id_, trace::EventType::FaultService,
                        now + result.cycles, proc.ccid(), proc.pid(),
                        canonical_va,
                        trace::packFault(outcome.cycles, proc.pcid(),
                                         static_cast<unsigned>(esize),
                                         true),
                        static_cast<std::uint8_t>(outcome.kind));
                    tracer_->clearKernelContext();
                }
                if (outcome.kind == vm::FaultKind::None) {
                    applyInvalidate({vm::TlbInvalidate::Kind::Page,
                                     proc.ccid(), proc.pcid(),
                                     canonical_va >> pageShift(esize), 1,
                                     esize});
                }
                result.cycles += outcome.cycles;
                st_.fault_cycles += outcome.cycles;
                result.faulted = true;
                ++st_.cow_faults;
                continue;
            }
            fillL1(*l2.entry, proc, type);
            result.size = entry.size;
            result.paddr = (entry.ppn << pageShift(entry.size)) |
                           (canonical_va & (pageBytes(entry.size) - 1));
            return result;
        }
        if (isIfetch(type))
            ++st_.l2_instr_misses;
        else
            ++st_.l2_data_misses;
        if (tracer_) {
            std::uint8_t flags = hitFlags(type, tlb::TlbLookup{});
            if (long_access)
                flags |= trace::flagLongL2;
            tracer_->record(core_id_, trace::EventType::TlbMiss,
                            now + result.cycles, proc.ccid(), proc.pid(),
                            canonical_va,
                            trace::packAttempt(proc.pcid(), process_bit),
                            flags);
        }

        // ---- Backend backfill probe (e.g. Victima's backing store):
        // a last chance to recover the translation without walking.
        {
            tlb::TlbEntry recovered;
            Cycles probe_cycles = 0;
            if (backfill(proc, canonical_va, type, process_bit,
                         now + result.cycles, probe_cycles, recovered)) {
                result.cycles += probe_cycles;
                st_.miss_latency.sample(result.cycles);
                if (tracer_) {
                    std::uint8_t flags = 0;
                    if (isIfetch(type))
                        flags |= trace::flagInstr;
                    if (is_write)
                        flags |= trace::flagWrite;
                    tracer_->record(
                        core_id_, trace::EventType::TlbFill,
                        now + result.cycles, proc.ccid(), proc.pid(),
                        canonical_va,
                        trace::packFill(
                            proc.pcid(),
                            static_cast<unsigned>(recovered.size),
                            recovered.owned, recovered.orpc,
                            recovered.cow, recovered.pc_bitmask),
                        flags);
                }
                fillL2(recovered, proc, now + result.cycles);
                fillL1(recovered, proc, type);
                result.size = recovered.size;
                result.paddr =
                    (recovered.ppn << pageShift(recovered.size)) |
                    (canonical_va & (pageBytes(recovered.size) - 1));
                return result;
            }
        }

        // ---- Page walk.
        tlb::WalkResult walk =
            walker_->walk(proc, canonical_va, type, now + result.cycles);
        result.cycles += walk.cycles;

        if (walk.status == tlb::WalkStatus::Ok) {
            st_.miss_latency.sample(result.cycles);
            if (tracer_) {
                // Recorded before the fills so replay sees the walked
                // entry's attributes exactly as they go into the TLBs.
                std::uint8_t flags = 0;
                if (isIfetch(type))
                    flags |= trace::flagInstr;
                if (is_write)
                    flags |= trace::flagWrite;
                tracer_->record(
                    core_id_, trace::EventType::TlbFill,
                    now + result.cycles, proc.ccid(), proc.pid(),
                    canonical_va,
                    trace::packFill(
                        proc.pcid(),
                        static_cast<unsigned>(walk.fill.size),
                        walk.fill.owned, walk.fill.orpc, walk.fill.cow,
                        walk.fill.pc_bitmask),
                    flags);
            }
            fillL2(walk.fill, proc, now + result.cycles);
            fillL1(walk.fill, proc, type);
            result.size = walk.fill.size;
            result.paddr =
                (walk.fill.ppn << pageShift(walk.fill.size)) |
                (canonical_va & (pageBytes(walk.fill.size) - 1));
            return result;
        }

        bf_assert(walk.status != tlb::WalkStatus::Protection,
                  "protection fault on walk: va=", canonical_va,
                  " pid=", proc.pid());

        // Page fault (not-present or CoW): invoke the OS and retry.
        if (epoch_log_ && epoch_log_->active()) {
            epoch_log_->deferFault(
                {&proc, canonical_va, type, false, PageSize::Size4K},
                now + result.cycles);
            result.blocked = true;
            return result;
        }
        if (tracer_)
            tracer_->setKernelContext(core_id_, now + result.cycles);
        const auto outcome = kernel_.handleFault(proc, canonical_va, type);
        bf_assert(outcome.kind != vm::FaultKind::Protection,
                  "kernel protection fault at va=", canonical_va,
                  " pid=", proc.pid());
        if (tracer_) {
            tracer_->record(
                core_id_, trace::EventType::FaultService,
                now + result.cycles, proc.ccid(), proc.pid(),
                canonical_va,
                trace::packFault(
                    outcome.cycles, proc.pcid(),
                    static_cast<unsigned>(PageSize::Size4K), false),
                static_cast<std::uint8_t>(outcome.kind));
            tracer_->clearKernelContext();
        }
        result.cycles += outcome.cycles;
        st_.fault_cycles += outcome.cycles;
        result.faulted = true;
        switch (outcome.kind) {
          case vm::FaultKind::Minor: ++st_.minor_faults; break;
          case vm::FaultKind::Major: ++st_.major_faults; break;
          case vm::FaultKind::Cow: ++st_.cow_faults; break;
          case vm::FaultKind::SharedInstall: ++st_.shared_installs; break;
          default: break;
        }
    }
    bf_panic("translation did not converge at va=", canonical_va);
}

void
PipelineBackend::applyInvalidate(const vm::TlbInvalidate &inv)
{
    using Kind = vm::TlbInvalidate::Kind;
    // Conservative: live-entry re-validation already catches every
    // shot-down slot, but shootdowns are rare enough that retiring the
    // whole L0 generation costs nothing and keeps the argument simple.
    ++l0_gen_;
    auto forEachTlb = [&](auto &&fn) {
        fn(*l1i_4k_);
        for (auto &tlb : l1d_)
            fn(*tlb);
        for (auto &tlb : l2_)
            fn(*tlb);
    };

    switch (inv.kind) {
      case Kind::Page:
        forEachTlb([&](tlb::Tlb &tlb) {
            if (tlb.params().page_size == inv.size)
                tlb.invalidatePage(inv.pcid, inv.vpn);
        });
        break;
      case Kind::SharedRange:
        // Shared (O-clear) entries and their L1 copies: the per-process
        // L1 copies of shared fills keep owned=false, so the range drop
        // removes them on every core (conservative, like a remote
        // shootdown IPI).
        forEachTlb([&](tlb::Tlb &tlb) {
            if (tlb.params().page_size == inv.size) {
                tlb.invalidateSharedRange(inv.ccid, inv.vpn,
                                          inv.num_pages);
            } else if (inv.size == PageSize::Size4K) {
                // Region shootdowns expressed in 4K VPNs also cover any
                // huge entries overlapping the range.
                const int shift = pageShift(tlb.params().page_size) -
                                  pageShift(PageSize::Size4K);
                const Vpn first = inv.vpn >> shift;
                const Vpn last = (inv.vpn + inv.num_pages - 1) >> shift;
                tlb.invalidateSharedRange(inv.ccid, first,
                                          last - first + 1);
            }
        });
        break;
      case Kind::Pcid:
        forEachTlb([&](tlb::Tlb &tlb) { tlb.invalidatePcid(inv.pcid); });
        pwc_->invalidateAll();
        break;
    }
    invalidateExtra(inv);
}

void
PipelineBackend::flushAll()
{
    l1i_4k_->invalidateAll();
    for (auto &tlb : l1d_)
        tlb->invalidateAll();
    for (auto &tlb : l2_)
        tlb->invalidateAll();
    pwc_->invalidateAll();
    ++l0_gen_;
    l0_.fill(L0Entry{});
    flushExtra();
}

void
PipelineBackend::resetStats()
{
    l1i_4k_->resetStats();
    for (auto &tlb : l1d_)
        tlb->resetStats();
    for (auto &tlb : l2_)
        tlb->resetStats();
    pwc_->resetStats();
    walker_->resetStats();
    resetExtraStats();
}

void
PipelineBackend::save(snap::ArchiveWriter &ar) const
{
    l1i_4k_->save(ar);
    for (const auto &tlb : l1d_)
        tlb->save(ar);
    for (const auto &tlb : l2_)
        tlb->save(ar);
    pwc_->save(ar);
    saveExtra(ar);
}

void
PipelineBackend::restore(snap::ArchiveReader &ar)
{
    l1i_4k_->restore(ar);
    for (auto &tlb : l1d_)
        tlb->restore(ar);
    for (auto &tlb : l2_)
        tlb->restore(ar);
    pwc_->restore(ar);
    restoreExtra(ar);
    // Drop the processBit memo and the L0 front cache: both re-warm on
    // first use and replay/answer with no stat side effects, so
    // resuming cold here is invisible to stats.
    pb_cache_.fill(PbCache{});
    ++l0_gen_;
    l0_.fill(L0Entry{});
}

} // namespace bf::translate
