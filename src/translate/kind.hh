/**
 * @file
 * Identity of a translation backend (DESIGN.md §16). Kept in its own
 * tiny header so core/params.hh can name the selected backend without
 * pulling in the backend interface itself.
 */

#ifndef BF_TRANSLATE_KIND_HH
#define BF_TRANSLATE_KIND_HH

#include <cstdint>

namespace bf::translate
{

/**
 * The pluggable translation-backend zoo. Values are stable identifiers:
 * they are mixed into config hashes, written into checkpoint manifests
 * and trace headers, so existing entries must never be renumbered.
 *
 *  - BabelFish: the reference pipeline (L1/L2 TLBs + PWC + walker).
 *    Despite the name it implements both the conventional and the
 *    BabelFish (CCID-tagged) TLB modes — MmuParams::babelfish selects
 *    the tagging; BackendKind selects the structures around it.
 *  - Victima: the reference pipeline plus a Victima-style backing
 *    store that spills L2-TLB evictions into the simulated L2/L3 data
 *    arrays and probes them on an L2 TLB miss (arxiv 2310.04158).
 *  - Coalesced: the reference pipeline plus a CoLT-style range TLB
 *    that detects contiguous VPN→PFN runs at L2 fill time and packs
 *    them into range entries probed alongside the L2 (arxiv
 *    1908.08774).
 */
enum class BackendKind : std::uint8_t
{
    BabelFish = 0,
    Victima = 1,
    Coalesced = 2,
};

constexpr unsigned numBackendKinds = 3;

/** Stable lower-case name ("babelfish", "victima", "coalesced"). */
const char *backendName(BackendKind kind);

/**
 * Parse a backend name (as accepted by BF_BACKEND). Returns true and
 * sets @p out on success; unknown names return false.
 */
bool parseBackend(const char *name, BackendKind &out);

} // namespace bf::translate

#endif // BF_TRANSLATE_KIND_HH
