#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bf
{
namespace detail
{

namespace
{

/**
 * Process-wide log-level state. BF_LOG, parsed once on first use, pins
 * the level: the benches' blanket setVerbose(false) must not undo an
 * operator's explicit BF_LOG=info, and BF_LOG=quiet must silence benches
 * that never call setVerbose at all.
 */
struct LogState
{
    LogLevel level = LogLevel::Info;
    bool env_pinned = false;

    LogState()
    {
        const char *env = std::getenv("BF_LOG");
        if (!env)
            return;
        if (std::strcmp(env, "quiet") == 0) {
            level = LogLevel::Quiet;
        } else if (std::strcmp(env, "warn") == 0) {
            level = LogLevel::Warn;
        } else if (std::strcmp(env, "info") == 0) {
            level = LogLevel::Info;
        } else {
            std::fprintf(stderr,
                         "warn: BF_LOG=%s is not quiet|warn|info; "
                         "ignored\n",
                         env);
            return;
        }
        env_pinned = true;
    }
};

LogState &
state()
{
    static LogState s;
    return s;
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
setVerbose(bool verbose)
{
    if (state().env_pinned)
        return;
    state().level = verbose ? LogLevel::Info : LogLevel::Warn;
}

bool
verbose()
{
    return state().level >= LogLevel::Info;
}

void
setLogLevel(LogLevel level)
{
    state().level = level;
    state().env_pinned = false;
}

LogLevel
logLevel()
{
    return state().level;
}

} // namespace detail
} // namespace bf
