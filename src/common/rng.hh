/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator (workload generators, YCSB
 * clients, ASLR seeds) draws from an Rng seeded from the experiment
 * configuration, so runs are exactly reproducible. The generator is
 * xoshiro256** seeded through splitmix64, which is fast and has no
 * pathological low-bit behaviour.
 */

#ifndef BF_COMMON_RNG_HH
#define BF_COMMON_RNG_HH

#include <cstdint>

namespace bf
{

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any seed (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection method.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            std::uint64_t threshold = -bound % bound;
            while (low < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** @{ @name Checkpointing: copy the 256-bit state in/out. */
    void
    getState(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = state_[i];
    }

    void
    setState(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = in[i];
    }
    /** @} */

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace bf

#endif // BF_COMMON_RNG_HH
