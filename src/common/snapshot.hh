/**
 * @file
 * Checkpoint archive: a small versioned binary container for simulator
 * snapshots (gem5/Simics-style checkpointing, DESIGN.md §11).
 *
 * File layout (all integers little-endian, fixed width):
 *
 *     magic[8]  "BFCKPT\r\n"   (the \r\n catches text-mode mangling)
 *     u32       format version
 *     u64       payload length in bytes
 *     u32       CRC32 of the payload
 *     payload   length-prefixed tagged sections
 *
 * The payload is a flat byte stream produced by typed put* calls,
 * structured by nestable sections: a 4-character tag followed by a u32
 * byte length, patched when the section ends. The reader verifies magic,
 * version, length and CRC *before* returning a reader, so a truncated or
 * corrupted file is rejected up front — restore never begins mutating
 * simulator state from a file that fails any integrity check. All reads
 * are bounds-checked and mismatches throw SnapshotError, never crash.
 */

#ifndef BF_COMMON_SNAPSHOT_HH
#define BF_COMMON_SNAPSHOT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace bf::snap
{

/** Any integrity or format violation found while reading an archive. */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Bumped whenever the serialized component layout changes.
 * History: 1 = initial layout; 2 = Distribution stats in the stat tree;
 * 3 = TLB replacement policy + RNG state in the TLB payload.
 */
inline constexpr std::uint32_t formatVersion = 3;

/** CRC32 (IEEE 802.3, reflected) of a byte range. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t len);

/** Serializes typed values into a tagged-section byte stream. */
class ArchiveWriter
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void b(bool v) { u8(v ? 1 : 0); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    /** Doubles are stored by bit pattern: restore is bit-exact. */
    void f64(double v);
    /** Length-prefixed UTF-8 string. */
    void str(std::string_view s);

    /** @{ @name Sections (tag must be exactly 4 characters) */
    void beginSection(std::string_view tag);
    void endSection();
    /** @} */

    /**
     * Write header + payload to @p path via a temp file and rename, so
     * a crash mid-write never leaves a truncated file under the final
     * name. @return false (with the OS error on stderr) on IO failure.
     */
    bool writeFile(const std::string &path) const;

    /** The raw payload built so far (tests round-trip through this). */
    const std::vector<std::uint8_t> &payload() const { return buf_; }

  private:
    std::vector<std::uint8_t> buf_;
    std::vector<std::size_t> open_sections_; //!< Offsets of length fields.
};

/** Bounds-checked reader over a validated archive payload. */
class ArchiveReader
{
  public:
    /**
     * Load and validate @p path: magic, format version, payload length
     * and CRC32 are all checked here, before any simulator state can be
     * touched. @throws SnapshotError with a diagnostic on any problem.
     */
    static ArchiveReader fromFile(const std::string &path);

    /** Wrap an in-memory payload (tests; no header checks). */
    explicit ArchiveReader(std::vector<std::uint8_t> payload)
        : payload_(std::move(payload))
    {}

    std::uint8_t u8();
    bool b() { return u8() != 0; }
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    std::string str();

    /** @{ @name Sections */
    /** Enter a section; @throws SnapshotError if the tag differs. */
    void enterSection(std::string_view tag);
    /** Leave it; @throws SnapshotError unless fully consumed. */
    void exitSection();
    /** @} */

    /** Whether the cursor reached the end of the payload. */
    bool atEnd() const { return pos_ == payload_.size(); }

  private:
    std::vector<std::uint8_t> payload_;
    std::size_t pos_ = 0;
    std::vector<std::size_t> section_ends_;

    /** @throws SnapshotError when fewer than @p n bytes remain. */
    void need(std::size_t n) const;
};

} // namespace bf::snap

#endif // BF_COMMON_SNAPSHOT_HH
