/**
 * @file
 * Per-container (tenant) attribution of translation and memory events
 * (DESIGN.md §17).
 *
 * BabelFish's whole argument is about what containers *share* — fused
 * PTEs, shared TLB entries, group shootdowns — so the machine-global
 * counters alone cannot say which tenant paid for a walk or whose
 * entries evicted whose. The Registry keeps one stats subtree per
 * container (`system.attrib.t<slot>`) mirroring the access-level
 * counters plus the interference edges the global tree cannot express:
 * per-tenant "evicted-by" matrices (TLB victim attribution via the
 * owner tag already present in entries), shootdowns caused vs.
 * received split by same/cross CCID group, and weave-phase DRAM-excess
 * billing.
 *
 * Determinism contract: bound-phase threads never touch the shared
 * Registry. Each core books into its private CoreSink (flat integer
 * lanes, written only by the thread running that core, exactly like
 * the per-core stats); the single-threaded end-of-chunk drain folds
 * the sinks into the tenant subtree in fixed core order. Every lane is
 * an integer add or a bucket-wise Distribution merge, both
 * order-independent, so the drained values — like every other stat —
 * are byte-identical at any BF_WORKERS/BF_WEAVE_WORKERS.
 *
 * The mirrored access counters are not booked per event. A core serves
 * exactly one process between scheduler switch points, so the core
 * snapshots its global counters (the MMU's TranslateStats, the
 * walker's walks, its own instructions) and credits the *delta* to the
 * tenant's sink lanes only at slot switches and chunk barriers
 * (Core::flushAttribWindow) — per-event cost is one predicted compare,
 * and the reconciliation invariant (sum over tenants == global
 * counter, bit for bit) holds by construction: the windows partition
 * the global counters' growth. Only the event kinds with no global
 * mirror book at their sites: TLB eviction edges (need the displaced
 * entry's owner tag) and the kernel/weave interference scalars.
 *
 * Tenant slots are dense registration-order indices. Processes are
 * created only in single-threaded windows (workload setup, fault
 * service), registration is deterministic, and slots are never reused
 * — a tenant's subtree outlives its process exit, so the stats-tree
 * topology at any point depends only on the (deterministic) creation
 * history and checkpoint restore rebuilds it identically.
 */

#ifndef BF_COMMON_ATTRIB_HH
#define BF_COMMON_ATTRIB_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace bf::attrib
{

/**
 * Per-tenant counter indices. The first block mirrors
 * translate::TranslateStats member-for-member (same booking sites);
 * kWalks and kInstructions extend it with the walker and core counters
 * the reconciliation test sums against.
 */
enum Counter : unsigned
{
    kL1Hits,
    kL1Misses,
    kL2DataHits,
    kL2DataMisses,
    kL2InstrHits,
    kL2InstrMisses,
    kL2DataSharedHits,
    kL2InstrSharedHits,
    kL2Long,
    kMinorFaults,
    kMajorFaults,
    kCowFaults,
    kSharedInstalls,
    kFaultCycles,
    kWalks,
    kInstructions,
    kNumCounters
};

/** Stats-tree name of a counter (matches the global counterpart). */
const char *counterName(Counter c);

/**
 * Eviction-matrix column cap. Tenants with slot >= this fold into the
 * per-row "other" column, bounding the matrix at
 * O(tenants × kMaxEdgeSlots) scalars so fleet-churn scenarios with
 * thousands of short-lived containers don't explode the stats tree.
 * Totals stay exact; only the column resolution degrades.
 */
inline constexpr int kMaxEdgeSlots = 64;

/**
 * One core's private attribution scratch. Written only by the host
 * thread executing that core's bound phase (plus the single-threaded
 * fault-service window), read and zeroed only by Registry::drain().
 * All lanes are flat integer arrays indexed by tenant slot, grown in
 * single-threaded windows when tenants register.
 */
class CoreSink
{
  public:
    /** Eviction-matrix column stride: aggressor columns + "other". */
    static constexpr std::size_t kEdgeCols = kMaxEdgeSlots + 1;

    /** Book @p v into counter @p c of tenant @p slot (-1 ignored). */
    void
    add(int slot, Counter c, std::uint64_t v = 1)
    {
        if (slot < 0)
            return;
        counts_[static_cast<std::size_t>(slot) * kNumCounters + c] += v;
        dirty_[static_cast<std::size_t>(slot)] = 1;
    }

    /**
     * Fold a miss-latency window — the samples the core's global
     * distribution @p cur received since snapshot @p base — into tenant
     * @p slot (see stats::Distribution::mergeDiff). The core calls this
     * at slot switches and chunk barriers instead of double-sampling
     * every miss.
     */
    void
    mergeMissLatencyWindow(int slot, const stats::Distribution &cur,
                           const stats::Distribution &base)
    {
        if (slot < 0 || cur.count() == base.count())
            return;
        lat_[static_cast<std::size_t>(slot)].mergeDiff(cur, base);
        dirty_[static_cast<std::size_t>(slot)] = 1;
    }

    /** @{
     * @name Eviction edges
     * @p aggressor's fill displaced a valid entry owned by @p victim.
     * Either side may be -1 (untracked process): the edge is dropped —
     * eviction matrices have no global counterpart to reconcile.
     */
    void
    noteL1Eviction(int aggressor, int victim)
    {
        if (aggressor < 0 || victim < 0)
            return;
        l1_ev_[static_cast<std::size_t>(victim) * kEdgeCols +
               edgeCol(aggressor)] += 1;
        dirty_[static_cast<std::size_t>(victim)] = 1;
    }

    void
    noteL2Eviction(int aggressor, int victim)
    {
        if (aggressor < 0 || victim < 0)
            return;
        l2_ev_[static_cast<std::size_t>(victim) * kEdgeCols +
               edgeCol(aggressor)] += 1;
        dirty_[static_cast<std::size_t>(victim)] = 1;
    }
    /** @} */

    /** Grow all lanes to @p slots tenants (single-threaded windows). */
    void grow(std::size_t slots);

    std::size_t slots() const { return slots_; }

  private:
    friend class Registry;

    /** Column of an aggressor slot (capped tenants fold into last). */
    static std::size_t
    edgeCol(int aggressor)
    {
        return aggressor < kMaxEdgeSlots
                   ? static_cast<std::size_t>(aggressor)
                   : static_cast<std::size_t>(kMaxEdgeSlots);
    }

    std::vector<std::uint64_t> counts_; //!< [slot * kNumCounters + c].
    std::vector<stats::Distribution> lat_; //!< Miss latency per slot.
    std::vector<std::uint8_t> dirty_;   //!< Per-slot any-activity flag.
    std::vector<std::uint64_t> l1_ev_;  //!< [victim * kEdgeCols + col].
    std::vector<std::uint64_t> l2_ev_;
    std::size_t slots_ = 0;
};

/**
 * One container's attribution subtree: `attrib.t<slot>` with the
 * mirrored access counters, interference scalars and the evicted-by
 * row (columns `l1_t<j>` / `l2_t<j>` for every tenant j below
 * kMaxEdgeSlots, plus `l1_other` / `l2_other`).
 */
struct Tenant
{
    Tenant(stats::StatGroup *parent, int slot, Pid pid, Ccid ccid,
           Pcid pcid, const std::string &name);

    Tenant(const Tenant &) = delete;
    Tenant &operator=(const Tenant &) = delete;

    int slot;
    Pid pid;
    Ccid ccid;
    Pcid pcid;
    std::string name;

    stats::StatGroup group;      //!< "t<slot>".
    stats::StatGroup evicted_by; //!< Child group holding the matrix row.

    stats::Scalar pid_stat;  //!< Identity, exported as attrib.t<N>.pid.
    stats::Scalar ccid_stat; //!< Identity, exported as attrib.t<N>.ccid.

    stats::Scalar counters[kNumCounters];
    stats::Distribution miss_latency;

    /** @{ @name Kernel-sourced (not reset by resetCoreStats) */
    stats::Scalar cow_privatizations;
    stats::Scalar shootdowns_caused;
    stats::Scalar shootdowns_caused_cross;
    stats::Scalar shootdowns_received;
    stats::Scalar shootdowns_received_cross;
    /** @} */

    /** @{ @name Weave DRAM-excess billing (cycles) */
    stats::Scalar dram_data_extra;
    stats::Scalar dram_walk_extra;
    /** @} */

    /**
     * Evicted-by columns, index = aggressor slot (< kMaxEdgeSlots).
     * Deques so addresses registered with the StatGroup stay stable
     * while later tenant registrations append columns.
     */
    std::deque<stats::Scalar> l1_evicted_by;
    std::deque<stats::Scalar> l2_evicted_by;
    stats::Scalar l1_evicted_by_other;
    stats::Scalar l2_evicted_by_other;
};

/**
 * The per-machine tenant registry: owns the `attrib` stats subtree,
 * the per-core sinks, and the pid/pcid → slot maps the hot paths and
 * the TLB victim attribution use.
 */
class Registry
{
  public:
    /**
     * @param parent the System's root stat group (subtree registers as
     *        child "attrib").
     * @param num_cores sinks to create (one per core).
     */
    Registry(stats::StatGroup *parent, unsigned num_cores);

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Register a container; returns its dense slot. Call only from
     * single-threaded windows (process creation already is).
     */
    int registerTenant(Pid pid, Ccid ccid, Pcid pcid,
                       const std::string &name);

    /** Slot of a pid, -1 if unregistered. */
    int
    slotOfPid(Pid pid) const
    {
        const std::size_t i = pid - firstPid;
        return pid >= firstPid && i < slot_by_pid_.size()
                   ? slot_by_pid_[i]
                   : -1;
    }

    /**
     * Slot of the *latest* owner of a PCID (the 12-bit hardware space
     * wraps; TLB victim attribution uses this, and a stale entry of a
     * prior owner bills its eviction to the current one — bounded,
     * documented imprecision only after 4096 process creations).
     */
    int slotOfPcid(Pcid pcid) const { return slot_by_pcid_[pcid & 0xfff]; }

    CoreSink *sink(unsigned core) { return &sinks_[core]; }

    std::size_t numTenants() const { return tenants_.size(); }
    const Tenant &tenant(int slot) const { return tenants_[slot]; }

    /**
     * Fold every core's sink into the tenant subtree and zero the
     * sinks. Single-threaded (end of chunk / before export); fixed
     * core order, and every fold is an integer add or bucket-wise
     * merge, so the result is schedule-independent.
     */
    void drain();

    /** @{ @name Single-threaded booking (kernel / weave commit) */
    void
    noteCow(int slot)
    {
        if (slot >= 0)
            ++tenants_[slot].cow_privatizations;
    }

    void
    noteShootdownCaused(int slot, bool cross)
    {
        if (slot < 0)
            return;
        ++tenants_[slot].shootdowns_caused;
        if (cross)
            ++tenants_[slot].shootdowns_caused_cross;
    }

    void
    noteShootdownReceived(int slot, bool cross)
    {
        if (slot < 0)
            return;
        ++tenants_[slot].shootdowns_received;
        if (cross)
            ++tenants_[slot].shootdowns_received_cross;
    }

    void
    addDramExtra(int slot, bool walker, std::uint64_t extra)
    {
        if (slot < 0)
            return;
        (walker ? tenants_[slot].dram_walk_extra
                : tenants_[slot].dram_data_extra) += extra;
    }
    /** @} */

    /**
     * Reset the core-sourced tenant stats (access counters, latency,
     * eviction rows, DRAM extras) — the attribution mirror of
     * System::resetStats. Kernel-sourced scalars (CoW privatizations,
     * shootdowns) survive, exactly like the kernel's own stats, so the
     * reconciliation invariant holds on both sides of a reset.
     */
    void resetCoreStats();

    /**
     * Total L2 evictions whose aggressor and victim are in different
     * CCID groups — the headline cross-tenant interference signal the
     * sampler time series tracks.
     */
    std::uint64_t crossL2Evictions() const;

    /** JSON array of per-tenant summary rows (bench report `tenants`). */
    std::string tenantsJson() const;

    /**
     * Render the per-tenant table bf_top shows (fixed-width text).
     * @param sim_mips headline simulation speed line, <= 0 omits it.
     */
    std::string renderTable(double sim_mips = -1.0) const;

    stats::StatGroup &group() { return group_; }

    /** Lowest pid the kernel hands out (slot map base). */
    static constexpr Pid firstPid = 100;

  private:
    stats::StatGroup group_;
    std::deque<Tenant> tenants_; //!< Stable addresses; slot-indexed.
    std::vector<int> slot_by_pid_;    //!< [pid - firstPid] → slot.
    std::vector<int> slot_by_pcid_;   //!< [pcid & 0xfff] → latest slot.
    std::deque<CoreSink> sinks_;      //!< One per core.
};

} // namespace bf::attrib

#endif // BF_COMMON_ATTRIB_HH
