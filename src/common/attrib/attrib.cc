#include "common/attrib/attrib.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace bf::attrib
{

const char *
counterName(Counter c)
{
    switch (c) {
      case kL1Hits: return "l1_hits";
      case kL1Misses: return "l1_misses";
      case kL2DataHits: return "l2_data_hits";
      case kL2DataMisses: return "l2_data_misses";
      case kL2InstrHits: return "l2_instr_hits";
      case kL2InstrMisses: return "l2_instr_misses";
      case kL2DataSharedHits: return "l2_data_shared_hits";
      case kL2InstrSharedHits: return "l2_instr_shared_hits";
      case kL2Long: return "l2_long_accesses";
      case kMinorFaults: return "minor_faults";
      case kMajorFaults: return "major_faults";
      case kCowFaults: return "cow_faults";
      case kSharedInstalls: return "shared_installs";
      case kFaultCycles: return "fault_cycles";
      case kWalks: return "walks";
      case kInstructions: return "instructions";
      default: break;
    }
    bf_panic("unknown attrib counter ", static_cast<unsigned>(c));
}

void
CoreSink::grow(std::size_t slots)
{
    if (slots <= slots_)
        return;
    counts_.resize(slots * kNumCounters, 0);
    lat_.resize(slots);
    dirty_.resize(slots, 0);
    // The eviction matrices have a fixed column stride (kEdgeCols), so
    // growing the victim dimension is a plain append — no relayout.
    l1_ev_.resize(slots * kEdgeCols, 0);
    l2_ev_.resize(slots * kEdgeCols, 0);
    slots_ = slots;
}

Tenant::Tenant(stats::StatGroup *parent, int slot_, Pid pid_, Ccid ccid_,
               Pcid pcid_, const std::string &name_)
    : slot(slot_), pid(pid_), ccid(ccid_), pcid(pcid_), name(name_),
      group("t" + std::to_string(slot_), parent),
      evicted_by("evicted_by", &group)
{
    pid_stat.restoreValue(pid);
    ccid_stat.restoreValue(ccid);
    group.addStat("pid", &pid_stat);
    group.addStat("ccid", &ccid_stat);
    for (unsigned c = 0; c < kNumCounters; ++c)
        group.addStat(counterName(static_cast<Counter>(c)), &counters[c]);
    group.addStat("miss_latency", &miss_latency);
    group.addStat("cow_privatizations", &cow_privatizations);
    group.addStat("shootdowns_caused", &shootdowns_caused);
    group.addStat("shootdowns_caused_cross", &shootdowns_caused_cross);
    group.addStat("shootdowns_received", &shootdowns_received);
    group.addStat("shootdowns_received_cross", &shootdowns_received_cross);
    group.addStat("dram_data_extra", &dram_data_extra);
    group.addStat("dram_walk_extra", &dram_walk_extra);
    evicted_by.addStat("l1_other", &l1_evicted_by_other);
    evicted_by.addStat("l2_other", &l2_evicted_by_other);
}

Registry::Registry(stats::StatGroup *parent, unsigned num_cores)
    : group_("attrib", parent), slot_by_pcid_(4096, -1)
{
    for (unsigned i = 0; i < num_cores; ++i)
        sinks_.emplace_back();
}

int
Registry::registerTenant(Pid pid, Ccid ccid, Pcid pcid,
                         const std::string &name)
{
    const int slot = static_cast<int>(tenants_.size());
    // Every existing tenant's evicted-by row gains a column for the
    // newcomer (it can now be an aggressor), capped at kMaxEdgeSlots.
    if (slot < kMaxEdgeSlots) {
        for (auto &t : tenants_) {
            t.l1_evicted_by.emplace_back();
            t.evicted_by.addStat("l1_t" + std::to_string(slot),
                                 &t.l1_evicted_by.back());
            t.l2_evicted_by.emplace_back();
            t.evicted_by.addStat("l2_t" + std::to_string(slot),
                                 &t.l2_evicted_by.back());
        }
    }
    tenants_.emplace_back(&group_, slot, pid, ccid, pcid, name);
    Tenant &t = tenants_.back();
    const int cols = std::min(static_cast<int>(tenants_.size()),
                              kMaxEdgeSlots);
    for (int j = 0; j < cols; ++j) {
        t.l1_evicted_by.emplace_back();
        t.evicted_by.addStat("l1_t" + std::to_string(j),
                             &t.l1_evicted_by.back());
        t.l2_evicted_by.emplace_back();
        t.evicted_by.addStat("l2_t" + std::to_string(j),
                             &t.l2_evicted_by.back());
    }
    if (pid >= firstPid) {
        const std::size_t i = pid - firstPid;
        if (i >= slot_by_pid_.size())
            slot_by_pid_.resize(i + 1, -1);
        slot_by_pid_[i] = slot;
    }
    slot_by_pcid_[pcid & 0xfff] = slot;
    for (auto &s : sinks_)
        s.grow(tenants_.size());
    return slot;
}

void
Registry::drain()
{
    for (auto &s : sinks_) {
        for (std::size_t slot = 0; slot < s.slots_; ++slot) {
            if (!s.dirty_[slot])
                continue;
            s.dirty_[slot] = 0;
            Tenant &t = tenants_[slot];
            std::uint64_t *counts = &s.counts_[slot * kNumCounters];
            for (unsigned c = 0; c < kNumCounters; ++c) {
                if (counts[c]) {
                    t.counters[c] += counts[c];
                    counts[c] = 0;
                }
            }
            if (s.lat_[slot].count()) {
                t.miss_latency.merge(s.lat_[slot]);
                s.lat_[slot].reset();
            }
            std::uint64_t *l1 = &s.l1_ev_[slot * CoreSink::kEdgeCols];
            std::uint64_t *l2 = &s.l2_ev_[slot * CoreSink::kEdgeCols];
            const std::size_t cols = t.l1_evicted_by.size();
            for (std::size_t j = 0; j < cols; ++j) {
                if (l1[j]) {
                    t.l1_evicted_by[j] += l1[j];
                    l1[j] = 0;
                }
                if (l2[j]) {
                    t.l2_evicted_by[j] += l2[j];
                    l2[j] = 0;
                }
            }
            if (l1[kMaxEdgeSlots]) {
                t.l1_evicted_by_other += l1[kMaxEdgeSlots];
                l1[kMaxEdgeSlots] = 0;
            }
            if (l2[kMaxEdgeSlots]) {
                t.l2_evicted_by_other += l2[kMaxEdgeSlots];
                l2[kMaxEdgeSlots] = 0;
            }
        }
    }
}

void
Registry::resetCoreStats()
{
    drain();
    for (auto &t : tenants_) {
        for (auto &c : t.counters)
            c.reset();
        t.miss_latency.reset();
        for (auto &c : t.l1_evicted_by)
            c.reset();
        for (auto &c : t.l2_evicted_by)
            c.reset();
        t.l1_evicted_by_other.reset();
        t.l2_evicted_by_other.reset();
        t.dram_data_extra.reset();
        t.dram_walk_extra.reset();
    }
}

std::uint64_t
Registry::crossL2Evictions() const
{
    std::uint64_t total = 0;
    for (const auto &t : tenants_) {
        for (std::size_t j = 0; j < t.l2_evicted_by.size(); ++j) {
            if (tenants_[j].ccid != t.ccid)
                total += t.l2_evicted_by[j].value();
        }
        // Tenants past the column cap are churn containers,
        // overwhelmingly cross-group; count the folded column as cross.
        total += t.l2_evicted_by_other.value();
    }
    return total;
}

namespace
{

void
appendJsonString(std::ostringstream &os, const std::string &s)
{
    os << '"';
    for (char ch : s) {
        if (ch == '"' || ch == '\\')
            os << '\\' << ch;
        else if (static_cast<unsigned char>(ch) < 0x20)
            os << ' ';
        else
            os << ch;
    }
    os << '"';
}

void
appendEdgeMap(std::ostringstream &os,
              const std::deque<stats::Scalar> &cols,
              const stats::Scalar &other)
{
    os << '{';
    bool first = true;
    for (std::size_t j = 0; j < cols.size(); ++j) {
        if (!cols[j].value())
            continue;
        if (!first)
            os << ',';
        first = false;
        os << "\"t" << j << "\":" << cols[j].value();
    }
    if (other.value()) {
        if (!first)
            os << ',';
        os << "\"other\":" << other.value();
    }
    os << '}';
}

} // namespace

std::string
Registry::tenantsJson() const
{
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        const Tenant &t = tenants_[i];
        if (i)
            os << ',';
        os << "{\"slot\":" << t.slot << ",\"pid\":" << t.pid
           << ",\"ccid\":" << t.ccid << ",\"name\":";
        appendJsonString(os, t.name);
        for (unsigned c = 0; c < kNumCounters; ++c)
            os << ",\"" << counterName(static_cast<Counter>(c))
               << "\":" << t.counters[c].value();
        os << ",\"miss_latency\":{\"count\":" << t.miss_latency.count()
           << ",\"sum\":" << t.miss_latency.sum()
           << ",\"max\":" << t.miss_latency.max()
           << ",\"p50\":" << t.miss_latency.percentile(50)
           << ",\"p95\":" << t.miss_latency.percentile(95)
           << ",\"p99\":" << t.miss_latency.percentile(99) << '}'
           << ",\"cow_privatizations\":" << t.cow_privatizations.value()
           << ",\"shootdowns_caused\":" << t.shootdowns_caused.value()
           << ",\"shootdowns_caused_cross\":"
           << t.shootdowns_caused_cross.value()
           << ",\"shootdowns_received\":" << t.shootdowns_received.value()
           << ",\"shootdowns_received_cross\":"
           << t.shootdowns_received_cross.value()
           << ",\"dram_data_extra\":" << t.dram_data_extra.value()
           << ",\"dram_walk_extra\":" << t.dram_walk_extra.value()
           << ",\"l1_evicted_by\":";
        appendEdgeMap(os, t.l1_evicted_by, t.l1_evicted_by_other);
        os << ",\"l2_evicted_by\":";
        appendEdgeMap(os, t.l2_evicted_by, t.l2_evicted_by_other);
        os << '}';
    }
    os << ']';
    return os.str();
}

std::string
Registry::renderTable(double sim_mips) const
{
    std::ostringstream os;
    if (sim_mips > 0) {
        char head[64];
        std::snprintf(head, sizeof(head), "sim-MIPS %.1f\n", sim_mips);
        os << head;
    }
    os << "slot name             pid ccid  l1hit%  l2hit%   shr% "
          "      walks  missp99        cow   sd_c   sd_r  xevict "
          "   dram_xs\n";
    for (const auto &t : tenants_) {
        const std::uint64_t l1h = t.counters[kL1Hits].value();
        const std::uint64_t l1m = t.counters[kL1Misses].value();
        const std::uint64_t l2h = t.counters[kL2DataHits].value() +
                                  t.counters[kL2InstrHits].value();
        const std::uint64_t l2m = t.counters[kL2DataMisses].value() +
                                  t.counters[kL2InstrMisses].value();
        const std::uint64_t shr = t.counters[kL2DataSharedHits].value() +
                                  t.counters[kL2InstrSharedHits].value();
        const auto pct = [](std::uint64_t num, std::uint64_t den) {
            return den ? 100.0 * static_cast<double>(num) /
                             static_cast<double>(den)
                       : 0.0;
        };
        std::uint64_t xevict = t.l2_evicted_by_other.value() +
                               t.l1_evicted_by_other.value();
        for (std::size_t j = 0; j < t.l2_evicted_by.size(); ++j) {
            if (tenants_[j].ccid != t.ccid)
                xevict += t.l2_evicted_by[j].value() +
                          t.l1_evicted_by[j].value();
        }
        char line[256];
        std::snprintf(
            line, sizeof(line),
            "%4d %-16.16s %4u %4u %6.1f%% %6.1f%% %5.1f%% %11llu "
            "%8llu %10llu %6llu %6llu %7llu %10llu\n",
            t.slot, t.name.c_str(), t.pid, t.ccid, pct(l1h, l1h + l1m),
            pct(l2h, l2h + l2m), pct(shr, l2h),
            static_cast<unsigned long long>(t.counters[kWalks].value()),
            static_cast<unsigned long long>(t.miss_latency.percentile(99)),
            static_cast<unsigned long long>(t.cow_privatizations.value()),
            static_cast<unsigned long long>(t.shootdowns_caused.value()),
            static_cast<unsigned long long>(t.shootdowns_received.value()),
            static_cast<unsigned long long>(xevict),
            static_cast<unsigned long long>(t.dram_data_extra.value() +
                                            t.dram_walk_extra.value()));
        os << line;
    }
    return os.str();
}

} // namespace bf::attrib
