/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Components register named statistics in a StatGroup; groups nest to form
 * a tree (system.core0.mmu.l2tlb.hits). Stats can be dumped as aligned text
 * or harvested programmatically by the benches.
 */

#ifndef BF_COMMON_STATS_HH
#define BF_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace bf::stats
{

// Checkpointing (common/snapshot.hh); stats.cc pulls in the full type.
} // namespace bf::stats
namespace bf::snap
{
class ArchiveWriter;
class ArchiveReader;
} // namespace bf::snap
namespace bf::stats
{

/** A monotonically increasing counter. */
class Scalar
{
  public:
    Scalar() = default;

    /** Add delta to the counter. */
    void add(std::uint64_t delta = 1) { value_ += delta; }

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t delta) { value_ += delta; return *this; }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero (used between warm-up and measurement). */
    void reset() { value_ = 0; }

    /** Overwrite the count (checkpoint restore only). */
    void restoreValue(std::uint64_t v) { value_ = v; }

  private:
    std::uint64_t value_ = 0;
};

/** Mean of a stream of samples. */
class Average
{
  public:
    /** Record one sample. */
    void
    sample(double value)
    {
        sum_ += value;
        ++count_;
    }

    /** Arithmetic mean of all samples, 0 if empty. */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Number of samples. */
    std::uint64_t count() const { return count_; }

    /** Sum of samples. */
    double sum() const { return sum_; }

    void reset() { sum_ = 0; count_ = 0; }

    /** Overwrite sum and count (checkpoint restore only). */
    void restoreState(double sum, std::uint64_t count)
    {
        sum_ = sum;
        count_ = count;
    }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * A log2-bucketed histogram for wide-range values such as latencies.
 * Bucket i counts samples in [2^i, 2^(i+1)).
 */
class Histogram
{
  public:
    /** Record one sample. */
    void sample(std::uint64_t value);

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Mean of the recorded samples. */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Largest sample recorded. */
    std::uint64_t max() const { return max_; }

    /** Bucket counts (index = log2 of sample). */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * A registered log2-bucketed distribution with approximate percentiles.
 *
 * Unlike LatencyTracker (exact, stores every sample) this is O(1) per
 * sample and O(64) memory, so it can sit on hot paths that fire millions
 * of times per run (TLB-miss and page-walk latencies). Bucket i counts
 * samples in [2^i, 2^(i+1)) (values 0 and 1 both land in bucket 0);
 * percentiles are nearest-rank over the cumulative bucket counts and
 * report the bucket's lower bound. All state is integer, so the exported
 * values — and the snapshot round-trip — are bit-exact regardless of
 * sample arrival order.
 */
class Distribution
{
  public:
    /** Record one sample. */
    void
    sample(std::uint64_t value)
    {
        std::size_t bucket = 0;
        for (std::uint64_t v = value; v > 1; v >>= 1)
            ++bucket;
        if (bucket >= buckets_.size())
            buckets_.resize(bucket + 1, 0);
        ++buckets_[bucket];
        ++count_;
        sum_ += value;
        max_ = std::max(max_, value);
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Integer sum of all samples (order-independent). */
    std::uint64_t sum() const { return sum_; }

    /** Mean of the recorded samples, 0 if empty. */
    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /** Largest sample recorded. */
    std::uint64_t max() const { return max_; }

    /**
     * Nearest-rank percentile over the bucket counts: the lower bound of
     * the bucket holding the p-th percentile sample (0 if empty).
     * @param p percentile in [0, 100].
     */
    std::uint64_t percentile(double p) const;

    /** Bucket counts (index i covers [2^i, 2^(i+1))). */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    void reset() { buckets_.clear(); count_ = 0; sum_ = 0; max_ = 0; }

    /**
     * Fold another distribution into this one. All state is integer and
     * bucket-wise additive, so merging is order-independent — the result
     * is bit-identical no matter how samples were split across the
     * merged parts (the attribution drain relies on this).
     */
    void
    merge(const Distribution &other)
    {
        if (other.buckets_.size() > buckets_.size())
            buckets_.resize(other.buckets_.size(), 0);
        for (std::size_t i = 0; i < other.buckets_.size(); ++i)
            buckets_[i] += other.buckets_[i];
        count_ += other.count_;
        sum_ += other.sum_;
        max_ = std::max(max_, other.max_);
    }

    /**
     * Fold a *window* of another distribution into this one: the
     * samples @p cur received since @p base was copied from it (no
     * reset in between). Buckets, count and sum are exact — bucket-wise
     * subtraction then addition, so folding consecutive windows is
     * bit-identical to merge()-ing the same samples. The window's exact
     * maximum is only observable when cur's overall maximum moved
     * during the window; otherwise the lower bound of the highest
     * bucket that grew stands in (always <= the true window max, and
     * max-over-all-windows still equals cur.max() exactly, because the
     * window in which the overall max arrived sees it move).
     *
     * This is what lets per-tenant attribution ride the global
     * miss-latency distribution by snapshot/delta instead of paying a
     * second sample() per event (see core::Core::flushAttribWindow).
     */
    void
    mergeDiff(const Distribution &cur, const Distribution &base)
    {
        if (cur.count_ == base.count_)
            return;
        if (cur.buckets_.size() > buckets_.size())
            buckets_.resize(cur.buckets_.size(), 0);
        std::uint64_t window_max = 0;
        for (std::size_t i = 0; i < cur.buckets_.size(); ++i) {
            const std::uint64_t before =
                i < base.buckets_.size() ? base.buckets_[i] : 0;
            const std::uint64_t delta = cur.buckets_[i] - before;
            if (delta) {
                buckets_[i] += delta;
                window_max = i ? std::uint64_t{1} << i : 0;
            }
        }
        count_ += cur.count_ - base.count_;
        sum_ += cur.sum_ - base.sum_;
        if (cur.max_ != base.max_)
            window_max = cur.max_;
        max_ = std::max(max_, window_max);
    }

    /** Overwrite all state (checkpoint restore only). */
    void
    restoreState(std::vector<std::uint64_t> buckets, std::uint64_t count,
                 std::uint64_t sum, std::uint64_t max)
    {
        buckets_ = std::move(buckets);
        count_ = count;
        sum_ = sum;
        max_ = max;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Exact percentile tracker: stores all samples. Data-serving runs record
 * one latency per request (tens of thousands), so this stays small.
 */
class LatencyTracker
{
  public:
    /** Record one latency sample. */
    void sample(double value) { samples_.push_back(value); sorted_ = false; }

    /** Number of samples. */
    std::size_t count() const { return samples_.size(); }

    /** Mean latency, 0 if empty. */
    double mean() const;

    /**
     * The p-th percentile by nearest-rank, 0 if empty.
     * @param p percentile in [0, 100], e.g.\ 95 for tail latency.
     */
    double percentile(double p) const;

    void reset() { samples_.clear(); sorted_ = false; }

    /**
     * @{ @name Checkpointing
     * Samples are saved and restored in insertion order; neither run
     * sorts mid-run, so the restored run's summation order (and thus
     * its exported mean) matches the uninterrupted run bit-for-bit.
     */
    const std::vector<double> &rawSamples() const { return samples_; }
    void restoreSamples(std::vector<double> samples)
    {
        samples_ = std::move(samples);
        sorted_ = false;
    }
    /** @} */

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;

    void sort() const;
};

class StatGroup;

/**
 * Read-only visitor over a StatGroup tree (see StatGroup::accept).
 *
 * For each group the walk calls beginGroup, then every registered stat
 * of that group (scalars, then averages, then latency trackers, then
 * distributions, each in name order), then recurses into the children in
 * registration order, and finally calls endGroup. Serializers
 * (stats_export.hh) and tests build on this instead of reaching into the
 * containers.
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;

    virtual void beginGroup(const StatGroup &group) { (void)group; }
    virtual void endGroup(const StatGroup &group) { (void)group; }

    virtual void visitScalar(const StatGroup &group,
                             const std::string &name, const Scalar &stat)
    {
        (void)group; (void)name; (void)stat;
    }
    virtual void visitAverage(const StatGroup &group,
                              const std::string &name, const Average &stat)
    {
        (void)group; (void)name; (void)stat;
    }
    virtual void visitLatency(const StatGroup &group,
                              const std::string &name,
                              const LatencyTracker &stat)
    {
        (void)group; (void)name; (void)stat;
    }
    virtual void visitDistribution(const StatGroup &group,
                                   const std::string &name,
                                   const Distribution &stat)
    {
        (void)group; (void)name; (void)stat;
    }
};

/**
 * A named collection of statistics. Groups form a tree; dump() walks the
 * tree and prints "path.name value" lines like gem5's stats.txt.
 */
class StatGroup
{
  public:
    /**
     * @param name this group's path component.
     * @param parent enclosing group, or nullptr for a root.
     */
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a scalar under this group. */
    void addStat(const std::string &name, const Scalar *stat);
    /** Register an average under this group. */
    void addStat(const std::string &name, const Average *stat);
    /** Register a latency tracker under this group. */
    void addStat(const std::string &name, const LatencyTracker *stat);
    /** Register a distribution under this group. */
    void addStat(const std::string &name, const Distribution *stat);

    /** Fully qualified dotted path of this group. */
    std::string path() const;

    /** Print all stats in this group and its children. */
    void dump(std::ostream &os) const;

    /** Depth-first walk of this group and its children (see StatVisitor). */
    void accept(StatVisitor &visitor) const;

    /**
     * @{ @name Checkpointing
     * Serialize every stat in the tree in the canonical accept() order
     * (scalars, averages, latency trackers, distributions in name order;
     * children in registration order). Restore walks the same order against the
     * rebuilt tree and verifies each group and stat name, so a topology
     * mismatch surfaces as a SnapshotError naming the first divergence
     * rather than as silently scrambled counters.
     */
    void saveStats(snap::ArchiveWriter &ar) const;
    void restoreStats(snap::ArchiveReader &ar);
    /** @} */

    /**
     * Look up a scalar's value by path relative to this group, e.g.\
     * "core0.l2tlb.hits". Panics if absent (tests rely on names).
     */
    std::uint64_t scalar(const std::string &rel_path) const;

    /** Whether a scalar with this relative path exists. */
    bool hasScalar(const std::string &rel_path) const;

    const std::string &name() const { return name_; }

    /** @{ @name Read-only container access (serializers, tests) */
    const std::vector<StatGroup *> &children() const { return children_; }
    const std::map<std::string, const Scalar *> &scalars() const
    {
        return scalars_;
    }
    const std::map<std::string, const Average *> &averages() const
    {
        return averages_;
    }
    const std::map<std::string, const LatencyTracker *> &latencies() const
    {
        return latencies_;
    }
    const std::map<std::string, const Distribution *> &distributions() const
    {
        return distributions_;
    }
    /** @} */

  private:
    std::string name_;
    StatGroup *parent_ = nullptr;
    std::vector<StatGroup *> children_;
    std::map<std::string, const Scalar *> scalars_;
    std::map<std::string, const Average *> averages_;
    std::map<std::string, const LatencyTracker *> latencies_;
    std::map<std::string, const Distribution *> distributions_;

    const Scalar *findScalar(const std::string &rel_path) const;
};

} // namespace bf::stats

#endif // BF_COMMON_STATS_HH
