/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic() is for simulator bugs (aborts); fatal() is for user/configuration
 * errors (clean exit); warn()/inform() report conditions without stopping.
 *
 * Output below panic/fatal is gated by a process-wide log level:
 * `quiet` silences warn() and inform(), `warn` keeps warnings only, and
 * `info` (the default) prints everything. The BF_LOG environment
 * variable (quiet|warn|info) pins the level and takes precedence over
 * the benches' programmatic setVerbose(false) default, so e.g.\
 * BF_JOBS-parallel bench runs can be silenced — or un-silenced — without
 * a rebuild.
 */

#ifndef BF_COMMON_LOGGING_HH
#define BF_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace bf
{

/** How much non-fatal output reaches the terminal. */
enum class LogLevel : int
{
    Quiet = 0, //!< Nothing below fatal.
    Warn = 1,  //!< warn() only.
    Info = 2,  //!< warn() and inform() (default).
};

namespace detail
{

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

/** Print "panic: ..." and abort(). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print "fatal: ..." and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print "warn: ...". */
void warnImpl(const std::string &msg);

/** Print "info: ...". */
void informImpl(const std::string &msg);

/**
 * Globally enable/disable inform() output (benches quiet it). A BF_LOG
 * environment setting takes precedence over this legacy toggle.
 */
void setVerbose(bool verbose);

/** Current verbosity (true when inform() prints). */
bool verbose();

/** Force the log level, overriding BF_LOG and setVerbose. */
void setLogLevel(LogLevel level);

/** Effective log level (BF_LOG is parsed on first use). */
LogLevel logLevel();

} // namespace detail

/** Report an internal simulator bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(const char *file, int line, Args &&...args)
{
    detail::panicImpl(file, line, detail::concat(std::forward<Args>(args)...));
}

/** Report an unrecoverable user error and exit. */
template <typename... Args>
[[noreturn]] void
fatal(const char *file, int line, Args &&...args)
{
    detail::fatalImpl(file, line, detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (detail::logLevel() >= LogLevel::Warn)
        detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (detail::logLevel() >= LogLevel::Info)
        detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace bf

#define bf_panic(...) ::bf::panic(__FILE__, __LINE__, __VA_ARGS__)
#define bf_fatal(...) ::bf::fatal(__FILE__, __LINE__, __VA_ARGS__)

/** gem5-style assertion that survives NDEBUG builds. */
#define bf_assert(cond, ...)                                              \
    do {                                                                  \
        if (!(cond))                                                      \
            ::bf::panic(__FILE__, __LINE__, "assertion '" #cond "' "      \
                        "failed: ", ##__VA_ARGS__);                       \
    } while (0)

#endif // BF_COMMON_LOGGING_HH
