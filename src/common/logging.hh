/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic() is for simulator bugs (aborts); fatal() is for user/configuration
 * errors (clean exit); warn()/inform() report conditions without stopping.
 */

#ifndef BF_COMMON_LOGGING_HH
#define BF_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace bf
{

namespace detail
{

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

/** Print "panic: ..." and abort(). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print "fatal: ..." and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print "warn: ...". */
void warnImpl(const std::string &msg);

/** Print "info: ...". */
void informImpl(const std::string &msg);

/** Globally enable/disable inform() output (benches quiet it). */
void setVerbose(bool verbose);

/** Current verbosity. */
bool verbose();

} // namespace detail

/** Report an internal simulator bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(const char *file, int line, Args &&...args)
{
    detail::panicImpl(file, line, detail::concat(std::forward<Args>(args)...));
}

/** Report an unrecoverable user error and exit. */
template <typename... Args>
[[noreturn]] void
fatal(const char *file, int line, Args &&...args)
{
    detail::fatalImpl(file, line, detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (detail::verbose())
        detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace bf

#define bf_panic(...) ::bf::panic(__FILE__, __LINE__, __VA_ARGS__)
#define bf_fatal(...) ::bf::fatal(__FILE__, __LINE__, __VA_ARGS__)

/** gem5-style assertion that survives NDEBUG builds. */
#define bf_assert(cond, ...)                                              \
    do {                                                                  \
        if (!(cond))                                                      \
            ::bf::panic(__FILE__, __LINE__, "assertion '" #cond "' "      \
                        "failed: ", ##__VA_ARGS__);                       \
    } while (0)

#endif // BF_COMMON_LOGGING_HH
