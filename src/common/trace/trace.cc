#include "common/trace/trace.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace bf::trace
{

namespace
{

const char traceMagic[8] = {'B', 'F', 'T', 'R', 'A', 'C', 'E', '\0'};

/** Byte offsets of the header fields patched by Tracer::finish(). */
constexpr long recordCountOffset = 24;
constexpr long droppedCountOffset = 32;

void
putU16(std::vector<std::uint8_t> &buf, std::uint16_t v)
{
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t
getU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t{p[i]} << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

void
putRecord(std::vector<std::uint8_t> &buf, const Record &rec)
{
    putU64(buf, rec.ts);
    putU64(buf, rec.vpage);
    putU64(buf, rec.arg);
    putU32(buf, rec.pid);
    putU32(buf, rec.seq);
    putU16(buf, rec.core);
    putU16(buf, rec.ccid);
    buf.push_back(rec.type);
    buf.push_back(rec.flags);
    putU16(buf, rec.cslot); // v2's zero pad; 40 bytes total
}

Record
getRecord(const std::uint8_t *p)
{
    Record rec;
    rec.ts = getU64(p);
    rec.vpage = getU64(p + 8);
    rec.arg = getU64(p + 16);
    rec.pid = getU32(p + 24);
    rec.seq = getU32(p + 28);
    rec.core = getU16(p + 32);
    rec.ccid = getU16(p + 34);
    rec.type = p[36];
    rec.flags = p[37];
    rec.cslot = getU16(p + 38);
    return rec;
}

/** Serialize the v2 header config block (configBytes bytes). */
void
putConfig(std::vector<std::uint8_t> &buf, const TraceConfig &cfg)
{
    const std::size_t start = buf.size();
    for (unsigned i = 0; i < traceNumTlbs; ++i) {
        const TraceTlbConfig &t = cfg.tlb[i];
        putU32(buf, t.entries);
        putU16(buf, t.assoc);
        putU16(buf, t.access_cycles);
        putU16(buf, t.bitmask_extra_cycles);
        buf.push_back(t.policy);
        buf.push_back(0); // pad to 12 bytes per TLB
    }
    putU32(buf, cfg.pwc_entries_per_level);
    putU16(buf, cfg.pwc_assoc);
    putU16(buf, cfg.pwc_levels);
    putU16(buf, cfg.pwc_access_cycles);
    putU16(buf, cfg.aslr_transform_cycles);
    std::uint8_t flags = 0;
    flags |= cfg.babelfish ? 1u << 0 : 0;
    flags |= cfg.l1_sharing ? 1u << 1 : 0;
    flags |= cfg.force_long_l2 ? 1u << 2 : 0;
    flags |= cfg.aslr_hw ? 1u << 3 : 0;
    buf.push_back(flags);
    buf.push_back(cfg.opc_width);
    buf.push_back(cfg.backend);
    while (buf.size() - start < configBytes)
        buf.push_back(0);
    bf_assert(buf.size() - start == configBytes,
              "trace config block is ", buf.size() - start, " bytes");
}

TraceConfig
getConfig(const std::uint8_t *p)
{
    TraceConfig cfg;
    for (unsigned i = 0; i < traceNumTlbs; ++i) {
        TraceTlbConfig &t = cfg.tlb[i];
        t.entries = getU32(p);
        t.assoc = getU16(p + 4);
        t.access_cycles = getU16(p + 6);
        t.bitmask_extra_cycles = getU16(p + 8);
        t.policy = p[10];
        p += 12;
    }
    cfg.pwc_entries_per_level = getU32(p);
    cfg.pwc_assoc = getU16(p + 4);
    cfg.pwc_levels = getU16(p + 6);
    cfg.pwc_access_cycles = getU16(p + 8);
    cfg.aslr_transform_cycles = getU16(p + 10);
    const std::uint8_t flags = p[12];
    cfg.babelfish = flags & (1u << 0);
    cfg.l1_sharing = flags & (1u << 1);
    cfg.force_long_l2 = flags & (1u << 2);
    cfg.aslr_hw = flags & (1u << 3);
    cfg.opc_width = p[13];
    cfg.backend = p[14]; // zero (BabelFish) in pre-zoo traces
    return cfg;
}

/** Canonical merge order; (ts, core, seq) is unique by construction. */
bool
recordLess(const Record &a, const Record &b)
{
    if (a.ts != b.ts)
        return a.ts < b.ts;
    if (a.core != b.core)
        return a.core < b.core;
    return a.seq < b.seq;
}

} // namespace

const char *
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::TlbL1Hit: return "tlb_l1_hit";
      case EventType::TlbL2Hit: return "tlb_l2_hit";
      case EventType::TlbMiss: return "tlb_miss";
      case EventType::PwcHit: return "pwc_hit";
      case EventType::WalkStart: return "walk_start";
      case EventType::WalkStep: return "walk_step";
      case EventType::WalkEnd: return "walk_end";
      case EventType::FaultService: return "fault_service";
      case EventType::CowPrivatize: return "cow_privatize";
      case EventType::MaskFallback: return "mask_fallback";
      case EventType::Shootdown: return "shootdown";
      case EventType::TlbFill: return "tlb_fill";
      case EventType::StatsReset: return "stats_reset";
    }
    return "?";
}

Tracer::Tracer(std::string path, unsigned num_cores,
               std::uint32_t event_mask, std::uint64_t limit,
               const TraceConfig &config)
    : path_(std::move(path)), mask_(event_mask & allEvents), limit_(limit),
      bufs_(num_cores), next_seq_(num_cores, 0)
{
    file_ = std::fopen(path_.c_str(), "wb");
    if (!file_) {
        warn("trace: cannot open ", path_, " for writing; tracing off");
        return;
    }
    std::vector<std::uint8_t> header;
    header.insert(header.end(), traceMagic, traceMagic + sizeof(traceMagic));
    putU32(header, traceFormatVersion);
    putU32(header, recordBytes);
    putU32(header, num_cores);
    putU32(header, mask_);
    putU64(header, 0); // record count, patched by finish()
    putU64(header, 0); // dropped count, patched by finish()
    putU64(header, 0); // reserved
    putConfig(header, config);
    bf_assert(header.size() == headerBytes,
              "trace header is ", header.size(), " bytes");
    if (std::fwrite(header.data(), 1, header.size(), file_) !=
        header.size()) {
        warn("trace: short write of header to ", path_, "; tracing off");
        std::fclose(file_);
        file_ = nullptr;
    }
}

Tracer::~Tracer()
{
    finish();
}

void
Tracer::flushBarrier()
{
    if (!file_)
        return;
    merge_buf_.clear();
    for (auto &buf : bufs_) {
        merge_buf_.insert(merge_buf_.end(), buf.begin(), buf.end());
        buf.clear();
    }
    if (merge_buf_.empty())
        return;
    std::sort(merge_buf_.begin(), merge_buf_.end(), recordLess);

    // The limit is applied here, in canonical order, so the records that
    // survive truncation are the same at every worker count.
    std::size_t keep = merge_buf_.size();
    if (limit_ != 0) {
        const std::uint64_t room = limit_ > written_ ? limit_ - written_ : 0;
        keep = std::min<std::uint64_t>(keep, room);
    }
    dropped_ += merge_buf_.size() - keep;
    if (keep == 0)
        return;

    io_buf_.clear();
    putU32(io_buf_, blockMagic);
    putU32(io_buf_, static_cast<std::uint32_t>(keep));
    for (std::size_t i = 0; i < keep; ++i)
        putRecord(io_buf_, merge_buf_[i]);
    if (std::fwrite(io_buf_.data(), 1, io_buf_.size(), file_) !=
        io_buf_.size()) {
        warn("trace: short write to ", path_, "; tracing off");
        std::fclose(file_);
        file_ = nullptr;
        return;
    }
    written_ += keep;
}

void
Tracer::finish()
{
    if (!file_)
        return;
    flushBarrier();
    if (!file_) // flush may have failed and closed the file
        return;
    std::vector<std::uint8_t> patch;
    putU64(patch, written_);
    bool ok = std::fseek(file_, recordCountOffset, SEEK_SET) == 0 &&
              std::fwrite(patch.data(), 1, 8, file_) == 8;
    patch.clear();
    putU64(patch, dropped_);
    ok = ok && std::fseek(file_, droppedCountOffset, SEEK_SET) == 0 &&
         std::fwrite(patch.data(), 1, 8, file_) == 8;
    if (std::fclose(file_) != 0 || !ok)
        warn("trace: failed to finalize ", path_);
    file_ = nullptr;
}

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        throw TraceError("trace: cannot open " + path);
    std::uint8_t raw[headerBytes];
    if (std::fread(raw, 1, sizeof(raw), file_) != sizeof(raw)) {
        std::fclose(file_);
        file_ = nullptr;
        throw TraceError("trace: " + path + ": truncated header");
    }
    if (std::memcmp(raw, traceMagic, sizeof(traceMagic)) != 0) {
        std::fclose(file_);
        file_ = nullptr;
        throw TraceError("trace: " + path + ": bad magic");
    }
    header_.version = getU32(raw + 8);
    header_.record_bytes = getU32(raw + 12);
    header_.num_cores = getU32(raw + 16);
    header_.event_mask = getU32(raw + 20);
    header_.record_count = getU64(raw + 24);
    header_.dropped_count = getU64(raw + 32);
    header_.config = getConfig(raw + 48);
    std::string problem;
    if (header_.version < traceMinReadVersion ||
        header_.version > traceFormatVersion)
        problem = "unsupported version " + std::to_string(header_.version) +
                  " (format v" + std::to_string(traceFormatVersion) +
                  " required; re-record the trace)";
    else if (header_.record_bytes != recordBytes)
        problem = "record size " + std::to_string(header_.record_bytes);
    else if (header_.num_cores == 0)
        problem = "zero cores";
    if (!problem.empty()) {
        std::fclose(file_);
        file_ = nullptr;
        throw TraceError("trace: " + path + ": " + problem);
    }
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::nextBlock(std::vector<Record> &out)
{
    out.clear();
    std::uint8_t frame[8];
    const std::size_t got = std::fread(frame, 1, sizeof(frame), file_);
    if (got == 0 && std::feof(file_))
        return false;
    if (got != sizeof(frame))
        throw TraceError("trace: truncated block frame");
    if (getU32(frame) != blockMagic)
        throw TraceError("trace: bad block magic");
    const std::uint32_t count = getU32(frame + 4);
    if (count == 0)
        throw TraceError("trace: empty block");
    std::vector<std::uint8_t> raw(std::size_t{count} * recordBytes);
    if (std::fread(raw.data(), 1, raw.size(), file_) != raw.size())
        throw TraceError("trace: truncated block body");
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        out.push_back(getRecord(raw.data() + std::size_t{i} * recordBytes));
    // v2 wrote a zero pad where v3 keeps the attribution slot; force it
    // to "none" so slot 0 is never fabricated from old files.
    if (header_.version < 3)
        for (Record &rec : out)
            rec.cslot = noCslot;
    return true;
}

ValidateResult
validateTrace(const std::string &path)
{
    TraceReader reader(path);
    const TraceHeader &header = reader.header();
    ValidateResult result;
    // Per-core seq must increase strictly across the whole file; -1
    // (as u64) means "none seen yet".
    std::vector<std::uint64_t> last_seq(header.num_cores, ~std::uint64_t{0});
    std::vector<Record> block;
    while (reader.nextBlock(block)) {
        ++result.blocks;
        for (std::size_t i = 0; i < block.size(); ++i) {
            const Record &rec = block[i];
            if (rec.type >= numEventTypes)
                throw TraceError("trace: unknown event type " +
                                 std::to_string(rec.type));
            if (((header.event_mask >> rec.type) & 1) == 0)
                throw TraceError(std::string("trace: masked-out event ") +
                                 eventTypeName(EventType{rec.type}));
            if (rec.core >= header.num_cores)
                throw TraceError("trace: core " + std::to_string(rec.core) +
                                 " out of range");
            if (i > 0 && !recordLess(block[i - 1], rec))
                throw TraceError("trace: block not (ts, core, seq)-sorted "
                                 "at record " + std::to_string(result.records));
            std::uint64_t &last = last_seq[rec.core];
            if (last != ~std::uint64_t{0} && rec.seq <= last)
                throw TraceError("trace: core " + std::to_string(rec.core) +
                                 " seq not strictly increasing");
            last = rec.seq;
            ++result.records;
        }
    }
    if (result.records != header.record_count)
        throw TraceError("trace: header claims " +
                         std::to_string(header.record_count) +
                         " records, file has " +
                         std::to_string(result.records));
    return result;
}

} // namespace bf::trace
