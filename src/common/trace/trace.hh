/**
 * @file
 * Deterministic binary event tracing of the translation pipeline
 * (DESIGN.md §12).
 *
 * A Tracer owns one output file and one append-only record buffer per
 * simulated core. Instrumented components (MMU, page walker, kernel)
 * record typed events stamped with (sim-timestamp, core, seq, ccid, pid,
 * vaddr-page); the per-core seq counters never reset, so the triple
 * (ts, core, seq) is a unique, deterministic sort key. At every weave
 * barrier System calls flushBarrier(), which merges the per-core buffers
 * in canonical (ts, core, seq) order and appends them to the file as one
 * framed block.
 *
 * Determinism argument (mirrors core/epoch.hh): during a bound phase a
 * core's buffer is appended only by the host thread running that core,
 * and the per-core event stream is a pure function of that core's
 * simulated execution — which PR 3 already guarantees is independent of
 * the worker count. Kernel-side events (fault service, CoW
 * privatization, shootdowns) occur only in single-threaded windows and
 * are attributed to the faulting core via setKernelContext. The merge
 * key is unique, so the flushed byte stream — and therefore the whole
 * file — is byte-identical at every BF_WORKERS.
 *
 * File layout (all integers little-endian):
 *
 *     magic[8]  "BFTRACE\0"
 *     u32       trace format version
 *     u32       record size in bytes (40)
 *     u32       number of simulated cores
 *     u32       event mask the trace was captured with
 *     u64       record count   (patched on finish)
 *     u64       dropped count  (records beyond BF_TRACE_LIMIT)
 *     u64       reserved (0)
 *     config    112-byte serialized TraceConfig (v2: the recording
 *               machine's TLB/PWC geometry and mode flags)
 *     blocks    each: u32 block magic, u32 record count, records
 *
 * Records are framed into one block per weave barrier because global
 * timestamp sortedness cannot hold across barriers: a core's chunk-N
 * events may overshoot the barrier past another core's first chunk-N+1
 * events. Within a block records are (ts, core, seq)-sorted, and each
 * core's seq values increase strictly across the whole file — the
 * validator checks both.
 */

#ifndef BF_COMMON_TRACE_TRACE_HH
#define BF_COMMON_TRACE_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"

namespace bf::trace
{

/**
 * Typed events of the translation pipeline.
 *
 * Format v2 arg packings (all little-endian bit ranges within the u64
 * arg; see DESIGN.md §13 for the replay contract that consumes them):
 *
 *   TlbL1Hit/TlbL2Hit/TlbMiss  bits 0-15 translating PCID,
 *                              bits 16-22 O-PC process bit + 1 (0 = no
 *                              bit assigned).
 *   PwcHit/WalkStep            bits 0-2 page-table level,
 *                              bits 3-63 physical address of the page-
 *                              table entry (8-aligned, low bits zero).
 *   TlbFill                    bits 0-15 PCID, 16-17 PageSize,
 *                              18 owned, 19 orpc, 20 cow,
 *                              bits 32-63 O-PC pc_bitmask.
 *   FaultService               bits 0-31 kernel cycles, 32-47 PCID,
 *                              48-49 stale PageSize, 50 declared_cow.
 *   Shootdown                  bits 0-31 number of pages, 32-47 PCID,
 *                              48-49 PageSize.
 */
enum class EventType : std::uint8_t
{
    TlbL1Hit = 0,     //!< L1 TLB hit. flags: hit flags below.
    TlbL2Hit = 1,     //!< L2 TLB hit. flags: hit flags below.
    TlbMiss = 2,      //!< Miss in both TLB levels; a walk follows.
    PwcHit = 3,       //!< Walk step served by the PWC. arg = level|paddr.
    WalkStart = 4,    //!< Page walk issued.
    WalkStep = 5,     //!< Walk step into the hierarchy. arg =
                      //!< level|paddr, flags = serving mem level
                      //!< (provisional L3 for bound-phase deferred
                      //!< steps).
    WalkEnd = 6,      //!< Walk finished. arg = walk cycles,
                      //!< flags = WalkStatus.
    FaultService = 7, //!< Kernel fault service. arg packed as above,
                      //!< flags = FaultKind.
    CowPrivatize = 8, //!< 512-entry leaf table privatized (O-PC).
    MaskFallback = 9, //!< >32-writer MaskPage revert of a region.
    Shootdown = 10,   //!< TLB invalidation broadcast.
                      //!< arg packed as above, flags = kind.
    TlbFill = 11,     //!< L2+L1 TLB fill after a successful walk.
                      //!< arg = fill attributes packed as above.
    StatsReset = 12,  //!< System::resetStats marker (warm-up boundary).
};

/** Number of event types (mask width). */
inline constexpr unsigned numEventTypes = 13;

/** Mask with every event enabled (BF_TRACE_EVENTS default). */
inline constexpr std::uint32_t allEvents = (1u << numEventTypes) - 1;

/** Human-readable event name ("?" for unknown types). */
const char *eventTypeName(EventType type);

/** @{ @name Flag bits of the TLB hit/miss events */
inline constexpr std::uint8_t flagInstr = 1 << 0;     //!< Ifetch access.
inline constexpr std::uint8_t flagWrite = 1 << 1;     //!< Write access.
inline constexpr std::uint8_t flagSharedHit = 1 << 2; //!< CCID shared hit.
inline constexpr std::uint8_t flagOwned = 1 << 3;     //!< O bit of entry.
inline constexpr std::uint8_t flagOrpc = 1 << 4;      //!< ORPC bit.
inline constexpr std::uint8_t flagCowFault = 1 << 5;  //!< Write hit a CoW
                                                      //!< entry: fault, no
                                                      //!< hit counted / no
                                                      //!< L1 refill.
inline constexpr std::uint8_t flagLongL2 = 1 << 6;    //!< Long (bitmask-
                                                      //!< checking) L2
                                                      //!< access.
/** @} */

/**
 * @{
 * @name v2 arg packing helpers
 * Encoders live next to the decoders so the record sites (MMU, walker,
 * kernel) and the replay engine can never drift apart. Bit layouts are
 * documented on EventType.
 */
inline std::uint64_t
packAttempt(std::uint16_t pcid, int process_bit)
{
    return std::uint64_t{pcid} |
           (static_cast<std::uint64_t>(process_bit + 1) << 16);
}

inline std::uint16_t
attemptPcid(std::uint64_t arg)
{
    return static_cast<std::uint16_t>(arg);
}

/** O-PC process bit of the translating process, -1 for none. */
inline int
attemptProcessBit(std::uint64_t arg)
{
    return static_cast<int>((arg >> 16) & 0x7f) - 1;
}

inline std::uint64_t
packWalkStep(unsigned level, std::uint64_t entry_paddr)
{
    // Page-table entries are 8-byte aligned, so the level borrows the
    // address's three zero low bits.
    return (level & 0x7u) | (entry_paddr & ~std::uint64_t{7});
}

inline unsigned
walkStepLevel(std::uint64_t arg)
{
    return static_cast<unsigned>(arg & 0x7);
}

/** Physical address of the page-table entry (8-byte aligned). */
inline std::uint64_t
walkStepPaddr(std::uint64_t arg)
{
    return arg & ~std::uint64_t{7};
}

inline std::uint64_t
packFill(std::uint16_t pcid, unsigned size, bool owned, bool orpc,
         bool cow, std::uint32_t pc_bitmask)
{
    return std::uint64_t{pcid} | (std::uint64_t{size & 0x3u} << 16) |
           (std::uint64_t{owned} << 18) | (std::uint64_t{orpc} << 19) |
           (std::uint64_t{cow} << 20) |
           (std::uint64_t{pc_bitmask} << 32);
}

inline std::uint16_t fillPcid(std::uint64_t arg)
{ return static_cast<std::uint16_t>(arg); }
inline unsigned fillSize(std::uint64_t arg)
{ return static_cast<unsigned>((arg >> 16) & 0x3); }
inline bool fillOwned(std::uint64_t arg) { return (arg >> 18) & 1; }
inline bool fillOrpc(std::uint64_t arg) { return (arg >> 19) & 1; }
inline bool fillCow(std::uint64_t arg) { return (arg >> 20) & 1; }
inline std::uint32_t fillBitmask(std::uint64_t arg)
{ return static_cast<std::uint32_t>(arg >> 32); }

inline std::uint64_t
packFault(std::uint64_t cycles, std::uint16_t pcid, unsigned stale_size,
          bool declared_cow)
{
    return (cycles & 0xffffffffull) | (std::uint64_t{pcid} << 32) |
           (std::uint64_t{stale_size & 0x3u} << 48) |
           (std::uint64_t{declared_cow} << 50);
}

inline std::uint64_t faultCycles(std::uint64_t arg)
{ return arg & 0xffffffffull; }
inline std::uint16_t faultPcid(std::uint64_t arg)
{ return static_cast<std::uint16_t>(arg >> 32); }
inline unsigned faultStaleSize(std::uint64_t arg)
{ return static_cast<unsigned>((arg >> 48) & 0x3); }
inline bool faultDeclaredCow(std::uint64_t arg)
{ return (arg >> 50) & 1; }

inline std::uint64_t
packShootdown(std::uint64_t num_pages, std::uint16_t pcid, unsigned size)
{
    return (num_pages & 0xffffffffull) | (std::uint64_t{pcid} << 32) |
           (std::uint64_t{size & 0x3u} << 48);
}

inline std::uint64_t shootdownPages(std::uint64_t arg)
{ return arg & 0xffffffffull; }
inline std::uint16_t shootdownPcid(std::uint64_t arg)
{ return static_cast<std::uint16_t>(arg >> 32); }
inline unsigned shootdownSize(std::uint64_t arg)
{ return static_cast<unsigned>((arg >> 48) & 0x3); }
/** @} */

/** Record::cslot value for "no container attribution". */
inline constexpr std::uint16_t noCslot = 0xffff;

/**
 * One traced event, in memory. The on-disk form is the same fields
 * serialized little-endian in declaration order (40 bytes total). The
 * final u16 — v2's zero pad — is the v3 container-attribution slot
 * (cslot); reading a v2 file forces it to noCslot, so v2 traces keep
 * decoding unchanged.
 */
struct Record
{
    Cycles ts = 0;           //!< Simulated issue time (core clock).
    std::uint64_t vpage = 0; //!< Canonical VA >> 12 (event-specific).
    std::uint64_t arg = 0;   //!< Event-specific payload.
    std::uint32_t pid = 0;   //!< Faulting/translating process (0: none).
    std::uint32_t seq = 0;   //!< Per-core record order, never reset.
    std::uint16_t core = 0;
    std::uint16_t ccid = 0;
    std::uint8_t type = 0;   //!< EventType.
    std::uint8_t flags = 0;
    std::uint16_t cslot = noCslot; //!< Attribution slot (v3; see above).
};

/** On-disk record size in bytes. */
inline constexpr std::uint32_t recordBytes = 40;

/**
 * Geometry of one TLB structure as captured in the trace header. The
 * replay engine (src/replay) instantiates functional models from these,
 * so a trace is self-describing: replay at the recording config needs
 * no side-channel knowledge of the simulated machine.
 */
struct TraceTlbConfig
{
    std::uint32_t entries = 0;
    std::uint16_t assoc = 0;            //!< 0 = fully associative.
    std::uint16_t access_cycles = 1;
    std::uint16_t bitmask_extra_cycles = 0;
    std::uint8_t policy = 0;            //!< tlb::TlbParams::Policy.
};

/** Indices into TraceConfig::tlb, in MmuParams declaration order. */
enum TraceTlbIdx : unsigned
{
    TraceL1i4k = 0,
    TraceL1d4k = 1,
    TraceL1d2m = 2,
    TraceL1d1g = 3,
    TraceL24k = 4,
    TraceL22m = 5,
    TraceL21g = 6,
    traceNumTlbs = 7,
};

/**
 * Recording-time machine configuration embedded in the v2 header
 * (the 112-byte block after the 48 base header bytes).
 */
struct TraceConfig
{
    TraceTlbConfig tlb[traceNumTlbs];
    std::uint32_t pwc_entries_per_level = 0; //!< 0 = PWC disabled.
    std::uint16_t pwc_assoc = 0;
    std::uint16_t pwc_levels = 0;
    std::uint16_t pwc_access_cycles = 0;
    std::uint16_t aslr_transform_cycles = 0;
    bool babelfish = false;     //!< CCID-tagged L2 lookups.
    bool l1_sharing = false;    //!< CCID-tagged L1 lookups.
    bool force_long_l2 = false; //!< Every BabelFish L2 access is long.
    bool aslr_hw = false;       //!< HW ASLR transform on the L1-miss path.
    std::uint8_t opc_width = 0; //!< O-PC bitmask width (max_cow_writers).
    /**
     * translate::BackendKind id of the recording run. Carried in a
     * formerly-zero padding byte, so v2 traces recorded before the
     * backend zoo decode as 0 (BabelFish, the only backend that
     * existed) with no version bump.
     */
    std::uint8_t backend = 0;
};

/** On-disk size of the serialized TraceConfig block. */
inline constexpr std::uint32_t configBytes = 112;

/** On-disk header size in bytes (base fields + config block). */
inline constexpr std::uint32_t headerBytes = 48 + configBytes;

/**
 * Trace format version. v2 added the header config block, the TlbFill /
 * StatsReset events and the arg packings documented on EventType. v3
 * repurposes the record's zero pad u16 as the container-attribution
 * slot (Record::cslot); the reader accepts v2 (forcing cslot to
 * noCslot) because every other byte is identical. Older versions must
 * be re-recorded, never reinterpreted.
 */
inline constexpr std::uint32_t traceFormatVersion = 3;

/** Oldest trace format version the reader still decodes. */
inline constexpr std::uint32_t traceMinReadVersion = 2;

/** Block frame marker ("BLK1"). */
inline constexpr std::uint32_t blockMagic = 0x314b4c42;

/** Records translation-pipeline events into per-core buffers. */
class Tracer
{
  public:
    /**
     * Open @p path for writing and emit the header. A failed open
     * leaves the tracer disabled (ok() == false) with a warning —
     * tracing is observability, never a reason to kill a run.
     *
     * @param event_mask bit i enables EventType i (BF_TRACE_EVENTS).
     * @param limit maximum records written to the file; 0 = unlimited.
     *        Applied in canonical merge order at flush time, so the
     *        truncation point is deterministic too. Excess records are
     *        counted in the header's dropped field.
     * @param config recording-time machine configuration, embedded in
     *        the header so the trace is self-describing for replay.
     */
    Tracer(std::string path, unsigned num_cores,
           std::uint32_t event_mask = allEvents, std::uint64_t limit = 0,
           const TraceConfig &config = {});
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Whether the output file is open and healthy. */
    bool ok() const { return file_ != nullptr; }

    /** Whether @p type passes the event mask. */
    bool
    wants(EventType type) const
    {
        return (mask_ >> static_cast<unsigned>(type)) & 1;
    }

    /**
     * Attach the pid → attribution-slot resolver (System wires the
     * attrib registry's; null detaches). Records stamp the resolved
     * slot into Record::cslot so post-hoc tools group per container.
     * Called from bound threads, but the registry only mutates in
     * single-threaded windows, so the lookup is never raced.
     */
    void
    setSlotLookup(std::function<int(std::uint32_t)> lookup)
    {
        slot_lookup_ = std::move(lookup);
    }

    /**
     * Record one event into @p core's buffer. Thread-safety contract:
     * called either by the host thread running @p core's bound phase,
     * or from a single-threaded window (fault service, weave).
     */
    void
    record(unsigned core, EventType type, Cycles ts, std::uint16_t ccid,
           std::uint32_t pid, Addr vaddr, std::uint64_t arg = 0,
           std::uint8_t flags = 0)
    {
        if (!file_ || !wants(type))
            return;
        Record rec;
        rec.ts = ts;
        rec.vpage = vaddr >> basePageShift;
        rec.arg = arg;
        rec.pid = pid;
        rec.seq = next_seq_[core]++;
        rec.core = static_cast<std::uint16_t>(core);
        rec.ccid = ccid;
        rec.type = static_cast<std::uint8_t>(type);
        rec.flags = flags;
        if (slot_lookup_) {
            const int slot = slot_lookup_(pid);
            if (slot >= 0 && slot < noCslot)
                rec.cslot = static_cast<std::uint16_t>(slot);
        }
        bufs_[core].push_back(rec);
    }

    /**
     * @{
     * @name Kernel attribution context
     * The kernel has no core or clock of its own; before each fault
     * service the driver (or the MMU's serial retry path) stamps the
     * faulting core and fault time here, and kernel-side events recorded
     * through recordKernel() are attributed to that context. Kernel
     * mutations only happen in single-threaded windows, so the context
     * is never raced.
     */
    void
    setKernelContext(unsigned core, Cycles ts)
    {
        kctx_core_ = core;
        kctx_ts_ = ts;
        kctx_valid_ = true;
    }

    void clearKernelContext() { kctx_valid_ = false; }

    /** Record an event at the kernel context (no-op outside one). */
    void
    recordKernel(EventType type, std::uint16_t ccid, std::uint32_t pid,
                 Addr vaddr, std::uint64_t arg = 0, std::uint8_t flags = 0)
    {
        if (kctx_valid_)
            record(kctx_core_, type, kctx_ts_, ccid, pid, vaddr, arg,
                   flags);
    }
    /** @} */

    /**
     * Merge the per-core buffers in (ts, core, seq) order and append
     * them to the file as one block. Called single-threaded at every
     * weave barrier.
     */
    void flushBarrier();

    /** Final flush, header patch (record/dropped counts), close. */
    void finish();

    /** Records written to the file so far. */
    std::uint64_t written() const { return written_; }

    /** Records beyond the limit (counted, not written). */
    std::uint64_t dropped() const { return dropped_; }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::uint32_t mask_ = allEvents;
    std::uint64_t limit_ = 0;
    std::uint64_t written_ = 0;
    std::uint64_t dropped_ = 0;

    std::vector<std::vector<Record>> bufs_;     //!< Per core.
    std::vector<std::uint32_t> next_seq_;       //!< Per core, monotone.
    std::vector<Record> merge_buf_;             //!< Reused across flushes.
    std::vector<std::uint8_t> io_buf_;          //!< Reused across flushes.

    /** pid → attribution slot (setSlotLookup); empty = no stamping. */
    std::function<int(std::uint32_t)> slot_lookup_;

    unsigned kctx_core_ = 0;
    Cycles kctx_ts_ = 0;
    bool kctx_valid_ = false;
};

/** Any integrity or format violation found while reading a trace. */
class TraceError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Decoded trace-file header. */
struct TraceHeader
{
    std::uint32_t version = 0;
    std::uint32_t record_bytes = 0;
    std::uint32_t num_cores = 0;
    std::uint32_t event_mask = 0;
    std::uint64_t record_count = 0;
    std::uint64_t dropped_count = 0;
    TraceConfig config;
};

/**
 * Block-at-a-time reader over a trace file. The constructor validates
 * the header; nextBlock() decodes one block per call. Malformed input
 * throws TraceError, never crashes.
 */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    const TraceHeader &header() const { return header_; }

    /**
     * Decode the next block into @p out (replacing its contents).
     * @return false at a clean end of file.
     */
    bool nextBlock(std::vector<Record> &out);

  private:
    std::FILE *file_ = nullptr;
    TraceHeader header_;
};

/** What validateTrace() found in a healthy file. */
struct ValidateResult
{
    std::uint64_t records = 0;
    std::uint64_t blocks = 0;
};

/**
 * Full integrity scan of a trace file: header sanity, block framing,
 * known event types, cores within range, per-block (ts, core, seq)
 * sortedness, strictly increasing per-core seq across the whole file,
 * and a record count matching the header. @throws TraceError on the
 * first violation.
 */
ValidateResult validateTrace(const std::string &path);

} // namespace bf::trace

#endif // BF_COMMON_TRACE_TRACE_HH
