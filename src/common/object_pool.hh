/**
 * @file
 * A freelist-backed object pool for the kernel's high-churn objects
 * (page-table pages, MaskPages, processes).
 *
 * The modeled kernel allocates and frees these in bursts — container
 * bring-up, CoW privatization, table teardown — and the host-side
 * malloc/free round trips plus the resulting heap scatter showed up in
 * profiles. The pool carves fixed-size chunks, recycles slots through a
 * freelist LIFO (so a slot freed by one teardown is re-used hot by the
 * next bring-up), and never returns memory until the pool itself dies.
 *
 * Determinism: the pool changes only WHERE objects live on the host,
 * never any modeled state, so simulated stats are unaffected. Slot
 * addresses are host-run specific either way (malloc was too), and
 * nothing modeled keys off object addresses.
 */

#ifndef BF_COMMON_OBJECT_POOL_HH
#define BF_COMMON_OBJECT_POOL_HH

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace bf
{

template <typename T>
class ObjectPool;

/** unique_ptr deleter that returns the object to its pool. */
template <typename T>
struct PoolDeleter
{
    ObjectPool<T> *pool = nullptr;
    void operator()(T *obj) const noexcept;
};

/** Owning handle for a pooled object. */
template <typename T>
using PoolPtr = std::unique_ptr<T, PoolDeleter<T>>;

template <typename T>
class ObjectPool
{
  public:
    /** @param chunk_objects slots carved per chunk allocation. */
    explicit ObjectPool(std::size_t chunk_objects = 64)
        : chunk_objects_(chunk_objects ? chunk_objects : 1)
    {}

    ObjectPool(const ObjectPool &) = delete;
    ObjectPool &operator=(const ObjectPool &) = delete;

    /**
     * Construct a T in a recycled (or fresh) slot. The raw pointer must
     * come back through release(); prefer make() which guarantees it.
     */
    template <typename... Args>
    T *
    acquire(Args &&...args)
    {
        if (free_.empty())
            grow();
        T *slot = free_.back();
        free_.pop_back();
        ++live_;
        return ::new (static_cast<void *>(slot))
            T(std::forward<Args>(args)...);
    }

    /** Destroy a pooled object and recycle its slot. */
    void
    release(T *obj) noexcept
    {
        obj->~T();
        free_.push_back(obj);
        --live_;
    }

    /** acquire() wrapped in an owning handle tied to this pool. */
    template <typename... Args>
    PoolPtr<T>
    make(Args &&...args)
    {
        return PoolPtr<T>(acquire(std::forward<Args>(args)...),
                          PoolDeleter<T>{this});
    }

    /** Objects currently alive. */
    std::size_t liveCount() const { return live_; }
    /** Slots ever carved (live + free). */
    std::size_t capacity() const { return chunks_.size() * chunk_objects_; }

  private:
    struct Slot
    {
        alignas(T) std::byte bytes[sizeof(T)];
    };

    void
    grow()
    {
        chunks_.push_back(std::make_unique<Slot[]>(chunk_objects_));
        Slot *chunk = chunks_.back().get();
        // Freelist is LIFO; push in reverse so the first acquires walk
        // the chunk front to back.
        for (std::size_t i = chunk_objects_; i-- > 0;)
            free_.push_back(reinterpret_cast<T *>(chunk[i].bytes));
    }

    std::size_t chunk_objects_;
    std::size_t live_ = 0;
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::vector<T *> free_;
};

template <typename T>
void
PoolDeleter<T>::operator()(T *obj) const noexcept
{
    pool->release(obj);
}

} // namespace bf

#endif // BF_COMMON_OBJECT_POOL_HH
