#include "common/stats_export.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace bf::stats
{

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (unsigned char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

namespace
{

void
writeGroupJson(const StatGroup &group, std::ostream &os)
{
    os << "{\"scalars\":{";
    bool first = true;
    for (const auto &[name, stat] : group.scalars()) {
        os << (first ? "" : ",") << '"' << jsonEscape(name)
           << "\":" << stat->value();
        first = false;
    }
    os << "},\"averages\":{";
    first = true;
    for (const auto &[name, stat] : group.averages()) {
        os << (first ? "" : ",") << '"' << jsonEscape(name)
           << "\":{\"mean\":" << jsonNumber(stat->mean())
           << ",\"sum\":" << jsonNumber(stat->sum())
           << ",\"count\":" << stat->count() << '}';
        first = false;
    }
    os << "},\"latencies\":{";
    first = true;
    for (const auto &[name, stat] : group.latencies()) {
        os << (first ? "" : ",") << '"' << jsonEscape(name)
           << "\":{\"mean\":" << jsonNumber(stat->mean())
           << ",\"p50\":" << jsonNumber(stat->percentile(50))
           << ",\"p95\":" << jsonNumber(stat->percentile(95))
           << ",\"p99\":" << jsonNumber(stat->percentile(99))
           << ",\"count\":" << stat->count() << '}';
        first = false;
    }
    os << "},\"distributions\":{";
    first = true;
    for (const auto &[name, stat] : group.distributions()) {
        os << (first ? "" : ",") << '"' << jsonEscape(name)
           << "\":{\"mean\":" << jsonNumber(stat->mean())
           << ",\"p50\":" << stat->percentile(50)
           << ",\"p95\":" << stat->percentile(95)
           << ",\"p99\":" << stat->percentile(99)
           << ",\"max\":" << stat->max()
           << ",\"sum\":" << stat->sum()
           << ",\"count\":" << stat->count() << ",\"buckets\":[";
        bool bfirst = true;
        for (std::uint64_t bucket : stat->buckets()) {
            os << (bfirst ? "" : ",") << bucket;
            bfirst = false;
        }
        os << "]}";
        first = false;
    }
    os << "},\"children\":{";
    first = true;
    for (const auto *child : group.children()) {
        os << (first ? "" : ",") << '"' << jsonEscape(child->name())
           << "\":";
        writeGroupJson(*child, os);
        first = false;
    }
    os << "}}";
}

/** StatVisitor emitting one "path.name=value" line per stat. */
class FlatTextWriter : public StatVisitor
{
  public:
    explicit FlatTextWriter(std::ostream &os) : os_(os) {}

    void
    visitScalar(const StatGroup &group, const std::string &name,
                const Scalar &stat) override
    {
        os_ << group.path() << '.' << name << '=' << stat.value() << '\n';
    }

    void
    visitAverage(const StatGroup &group, const std::string &name,
                 const Average &stat) override
    {
        os_ << group.path() << '.' << name << ".mean=" << stat.mean()
            << '\n';
        os_ << group.path() << '.' << name << ".count=" << stat.count()
            << '\n';
    }

    void
    visitLatency(const StatGroup &group, const std::string &name,
                 const LatencyTracker &stat) override
    {
        os_ << group.path() << '.' << name << ".mean=" << stat.mean()
            << '\n';
        os_ << group.path() << '.' << name << ".p95="
            << stat.percentile(95) << '\n';
        os_ << group.path() << '.' << name << ".count=" << stat.count()
            << '\n';
    }

    void
    visitDistribution(const StatGroup &group, const std::string &name,
                      const Distribution &stat) override
    {
        os_ << group.path() << '.' << name << ".mean=" << stat.mean()
            << '\n';
        os_ << group.path() << '.' << name << ".p95="
            << stat.percentile(95) << '\n';
        os_ << group.path() << '.' << name << ".count=" << stat.count()
            << '\n';
    }

  private:
    std::ostream &os_;
};

} // namespace

void
toJson(const StatGroup &root, std::ostream &os)
{
    writeGroupJson(root, os);
}

std::string
toJsonString(const StatGroup &root)
{
    std::ostringstream oss;
    toJson(root, oss);
    return oss.str();
}

void
toFlatText(const StatGroup &root, std::ostream &os)
{
    FlatTextWriter writer(os);
    root.accept(writer);
}

} // namespace bf::stats
