#include "common/snapshot.hh"

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"

namespace bf::snap
{

namespace
{

constexpr std::array<char, 8> magic = {'B', 'F', 'C', 'K', 'P', 'T',
                                       '\r', '\n'};

// Header: magic[8] | version u32 | payload_len u64 | crc32 u32.
constexpr std::size_t headerBytes = 8 + 4 + 8 + 4;

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

void
putLe(std::vector<std::uint8_t> &buf, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t len)
{
    static const auto table = makeCrcTable();
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void
ArchiveWriter::u16(std::uint16_t v)
{
    putLe(buf_, v, 2);
}

void
ArchiveWriter::u32(std::uint32_t v)
{
    putLe(buf_, v, 4);
}

void
ArchiveWriter::u64(std::uint64_t v)
{
    putLe(buf_, v, 8);
}

void
ArchiveWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
ArchiveWriter::str(std::string_view s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void
ArchiveWriter::beginSection(std::string_view tag)
{
    bf_assert(tag.size() == 4, "section tag must be 4 chars: ", tag);
    buf_.insert(buf_.end(), tag.begin(), tag.end());
    open_sections_.push_back(buf_.size());
    u32(0); // Placeholder, patched by endSection.
}

void
ArchiveWriter::endSection()
{
    bf_assert(!open_sections_.empty(), "endSection without beginSection");
    const std::size_t len_at = open_sections_.back();
    open_sections_.pop_back();
    const std::uint64_t body = buf_.size() - (len_at + 4);
    bf_assert(body <= 0xffffffffu, "section too large");
    for (unsigned i = 0; i < 4; ++i)
        buf_[len_at + i] = static_cast<std::uint8_t>(body >> (8 * i));
}

bool
ArchiveWriter::writeFile(const std::string &path) const
{
    bf_assert(open_sections_.empty(), "writeFile with open sections");

    std::vector<std::uint8_t> header;
    header.reserve(headerBytes);
    header.insert(header.end(), magic.begin(), magic.end());
    putLe(header, formatVersion, 4);
    putLe(header, buf_.size(), 8);
    putLe(header, crc32(buf_.data(), buf_.size()), 4);

    // Temp file + rename keeps the final name either absent or complete.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("checkpoint: cannot open ", tmp, " for writing");
            return false;
        }
        out.write(reinterpret_cast<const char *>(header.data()),
                  static_cast<std::streamsize>(header.size()));
        out.write(reinterpret_cast<const char *>(buf_.data()),
                  static_cast<std::streamsize>(buf_.size()));
        if (!out) {
            warn("checkpoint: short write to ", tmp);
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn("checkpoint: rename ", tmp, " -> ", path, " failed: ",
             ec.message());
        return false;
    }
    return true;
}

ArchiveReader
ArchiveReader::fromFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SnapshotError("cannot open checkpoint: " + path);

    std::array<std::uint8_t, headerBytes> header;
    in.read(reinterpret_cast<char *>(header.data()), headerBytes);
    if (in.gcount() != static_cast<std::streamsize>(headerBytes))
        throw SnapshotError("checkpoint header truncated: " + path);

    if (std::memcmp(header.data(), magic.data(), magic.size()) != 0)
        throw SnapshotError("bad checkpoint magic: " + path);

    auto le = [&](std::size_t off, unsigned bytes) {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < bytes; ++i)
            v |= static_cast<std::uint64_t>(header[off + i]) << (8 * i);
        return v;
    };
    const auto version = static_cast<std::uint32_t>(le(8, 4));
    const std::uint64_t payload_len = le(12, 8);
    const auto stored_crc = static_cast<std::uint32_t>(le(20, 4));

    if (version != formatVersion) {
        throw SnapshotError(
            "checkpoint format version " + std::to_string(version) +
            " != supported " + std::to_string(formatVersion) + ": " + path);
    }

    std::vector<std::uint8_t> payload(payload_len);
    in.read(reinterpret_cast<char *>(payload.data()),
            static_cast<std::streamsize>(payload_len));
    if (in.gcount() != static_cast<std::streamsize>(payload_len))
        throw SnapshotError("checkpoint payload truncated: " + path);

    const std::uint32_t actual = crc32(payload.data(), payload.size());
    if (actual != stored_crc) {
        throw SnapshotError("checkpoint CRC mismatch (corrupt file): " +
                            path);
    }
    return ArchiveReader(std::move(payload));
}

void
ArchiveReader::need(std::size_t n) const
{
    const std::size_t limit =
        section_ends_.empty() ? payload_.size() : section_ends_.back();
    if (pos_ + n > limit)
        throw SnapshotError("checkpoint read past end of data/section");
}

std::uint8_t
ArchiveReader::u8()
{
    need(1);
    return payload_[pos_++];
}

std::uint16_t
ArchiveReader::u16()
{
    need(2);
    std::uint16_t v = 0;
    for (unsigned i = 0; i < 2; ++i)
        v = static_cast<std::uint16_t>(
            v | static_cast<std::uint16_t>(payload_[pos_ + i]) << (8 * i));
    pos_ += 2;
    return v;
}

std::uint32_t
ArchiveReader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(payload_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t
ArchiveReader::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(payload_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

double
ArchiveReader::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ArchiveReader::str()
{
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char *>(&payload_[pos_]), len);
    pos_ += len;
    return s;
}

void
ArchiveReader::enterSection(std::string_view tag)
{
    need(4 + 4);
    std::string_view found(
        reinterpret_cast<const char *>(&payload_[pos_]), 4);
    if (found != tag) {
        throw SnapshotError("checkpoint section mismatch: expected '" +
                            std::string(tag) + "', found '" +
                            std::string(found) + "'");
    }
    pos_ += 4;
    const std::uint32_t len = u32();
    need(len);
    section_ends_.push_back(pos_ + len);
}

void
ArchiveReader::exitSection()
{
    if (section_ends_.empty())
        throw SnapshotError("exitSection without enterSection");
    if (pos_ != section_ends_.back())
        throw SnapshotError("checkpoint section not fully consumed");
    section_ends_.pop_back();
}

} // namespace bf::snap
