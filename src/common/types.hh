/**
 * @file
 * Fundamental types shared by every BabelFish subsystem.
 *
 * The simulator models an x86-64 server, so addresses are 64-bit and the
 * canonical page is 4 KB. Virtual and physical page numbers get their own
 * strong-ish typedefs to keep interfaces self-documenting.
 */

#ifndef BF_COMMON_TYPES_HH
#define BF_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace bf
{

/** A 64-bit address, virtual or physical depending on context. */
using Addr = std::uint64_t;

/** Virtual page number: virtual address >> page shift. */
using Vpn = std::uint64_t;

/** Physical page number: physical address >> page shift. */
using Ppn = std::uint64_t;

/** Simulated clock cycles (2 GHz cores by default). */
using Cycles = std::uint64_t;

/** OS process identifier. */
using Pid = std::uint32_t;

/** Process Context Identifier, 12 bits in x86. */
using Pcid = std::uint16_t;

/** Container Context Identifier, 12 bits (BabelFish, Table I). */
using Ccid = std::uint16_t;

/** Sentinel for "no process". */
inline constexpr Pid invalidPid = 0xffffffff;

/** Sentinel for "no container group". */
inline constexpr Ccid invalidCcid = 0xffff;

/** Page sizes supported by the TLBs and page tables (x86-64). */
enum class PageSize : std::uint8_t
{
    Size4K,
    Size2M,
    Size1G,
};

/** Number of distinct page sizes. */
inline constexpr int numPageSizes = 3;

/** log2 of the page size in bytes. */
constexpr int
pageShift(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return 12;
      case PageSize::Size2M: return 21;
      case PageSize::Size1G: return 30;
    }
    return 12;
}

/** Page size in bytes. */
constexpr std::uint64_t
pageBytes(PageSize size)
{
    return std::uint64_t{1} << pageShift(size);
}

/** Human-readable page-size label, e.g.\ "4K". */
constexpr const char *
pageSizeName(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return "4K";
      case PageSize::Size2M: return "2M";
      case PageSize::Size1G: return "1G";
    }
    return "?";
}

/** Bytes per 4 KB base page. */
inline constexpr std::uint64_t basePageBytes = 4096;

/** log2 of the base page size. */
inline constexpr int basePageShift = 12;

/** Cache line size used throughout the hierarchy (Table I). */
inline constexpr std::uint64_t cacheLineBytes = 64;

/** Extract the VPN of a virtual address for a given page size. */
constexpr Vpn
addrToVpn(Addr va, PageSize size = PageSize::Size4K)
{
    return va >> pageShift(size);
}

/** First virtual address of a page. */
constexpr Addr
vpnToAddr(Vpn vpn, PageSize size = PageSize::Size4K)
{
    return vpn << pageShift(size);
}

/** Cache-line number of an address. */
constexpr Addr
lineOf(Addr addr)
{
    return addr / cacheLineBytes;
}

/** Whether an access is a read, a write, or an instruction fetch. */
enum class AccessType : std::uint8_t
{
    Read,
    Write,
    Ifetch,
};

/** True for instruction fetches. */
constexpr bool
isIfetch(AccessType type)
{
    return type == AccessType::Ifetch;
}

/** Core frequency: 2 GHz (Table I). */
inline constexpr std::uint64_t coreFreqHz = 2'000'000'000ull;

/** Convert milliseconds of simulated time to cycles. */
constexpr Cycles
msToCycles(double ms)
{
    return static_cast<Cycles>(ms * 1e-3 * coreFreqHz);
}

/** Convert cycles to nanoseconds at the core frequency. */
constexpr double
cyclesToNs(Cycles cycles)
{
    return static_cast<double>(cycles) * 1e9 / coreFreqHz;
}

} // namespace bf

#endif // BF_COMMON_TYPES_HH
