#include "common/stats.hh"

#include <cmath>
#include <iomanip>

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace bf::stats
{

void
Histogram::sample(std::uint64_t value)
{
    std::size_t bucket = 0;
    std::uint64_t v = value;
    while (v > 1) {
        v >>= 1;
        ++bucket;
    }
    if (bucket >= buckets_.size())
        buckets_.resize(bucket + 1, 0);
    ++buckets_[bucket];
    ++count_;
    sum_ += static_cast<double>(value);
    max_ = std::max(max_, value);
}

void
Histogram::reset()
{
    buckets_.clear();
    count_ = 0;
    sum_ = 0;
    max_ = 0;
}

std::uint64_t
Distribution::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    bf_assert(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    if (rank == 0)
        rank = 1;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cumulative += buckets_[i];
        if (cumulative >= rank)
            return i == 0 ? 0 : std::uint64_t{1} << i;
    }
    return max_;
}

double
LatencyTracker::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

void
LatencyTracker::sort() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
LatencyTracker::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    sort();
    bf_assert(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    const auto n = samples_.size();
    auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 *
                                                   static_cast<double>(n)));
    if (rank > 0)
        --rank;
    return samples_[std::min(rank, n - 1)];
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->children_.push_back(this);
}

void
StatGroup::addStat(const std::string &name, const Scalar *stat)
{
    bf_assert(!scalars_.count(name), "duplicate stat ", path(), ".", name);
    scalars_[name] = stat;
}

void
StatGroup::addStat(const std::string &name, const Average *stat)
{
    bf_assert(!averages_.count(name), "duplicate stat ", path(), ".", name);
    averages_[name] = stat;
}

void
StatGroup::addStat(const std::string &name, const LatencyTracker *stat)
{
    bf_assert(!latencies_.count(name), "duplicate stat ", path(), ".", name);
    latencies_[name] = stat;
}

void
StatGroup::addStat(const std::string &name, const Distribution *stat)
{
    bf_assert(!distributions_.count(name), "duplicate stat ", path(), ".",
              name);
    distributions_[name] = stat;
}

std::string
StatGroup::path() const
{
    if (!parent_)
        return name_;
    return parent_->path() + "." + name_;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix = path();
    for (const auto &[name, stat] : scalars_)
        os << prefix << "." << name << " " << stat->value() << "\n";
    for (const auto &[name, stat] : averages_) {
        os << prefix << "." << name << ".mean " << stat->mean() << "\n";
        os << prefix << "." << name << ".count " << stat->count() << "\n";
    }
    for (const auto &[name, stat] : latencies_) {
        os << prefix << "." << name << ".mean " << stat->mean() << "\n";
        os << prefix << "." << name << ".p95 " << stat->percentile(95)
           << "\n";
        os << prefix << "." << name << ".count " << stat->count() << "\n";
    }
    for (const auto &[name, stat] : distributions_) {
        os << prefix << "." << name << ".mean " << stat->mean() << "\n";
        os << prefix << "." << name << ".p95 " << stat->percentile(95)
           << "\n";
        os << prefix << "." << name << ".count " << stat->count() << "\n";
    }
    for (const auto *child : children_)
        child->dump(os);
}

void
StatGroup::accept(StatVisitor &visitor) const
{
    visitor.beginGroup(*this);
    for (const auto &[name, stat] : scalars_)
        visitor.visitScalar(*this, name, *stat);
    for (const auto &[name, stat] : averages_)
        visitor.visitAverage(*this, name, *stat);
    for (const auto &[name, stat] : latencies_)
        visitor.visitLatency(*this, name, *stat);
    for (const auto &[name, stat] : distributions_)
        visitor.visitDistribution(*this, name, *stat);
    for (const auto *child : children_)
        child->accept(visitor);
    visitor.endGroup(*this);
}

void
StatGroup::saveStats(snap::ArchiveWriter &ar) const
{
    ar.str(name_);
    ar.u32(static_cast<std::uint32_t>(scalars_.size()));
    for (const auto &[name, stat] : scalars_) {
        ar.str(name);
        ar.u64(stat->value());
    }
    ar.u32(static_cast<std::uint32_t>(averages_.size()));
    for (const auto &[name, stat] : averages_) {
        ar.str(name);
        ar.f64(stat->sum());
        ar.u64(stat->count());
    }
    ar.u32(static_cast<std::uint32_t>(latencies_.size()));
    for (const auto &[name, stat] : latencies_) {
        ar.str(name);
        const auto &samples = stat->rawSamples();
        ar.u64(samples.size());
        for (double s : samples)
            ar.f64(s);
    }
    ar.u32(static_cast<std::uint32_t>(distributions_.size()));
    for (const auto &[name, stat] : distributions_) {
        ar.str(name);
        const auto &buckets = stat->buckets();
        ar.u32(static_cast<std::uint32_t>(buckets.size()));
        for (std::uint64_t b : buckets)
            ar.u64(b);
        ar.u64(stat->count());
        ar.u64(stat->sum());
        ar.u64(stat->max());
    }
    ar.u32(static_cast<std::uint32_t>(children_.size()));
    for (const auto *child : children_)
        child->saveStats(ar);
}

namespace
{

// Restore walks the same canonical order save used; any divergence in
// group or stat name means the rebuilt world's stat tree does not match
// the checkpointed one, which restore must refuse to paper over.
void
verifyName(const char *what, const StatGroup &group,
           const std::string &expected, const std::string &found)
{
    if (expected != found) {
        throw snap::SnapshotError(
            std::string("checkpoint stat tree mismatch at ") +
            group.path() + ": expected " + what + " '" + expected +
            "', found '" + found + "'");
    }
}

void
verifyCount(const char *what, const StatGroup &group, std::size_t expected,
            std::size_t found)
{
    if (expected != found) {
        throw snap::SnapshotError(
            std::string("checkpoint stat tree mismatch at ") +
            group.path() + ": " + what + " count " +
            std::to_string(expected) + " != " + std::to_string(found));
    }
}

} // namespace

void
StatGroup::restoreStats(snap::ArchiveReader &ar)
{
    verifyName("group", *this, ar.str(), name_);

    // The registered pointers are const because normal clients only
    // read; the stats live in the owning components, and restore is the
    // one sanctioned writer through this registry.
    verifyCount("scalar", *this, ar.u32(), scalars_.size());
    for (const auto &[name, stat] : scalars_) {
        verifyName("scalar", *this, ar.str(), name);
        const_cast<Scalar *>(stat)->restoreValue(ar.u64());
    }
    verifyCount("average", *this, ar.u32(), averages_.size());
    for (const auto &[name, stat] : averages_) {
        verifyName("average", *this, ar.str(), name);
        const double sum = ar.f64();
        const std::uint64_t count = ar.u64();
        const_cast<Average *>(stat)->restoreState(sum, count);
    }
    verifyCount("latency", *this, ar.u32(), latencies_.size());
    for (const auto &[name, stat] : latencies_) {
        verifyName("latency", *this, ar.str(), name);
        std::vector<double> samples(ar.u64());
        for (double &s : samples)
            s = ar.f64();
        const_cast<LatencyTracker *>(stat)->restoreSamples(
            std::move(samples));
    }
    verifyCount("distribution", *this, ar.u32(), distributions_.size());
    for (const auto &[name, stat] : distributions_) {
        verifyName("distribution", *this, ar.str(), name);
        std::vector<std::uint64_t> buckets(ar.u32());
        for (std::uint64_t &b : buckets)
            b = ar.u64();
        const std::uint64_t count = ar.u64();
        const std::uint64_t sum = ar.u64();
        const std::uint64_t max = ar.u64();
        const_cast<Distribution *>(stat)->restoreState(std::move(buckets),
                                                       count, sum, max);
    }
    verifyCount("child group", *this, ar.u32(), children_.size());
    for (auto *child : children_)
        child->restoreStats(ar);
}

const Scalar *
StatGroup::findScalar(const std::string &rel_path) const
{
    const auto dot = rel_path.find('.');
    if (dot == std::string::npos) {
        auto it = scalars_.find(rel_path);
        return it == scalars_.end() ? nullptr : it->second;
    }
    const std::string head = rel_path.substr(0, dot);
    const std::string tail = rel_path.substr(dot + 1);
    for (const auto *child : children_) {
        if (child->name_ == head)
            return child->findScalar(tail);
    }
    return nullptr;
}

std::uint64_t
StatGroup::scalar(const std::string &rel_path) const
{
    const Scalar *stat = findScalar(rel_path);
    if (!stat)
        bf_panic("no such stat: ", path(), ".", rel_path);
    return stat->value();
}

bool
StatGroup::hasScalar(const std::string &rel_path) const
{
    return findScalar(rel_path) != nullptr;
}

} // namespace bf::stats
