#include "common/stats.hh"

#include <cmath>
#include <iomanip>

#include "common/logging.hh"

namespace bf::stats
{

void
Histogram::sample(std::uint64_t value)
{
    std::size_t bucket = 0;
    std::uint64_t v = value;
    while (v > 1) {
        v >>= 1;
        ++bucket;
    }
    if (bucket >= buckets_.size())
        buckets_.resize(bucket + 1, 0);
    ++buckets_[bucket];
    ++count_;
    sum_ += static_cast<double>(value);
    max_ = std::max(max_, value);
}

void
Histogram::reset()
{
    buckets_.clear();
    count_ = 0;
    sum_ = 0;
    max_ = 0;
}

double
LatencyTracker::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

void
LatencyTracker::sort() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
LatencyTracker::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    sort();
    bf_assert(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    const auto n = samples_.size();
    auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 *
                                                   static_cast<double>(n)));
    if (rank > 0)
        --rank;
    return samples_[std::min(rank, n - 1)];
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->children_.push_back(this);
}

void
StatGroup::addStat(const std::string &name, const Scalar *stat)
{
    bf_assert(!scalars_.count(name), "duplicate stat ", path(), ".", name);
    scalars_[name] = stat;
}

void
StatGroup::addStat(const std::string &name, const Average *stat)
{
    bf_assert(!averages_.count(name), "duplicate stat ", path(), ".", name);
    averages_[name] = stat;
}

void
StatGroup::addStat(const std::string &name, const LatencyTracker *stat)
{
    bf_assert(!latencies_.count(name), "duplicate stat ", path(), ".", name);
    latencies_[name] = stat;
}

std::string
StatGroup::path() const
{
    if (!parent_)
        return name_;
    return parent_->path() + "." + name_;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix = path();
    for (const auto &[name, stat] : scalars_)
        os << prefix << "." << name << " " << stat->value() << "\n";
    for (const auto &[name, stat] : averages_) {
        os << prefix << "." << name << ".mean " << stat->mean() << "\n";
        os << prefix << "." << name << ".count " << stat->count() << "\n";
    }
    for (const auto &[name, stat] : latencies_) {
        os << prefix << "." << name << ".mean " << stat->mean() << "\n";
        os << prefix << "." << name << ".p95 " << stat->percentile(95)
           << "\n";
        os << prefix << "." << name << ".count " << stat->count() << "\n";
    }
    for (const auto *child : children_)
        child->dump(os);
}

void
StatGroup::accept(StatVisitor &visitor) const
{
    visitor.beginGroup(*this);
    for (const auto &[name, stat] : scalars_)
        visitor.visitScalar(*this, name, *stat);
    for (const auto &[name, stat] : averages_)
        visitor.visitAverage(*this, name, *stat);
    for (const auto &[name, stat] : latencies_)
        visitor.visitLatency(*this, name, *stat);
    for (const auto *child : children_)
        child->accept(visitor);
    visitor.endGroup(*this);
}

const Scalar *
StatGroup::findScalar(const std::string &rel_path) const
{
    const auto dot = rel_path.find('.');
    if (dot == std::string::npos) {
        auto it = scalars_.find(rel_path);
        return it == scalars_.end() ? nullptr : it->second;
    }
    const std::string head = rel_path.substr(0, dot);
    const std::string tail = rel_path.substr(dot + 1);
    for (const auto *child : children_) {
        if (child->name_ == head)
            return child->findScalar(tail);
    }
    return nullptr;
}

std::uint64_t
StatGroup::scalar(const std::string &rel_path) const
{
    const Scalar *stat = findScalar(rel_path);
    if (!stat)
        bf_panic("no such stat: ", path(), ".", rel_path);
    return stat->value();
}

bool
StatGroup::hasScalar(const std::string &rel_path) const
{
    return findScalar(rel_path) != nullptr;
}

} // namespace bf::stats
