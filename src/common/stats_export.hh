/**
 * @file
 * Serializers for the statistics tree (machine-readable export).
 *
 * Two formats, both built on StatGroup::accept / StatVisitor:
 *
 *  - JSON: a nested object per group with fixed sections, so child-group
 *    names can never collide with stat names:
 *
 *      {"scalars": {"hits": 12},
 *       "averages": {"occ": {"mean": 1.5, "sum": 3.0, "count": 2}},
 *       "latencies": {"req": {"mean": ..., "p50": ..., "p95": ...,
 *                             "p99": ..., "count": ...}},
 *       "distributions": {"walk_latency": {"mean": ..., "p50": ...,
 *                             "p95": ..., "p99": ..., "max": ...,
 *                             "sum": ..., "count": ...,
 *                             "buckets": [...]}},
 *       "children": {"core0": { ... }}}
 *
 *  - flat text: one "path.name=value" line per stat (averages and
 *    latency trackers expand into their derived values, mirroring
 *    StatGroup::dump()'s component order).
 *
 * The benches embed the JSON form in their BENCH_<name>.json reports;
 * see README.md ("Reading the stats output") for the full schema.
 */

#ifndef BF_COMMON_STATS_EXPORT_HH
#define BF_COMMON_STATS_EXPORT_HH

#include <ostream>
#include <string>

#include "common/stats.hh"

namespace bf::stats
{

/**
 * Escape a string for inclusion inside JSON double quotes: backslash,
 * quote, and control characters (U+0000..U+001F) per RFC 8259.
 */
std::string jsonEscape(const std::string &raw);

/**
 * Format a double as a valid JSON number. JSON has no NaN/Infinity;
 * those serialize as null (the schema documents this).
 */
std::string jsonNumber(double value);

/** Serialize a stats tree as JSON (no trailing newline). */
void toJson(const StatGroup &root, std::ostream &os);

/** Convenience: toJson into a string. */
std::string toJsonString(const StatGroup &root);

/** Serialize a stats tree as flat "path.name=value" lines. */
void toFlatText(const StatGroup &root, std::ostream &os);

} // namespace bf::stats

#endif // BF_COMMON_STATS_EXPORT_HH
