/**
 * @file
 * A minimal fork/join helper for running independent simulations
 * concurrently.
 *
 * Each `System` is fully self-contained (its own kernel, frame
 * allocator, caches, RNG streams and stat tree), so independent
 * configurations can run on separate OS threads with no synchronization
 * beyond join. The thread-safety contract callers must keep: one System
 * per job, jobs write only to their own result slot, and nothing
 * touches shared mutable state (the only process-global is the logging
 * verbosity flag, which benches set once before spawning workers).
 *
 * Results are deterministic and identical to a serial run: parallelism
 * only changes wall-clock order, never simulated behaviour.
 */

#ifndef BF_COMMON_PARALLEL_HH
#define BF_COMMON_PARALLEL_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace bf
{

/**
 * Run fn(0), fn(1), ... fn(n-1) on up to @p workers threads.
 *
 * Jobs are handed out dynamically (an atomic ticket counter), so a mix
 * of long and short jobs still load-balances. With workers <= 1 the
 * jobs run inline on the calling thread, in index order. An exception
 * escaping @p fn on a worker terminates the process (the simulator
 * reports errors via panic/fatal, which abort anyway).
 */
inline void
runParallel(std::size_t n, unsigned workers,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers > n)
        workers = static_cast<unsigned>(n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    auto drain = [&] {
        for (std::size_t i = next.fetch_add(1); i < n;
             i = next.fetch_add(1)) {
            fn(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(drain);
    drain();
    for (auto &t : pool)
        t.join();
}

/** Default worker count: the hardware concurrency, at least 1. */
inline unsigned
defaultWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace bf

#endif // BF_COMMON_PARALLEL_HH
