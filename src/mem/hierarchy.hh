/**
 * @file
 * The three-level cache hierarchy of the modeled 8-core server (Table I):
 * per-core 32 KB L1 I+D and 256 KB unified L2, one shared 8 MB L3, and a
 * banked DRAM main memory behind it.
 *
 * The shared L3 is where BabelFish's page-table sharing pays off across
 * cores: a page walk by one container leaves pte_t lines that a walk by
 * another container on another core hits (paper Fig. 7).
 */

#ifndef BF_MEM_HIERARCHY_HH
#define BF_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/epoch.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"

namespace bf::mem
{

/** Where a request was finally served from. */
enum class MemLevel : std::uint8_t
{
    L1,
    L2,
    L3,
    Memory,
};

/** Name of a hierarchy level for reports. */
const char *memLevelName(MemLevel level);

/** Outcome of one cache-hierarchy access. */
struct MemAccessResult
{
    Cycles latency = 0;
    MemLevel served_by = MemLevel::Memory;
};

/** Parameters of the whole hierarchy (defaults follow Table I). */
struct HierarchyParams
{
    CacheParams l1i{ "l1i", 32 * 1024, 8, 64, 2, 16 };
    CacheParams l1d{ "l1d", 32 * 1024, 8, 64, 2, 16 };
    CacheParams l2{ "l2", 256 * 1024, 8, 64, 8, 16 };
    CacheParams l3{ "l3", 8 * 1024 * 1024, 16, 64, 32, 128 };
    DramParams dram{};
    bool model_coherence = true; //!< Probe-invalidate peers on writes.
};

/** Per-core L1/L2 plus shared L3 and DRAM. */
class CacheHierarchy
{
  public:
    /**
     * @param params cache and memory geometry.
     * @param num_cores number of cores (private cache pairs).
     * @param parent stat group to register under, may be null.
     */
    CacheHierarchy(const HierarchyParams &params, unsigned num_cores,
                   stats::StatGroup *parent = nullptr);

    /**
     * Perform one access from a core.
     *
     * @param core issuing core index.
     * @param paddr physical byte address.
     * @param type read / write / ifetch (selects L1 I vs D).
     * @param now the core's current cycle (for DRAM queueing).
     * @param start_at_l2 skip the L1 (hardware page-walker requests enter
     *        the hierarchy at the L2, as in the paper's Fig. 7).
     * @return latency and serving level.
     */
    MemAccessResult access(unsigned core, Addr paddr, AccessType type,
                           Cycles now, bool start_at_l2 = false);

    /**
     * Attach a core's bound-phase event log (System wires these in).
     * While the log is active, access() stops at the private levels: an
     * L2 miss charges the deterministic L3 access time, appends an event
     * and returns; coherence probes of write hits are logged likewise.
     * A null or inactive log restores the historical immediate path.
     */
    void
    setEpochLog(unsigned core, core::EpochLog *log)
    {
        epoch_logs_[core] = log;
    }

    /**
     * Weave replay of one deferred L2-miss access against the shared
     * levels, in canonical order. Performs the L3 lookup/fill the bound
     * phase skipped, the DRAM access on an L3 miss, and the write
     * coherence probe.
     * @return latency beyond the bound-phase L3-hit estimate (the DRAM
     *         portion), to be billed to the issuing core.
     */
    Cycles weaveAccess(unsigned core, Addr paddr, AccessType type,
                       Cycles ts);

    /** Weave replay of a logged write-hit coherence probe. */
    void
    weaveProbe(unsigned core, Addr paddr)
    {
        probeInvalidate(core, paddr);
    }

    /** Drop every line in every cache. */
    void flushAll();

    /** Reset statistics of all levels. */
    void resetStats();

    unsigned numCores() const { return num_cores_; }

    /**
     * @{
     * @name Checkpointing
     * Delegates to every level (per-core L1 I/D and L2, then L3 and
     * DRAM). Epoch logs are empty at chunk barriers and the coherence
     * flag is configuration-derived, so neither is serialized.
     */
    void save(snap::ArchiveWriter &ar) const;
    void restore(snap::ArchiveReader &ar);
    /** @} */

    /** Direct access for tests. */
    Cache &l1d(unsigned core) { return *l1d_[core]; }
    Cache &l1i(unsigned core) { return *l1i_[core]; }
    Cache &l2(unsigned core) { return *l2_[core]; }
    Cache &l3() { return *l3_; }
    Dram &dram() { return *dram_; }

  private:
    HierarchyParams params_;
    unsigned num_cores_;
    bool coherence_active_ = false; //!< model_coherence && num_cores_ > 1.
    stats::StatGroup stat_group_;
    std::vector<std::unique_ptr<stats::StatGroup>> core_groups_;
    std::vector<std::unique_ptr<Cache>> l1i_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> l3_;
    std::unique_ptr<Dram> dram_;
    std::vector<core::EpochLog *> epoch_logs_; //!< Per core; may be null.

    void probeInvalidate(unsigned writer_core, Addr paddr);
};

} // namespace bf::mem

#endif // BF_MEM_HIERARCHY_HH
