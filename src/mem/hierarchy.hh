/**
 * @file
 * The three-level cache hierarchy of the modeled 8-core server (Table I):
 * per-core 32 KB L1 I+D and 256 KB unified L2, one shared 8 MB L3, and a
 * banked DRAM main memory behind it.
 *
 * The shared L3 is where BabelFish's page-table sharing pays off across
 * cores: a page walk by one container leaves pte_t lines that a walk by
 * another container on another core hits (paper Fig. 7).
 */

#ifndef BF_MEM_HIERARCHY_HH
#define BF_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/epoch.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"

namespace bf::mem
{

/** Where a request was finally served from. */
enum class MemLevel : std::uint8_t
{
    L1,
    L2,
    L3,
    Memory,
};

/** Name of a hierarchy level for reports. */
const char *memLevelName(MemLevel level);

/** Outcome of one cache-hierarchy access. */
struct MemAccessResult
{
    Cycles latency = 0;
    MemLevel served_by = MemLevel::Memory;
};

/** Parameters of the whole hierarchy (defaults follow Table I). */
struct HierarchyParams
{
    CacheParams l1i{ "l1i", 32 * 1024, 8, 64, 2, 16 };
    CacheParams l1d{ "l1d", 32 * 1024, 8, 64, 2, 16 };
    CacheParams l2{ "l2", 256 * 1024, 8, 64, 8, 16 };
    CacheParams l3{ "l3", 8 * 1024 * 1024, 16, 64, 32, 128 };
    DramParams dram{};
    bool model_coherence = true; //!< Probe-invalidate peers on writes.
};

/** Per-core L1/L2 plus shared L3 and DRAM. */
class CacheHierarchy
{
  public:
    /**
     * @param params cache and memory geometry.
     * @param num_cores number of cores (private cache pairs).
     * @param parent stat group to register under, may be null.
     */
    CacheHierarchy(const HierarchyParams &params, unsigned num_cores,
                   stats::StatGroup *parent = nullptr);

    /**
     * Perform one access from a core.
     *
     * @param core issuing core index.
     * @param paddr physical byte address.
     * @param type read / write / ifetch (selects L1 I vs D).
     * @param now the core's current cycle (for DRAM queueing).
     * @param start_at_l2 skip the L1 (hardware page-walker requests enter
     *        the hierarchy at the L2, as in the paper's Fig. 7).
     * @return latency and serving level.
     */
    MemAccessResult access(unsigned core, Addr paddr, AccessType type,
                           Cycles now, bool start_at_l2 = false);

    /**
     * Attach a core's bound-phase event log (System wires these in).
     * While the log is active, access() stops at the private levels: an
     * L2 miss charges the deterministic L3 access time, appends an event
     * and returns; coherence probes of write hits are logged likewise.
     * A null or inactive log restores the historical immediate path.
     */
    void
    setEpochLog(unsigned core, core::EpochLog *log)
    {
        epoch_logs_[core] = log;
    }

    /**
     * Per-shard scratch state for the weave replay (DESIGN.md §15):
     * stat tallies for the shared levels plus the per-core latency
     * bills the System applies after the commit. Pooled by the System
     * and reset() per chunk.
     */
    struct WeaveScratch
    {
        CacheTally l3;
        DramTally dram;
        std::vector<Cycles> data_extra;          //!< Per core.
        std::vector<Cycles> walk_extra;          //!< Per core.
        std::vector<std::uint64_t> probe_inval;  //!< Per core × 3 (I/D/2).
        /**
         * Per-tenant DRAM-excess bills, parallel to data_extra /
         * walk_extra but keyed by the attribution slot the event
         * carries (core/epoch.hh). Sized by reset()'s num_slots (0
         * when attribution is off — the replay loops skip the lanes).
         */
        std::vector<Cycles> slot_data_extra;
        std::vector<Cycles> slot_walk_extra;

        void
        reset(unsigned num_cores, unsigned num_slots = 0)
        {
            l3 = CacheTally{};
            dram = DramTally{};
            data_extra.assign(num_cores, 0);
            walk_extra.assign(num_cores, 0);
            probe_inval.assign(num_cores * 3u, 0);
            slot_data_extra.assign(num_slots, 0);
            slot_walk_extra.assign(num_slots, 0);
        }
    };

    /**
     * @{
     * @name Weave replay (DESIGN.md §15)
     *
     * The weave drains the canonical stream the merge produced. All
     * entry points share one pre-stamping contract: @p lru_base is the
     * L3's lruClock() at weave start, access i's LRU stamp is
     * lru_base + 1 + i, and after the passes the System calls
     * weaveCommit() which advances the clock by the access count and
     * folds the shard tallies into the stats in fixed shard order —
     * so tags, LRU bytes and stat totals are identical at every shard
     * count, including 1.
     *
     * weaveSerial() is the fused single-thread path (L3 probe+fill and
     * the DRAM billing of a miss in one scan, then the probe drain).
     * The sharded passes split the same work: weaveSharedPass()
     * replays accesses whose L3 set belongs to the shard (filling
     * ws.hit), weaveDramPass() replays misses whose DRAM bank belongs
     * to the shard (reading ws.hit — callers must order it after every
     * shared pass), and weaveProbePass() invalidates peer L1/L2 lines
     * whose sets belong to the shard. Soundness: the three passes touch
     * disjoint simulated state, shards of one pass touch disjoint sets
     * or banks, and per-set/per-bank request order is canonical in
     * every split — DESIGN.md §15 gives the full argument.
     */
    void weaveSerial(const core::WeaveStream &ws, std::uint64_t lru_base,
                     WeaveScratch &sc);
    void weaveSharedPass(core::WeaveStream &ws, unsigned shard,
                         unsigned nshards, std::uint64_t lru_base,
                         WeaveScratch &sc);
    void weaveDramPass(const core::WeaveStream &ws, unsigned shard,
                       unsigned nshards, WeaveScratch &sc);
    void weaveProbePass(const core::WeaveStream &ws, unsigned shard,
                        unsigned nshards, WeaveScratch &sc);

    /** Fold shard scratches into the stats and advance the L3 clock. */
    void weaveCommit(const WeaveScratch *scratch, unsigned nshards,
                     std::uint64_t num_accesses);

    /**
     * Largest power-of-two shard count the geometries support: shards
     * select lines by low line bits, so the count must divide every
     * probed cache's set count (and the L3's). 64 with Table I caches.
     */
    unsigned maxWeaveShards() const;
    /** @} */

    /** Drop every line in every cache. */
    void flushAll();

    /** Reset statistics of all levels. */
    void resetStats();

    unsigned numCores() const { return num_cores_; }

    /** Coherence probes modeled (model_coherence and more than one core). */
    bool coherenceActive() const { return coherence_active_; }

    /**
     * @{
     * @name Checkpointing
     * Delegates to every level (per-core L1 I/D and L2, then L3 and
     * DRAM). Epoch logs are empty at chunk barriers and the coherence
     * flag is configuration-derived, so neither is serialized.
     */
    void save(snap::ArchiveWriter &ar) const;
    void restore(snap::ArchiveReader &ar);
    /** @} */

    /** Direct access for tests. */
    Cache &l1d(unsigned core) { return *l1d_[core]; }
    Cache &l1i(unsigned core) { return *l1i_[core]; }
    Cache &l2(unsigned core) { return *l2_[core]; }
    Cache &l3() { return *l3_; }
    Dram &dram() { return *dram_; }

  private:
    HierarchyParams params_;
    unsigned num_cores_;
    bool coherence_active_ = false; //!< model_coherence && num_cores_ > 1.
    stats::StatGroup stat_group_;
    std::vector<std::unique_ptr<stats::StatGroup>> core_groups_;
    std::vector<std::unique_ptr<Cache>> l1i_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> l3_;
    std::unique_ptr<Dram> dram_;
    std::vector<core::EpochLog *> epoch_logs_; //!< Per core; may be null.

    void probeInvalidate(unsigned writer_core, Addr paddr);
    /** One probe against all peers, counting into shard scratch. */
    void probeShard(Addr paddr, unsigned writer, WeaveScratch &sc);
};

} // namespace bf::mem

#endif // BF_MEM_HIERARCHY_HH
