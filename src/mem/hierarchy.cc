#include "mem/hierarchy.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace bf::mem
{

const char *
memLevelName(MemLevel level)
{
    switch (level) {
      case MemLevel::L1: return "L1";
      case MemLevel::L2: return "L2";
      case MemLevel::L3: return "L3";
      case MemLevel::Memory: return "Memory";
    }
    return "?";
}

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               unsigned num_cores,
                               stats::StatGroup *parent)
    : params_(params), num_cores_(num_cores), stat_group_("caches", parent)
{
    bf_assert(num_cores_ > 0, "hierarchy needs at least one core");
    for (unsigned c = 0; c < num_cores_; ++c) {
        core_groups_.push_back(std::make_unique<stats::StatGroup>(
            "core" + std::to_string(c), &stat_group_));
        l1i_.push_back(std::make_unique<Cache>(params_.l1i,
                                               core_groups_[c].get()));
        l1d_.push_back(std::make_unique<Cache>(params_.l1d,
                                               core_groups_[c].get()));
        l2_.push_back(std::make_unique<Cache>(params_.l2,
                                              core_groups_[c].get()));
    }
    l3_ = std::make_unique<Cache>(params_.l3, &stat_group_);
    dram_ = std::make_unique<Dram>(params_.dram, &stat_group_);
    epoch_logs_.resize(num_cores_, nullptr);
    // With a single core there are no peer caches to probe, so the
    // coherence walk would only burn host time without touching a stat.
    coherence_active_ = params_.model_coherence && num_cores_ > 1;
}

MemAccessResult
CacheHierarchy::access(unsigned core, Addr paddr, AccessType type,
                       Cycles now, bool start_at_l2)
{
    bf_assert(core < num_cores_, "core ", core, " out of range");
    const bool is_write = type == AccessType::Write;

    // Each level uses accessAndFill: one scan of the set answers the
    // lookup and (on a miss) performs the fill the historical
    // access()+insert() pair needed a second scan for. The per-cache
    // operation sequences — and therefore all stats, LRU state and
    // victim choices — are unchanged; only the interleaving across
    // *different* caches moves, which is invisible because each cache
    // owns its own LRU clock and the DRAM timestamp still sees the
    // accumulated L1+L2+L3 latency.
    MemAccessResult result;
    Cache *l1 = isIfetch(type) ? l1i_[core].get() : l1d_[core].get();
    bool dirty = false;

    // Bound phase: only the issuing core's private L1/L2 may be touched.
    // Shared-level work (L3 lookup, DRAM, coherence probes of peers) is
    // appended to the core's event log and replayed by the weave in
    // canonical order — see core/epoch.hh.
    core::EpochLog *log = epoch_logs_[core];
    if (log && !log->active())
        log = nullptr;

    if (!start_at_l2) {
        result.latency += l1->accessCycles();
        if (l1->accessAndFill(paddr, is_write, dirty)) {
            result.served_by = MemLevel::L1;
            if (is_write && coherence_active_) {
                if (log)
                    log->appendProbe(now + result.latency, paddr);
                else
                    probeInvalidate(core, paddr);
            }
            return result;
        }
    }

    Cache *l2 = l2_[core].get();
    result.latency += l2->accessCycles();
    if (l2->accessAndFill(paddr, is_write, dirty)) {
        result.served_by = MemLevel::L2;
    } else if (log) {
        // Deferred: charge the deterministic L3 access time now (the
        // DRAM excess, if any, is billed by the weave) and record the
        // access. served_by is provisional; the weave owns the L3/DRAM
        // stats. The write probe is folded into the weave replay.
        result.latency += l3_->accessCycles();
        result.served_by = MemLevel::L3;
        log->appendAccess(now + result.latency, paddr, type, start_at_l2);
        return result;
    } else {
        result.latency += l3_->accessCycles();
        if (l3_->accessAndFill(paddr, is_write, dirty)) {
            result.served_by = MemLevel::L3;
        } else {
            result.served_by = MemLevel::Memory;
            result.latency += dram_->access(paddr, now + result.latency,
                                            is_write);
        }
    }

    if (is_write && coherence_active_) {
        if (log)
            log->appendProbe(now + result.latency, paddr);
        else
            probeInvalidate(core, paddr);
    }
    return result;
}

void
CacheHierarchy::weaveSerial(const core::WeaveStream &ws,
                            std::uint64_t lru_base, WeaveScratch &sc)
{
    // Fused single-thread drain: the L3 probe+fill and the DRAM billing
    // of a miss happen in one pass over the canonical access stream
    // (the way the bound side fused access+insert in PR 2), then the
    // probe stream drains against the peer caches. Splitting accesses
    // from probes is state-identical to the historical interleaved
    // replay because they touch disjoint levels.
    const std::size_t n = ws.accesses();
    for (std::size_t i = 0; i < n; ++i) {
        const Addr paddr = ws.paddr[i];
        const std::uint8_t flags = ws.flags[i];
        const bool is_write = flags & core::EpochLog::flagWrite;
        if (!l3_->weaveAccessFill(paddr, is_write, lru_base + 1 + i,
                                  sc.l3)) {
            const Cycles extra =
                dram_->weaveAccess(paddr, ws.ts[i], is_write, sc.dram);
            const unsigned core = ws.core[i];
            const std::uint16_t slot = ws.slot[i];
            if (flags & core::EpochLog::flagWalker) {
                sc.walk_extra[core] += extra;
                if (slot < sc.slot_walk_extra.size())
                    sc.slot_walk_extra[slot] += extra;
            } else {
                sc.data_extra[core] += extra;
                if (slot < sc.slot_data_extra.size())
                    sc.slot_data_extra[slot] += extra;
            }
        }
    }
    if (!coherence_active_)
        return;
    const std::size_t np = ws.probes();
    for (std::size_t i = 0; i < np; ++i)
        probeShard(ws.probe_paddr[i], ws.probe_core[i], sc);
}

void
CacheHierarchy::probeShard(Addr paddr, unsigned writer, WeaveScratch &sc)
{
    for (unsigned c = 0; c < num_cores_; ++c) {
        if (c == writer)
            continue;
        if (l1i_[c]->invalidateQuiet(paddr))
            ++sc.probe_inval[c * 3u + 0];
        if (l1d_[c]->invalidateQuiet(paddr))
            ++sc.probe_inval[c * 3u + 1];
        if (l2_[c]->invalidateQuiet(paddr))
            ++sc.probe_inval[c * 3u + 2];
    }
}

void
CacheHierarchy::weaveSharedPass(core::WeaveStream &ws, unsigned shard,
                                unsigned nshards, std::uint64_t lru_base,
                                WeaveScratch &sc)
{
    // Shard selection by low line bits: nshards divides the L3 set
    // count, so accesses to one L3 set always share a shard and the
    // per-set replay order is the canonical order. The hit lane is
    // per-access bytes, so concurrent shards write disjoint memory.
    const std::uint64_t mask = nshards - 1;
    const std::size_t n = ws.accesses();
    for (std::size_t i = 0; i < n; ++i) {
        const Addr paddr = ws.paddr[i];
        if ((lineOf(paddr) & mask) != shard)
            continue;
        const bool is_write = ws.flags[i] & core::EpochLog::flagWrite;
        ws.hit[i] = l3_->weaveAccessFill(paddr, is_write,
                                         lru_base + 1 + i, sc.l3)
                        ? 1
                        : 0;
    }
}

void
CacheHierarchy::weaveDramPass(const core::WeaveStream &ws, unsigned shard,
                              unsigned nshards, WeaveScratch &sc)
{
    // Shard selection by DRAM bank: a bank's row buffer and ready_at
    // evolve from that bank's request subsequence alone, which stays
    // canonical under any bank partition (unlike line-bit shards: the
    // bank index ignores line bits [1, 7), so only a bank partition
    // keeps same-bank requests together at every shard count).
    const std::size_t n = ws.accesses();
    for (std::size_t i = 0; i < n; ++i) {
        if (ws.hit[i])
            continue;
        const Addr paddr = ws.paddr[i];
        if (dram_->bankIndexOf(paddr) % nshards != shard)
            continue;
        const std::uint8_t flags = ws.flags[i];
        const Cycles extra = dram_->weaveAccess(
            paddr, ws.ts[i], flags & core::EpochLog::flagWrite, sc.dram);
        const unsigned core = ws.core[i];
        const std::uint16_t slot = ws.slot[i];
        if (flags & core::EpochLog::flagWalker) {
            sc.walk_extra[core] += extra;
            if (slot < sc.slot_walk_extra.size())
                sc.slot_walk_extra[slot] += extra;
        } else {
            sc.data_extra[core] += extra;
            if (slot < sc.slot_data_extra.size())
                sc.slot_data_extra[slot] += extra;
        }
    }
}

void
CacheHierarchy::weaveProbePass(const core::WeaveStream &ws, unsigned shard,
                               unsigned nshards, WeaveScratch &sc)
{
    if (!coherence_active_)
        return;
    // Probes of one line always share a shard, so presence checks see
    // the same prior invalidates as the serial drain; probes of
    // different lines commute (no LRU bump, no victim choice).
    const std::uint64_t mask = nshards - 1;
    const std::size_t n = ws.probes();
    for (std::size_t i = 0; i < n; ++i) {
        const Addr paddr = ws.probe_paddr[i];
        if ((lineOf(paddr) & mask) != shard)
            continue;
        probeShard(paddr, ws.probe_core[i], sc);
    }
}

void
CacheHierarchy::weaveCommit(const WeaveScratch *scratch, unsigned nshards,
                            std::uint64_t num_accesses)
{
    for (unsigned s = 0; s < nshards; ++s) {
        const WeaveScratch &sc = scratch[s];
        l3_->commitTally(sc.l3);
        dram_->commitTally(sc.dram);
        for (unsigned c = 0; c < num_cores_; ++c) {
            l1i_[c]->invalidations += sc.probe_inval[c * 3u + 0];
            l1d_[c]->invalidations += sc.probe_inval[c * 3u + 1];
            l2_[c]->invalidations += sc.probe_inval[c * 3u + 2];
        }
    }
    // Every access bumped the clock exactly once in the serial replay;
    // the pre-stamped shards reproduce those values, so one batched
    // advance lands the identical (checkpointed) clock.
    l3_->advanceLruClock(num_accesses);
}

unsigned
CacheHierarchy::maxWeaveShards() const
{
    std::uint64_t sets = l3_->params().numSets();
    for (unsigned c = 0; c < num_cores_; ++c) {
        sets = std::min(sets, l1i_[c]->params().numSets());
        sets = std::min(sets, l1d_[c]->params().numSets());
        sets = std::min(sets, l2_[c]->params().numSets());
    }
    // Largest power of two <= the smallest set count (set counts are
    // asserted powers of two, so this is that count itself).
    std::uint64_t shards = 1;
    while (shards * 2 <= sets)
        shards *= 2;
    return static_cast<unsigned>(shards);
}

void
CacheHierarchy::probeInvalidate(unsigned writer_core, Addr paddr)
{
    for (unsigned c = 0; c < num_cores_; ++c) {
        if (c == writer_core)
            continue;
        l1i_[c]->invalidate(paddr);
        l1d_[c]->invalidate(paddr);
        l2_[c]->invalidate(paddr);
    }
}

void
CacheHierarchy::flushAll()
{
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1i_[c]->flush();
        l1d_[c]->flush();
        l2_[c]->flush();
    }
    l3_->flush();
}

void
CacheHierarchy::resetStats()
{
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1i_[c]->resetStats();
        l1d_[c]->resetStats();
        l2_[c]->resetStats();
    }
    l3_->resetStats();
    dram_->resetStats();
}

void
CacheHierarchy::save(snap::ArchiveWriter &ar) const
{
    ar.u32(num_cores_);
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1i_[c]->save(ar);
        l1d_[c]->save(ar);
        l2_[c]->save(ar);
    }
    l3_->save(ar);
    dram_->save(ar);
}

void
CacheHierarchy::restore(snap::ArchiveReader &ar)
{
    if (ar.u32() != num_cores_)
        throw snap::SnapshotError("hierarchy checkpoint core-count mismatch");
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1i_[c]->restore(ar);
        l1d_[c]->restore(ar);
        l2_[c]->restore(ar);
    }
    l3_->restore(ar);
    dram_->restore(ar);
}

} // namespace bf::mem
