#include "mem/hierarchy.hh"

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace bf::mem
{

const char *
memLevelName(MemLevel level)
{
    switch (level) {
      case MemLevel::L1: return "L1";
      case MemLevel::L2: return "L2";
      case MemLevel::L3: return "L3";
      case MemLevel::Memory: return "Memory";
    }
    return "?";
}

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               unsigned num_cores,
                               stats::StatGroup *parent)
    : params_(params), num_cores_(num_cores), stat_group_("caches", parent)
{
    bf_assert(num_cores_ > 0, "hierarchy needs at least one core");
    for (unsigned c = 0; c < num_cores_; ++c) {
        core_groups_.push_back(std::make_unique<stats::StatGroup>(
            "core" + std::to_string(c), &stat_group_));
        l1i_.push_back(std::make_unique<Cache>(params_.l1i,
                                               core_groups_[c].get()));
        l1d_.push_back(std::make_unique<Cache>(params_.l1d,
                                               core_groups_[c].get()));
        l2_.push_back(std::make_unique<Cache>(params_.l2,
                                              core_groups_[c].get()));
    }
    l3_ = std::make_unique<Cache>(params_.l3, &stat_group_);
    dram_ = std::make_unique<Dram>(params_.dram, &stat_group_);
    epoch_logs_.resize(num_cores_, nullptr);
    // With a single core there are no peer caches to probe, so the
    // coherence walk would only burn host time without touching a stat.
    coherence_active_ = params_.model_coherence && num_cores_ > 1;
}

MemAccessResult
CacheHierarchy::access(unsigned core, Addr paddr, AccessType type,
                       Cycles now, bool start_at_l2)
{
    bf_assert(core < num_cores_, "core ", core, " out of range");
    const bool is_write = type == AccessType::Write;

    // Each level uses accessAndFill: one scan of the set answers the
    // lookup and (on a miss) performs the fill the historical
    // access()+insert() pair needed a second scan for. The per-cache
    // operation sequences — and therefore all stats, LRU state and
    // victim choices — are unchanged; only the interleaving across
    // *different* caches moves, which is invisible because each cache
    // owns its own LRU clock and the DRAM timestamp still sees the
    // accumulated L1+L2+L3 latency.
    MemAccessResult result;
    Cache *l1 = isIfetch(type) ? l1i_[core].get() : l1d_[core].get();
    bool dirty = false;

    // Bound phase: only the issuing core's private L1/L2 may be touched.
    // Shared-level work (L3 lookup, DRAM, coherence probes of peers) is
    // appended to the core's event log and replayed by the weave in
    // canonical order — see core/epoch.hh.
    core::EpochLog *log = epoch_logs_[core];
    if (log && !log->active())
        log = nullptr;

    if (!start_at_l2) {
        result.latency += l1->accessCycles();
        if (l1->accessAndFill(paddr, is_write, dirty)) {
            result.served_by = MemLevel::L1;
            if (is_write && coherence_active_) {
                if (log)
                    log->appendProbe(now + result.latency, paddr);
                else
                    probeInvalidate(core, paddr);
            }
            return result;
        }
    }

    Cache *l2 = l2_[core].get();
    result.latency += l2->accessCycles();
    if (l2->accessAndFill(paddr, is_write, dirty)) {
        result.served_by = MemLevel::L2;
    } else if (log) {
        // Deferred: charge the deterministic L3 access time now (the
        // DRAM excess, if any, is billed by the weave) and record the
        // access. served_by is provisional; the weave owns the L3/DRAM
        // stats. The write probe is folded into the weave replay.
        result.latency += l3_->accessCycles();
        result.served_by = MemLevel::L3;
        log->appendAccess(now + result.latency, paddr, type, start_at_l2);
        return result;
    } else {
        result.latency += l3_->accessCycles();
        if (l3_->accessAndFill(paddr, is_write, dirty)) {
            result.served_by = MemLevel::L3;
        } else {
            result.served_by = MemLevel::Memory;
            result.latency += dram_->access(paddr, now + result.latency,
                                            is_write);
        }
    }

    if (is_write && coherence_active_) {
        if (log)
            log->appendProbe(now + result.latency, paddr);
        else
            probeInvalidate(core, paddr);
    }
    return result;
}

Cycles
CacheHierarchy::weaveAccess(unsigned core, Addr paddr, AccessType type,
                            Cycles ts)
{
    const bool is_write = type == AccessType::Write;
    bool dirty = false;
    Cycles extra = 0;
    if (!l3_->accessAndFill(paddr, is_write, dirty))
        extra = dram_->access(paddr, ts, is_write);
    if (is_write && coherence_active_)
        probeInvalidate(core, paddr);
    return extra;
}

void
CacheHierarchy::probeInvalidate(unsigned writer_core, Addr paddr)
{
    for (unsigned c = 0; c < num_cores_; ++c) {
        if (c == writer_core)
            continue;
        l1i_[c]->invalidate(paddr);
        l1d_[c]->invalidate(paddr);
        l2_[c]->invalidate(paddr);
    }
}

void
CacheHierarchy::flushAll()
{
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1i_[c]->flush();
        l1d_[c]->flush();
        l2_[c]->flush();
    }
    l3_->flush();
}

void
CacheHierarchy::resetStats()
{
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1i_[c]->resetStats();
        l1d_[c]->resetStats();
        l2_[c]->resetStats();
    }
    l3_->resetStats();
    dram_->resetStats();
}

void
CacheHierarchy::save(snap::ArchiveWriter &ar) const
{
    ar.u32(num_cores_);
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1i_[c]->save(ar);
        l1d_[c]->save(ar);
        l2_[c]->save(ar);
    }
    l3_->save(ar);
    dram_->save(ar);
}

void
CacheHierarchy::restore(snap::ArchiveReader &ar)
{
    if (ar.u32() != num_cores_)
        throw snap::SnapshotError("hierarchy checkpoint core-count mismatch");
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1i_[c]->restore(ar);
        l1d_[c]->restore(ar);
        l2_[c]->restore(ar);
    }
    l3_->restore(ar);
    dram_->restore(ar);
}

} // namespace bf::mem
