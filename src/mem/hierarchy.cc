#include "mem/hierarchy.hh"

#include "common/logging.hh"

namespace bf::mem
{

const char *
memLevelName(MemLevel level)
{
    switch (level) {
      case MemLevel::L1: return "L1";
      case MemLevel::L2: return "L2";
      case MemLevel::L3: return "L3";
      case MemLevel::Memory: return "Memory";
    }
    return "?";
}

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               unsigned num_cores,
                               stats::StatGroup *parent)
    : params_(params), num_cores_(num_cores), stat_group_("caches", parent)
{
    bf_assert(num_cores_ > 0, "hierarchy needs at least one core");
    for (unsigned c = 0; c < num_cores_; ++c) {
        core_groups_.push_back(std::make_unique<stats::StatGroup>(
            "core" + std::to_string(c), &stat_group_));
        l1i_.push_back(std::make_unique<Cache>(params_.l1i,
                                               core_groups_[c].get()));
        l1d_.push_back(std::make_unique<Cache>(params_.l1d,
                                               core_groups_[c].get()));
        l2_.push_back(std::make_unique<Cache>(params_.l2,
                                              core_groups_[c].get()));
    }
    l3_ = std::make_unique<Cache>(params_.l3, &stat_group_);
    dram_ = std::make_unique<Dram>(params_.dram, &stat_group_);
}

MemAccessResult
CacheHierarchy::access(unsigned core, Addr paddr, AccessType type,
                       Cycles now, bool start_at_l2)
{
    bf_assert(core < num_cores_, "core ", core, " out of range");
    const bool is_write = type == AccessType::Write;

    MemAccessResult result;
    Cache *l1 = isIfetch(type) ? l1i_[core].get() : l1d_[core].get();
    bool dirty = false;

    if (!start_at_l2) {
        result.latency += l1->accessCycles();
        if (l1->access(paddr, is_write)) {
            result.served_by = MemLevel::L1;
            if (is_write && params_.model_coherence)
                probeInvalidate(core, paddr);
            return result;
        }
    }

    Cache *l2 = l2_[core].get();
    result.latency += l2->accessCycles();
    if (l2->access(paddr, is_write)) {
        result.served_by = MemLevel::L2;
        if (!start_at_l2)
            l1->insert(paddr, is_write, dirty);
        if (is_write && params_.model_coherence)
            probeInvalidate(core, paddr);
        return result;
    }

    result.latency += l3_->accessCycles();
    if (l3_->access(paddr, is_write)) {
        result.served_by = MemLevel::L3;
    } else {
        result.served_by = MemLevel::Memory;
        result.latency += dram_->access(paddr, now + result.latency,
                                        is_write);
        l3_->insert(paddr, is_write, dirty);
    }

    l2->insert(paddr, is_write, dirty);
    if (!start_at_l2)
        l1->insert(paddr, is_write, dirty);
    if (is_write && params_.model_coherence)
        probeInvalidate(core, paddr);
    return result;
}

void
CacheHierarchy::probeInvalidate(unsigned writer_core, Addr paddr)
{
    for (unsigned c = 0; c < num_cores_; ++c) {
        if (c == writer_core)
            continue;
        l1i_[c]->invalidate(paddr);
        l1d_[c]->invalidate(paddr);
        l2_[c]->invalidate(paddr);
    }
}

void
CacheHierarchy::flushAll()
{
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1i_[c]->flush();
        l1d_[c]->flush();
        l2_[c]->flush();
    }
    l3_->flush();
}

void
CacheHierarchy::resetStats()
{
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1i_[c]->resetStats();
        l1d_[c]->resetStats();
        l2_[c]->resetStats();
    }
    l3_->resetStats();
    dram_->resetStats();
}

} // namespace bf::mem
