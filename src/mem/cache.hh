/**
 * @file
 * A set-associative, write-back cache tag model with true-LRU replacement.
 *
 * The model is functional over cache-line tags (no data storage) and is
 * shared by the L1 I/D, L2 and L3 levels. Timing is applied by the
 * CacheHierarchy; this class only answers hit/miss and maintains the tags.
 */

#ifndef BF_MEM_CACHE_HH
#define BF_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace bf::mem
{

/** Geometry and bookkeeping parameters of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t size_bytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned line_bytes = 64;
    Cycles access_cycles = 2;       //!< Latency charged on a hit.
    unsigned mshrs = 16;            //!< Outstanding-miss bookkeeping only.

    /** Number of sets implied by the geometry. */
    std::uint64_t
    numSets() const
    {
        return size_bytes / (static_cast<std::uint64_t>(assoc) * line_bytes);
    }
};

/**
 * Externally accumulated cache statistics for weave shards: a shard
 * replays its slice of the canonical stream against the shared cache
 * tallying here, and the single-threaded commit folds the tallies into
 * the stats::Scalar counters in fixed shard order — sums of sums, so
 * the totals are independent of the shard count.
 */
struct CacheTally
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t invalidations = 0;
};

/** Tag-only set-associative cache with LRU replacement. */
class Cache
{
  public:
    /**
     * @param params geometry of this level.
     * @param parent stat group to register under, may be null.
     */
    explicit Cache(const CacheParams &params,
                   stats::StatGroup *parent = nullptr);

    /**
     * Look up a line and update LRU/dirty state.
     *
     * @param line_addr byte address; only the line number is used.
     * @param is_write whether the access dirties the line.
     * @return true on hit.
     */
    bool access(Addr line_addr, bool is_write);

    /**
     * Insert a line, evicting the LRU way of its set if needed.
     *
     * @param line_addr the line to insert.
     * @param is_write whether to insert dirty.
     * @param[out] evicted_dirty true if a dirty victim was written back.
     * @return true if a valid victim was evicted.
     */
    bool insert(Addr line_addr, bool is_write, bool &evicted_dirty);

    /**
     * Combined access-or-fill: one scan of the set answers the lookup
     * AND selects the victim, so a miss does not re-walk the ways the
     * way the historical access()-then-insert() sequence did. Stats,
     * LRU state and the victim choice are identical to access()
     * followed (on a miss) by insert() — the equivalence is pinned by
     * tests/test_perf_fastpath.cc.
     *
     * @param line_addr byte address; only the line number is used.
     * @param is_write whether the access dirties / inserts dirty.
     * @param[out] evicted_dirty true if a miss evicted a dirty victim.
     * @return true on hit.
     */
    bool accessAndFill(Addr line_addr, bool is_write, bool &evicted_dirty);

    /**
     * Weave-phase accessAndFill: identical lookup/victim/dirty
     * semantics, but the touched line's LRU stamp is supplied by the
     * caller and the counters land in @p tally instead of the stats.
     *
     * The weave pre-computes each access's stamp as
     * lruClock() + 1 + its canonical index (every access bumps the
     * clock exactly once, hit or fill), replays shards concurrently —
     * sound because accesses to the same set always share a shard —
     * and then commitTally()s and advanceLruClock()s once. The
     * resulting tag/LRU/dirty bytes and stat totals are exactly those
     * of a serial accessAndFill drain; checkpoints cannot tell the
     * difference.
     *
     * @return true on hit.
     */
    bool weaveAccessFill(Addr line_addr, bool is_write,
                         std::uint64_t lru_stamp, CacheTally &tally);

    /** Invalidate a line if present (coherence or TLB-shootdown path). */
    bool invalidate(Addr line_addr);

    /**
     * invalidate() without the stat bump (weave probe shards count
     * successes in per-shard scratch and commit them in fixed order).
     */
    bool invalidateQuiet(Addr line_addr);

    /** Fold a shard tally into the stats (single-threaded commit). */
    void
    commitTally(const CacheTally &tally)
    {
        hits += tally.hits;
        misses += tally.misses;
        evictions += tally.evictions;
        writebacks += tally.writebacks;
        invalidations += tally.invalidations;
    }

    /** @{ @name LRU clock (weave pre-stamping; see weaveAccessFill) */
    std::uint64_t lruClock() const { return lru_clock_; }
    void advanceLruClock(std::uint64_t n) { lru_clock_ += n; }
    /** @} */

    /** Whether a line is present, with no LRU side effects. */
    bool contains(Addr line_addr) const;

    /** Drop every line (used between experiment phases). */
    void flush();

    /** Latency of a hit at this level. */
    Cycles accessCycles() const { return params_.access_cycles; }

    const CacheParams &params() const { return params_; }

    /** @{ @name Checkpointing (geometry-verified tag/LRU/dirty dump) */
    void save(snap::ArchiveWriter &ar) const;
    void restore(snap::ArchiveReader &ar);
    /** @} */

    /** @{ @name Statistics */
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar evictions;
    stats::Scalar writebacks;
    stats::Scalar invalidations;
    /** @} */

    /** Reset all statistics (tags retained). */
    void resetStats();

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;      //!< Higher = more recently used.
    };

    CacheParams params_;
    std::uint64_t num_sets_;
    std::uint64_t set_mask_;        //!< num_sets_ - 1 (sets are pow2).
    std::vector<Line> lines_;       //!< num_sets_ * assoc, set-major.
    /**
     * SoA shadow tags: key_[i] = tag << 1 | valid, kept in sync with
     * lines_ by every mutating path. The hit scans — by far the
     * hottest loops in the whole simulator — compare one packed word
     * per way instead of striding Line structs; lines_ stays
     * authoritative for LRU/dirty payload and checkpointing.
     */
    std::vector<std::uint64_t> key_;
    std::uint64_t lru_clock_ = 0;
    stats::StatGroup stat_group_;

    static std::uint64_t
    packKey(Addr line_num)
    {
        return (line_num << 1) | 1u;
    }

    void
    syncKey(std::size_t i)
    {
        key_[i] = lines_[i].valid ? packKey(lines_[i].tag) : 0;
    }

    /**
     * Set selection. The constructor asserts num_sets_ is a power of
     * two, so the historical modulo reduces to a mask — no integer
     * divide on the per-access hot path.
     */
    std::uint64_t setIndex(Addr line_num) const { return line_num & set_mask_; }
    const Line *find(Addr line_num) const;
    Line *find(Addr line_num);
};

} // namespace bf::mem

#endif // BF_MEM_CACHE_HH
