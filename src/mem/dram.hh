/**
 * @file
 * DRAMSim2-lite: a main-memory timing model with channels, ranks, banks
 * and open-row buffers.
 *
 * Table I of the paper: 32 GB, 2 channels, 8 ranks/channel, 8 banks/rank,
 * 1 GHz DDR. The model computes a latency for each request from the
 * row-buffer state of the target bank (hit / closed / conflict) plus
 * queueing behind the bank's previous request.
 */

#ifndef BF_MEM_DRAM_HH
#define BF_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace bf::mem
{

/** Organization and timing parameters of main memory. */
struct DramParams
{
    unsigned channels = 2;
    unsigned ranks_per_channel = 8;
    unsigned banks_per_rank = 8;
    std::uint64_t row_bytes = 8 * 1024;

    // Timing in core cycles (2 GHz core, 1 GHz DRAM => 2 core cycles per
    // DRAM cycle). Typical DDR3-2000-ish parameters.
    Cycles t_cas = 28;       //!< Column access (row already open).
    Cycles t_rcd = 28;       //!< Row activate.
    Cycles t_rp = 28;        //!< Precharge (close a conflicting row).
    Cycles t_burst = 8;      //!< Data burst occupancy of the bank.
    Cycles channel_latency = 20; //!< Controller + bus overhead per access.
};

/**
 * Externally accumulated DRAM statistics for weave shards (merged into
 * the stats::Scalar counters by commitTally in fixed shard order).
 */
struct DramTally
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;
    std::uint64_t row_conflicts = 0;
};

/** Multi-bank main-memory timing model with open-page policy. */
class Dram
{
  public:
    /**
     * @param params memory organization.
     * @param parent stat group to register under, may be null.
     */
    explicit Dram(const DramParams &params,
                  stats::StatGroup *parent = nullptr);

    /**
     * Access main memory.
     *
     * @param paddr physical byte address.
     * @param now requester's current cycle (for bank queueing).
     * @param is_write whether the access is a write.
     * @return total latency in cycles including queueing.
     */
    Cycles access(Addr paddr, Cycles now, bool is_write);

    /**
     * access() with the counters in @p tally instead of the stats.
     * A bank's row-buffer and ready_at evolution depends only on the
     * sequence of requests to that bank, so weave shards that partition
     * the canonical stream by bank index replay concurrently and
     * land the exact state a serial drain would — see DESIGN.md §15.
     */
    Cycles weaveAccess(Addr paddr, Cycles now, bool is_write,
                       DramTally &tally);

    /** Fold a shard tally into the stats (single-threaded commit). */
    void
    commitTally(const DramTally &tally)
    {
        reads += tally.reads;
        writes += tally.writes;
        row_hits += tally.row_hits;
        row_misses += tally.row_misses;
        row_conflicts += tally.row_conflicts;
    }

    /** Flat bank index of an address (weave shard selection). */
    unsigned bankIndexOf(Addr paddr) const;

    /** Total banks across channels and ranks. */
    unsigned numBanks() const;

    /** @{ @name Statistics */
    stats::Scalar reads;
    stats::Scalar writes;
    stats::Scalar row_hits;
    stats::Scalar row_misses;    //!< Bank had no open row.
    stats::Scalar row_conflicts; //!< Bank had a different row open.
    /** @} */

    void resetStats();

    const DramParams &params() const { return params_; }

    /** @{ @name Checkpointing (open rows + bank ready times) */
    void save(snap::ArchiveWriter &ar) const;
    void restore(snap::ArchiveReader &ar);
    /** @} */

  private:
    struct Bank
    {
        std::uint64_t open_row = 0;
        bool row_open = false;
        Cycles ready_at = 0;   //!< When the bank can start a new request.
    };

    DramParams params_;
    std::vector<Bank> banks_;  //!< channel-major, then rank, then bank.
    stats::StatGroup stat_group_;

    /** Flat bank index and row id of an address. */
    unsigned decode(Addr paddr, std::uint64_t &row_out) const;
};

} // namespace bf::mem

#endif // BF_MEM_DRAM_HH
