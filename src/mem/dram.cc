#include "mem/dram.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace bf::mem
{

Dram::Dram(const DramParams &params, stats::StatGroup *parent)
    : params_(params), stat_group_("dram", parent)
{
    banks_.resize(numBanks());
    stat_group_.addStat("reads", &reads);
    stat_group_.addStat("writes", &writes);
    stat_group_.addStat("row_hits", &row_hits);
    stat_group_.addStat("row_misses", &row_misses);
    stat_group_.addStat("row_conflicts", &row_conflicts);
}

unsigned
Dram::numBanks() const
{
    return params_.channels * params_.ranks_per_channel *
           params_.banks_per_rank;
}

unsigned
Dram::decode(Addr paddr, std::uint64_t &row_out) const
{
    // Address mapping: lines interleave across channels; within a
    // channel, consecutive lines fill one row of one bank (so streams get
    // row-buffer hits), and successive row-sized chunks interleave across
    // banks, then ranks, for parallelism.
    const Addr line = paddr / cacheLineBytes;
    const unsigned channel = line % params_.channels;
    const std::uint64_t chan_line = line / params_.channels;
    const std::uint64_t lines_per_row =
        params_.row_bytes / cacheLineBytes / params_.channels;
    const std::uint64_t row_chunk = chan_line / lines_per_row;
    const unsigned bank = row_chunk % params_.banks_per_rank;
    const unsigned rank =
        (row_chunk / params_.banks_per_rank) % params_.ranks_per_channel;
    // row_chunk uniquely identifies the open row within its bank.
    row_out = row_chunk;
    return (channel * params_.ranks_per_channel + rank) *
               params_.banks_per_rank +
           bank;
}

unsigned
Dram::bankIndexOf(Addr paddr) const
{
    std::uint64_t row = 0;
    return decode(paddr, row);
}

Cycles
Dram::weaveAccess(Addr paddr, Cycles now, bool is_write, DramTally &tally)
{
    if (is_write)
        ++tally.writes;
    else
        ++tally.reads;

    std::uint64_t row = 0;
    Bank &bank = banks_[decode(paddr, row)];

    const Cycles start = std::max(now, bank.ready_at);
    const Cycles queue = start - now;

    Cycles service = params_.t_cas;
    if (!bank.row_open) {
        ++tally.row_misses;
        service += params_.t_rcd;
    } else if (bank.open_row != row) {
        ++tally.row_conflicts;
        service += params_.t_rp + params_.t_rcd;
    } else {
        ++tally.row_hits;
    }

    bank.row_open = true;
    bank.open_row = row;
    bank.ready_at = start + service + params_.t_burst;

    return queue + service + params_.t_burst + params_.channel_latency;
}

Cycles
Dram::access(Addr paddr, Cycles now, bool is_write)
{
    DramTally tally;
    const Cycles latency = weaveAccess(paddr, now, is_write, tally);
    commitTally(tally);
    return latency;
}

void
Dram::resetStats()
{
    reads.reset();
    writes.reset();
    row_hits.reset();
    row_misses.reset();
    row_conflicts.reset();
}

void
Dram::save(snap::ArchiveWriter &ar) const
{
    ar.u32(static_cast<std::uint32_t>(banks_.size()));
    for (const Bank &bank : banks_) {
        ar.u64(bank.open_row);
        ar.b(bank.row_open);
        ar.u64(bank.ready_at);
    }
}

void
Dram::restore(snap::ArchiveReader &ar)
{
    if (ar.u32() != banks_.size())
        throw snap::SnapshotError("DRAM checkpoint bank-count mismatch");
    for (Bank &bank : banks_) {
        bank.open_row = ar.u64();
        bank.row_open = ar.b();
        bank.ready_at = ar.u64();
    }
}

} // namespace bf::mem
