#include "mem/cache.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace bf::mem
{

Cache::Cache(const CacheParams &params, stats::StatGroup *parent)
    : params_(params), num_sets_(params.numSets()),
      set_mask_(num_sets_ - 1), stat_group_(params.name, parent)
{
    bf_assert(num_sets_ > 0, "cache ", params_.name, " has zero sets");
    bf_assert((num_sets_ & (num_sets_ - 1)) == 0,
              "cache ", params_.name, " set count not a power of two");
    lines_.resize(num_sets_ * params_.assoc);
    key_.resize(num_sets_ * params_.assoc, 0);

    stat_group_.addStat("hits", &hits);
    stat_group_.addStat("misses", &misses);
    stat_group_.addStat("evictions", &evictions);
    stat_group_.addStat("writebacks", &writebacks);
    stat_group_.addStat("invalidations", &invalidations);
}

const Cache::Line *
Cache::find(Addr line_num) const
{
    const std::size_t base = setIndex(line_num) * params_.assoc;
    const std::uint64_t want = packKey(line_num);
    for (unsigned way = 0; way < params_.assoc; ++way) {
        if (key_[base + way] == want)
            return &lines_[base + way];
    }
    return nullptr;
}

Cache::Line *
Cache::find(Addr line_num)
{
    return const_cast<Line *>(std::as_const(*this).find(line_num));
}

bool
Cache::access(Addr line_addr, bool is_write)
{
    const Addr line_num = lineOf(line_addr);
    Line *line = find(line_num);
    if (line) {
        line->lru = ++lru_clock_;
        line->dirty |= is_write;
        ++hits;
        return true;
    }
    ++misses;
    return false;
}

bool
Cache::insert(Addr line_addr, bool is_write, bool &evicted_dirty)
{
    const Addr line_num = lineOf(line_addr);
    const std::uint64_t set = setIndex(line_num);
    Line *base = &lines_[set * params_.assoc];

    Line *victim = &base[0];
    for (unsigned way = 0; way < params_.assoc; ++way) {
        if (!base[way].valid) {
            victim = &base[way];
            break;
        }
        if (base[way].lru < victim->lru)
            victim = &base[way];
    }

    const bool had_victim = victim->valid;
    evicted_dirty = had_victim && victim->dirty;
    if (had_victim) {
        ++evictions;
        if (evicted_dirty)
            ++writebacks;
    }

    victim->tag = line_num;
    victim->valid = true;
    victim->dirty = is_write;
    victim->lru = ++lru_clock_;
    syncKey(static_cast<std::size_t>(victim - lines_.data()));
    return had_victim;
}

bool
Cache::accessAndFill(Addr line_addr, bool is_write, bool &evicted_dirty)
{
    const Addr line_num = lineOf(line_addr);
    const std::size_t base = setIndex(line_num) * params_.assoc;
    const std::uint64_t want = packKey(line_num);
    const unsigned assoc = params_.assoc;

    // Hit scan over the packed shadow tags: the common case touches
    // one or two cache lines of keys and only the matching Line.
    for (unsigned way = 0; way < assoc; ++way) {
        if (key_[base + way] != want)
            continue;
        Line &match = lines_[base + way];
        match.lru = ++lru_clock_;
        match.dirty |= is_write;
        ++hits;
        evicted_dirty = false;
        return true;
    }
    ++misses;

    // Miss: pick the insert() victim — first invalid way if any, else
    // the minimum-LRU way — exactly as the historical one-pass scan.
    Line *set_base = &lines_[base];
    Line *victim = nullptr;
    Line *lru = &set_base[0];
    for (unsigned way = 0; way < assoc; ++way) {
        Line &line = set_base[way];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < lru->lru)
            lru = &line;
    }
    if (!victim)
        victim = lru;

    const bool had_victim = victim->valid;
    evicted_dirty = had_victim && victim->dirty;
    if (had_victim) {
        ++evictions;
        if (evicted_dirty)
            ++writebacks;
    }
    victim->tag = line_num;
    victim->valid = true;
    victim->dirty = is_write;
    victim->lru = ++lru_clock_;
    syncKey(base + static_cast<std::size_t>(victim - set_base));
    return false;
}

bool
Cache::weaveAccessFill(Addr line_addr, bool is_write,
                       std::uint64_t lru_stamp, CacheTally &tally)
{
    const Addr line_num = lineOf(line_addr);
    const std::size_t base = setIndex(line_num) * params_.assoc;
    const std::uint64_t want = packKey(line_num);
    const unsigned assoc = params_.assoc;

    for (unsigned way = 0; way < assoc; ++way) {
        if (key_[base + way] != want)
            continue;
        Line &match = lines_[base + way];
        match.lru = lru_stamp;
        match.dirty |= is_write;
        ++tally.hits;
        return true;
    }
    ++tally.misses;

    Line *set_base = &lines_[base];
    Line *victim = nullptr;
    Line *lru = &set_base[0];
    for (unsigned way = 0; way < assoc; ++way) {
        Line &line = set_base[way];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < lru->lru)
            lru = &line;
    }
    if (!victim)
        victim = lru;

    if (victim->valid) {
        ++tally.evictions;
        if (victim->dirty)
            ++tally.writebacks;
    }
    victim->tag = line_num;
    victim->valid = true;
    victim->dirty = is_write;
    victim->lru = lru_stamp;
    syncKey(base + static_cast<std::size_t>(victim - set_base));
    return false;
}

bool
Cache::invalidate(Addr line_addr)
{
    if (!invalidateQuiet(line_addr))
        return false;
    ++invalidations;
    return true;
}

bool
Cache::invalidateQuiet(Addr line_addr)
{
    Line *line = find(lineOf(line_addr));
    if (!line)
        return false;
    line->valid = false;
    line->dirty = false;
    key_[static_cast<std::size_t>(line - lines_.data())] = 0;
    return true;
}

bool
Cache::contains(Addr line_addr) const
{
    return find(lineOf(line_addr)) != nullptr;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
    std::fill(key_.begin(), key_.end(), 0);
}

void
Cache::resetStats()
{
    hits.reset();
    misses.reset();
    evictions.reset();
    writebacks.reset();
    invalidations.reset();
}

void
Cache::save(snap::ArchiveWriter &ar) const
{
    ar.str(params_.name);
    ar.u64(params_.size_bytes);
    ar.u32(params_.assoc);
    ar.u32(params_.line_bytes);
    ar.u64(lru_clock_);
    for (const Line &line : lines_) {
        ar.u64(line.tag);
        ar.b(line.valid);
        ar.b(line.dirty);
        ar.u64(line.lru);
    }
}

void
Cache::restore(snap::ArchiveReader &ar)
{
    if (ar.str() != params_.name || ar.u64() != params_.size_bytes ||
        ar.u32() != params_.assoc || ar.u32() != params_.line_bytes) {
        throw snap::SnapshotError("cache '" + params_.name +
                                  "' checkpoint geometry mismatch");
    }
    lru_clock_ = ar.u64();
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        Line &line = lines_[i];
        line.tag = ar.u64();
        line.valid = ar.b();
        line.dirty = ar.b();
        line.lru = ar.u64();
        syncKey(i);
    }
}

} // namespace bf::mem
