#include "mem/cache.hh"

#include <utility>

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace bf::mem
{

Cache::Cache(const CacheParams &params, stats::StatGroup *parent)
    : params_(params), num_sets_(params.numSets()),
      set_mask_(num_sets_ - 1), stat_group_(params.name, parent)
{
    bf_assert(num_sets_ > 0, "cache ", params_.name, " has zero sets");
    bf_assert((num_sets_ & (num_sets_ - 1)) == 0,
              "cache ", params_.name, " set count not a power of two");
    lines_.resize(num_sets_ * params_.assoc);

    stat_group_.addStat("hits", &hits);
    stat_group_.addStat("misses", &misses);
    stat_group_.addStat("evictions", &evictions);
    stat_group_.addStat("writebacks", &writebacks);
    stat_group_.addStat("invalidations", &invalidations);
}

const Cache::Line *
Cache::find(Addr line_num) const
{
    const std::uint64_t set = setIndex(line_num);
    const Line *base = &lines_[set * params_.assoc];
    for (unsigned way = 0; way < params_.assoc; ++way) {
        if (base[way].valid && base[way].tag == line_num)
            return &base[way];
    }
    return nullptr;
}

Cache::Line *
Cache::find(Addr line_num)
{
    return const_cast<Line *>(std::as_const(*this).find(line_num));
}

bool
Cache::access(Addr line_addr, bool is_write)
{
    const Addr line_num = lineOf(line_addr);
    Line *line = find(line_num);
    if (line) {
        line->lru = ++lru_clock_;
        line->dirty |= is_write;
        ++hits;
        return true;
    }
    ++misses;
    return false;
}

bool
Cache::insert(Addr line_addr, bool is_write, bool &evicted_dirty)
{
    const Addr line_num = lineOf(line_addr);
    const std::uint64_t set = setIndex(line_num);
    Line *base = &lines_[set * params_.assoc];

    Line *victim = &base[0];
    for (unsigned way = 0; way < params_.assoc; ++way) {
        if (!base[way].valid) {
            victim = &base[way];
            break;
        }
        if (base[way].lru < victim->lru)
            victim = &base[way];
    }

    const bool had_victim = victim->valid;
    evicted_dirty = had_victim && victim->dirty;
    if (had_victim) {
        ++evictions;
        if (evicted_dirty)
            ++writebacks;
    }

    victim->tag = line_num;
    victim->valid = true;
    victim->dirty = is_write;
    victim->lru = ++lru_clock_;
    return had_victim;
}

bool
Cache::accessAndFill(Addr line_addr, bool is_write, bool &evicted_dirty)
{
    const Addr line_num = lineOf(line_addr);
    const std::uint64_t set = setIndex(line_num);
    Line *base = &lines_[set * params_.assoc];

    // One pass answers the lookup and remembers the insert() victim:
    // the first invalid way if any, else the minimum-LRU way.
    Line *match = nullptr;
    Line *invalid = nullptr;
    Line *lru = &base[0];
    for (unsigned way = 0; way < params_.assoc; ++way) {
        Line &line = base[way];
        if (line.valid) {
            if (line.tag == line_num) {
                match = &line;
                break;
            }
            if (line.lru < lru->lru)
                lru = &line;
        } else if (!invalid) {
            invalid = &line;
        }
    }

    if (match) {
        match->lru = ++lru_clock_;
        match->dirty |= is_write;
        ++hits;
        evicted_dirty = false;
        return true;
    }
    ++misses;

    Line *victim = invalid ? invalid : lru;
    const bool had_victim = victim->valid;
    evicted_dirty = had_victim && victim->dirty;
    if (had_victim) {
        ++evictions;
        if (evicted_dirty)
            ++writebacks;
    }
    victim->tag = line_num;
    victim->valid = true;
    victim->dirty = is_write;
    victim->lru = ++lru_clock_;
    return false;
}

bool
Cache::invalidate(Addr line_addr)
{
    Line *line = find(lineOf(line_addr));
    if (!line)
        return false;
    line->valid = false;
    line->dirty = false;
    ++invalidations;
    return true;
}

bool
Cache::contains(Addr line_addr) const
{
    return find(lineOf(line_addr)) != nullptr;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
}

void
Cache::resetStats()
{
    hits.reset();
    misses.reset();
    evictions.reset();
    writebacks.reset();
    invalidations.reset();
}

void
Cache::save(snap::ArchiveWriter &ar) const
{
    ar.str(params_.name);
    ar.u64(params_.size_bytes);
    ar.u32(params_.assoc);
    ar.u32(params_.line_bytes);
    ar.u64(lru_clock_);
    for (const Line &line : lines_) {
        ar.u64(line.tag);
        ar.b(line.valid);
        ar.b(line.dirty);
        ar.u64(line.lru);
    }
}

void
Cache::restore(snap::ArchiveReader &ar)
{
    if (ar.str() != params_.name || ar.u64() != params_.size_bytes ||
        ar.u32() != params_.assoc || ar.u32() != params_.line_bytes) {
        throw snap::SnapshotError("cache '" + params_.name +
                                  "' checkpoint geometry mismatch");
    }
    lru_clock_ = ar.u64();
    for (Line &line : lines_) {
        line.tag = ar.u64();
        line.valid = ar.b();
        line.dirty = ar.b();
        line.lru = ar.u64();
    }
}

} // namespace bf::mem
