#include "tlb/page_walk_cache.hh"

#include "common/logging.hh"
#include "common/snapshot.hh"
#include "vm/paging.hh"

namespace bf::tlb
{

Pwc::Pwc(const PwcParams &params, stats::StatGroup *parent)
    : params_(params), stat_group_(params.name, parent)
{
    bf_assert(params_.entries_per_level % params_.assoc == 0,
              "PWC entries not divisible by assoc");
    num_sets_ = params_.entries_per_level / params_.assoc;
    lines_.resize(params_.levels * params_.entries_per_level);

    stat_group_.addStat("hits", &hits);
    stat_group_.addStat("misses", &misses);
}

unsigned
Pwc::levelIndex(int level) const
{
    // Levels 4..2 map to slices 0..2.
    bf_assert(level >= vm::LevelPmd && level <= vm::LevelPgd,
              "PWC caches only PGD/PUD/PMD, got level ", level);
    return static_cast<unsigned>(vm::LevelPgd - level);
}

Pwc::Line *
Pwc::setBase(int level, Addr entry_paddr)
{
    const unsigned slice = levelIndex(level);
    const unsigned set =
        static_cast<unsigned>((entry_paddr / vm::bytesPerEntry) %
                              num_sets_);
    return &lines_[slice * params_.entries_per_level +
                   set * params_.assoc];
}

bool
Pwc::lookup(int level, Addr entry_paddr)
{
    Line *base = setBase(level, entry_paddr);
    for (unsigned way = 0; way < params_.assoc; ++way) {
        if (base[way].valid && base[way].tag == entry_paddr) {
            base[way].lru = ++lru_clock_;
            ++hits;
            return true;
        }
    }
    ++misses;
    return false;
}

void
Pwc::fill(int level, Addr entry_paddr)
{
    Line *base = setBase(level, entry_paddr);
    Line *victim = &base[0];
    for (unsigned way = 0; way < params_.assoc; ++way) {
        if (!base[way].valid) {
            victim = &base[way];
            break;
        }
        if (base[way].lru < victim->lru)
            victim = &base[way];
    }
    victim->tag = entry_paddr;
    victim->valid = true;
    victim->lru = ++lru_clock_;
}

void
Pwc::invalidate(Addr entry_paddr)
{
    for (auto &line : lines_) {
        if (line.valid && line.tag == entry_paddr)
            line.valid = false;
    }
}

void
Pwc::invalidateAll()
{
    for (auto &line : lines_)
        line.valid = false;
}

void
Pwc::resetStats()
{
    hits.reset();
    misses.reset();
}

void
Pwc::save(snap::ArchiveWriter &ar) const
{
    ar.str(params_.name);
    ar.u32(static_cast<std::uint32_t>(lines_.size()));
    ar.u32(params_.assoc);
    ar.u64(lru_clock_);
    for (const Line &line : lines_) {
        ar.u64(line.tag);
        ar.b(line.valid);
        ar.u64(line.lru);
    }
}

void
Pwc::restore(snap::ArchiveReader &ar)
{
    if (ar.str() != params_.name || ar.u32() != lines_.size() ||
        ar.u32() != params_.assoc) {
        throw snap::SnapshotError("PWC '" + params_.name +
                                  "' checkpoint geometry mismatch");
    }
    lru_clock_ = ar.u64();
    for (Line &line : lines_) {
        line.tag = ar.u64();
        line.valid = ar.b();
        line.lru = ar.u64();
    }
}

} // namespace bf::tlb
