/**
 * @file
 * A set-associative TLB for one page size, supporting both the
 * conventional lookup (VPN + PCID, paper Fig. 1) and the BabelFish lookup
 * of paper Fig. 8 (VPN + CCID with the O-PC checks).
 */

#ifndef BF_TLB_TLB_HH
#define BF_TLB_TLB_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "tlb/tlb_entry.hh"

namespace bf::tlb
{

/** Geometry of one TLB structure. */
struct TlbParams
{
    /**
     * Replacement policy within a set. Lru is the recorded-hardware
     * default; Fifo never promotes on hit (fill-order eviction); Random
     * picks a victim from a deterministic per-structure xorshift stream
     * so runs stay reproducible.
     */
    enum class Policy : std::uint8_t { Lru = 0, Fifo = 1, Random = 2 };

    std::string name = "tlb";
    unsigned entries = 64;
    unsigned assoc = 4;      //!< 0 or >= entries => fully associative.
    PageSize page_size = PageSize::Size4K;
    Cycles access_cycles = 1;
    /**
     * Extra cycles when the PC bitmask must be consulted on a lookup
     * (the 12- vs 10-cycle L2 TLB access times of Table I).
     */
    Cycles bitmask_extra_cycles = 2;
    Policy policy = Policy::Lru;
};

/** Stable lower-case policy name ("lru", "fifo", "random"). */
const char *policyName(TlbParams::Policy policy);

/** Result of a TLB lookup. */
struct TlbLookup
{
    const TlbEntry *entry = nullptr; //!< nullptr on miss.
    bool hit() const { return entry != nullptr; }
    /** The PC bitmask was consulted (charges the long access time). */
    bool bitmask_checked = false;
    /**
     * Hit on an entry filled by a different process — the paper's
     * "Shared Hit" metric (Fig. 10b).
     */
    bool shared_hit = false;
};

/** One set-associative TLB structure. */
class Tlb
{
  public:
    /**
     * @param params geometry.
     * @param parent stat group to register under, may be null.
     */
    explicit Tlb(const TlbParams &params,
                 stats::StatGroup *parent = nullptr);

    /**
     * Conventional lookup: VPN and PCID must match (paper §II-B).
     * Updates LRU and hit/miss statistics.
     */
    TlbLookup lookupConventional(Vpn vpn, Pcid pcid);

    /**
     * BabelFish lookup (paper Fig. 8). All ways with a matching VPN and
     * CCID are candidates:
     *  - Ownership set: usable only on a PCID match.
     *  - Ownership clear: usable unless ORPC is set and the requesting
     *    process' bit in the PC bitmask is set (it privatized the page's
     *    region and must use its own owned entry instead).
     *
     * @param process_bit the bit index the process owns in the region's
     *        PC bitmask, or -1 when it never privatized there.
     */
    TlbLookup lookupBabelFish(Vpn vpn, Ccid ccid, Pcid pcid,
                              int process_bit);

    /**
     * Insert a translation, evicting LRU within the set.
     *
     * @param shared_dedup BabelFish semantics for shared (Ownership-
     *        clear) entries: one entry per {VPN, CCID} regardless of the
     *        filling PCID, so refills by different group members coalesce
     *        instead of replicating. Conventional fills keep per-PCID
     *        entries.
     * @param evicted when non-null, receives the valid entry this fill
     *        displaced (entry-capacity backends spill it elsewhere);
     *        left untouched when the fill replaced an invalid way or
     *        refreshed the same identity.
     * @return true when a valid, different-identity entry was evicted
     *        (i.e. @p evicted was written).
     */
    bool fill(const TlbEntry &entry, bool shared_dedup = false,
              TlbEntry *evicted = nullptr);

    /** @{ @name Invalidation */
    /** Drop the (pcid, vpn) entry if present. */
    void invalidatePage(Pcid pcid, Vpn vpn);
    /** Drop shared (Ownership-clear) entries of a CCID in a VPN range. */
    void invalidateSharedRange(Ccid ccid, Vpn first, std::uint64_t count);
    /** Drop every entry of a PCID. */
    void invalidatePcid(Pcid pcid);
    /** Drop everything. */
    void invalidateAll();
    /** @} */

    /**
     * Return the structure to its post-construction state: all entries
     * invalid, LRU clock and replacement RNG reseeded. Unlike
     * invalidateAll() this does not count invalidations — it is for
     * standalone reuse (the replay engine), not a modeled shootdown.
     * Statistics are left untouched; pair with resetStats() if needed.
     */
    void reset();

    /** Probe without stats/LRU side effects (tests). */
    const TlbEntry *probe(Vpn vpn, Pcid pcid) const;

    /**
     * @{
     * @name L0 inline-cache stat replay (see core::Mmu)
     * The Mmu's L0 front cache short-circuits a lookup it has proven
     * (by re-validating the live entry) would hit this structure. These
     * replay exactly the side effects the bypassed scan would have had:
     * the LRU touch under the Lru policy, and the hit/miss counters.
     */
    void
    recordL0Hit(TlbEntry *entry, bool shared)
    {
        if (params_.policy == TlbParams::Policy::Lru)
            entry->lru = ++lru_clock_;
        ++hits;
        if (shared)
            ++shared_hits;
    }

    void recordL0Miss() { ++misses; }
    /** @} */

    /**
     * Number of valid entries. O(1): a counter maintained by fill and
     * the invalidate paths; debug builds cross-check it against a full
     * scan.
     */
    unsigned validCount() const;

    const TlbParams &params() const { return params_; }

    /**
     * @{
     * @name Checkpointing
     * Full content dump: every way of every set with all tags, O-PC
     * state and LRU stamps, plus the LRU clock. restore() verifies the
     * geometry fingerprint first and throws snap::SnapshotError on
     * mismatch. Stats ride the stats tree, not this path.
     */
    void save(snap::ArchiveWriter &ar) const;
    void restore(snap::ArchiveReader &ar);
    /** @} */

    /** @{ @name Statistics */
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar shared_hits;      //!< Hits on entries filled by others.
    stats::Scalar bitmask_checks;   //!< Lookups paying the long access.
    stats::Scalar fills;
    stats::Scalar invalidations;
    /** @} */

    void resetStats();

  private:
    TlbParams params_;
    unsigned num_sets_;
    std::uint64_t set_mask_ = 0;    //!< num_sets_ - 1 when pow2.
    bool sets_pow2_ = false;
    unsigned valid_count_ = 0;
    std::vector<TlbEntry> entries_; //!< set-major.

    /**
     * @{
     * @name SoA shadow keys
     * One packed word per way, kept in sync with entries_ by every
     * mutating path. Lookup and invalidation scans — above all the
     * full-structure range shootdowns, which dominate host time —
     * touch these dense arrays instead of striding 64-byte TlbEntry
     * structs. entries_ stays authoritative (probe, save, payload).
     */
    /** key_[i] = vpn << 2 | owned << 1 | valid (0 when invalid). */
    std::vector<std::uint64_t> key_;
    /** id_[i] = pcid << 16 | ccid. */
    std::vector<std::uint32_t> id_;
    /** @} */

    /**
     * Occupancy filter for range shootdowns: per CCID hash bucket, the
     * number of valid shared (Ownership-clear) entries plus a
     * conservative VPN interval around them. Broadcast shootdowns for
     * a CCID this structure holds nothing for — the overwhelmingly
     * common case on remote cores — exit in O(1). The interval only
     * widens on fill and snaps back when the bucket empties, so the
     * test can only ever be conservative.
     */
    struct CcidBucket
    {
        std::uint32_t count = 0;
        Vpn vpn_min = ~0ull;
        Vpn vpn_max = 0;
    };
    std::array<CcidBucket, 64> shared_buckets_{};

    std::uint64_t lru_clock_ = 0;
    std::uint64_t rng_state_ = 0;   //!< Random-policy xorshift state.

    stats::StatGroup stat_group_;

    static std::uint64_t
    packKey(Vpn vpn, bool owned)
    {
        return (vpn << 2) | (owned ? 2u : 0u) | 1u;
    }

    CcidBucket &bucket(Ccid ccid) { return shared_buckets_[ccid & 63u]; }

    void
    bucketAdd(Ccid ccid, Vpn vpn)
    {
        CcidBucket &b = bucket(ccid);
        ++b.count;
        if (vpn < b.vpn_min)
            b.vpn_min = vpn;
        if (vpn > b.vpn_max)
            b.vpn_max = vpn;
    }

    void
    bucketRemove(Ccid ccid)
    {
        CcidBucket &b = bucket(ccid);
        --b.count;
        if (b.count == 0) {
            b.vpn_min = ~0ull;
            b.vpn_max = 0;
        }
    }

    /** Write the shadow key/id words for entries_[i]. */
    void
    syncKeys(std::size_t i)
    {
        const TlbEntry &e = entries_[i];
        key_[i] = e.valid ? packKey(e.vpn, e.owned) : 0;
        id_[i] = (static_cast<std::uint32_t>(e.pcid) << 16) | e.ccid;
    }

    /** Rebuild every shadow key and occupancy bucket from entries_. */
    void rebuildShadow();

    /**
     * Set selection. Unlike the caches, a TLB's set count is not
     * guaranteed to be a power of two (entries/assoc is arbitrary), so
     * the constructor precomputes whether the modulo reduces to a mask
     * and this helper — shared by the lookup, fill, invalidate and
     * probe paths — picks the divide-free form when it can.
     */
    unsigned
    setIndex(Vpn vpn) const
    {
        return sets_pow2_ ? static_cast<unsigned>(vpn & set_mask_)
                          : static_cast<unsigned>(vpn % num_sets_);
    }

    TlbEntry *setBase(Vpn vpn) { return &entries_[setIndex(vpn) *
                                                  params_.assoc]; }
    const TlbEntry *
    setBase(Vpn vpn) const
    {
        return &entries_[setIndex(vpn) * params_.assoc];
    }

    /** Full-scan recount, for the debug cross-check of valid_count_. */
    unsigned recountValid() const;

    /** Deterministic per-structure seed for the Random policy. */
    std::uint64_t policySeed() const;

    /** Advance the xorshift64 stream and return the new state. */
    std::uint64_t nextRand();
};

} // namespace bf::tlb

#endif // BF_TLB_TLB_HH
