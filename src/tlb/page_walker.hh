/**
 * @file
 * The hardware page-table walker.
 *
 * Walks the kernel-maintained x86-64 tables on a TLB miss, issuing one
 * cache-hierarchy request per level (entering at the L2 cache, paper
 * Fig. 7) unless the Page Walk Cache supplies the upper-level entry. On
 * reaching the leaf it assembles the TLB fill, including the BabelFish
 * O-PC information: Ownership and ORPC come from the entry that points to
 * the leaf table, and when ORPC demands it the PC bitmask is fetched from
 * the MaskPage in parallel with the pte_t (paper Appendix).
 */

#ifndef BF_TLB_PAGE_WALKER_HH
#define BF_TLB_PAGE_WALKER_HH

#include "common/stats.hh"
#include "common/trace/trace.hh"
#include "common/types.hh"
#include "mem/hierarchy.hh"
#include "tlb/page_walk_cache.hh"
#include "tlb/tlb_entry.hh"
#include "vm/kernel.hh"

namespace bf::tlb
{

/** How a walk ended. */
enum class WalkStatus : std::uint8_t
{
    Ok,         //!< Translation found; entry template valid.
    NotPresent, //!< Some level had no present entry: page fault.
    CowWrite,   //!< Write to a present CoW page: CoW page fault.
    Protection, //!< Present but the access violates permissions.
};

/** Result of one page walk. */
struct WalkResult
{
    WalkStatus status = WalkStatus::NotPresent;
    Cycles cycles = 0;
    /** TLB fill template (PCID/CCID stamped by the MMU). Valid on Ok. */
    TlbEntry fill{};
};

/** Per-core hardware page walker. */
class PageWalker
{
  public:
    /**
     * @param core_id issuing core (selects private caches).
     * @param hierarchy the cache hierarchy walk requests go through.
     * @param kernel owner of the page tables and MaskPages.
     * @param pwc this core's page walk cache.
     * @param babelfish whether to gather O-PC information.
     */
    PageWalker(unsigned core_id, mem::CacheHierarchy &hierarchy,
               vm::Kernel &kernel, Pwc &pwc, bool babelfish,
               stats::StatGroup *parent = nullptr);

    /**
     * Walk the tables for a canonical VA.
     * @param now the core's current cycle.
     */
    WalkResult walk(vm::Process &proc, Addr canonical_va, AccessType type,
                    Cycles now);

    /** Attach the run's event tracer (the MMU wires it; null detaches). */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /** @{ @name Statistics */
    stats::Scalar walks;
    stats::Scalar walk_cycles;
    stats::Scalar mem_steps;      //!< Walk steps served by the hierarchy.
    stats::Scalar pwc_steps;      //!< Walk steps served by the PWC.
    stats::Scalar mask_fetches;   //!< PC bitmask loads from MaskPages.
    /** Per-walk latency in cycles, across all walk outcomes. */
    stats::Distribution walk_latency;
    /** @} */

    void resetStats();

  private:
    unsigned core_id_;
    mem::CacheHierarchy &hierarchy_;
    vm::Kernel &kernel_;
    Pwc &pwc_;
    bool babelfish_;
    stats::StatGroup stat_group_;
    trace::Tracer *tracer_ = nullptr;
};

} // namespace bf::tlb

#endif // BF_TLB_PAGE_WALKER_HH
