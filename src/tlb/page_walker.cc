#include "tlb/page_walker.hh"

#include <algorithm>

#include "common/logging.hh"
#include "vm/page_table.hh"
#include "vm/paging.hh"

namespace bf::tlb
{

PageWalker::PageWalker(unsigned core_id, mem::CacheHierarchy &hierarchy,
                       vm::Kernel &kernel, Pwc &pwc, bool babelfish,
                       stats::StatGroup *parent)
    : core_id_(core_id), hierarchy_(hierarchy), kernel_(kernel), pwc_(pwc),
      babelfish_(babelfish), stat_group_("walker", parent)
{
    stat_group_.addStat("walks", &walks);
    stat_group_.addStat("walk_cycles", &walk_cycles);
    stat_group_.addStat("mem_steps", &mem_steps);
    stat_group_.addStat("pwc_steps", &pwc_steps);
    stat_group_.addStat("mask_fetches", &mask_fetches);
    stat_group_.addStat("walk_latency", &walk_latency);
}

WalkResult
PageWalker::walk(vm::Process &proc, Addr canonical_va, AccessType type,
                 Cycles now)
{
    using namespace vm;

    ++walks;
    WalkResult result;
    const bool is_write = type == AccessType::Write;

    if (tracer_)
        tracer_->record(core_id_, trace::EventType::WalkStart, now,
                        proc.ccid(), proc.pid(), canonical_va);

    // Every exit books the same latency stats (sampled whether or not
    // tracing is on) and stamps the WalkEnd event at the completion time.
    auto finish = [&]() -> WalkResult & {
        walk_cycles += result.cycles;
        walk_latency.sample(result.cycles);
        if (tracer_)
            tracer_->record(core_id_, trace::EventType::WalkEnd,
                            now + result.cycles, proc.ccid(), proc.pid(),
                            canonical_va, result.cycles,
                            static_cast<std::uint8_t>(result.status));
        return result;
    };

    PageTablePage *table = proc.pgd();
    bool upper_owned = false;
    bool upper_orpc = false;
    Cycles leaf_fetch_cycles = 0;

    for (int level = LevelPgd; level >= LevelPte; --level) {
        bf_assert(table->level() == level, "walk level mismatch");
        // Snapshot the entry: group-shared tables are walked by several
        // cores at once during bound phases, and a sibling walker may be
        // ORing A/D bits into this very slot (see Entry::load).
        Entry &slot = table->entryFor(canonical_va);
        const Entry entry = slot.load();
        const Addr entry_paddr = table->entryPaddrFor(canonical_va);

        // Upper levels consult the PWC; the final pte_t never does.
        if (level >= LevelPmd && pwc_.lookup(level, entry_paddr)) {
            result.cycles += pwc_.accessCycles();
            ++pwc_steps;
            if (tracer_)
                tracer_->record(core_id_, trace::EventType::PwcHit,
                                now + result.cycles, proc.ccid(),
                                proc.pid(), canonical_va,
                                trace::packWalkStep(level, entry_paddr));
        } else {
            const auto mem = hierarchy_.access(core_id_, entry_paddr,
                                               AccessType::Read,
                                               now + result.cycles,
                                               /*start_at_l2=*/true);
            result.cycles += mem.latency;
            leaf_fetch_cycles = mem.latency;
            ++mem_steps;
            if (tracer_)
                tracer_->record(core_id_, trace::EventType::WalkStep,
                                now + result.cycles, proc.ccid(),
                                proc.pid(), canonical_va,
                                trace::packWalkStep(level, entry_paddr),
                                static_cast<std::uint8_t>(mem.served_by));
            if (level >= LevelPmd)
                pwc_.fill(level, entry_paddr);
        }

        if (!entry.present()) {
            result.status = WalkStatus::NotPresent;
            return finish();
        }

        const bool is_leaf = level == LevelPte || entry.huge();
        if (!is_leaf) {
            // Remember the O-PC bits of the entry that will point at the
            // leaf table (paper: bits 10 and 9 of pmd_t).
            upper_owned = entry.owned();
            upper_orpc = entry.orpc();
            table = kernel_.tableByFrame(entry.frame());
            bf_assert(table, "walk: dangling table frame");
            continue;
        }

        // Leaf reached: permission checks.
        if (is_write && !entry.writable()) {
            if (entry.cow()) {
                result.status = WalkStatus::CowWrite;
            } else {
                result.status = WalkStatus::Protection;
            }
            return finish();
        }
        if (type == AccessType::Ifetch && entry.noExec()) {
            result.status = WalkStatus::Protection;
            return finish();
        }

        // Hardware A/D update (atomic: idempotent under concurrent walks).
        slot.fetchOr(is_write ? bits::accessed | bits::dirty
                              : bits::accessed);

        const PageSize size = entry.huge()
                                  ? leafPageSize(level)
                                  : PageSize::Size4K;

        result.status = WalkStatus::Ok;
        result.fill.valid = true;
        result.fill.vpn = canonical_va >> pageShift(size);
        result.fill.ppn = entry.frame() >>
                          (pageShift(size) - basePageShift);
        result.fill.size = size;
        result.fill.writable = entry.writable();
        result.fill.no_exec = entry.noExec();
        result.fill.cow = entry.cow();

        if (babelfish_) {
            // For a leaf inside a table, O/ORPC come from the pointer
            // entry above; for a huge leaf they sit on the leaf itself
            // when it lives in a privately owned table.
            const bool owned = level == LevelPte
                                   ? upper_owned
                                   : (upper_owned || entry.owned());
            const bool orpc = upper_orpc;
            result.fill.owned = owned;
            result.fill.orpc = !owned && orpc;
            result.fill.pc_bitmask = 0;
            if (!owned && orpc) {
                // Fetch the PC bitmask from the MaskPage, in parallel
                // with the pte_t request.
                MaskPage *mask = kernel_.maskFor(proc.ccid(),
                                                 canonical_va);
                if (mask) {
                    const unsigned index =
                        tableIndex(canonical_va, table->level() + 1);
                    const auto mem = hierarchy_.access(
                        core_id_, mask->bitmaskPaddr(index),
                        AccessType::Read, now + result.cycles,
                        /*start_at_l2=*/true);
                    // Parallel with the leaf fetch: only the excess
                    // latency is exposed.
                    result.cycles += mem.latency > leaf_fetch_cycles
                                         ? mem.latency - leaf_fetch_cycles
                                         : 0;
                    result.fill.pc_bitmask = mask->bitmask(index);
                    ++mask_fetches;
                }
            }
        }

        return finish();
    }

    bf_panic("page walk fell through all levels");
}

void
PageWalker::resetStats()
{
    walks.reset();
    walk_cycles.reset();
    mem_steps.reset();
    pwc_steps.reset();
    mask_fetches.reset();
    walk_latency.reset();
}

} // namespace bf::tlb
