/**
 * @file
 * The per-core Page Walk Cache (PWC).
 *
 * Caches recently used entries of the first three tables of the walk
 * (PGD, PUD, PMD — paper §II-B). Entries are tagged with the physical
 * address of the page-table entry they cache, so BabelFish's shared
 * tables naturally let one process reuse PWC state another process of the
 * same core loaded, while per-process baseline tables never alias.
 */

#ifndef BF_TLB_PAGE_WALK_CACHE_HH
#define BF_TLB_PAGE_WALK_CACHE_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace bf::tlb
{

/** Geometry of one PWC level (Table I: 16 entries/level, 4-way). */
struct PwcParams
{
    std::string name = "pwc";
    unsigned entries_per_level = 16;
    unsigned assoc = 4;
    Cycles access_cycles = 1;
    unsigned levels = 3; //!< PGD, PUD, PMD.
};

/** Per-core translation cache for upper page-table levels. */
class Pwc
{
  public:
    explicit Pwc(const PwcParams &params,
                 stats::StatGroup *parent = nullptr);

    /**
     * Look up the cached pte for a walk step.
     * @param level walk level (LevelPgd=4 down to LevelPmd=2).
     * @param entry_paddr physical address of the page-table entry.
     * @return true on hit.
     */
    bool lookup(int level, Addr entry_paddr);

    /** Insert after a walk step that missed. */
    void fill(int level, Addr entry_paddr);

    /** Drop a cached entry if present (kernel updated the table). */
    void invalidate(Addr entry_paddr);

    /** Drop everything. */
    void invalidateAll();

    /**
     * Return the structure to its post-construction state (all lines
     * invalid, LRU clock zeroed). For standalone reuse (the replay
     * engine); statistics are left untouched.
     */
    void
    reset()
    {
        for (Line &line : lines_)
            line = Line{};
        lru_clock_ = 0;
    }

    Cycles accessCycles() const { return params_.access_cycles; }

    const PwcParams &params() const { return params_; }

    /** @{ @name Checkpointing (geometry-verified full content dump) */
    void save(snap::ArchiveWriter &ar) const;
    void restore(snap::ArchiveReader &ar);
    /** @} */

    /** @{ @name Statistics */
    stats::Scalar hits;
    stats::Scalar misses;
    /** @} */

    void resetStats();

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lru = 0;
    };

    PwcParams params_;
    unsigned num_sets_;
    std::vector<Line> lines_; //!< level-major, then set, then way.
    std::uint64_t lru_clock_ = 0;
    stats::StatGroup stat_group_;

    Line *setBase(int level, Addr entry_paddr);
    unsigned levelIndex(int level) const;
};

} // namespace bf::tlb

#endif // BF_TLB_PAGE_WALK_CACHE_HH
