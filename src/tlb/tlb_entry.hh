/**
 * @file
 * One TLB entry, carrying both the conventional fields (paper Fig. 1) and
 * the BabelFish extensions (Fig. 3): the CCID tag and the O-PC field
 * (Ownership bit, ORPC bit, 32-bit PrivateCopy bitmask snapshot).
 */

#ifndef BF_TLB_TLB_ENTRY_HH
#define BF_TLB_TLB_ENTRY_HH

#include <cstdint>

#include "common/types.hh"

namespace bf::tlb
{

/** One TLB entry. */
struct TlbEntry
{
    bool valid = false;
    Vpn vpn = 0;
    Ppn ppn = 0;
    PageSize size = PageSize::Size4K;

    /** @{ @name Tags */
    Pcid pcid = 0;
    Ccid ccid = invalidCcid;
    /** @} */

    /** @{ @name Permission flags */
    bool writable = false;
    bool user = true;
    bool no_exec = false;
    bool cow = false;    //!< Write hits declare a CoW page fault (Fig. 8).
    /** @} */

    /**
     * @{
     * @name O-PC field (BabelFish)
     * 'owned' is the Ownership bit: set means the entry is private and a
     * hit additionally requires a PCID match. 'orpc' is the OR of the PC
     * bitmask. 'pc_bitmask' is the snapshot loaded from the MaskPage at
     * fill time; it may go stale, which is safe by construction (paper
     * §III-A): stale-shared translations are identical for reads, and
     * writes always re-fault.
     */
    bool owned = false;
    bool orpc = false;
    std::uint32_t pc_bitmask = 0;
    /** @} */

    /** PCID of the process that filled the entry (shared-hit statistic). */
    Pcid fill_pcid = 0;

    /** LRU timestamp maintained by the Tlb. */
    std::uint64_t lru = 0;
};

} // namespace bf::tlb

#endif // BF_TLB_TLB_ENTRY_HH
