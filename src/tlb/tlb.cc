#include "tlb/tlb.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace bf::tlb
{

const char *
policyName(TlbParams::Policy policy)
{
    switch (policy) {
      case TlbParams::Policy::Lru: return "lru";
      case TlbParams::Policy::Fifo: return "fifo";
      case TlbParams::Policy::Random: return "random";
    }
    return "?";
}

std::uint64_t
Tlb::policySeed() const
{
    // FNV-1a over the structure name: per-structure distinct, but
    // identical across runs and hosts.
    std::uint64_t h = 1469598103934665603ull;
    for (char c : params_.name) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h | 1; // xorshift64 must not start at 0
}

std::uint64_t
Tlb::nextRand()
{
    std::uint64_t x = rng_state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rng_state_ = x;
    return x;
}

Tlb::Tlb(const TlbParams &params, stats::StatGroup *parent)
    : params_(params), stat_group_(params.name, parent)
{
    rng_state_ = policySeed();
    if (params_.assoc == 0 || params_.assoc >= params_.entries)
        params_.assoc = params_.entries; // fully associative
    bf_assert(params_.entries % params_.assoc == 0,
              "TLB ", params_.name, ": entries not divisible by assoc");
    num_sets_ = params_.entries / params_.assoc;
    sets_pow2_ = (num_sets_ & (num_sets_ - 1)) == 0;
    set_mask_ = num_sets_ - 1;
    entries_.resize(params_.entries);
    key_.resize(params_.entries, 0);
    id_.resize(params_.entries, 0);

    stat_group_.addStat("hits", &hits);
    stat_group_.addStat("misses", &misses);
    stat_group_.addStat("shared_hits", &shared_hits);
    stat_group_.addStat("bitmask_checks", &bitmask_checks);
    stat_group_.addStat("fills", &fills);
    stat_group_.addStat("invalidations", &invalidations);
}

TlbLookup
Tlb::lookupConventional(Vpn vpn, Pcid pcid)
{
    TlbLookup result;
    const std::size_t base = setIndex(vpn) * params_.assoc;
    // Shadow-key scan: valid + VPN in one compare (the owned bit is
    // masked off — conventional lookups ignore it), PCID from the id
    // word. The mismatching ways never touch the entry structs.
    const std::uint64_t want = packKey(vpn, true);
    const unsigned assoc = params_.assoc;
    for (unsigned way = 0; way < assoc; ++way) {
        const std::size_t i = base + way;
        if ((key_[i] | 2u) != want || (id_[i] >> 16) != pcid)
            continue;
        TlbEntry &entry = entries_[i];
        if (params_.policy == TlbParams::Policy::Lru)
            entry.lru = ++lru_clock_;
        result.entry = &entry;
        result.shared_hit = entry.fill_pcid != pcid;
        ++hits;
        if (result.shared_hit)
            ++shared_hits;
        return result;
    }
    ++misses;
    return result;
}

TlbLookup
Tlb::lookupBabelFish(Vpn vpn, Ccid ccid, Pcid pcid, int process_bit)
{
    TlbLookup result;
    const std::size_t base = setIndex(vpn) * params_.assoc;
    TlbEntry *match = nullptr;

    const std::uint64_t want = packKey(vpn, true);
    const unsigned assoc = params_.assoc;
    for (unsigned way = 0; way < assoc; ++way) {
        const std::size_t i = base + way;
        const std::uint64_t key = key_[i];
        if ((key | 2u) != want || (id_[i] & 0xffffu) != ccid)
            continue;                                   // step 1 of Fig. 8
        TlbEntry &entry = entries_[i];
        if (key & 2u) {                                 // owned
            if (entry.pcid == pcid) {                   // step 9
                match = &entry;
                break;                                  // owned hit wins
            }
            continue;                                   // step 10 (miss)
        }
        // Shared entry. The ORPC bit short-circuits the bitmask check
        // (Fig. 5(b)): only when it is set do we pay the long access.
        if (entry.orpc) {
            result.bitmask_checked = true;
            if (process_bit >= 0 &&
                (entry.pc_bitmask >> process_bit) & 1u) {
                // The process has its own private copy of this page; the
                // shared translation is not for it (step 3 -> miss).
                continue;
            }
        }
        match = &entry;                                 // step 4 (hit)
        // Keep scanning: an owned entry for this PCID takes precedence
        // (the process may have both after privatizing).
    }

    if (result.bitmask_checked)
        ++bitmask_checks;

    if (match) {
        if (params_.policy == TlbParams::Policy::Lru)
            match->lru = ++lru_clock_;
        result.entry = match;
        result.shared_hit = match->fill_pcid != pcid;
        ++hits;
        if (result.shared_hit)
            ++shared_hits;
        return result;
    }
    ++misses;
    return result;
}

bool
Tlb::fill(const TlbEntry &new_entry, bool shared_dedup,
          TlbEntry *evicted)
{
    bf_assert(new_entry.size == params_.page_size,
              "TLB ", params_.name, ": wrong page size fill");
    TlbEntry *base = setBase(new_entry.vpn);

    // Replace an existing entry with the same tags if present (never
    // duplicate a translation), else an invalid way, else LRU.
    const bool dedup_shared = shared_dedup && !new_entry.owned;
    const unsigned assoc = params_.assoc;
    TlbEntry *victim = nullptr;
    bool same_identity_refill = false;
    for (unsigned way = 0; way < assoc; ++way) {
        TlbEntry &entry = base[way];
        const bool same_identity =
            entry.vpn == new_entry.vpn && entry.valid &&
            entry.ccid == new_entry.ccid &&
            entry.owned == new_entry.owned &&
            (dedup_shared || entry.pcid == new_entry.pcid);
        if (same_identity) {
            victim = &entry;
            same_identity_refill = true;
            break;
        }
    }
    if (!victim) {
        victim = &base[0];
        bool found_invalid = false;
        for (unsigned way = 0; way < assoc; ++way) {
            TlbEntry &entry = base[way];
            if (!entry.valid) {
                victim = &entry;
                found_invalid = true;
                break;
            }
            if (entry.lru < victim->lru)
                victim = &entry;
        }
        // A full set defers to the policy: Lru and Fifo both take the
        // oldest stamp (Fifo never refreshed it on hits), Random picks
        // a deterministic pseudo-random way.
        if (!found_invalid &&
            params_.policy == TlbParams::Policy::Random) {
            victim = &base[nextRand() % params_.assoc];
        }
    }
    bool spilled = false;
    if (!victim->valid) {
        ++valid_count_;
    } else if (!same_identity_refill) {
        if (!victim->owned)
            bucketRemove(victim->ccid);
        if (evicted) {
            *evicted = *victim;
            spilled = true;
        }
    } else if (!victim->owned) {
        bucketRemove(victim->ccid);
    }
    *victim = new_entry;
    victim->valid = true;
    victim->lru = ++lru_clock_;
    if (!victim->owned)
        bucketAdd(victim->ccid, victim->vpn);
    syncKeys(static_cast<std::size_t>(victim - entries_.data()));
    ++fills;
    return spilled;
}

void
Tlb::invalidatePage(Pcid pcid, Vpn vpn)
{
    if (valid_count_ == 0)
        return;
    const std::size_t base = setIndex(vpn) * params_.assoc;
    const std::uint64_t want = packKey(vpn, true);
    for (unsigned way = 0; way < params_.assoc; ++way) {
        const std::size_t i = base + way;
        const std::uint64_t key = key_[i];
        if ((key | 2u) == want && (id_[i] >> 16) == pcid) {
            entries_[i].valid = false;
            key_[i] = 0;
            --valid_count_;
            ++invalidations;
            if (!(key & 2u))
                bucketRemove(static_cast<Ccid>(id_[i] & 0xffffu));
        }
    }
}

void
Tlb::invalidateSharedRange(Ccid ccid, Vpn first, std::uint64_t count)
{
    // Shootdowns are broadcast to every core; on most of them this
    // structure holds nothing for the CCID (or nothing in the range),
    // so the occupancy filter answers without scanning.
    if (valid_count_ == 0)
        return;
    const CcidBucket &b = bucket(ccid);
    if (b.count == 0 || first > b.vpn_max || first + count <= b.vpn_min)
        return;
    // Range shootdowns scan the whole structure — over the packed
    // shadow keys, not the entry structs.
    const std::size_t n = key_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t key = key_[i];
        if ((key & 3u) != 1u)           // valid shared entries only
            continue;
        if ((id_[i] & 0xffffu) != ccid)
            continue;
        const Vpn vpn = key >> 2;
        if (vpn < first || vpn >= first + count)
            continue;
        entries_[i].valid = false;
        key_[i] = 0;
        --valid_count_;
        ++invalidations;
        bucketRemove(ccid);
    }
}

void
Tlb::invalidatePcid(Pcid pcid)
{
    if (valid_count_ == 0)
        return;
    const std::size_t n = key_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t key = key_[i];
        if (!(key & 1u) || (id_[i] >> 16) != pcid)
            continue;
        entries_[i].valid = false;
        key_[i] = 0;
        --valid_count_;
        ++invalidations;
        if (!(key & 2u))
            bucketRemove(static_cast<Ccid>(id_[i] & 0xffffu));
    }
}

void
Tlb::invalidateAll()
{
    if (valid_count_ == 0)
        return;
    for (auto &entry : entries_)
        entry.valid = false;
    std::fill(key_.begin(), key_.end(), 0);
    shared_buckets_.fill(CcidBucket{});
    valid_count_ = 0;
}

void
Tlb::reset()
{
    for (auto &entry : entries_)
        entry = TlbEntry{};
    std::fill(key_.begin(), key_.end(), 0);
    std::fill(id_.begin(), id_.end(), 0);
    shared_buckets_.fill(CcidBucket{});
    valid_count_ = 0;
    lru_clock_ = 0;
    rng_state_ = policySeed();
}

void
Tlb::rebuildShadow()
{
    shared_buckets_.fill(CcidBucket{});
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        syncKeys(i);
        const TlbEntry &entry = entries_[i];
        if (entry.valid && !entry.owned)
            bucketAdd(entry.ccid, entry.vpn);
    }
}

const TlbEntry *
Tlb::probe(Vpn vpn, Pcid pcid) const
{
    const TlbEntry *base = setBase(vpn);
    for (unsigned way = 0; way < params_.assoc; ++way) {
        if (base[way].valid && base[way].vpn == vpn &&
            base[way].pcid == pcid)
            return &base[way];
    }
    return nullptr;
}

unsigned
Tlb::recountValid() const
{
    unsigned count = 0;
    for (const auto &entry : entries_)
        if (entry.valid)
            ++count;
    return count;
}

unsigned
Tlb::validCount() const
{
#ifndef NDEBUG
    bf_assert(recountValid() == valid_count_,
              "TLB ", params_.name, ": valid_count_ (", valid_count_,
              ") out of sync with scan (", recountValid(), ")");
#endif
    return valid_count_;
}

void
Tlb::resetStats()
{
    hits.reset();
    misses.reset();
    shared_hits.reset();
    bitmask_checks.reset();
    fills.reset();
    invalidations.reset();
}

void
Tlb::save(snap::ArchiveWriter &ar) const
{
    ar.str(params_.name);
    ar.u32(static_cast<std::uint32_t>(entries_.size()));
    ar.u32(params_.assoc);
    ar.u8(static_cast<std::uint8_t>(params_.page_size));
    ar.u8(static_cast<std::uint8_t>(params_.policy));

    ar.u64(lru_clock_);
    ar.u64(rng_state_);
    ar.u32(valid_count_);
    for (const TlbEntry &entry : entries_) {
        ar.b(entry.valid);
        ar.u64(entry.vpn);
        ar.u64(entry.ppn);
        ar.u8(static_cast<std::uint8_t>(entry.size));
        ar.u16(entry.pcid);
        ar.u16(entry.ccid);
        std::uint8_t flags = 0;
        flags |= entry.writable ? 1u << 0 : 0;
        flags |= entry.user ? 1u << 1 : 0;
        flags |= entry.no_exec ? 1u << 2 : 0;
        flags |= entry.cow ? 1u << 3 : 0;
        flags |= entry.owned ? 1u << 4 : 0;
        flags |= entry.orpc ? 1u << 5 : 0;
        ar.u8(flags);
        ar.u32(entry.pc_bitmask);
        ar.u16(entry.fill_pcid);
        ar.u64(entry.lru);
    }
}

void
Tlb::restore(snap::ArchiveReader &ar)
{
    auto geometry = [&](bool ok, const char *what) {
        if (!ok) {
            throw snap::SnapshotError(std::string("TLB '") +
                                      params_.name +
                                      "' checkpoint mismatch: " + what);
        }
    };
    geometry(ar.str() == params_.name, "name");
    geometry(ar.u32() == entries_.size(), "entry count");
    geometry(ar.u32() == params_.assoc, "associativity");
    geometry(ar.u8() == static_cast<std::uint8_t>(params_.page_size),
             "page size");
    geometry(ar.u8() == static_cast<std::uint8_t>(params_.policy),
             "replacement policy");

    lru_clock_ = ar.u64();
    rng_state_ = ar.u64();
    valid_count_ = ar.u32();
    for (TlbEntry &entry : entries_) {
        entry.valid = ar.b();
        entry.vpn = ar.u64();
        entry.ppn = ar.u64();
        entry.size = static_cast<PageSize>(ar.u8());
        entry.pcid = ar.u16();
        entry.ccid = ar.u16();
        const std::uint8_t flags = ar.u8();
        entry.writable = flags & (1u << 0);
        entry.user = flags & (1u << 1);
        entry.no_exec = flags & (1u << 2);
        entry.cow = flags & (1u << 3);
        entry.owned = flags & (1u << 4);
        entry.orpc = flags & (1u << 5);
        entry.pc_bitmask = ar.u32();
        entry.fill_pcid = ar.u16();
        entry.lru = ar.u64();
    }
    rebuildShadow();
}

} // namespace bf::tlb
