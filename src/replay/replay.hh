/**
 * @file
 * Trace-driven replay of the translation pipeline (DESIGN.md §13).
 *
 * A ReplayEngine consumes a format-v2 trace (common/trace) and re-executes
 * the recorded translation-lookup sequence against freshly constructed
 * functional models of the TLB hierarchy, the page-walk cache and the
 * O-PC tagging — no cores, caches or DRAM are simulated. At the recording
 * configuration (the geometry embedded in the trace header) the replayed
 * TLB and PWC hit/miss counters match the full simulation exactly; at a
 * swept configuration they answer "what would this geometry have done on
 * the same access stream", with walk latencies approximated from the
 * recorded serving levels.
 *
 * What replays exactly, what is approximate, and the trace-format
 * compatibility contract are documented in DESIGN.md §13.
 */

#ifndef BF_REPLAY_REPLAY_HH
#define BF_REPLAY_REPLAY_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/trace/trace.hh"
#include "common/types.hh"
#include "tlb/page_walk_cache.hh"
#include "tlb/tlb.hh"
#include "translate/kind.hh"

namespace bf::replay
{

/** Any condition that makes a trace unreplayable. */
class ReplayError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Configuration of the replayed machine. Defaults come from the trace
 * header via paramsFromTrace(); sweeps override individual structures
 * before constructing the engine.
 */
struct ReplayParams
{
    tlb::TlbParams l1i_4k;
    tlb::TlbParams l1d_4k;
    tlb::TlbParams l1d_2m;
    tlb::TlbParams l1d_1g;
    tlb::TlbParams l2_4k;
    tlb::TlbParams l2_2m;
    tlb::TlbParams l2_1g;
    tlb::PwcParams pwc;

    /** @{ @name Mode flags (fixed by the recording, not sweepable) */
    bool babelfish = false;
    bool l1_sharing = false; //!< Already combined: babelfish && knob.
    bool force_long_l2 = false;
    bool aslr_hw = false;
    Cycles aslr_transform_cycles = 0;
    /** @} */

    /**
     * Modeled O-PC bitmask width. Narrower than the recorded 32 bits
     * converts shared entries whose recorded PC bitmask overflows the
     * width into private (owned) entries at fill time — the kernel's
     * per-process fallback, approximated TLB-side (DESIGN.md §13).
     */
    unsigned opc_width = 32;

    /**
     * Synthetic per-MemLevel walk-step latencies (L1/L2/L3/Memory),
     * used only for walk steps whose PWC outcome diverges from the
     * recording — i.e. only when sweeping away from the recording
     * config. Concordant walks reuse the recorded cycle counts.
     */
    Cycles mem_level_cycles[4] = {4, 16, 40, 160};

    /**
     * @{
     * @name Translation-backend model (the zoo, DESIGN.md §16)
     * Defaults to the trace's recording backend via paramsFromTrace();
     * sweeps override it to ask "what would a Victima/coalesced design
     * have done on this access stream". Functional approximations when
     * modeling a competitor over a reference-backend trace:
     *  - Victima store probes bill mem_level_cycles[1] (the L2 data
     *    array), with perfect presence metadata as in full-sim.
     *  - Coalesced-run detection uses VA adjacency as the PFN-adjacency
     *    proxy (traces do not record physical frames), an optimistic
     *    upper bound on coalescing opportunity.
     * Validation (replayed == recorded) only holds for the BabelFish
     * reference backend at the recording geometry.
     */
    translate::BackendKind backend = translate::BackendKind::BabelFish;
    std::size_t victima_store_entries = 8192;
    std::size_t range_tlb_entries = 64;
    /** @} */
};

/** Build the recording-config ReplayParams from a trace header config. */
ReplayParams paramsFromTrace(const trace::TraceConfig &config);

/**
 * The counters replay reconstructs, per core. "Recorded" values are
 * tallied from the trace events themselves; "replayed" values come from
 * the functional models. At the recording config the two must be equal
 * (that is what bf_replay --validate checks).
 */
struct Counters
{
    std::uint64_t accesses = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t l1_misses = 0;
    std::uint64_t l2_data_hits = 0;
    std::uint64_t l2_data_misses = 0;
    std::uint64_t l2_instr_hits = 0;
    std::uint64_t l2_instr_misses = 0;
    std::uint64_t l2_data_shared_hits = 0;
    std::uint64_t l2_instr_shared_hits = 0;
    std::uint64_t l2_long_accesses = 0;
    std::uint64_t walks = 0;
    std::uint64_t pwc_hits = 0;
    std::uint64_t pwc_misses = 0;
    std::uint64_t miss_latency_count = 0;
    std::uint64_t miss_latency_sum = 0;

    Counters &operator+=(const Counters &o);
};

/** One counter whose replayed value diverged from the recorded one. */
struct CounterDiff
{
    std::string name; //!< e.g. "core0.l1_hits".
    unsigned core = 0;
    std::uint64_t recorded = 0;
    std::uint64_t replayed = 0;
};

/**
 * The analyzed form of one decoded trace — everything replay derives
 * from the records alone, independent of the machine configuration:
 *
 *  - per block, the per-core causal streams (seq order), their
 *    exec/span segmentation and the fault-service round order;
 *  - the synthesis knowledge: leaf attributes of every recorded
 *    TlbFill and page-table entry addresses of every recorded walk
 *    step, used to synthesize walks a swept geometry takes where the
 *    recording hit (learned from the whole trace up front — replay is
 *    offline, so the full fill history is available).
 *
 * A design-space sweep builds one schedule and shares it (read-only,
 * thread-safe) across every ReplayEngine instead of re-deriving all of
 * this per point. The schedule owns its copy of the decoded records:
 * once constructed it is self-contained and immutable, so concurrent
 * run(schedule) calls from different engines (e.g. a BF_JOBS sweep
 * pool) need no external synchronization and the caller's block
 * vectors may be freed or reused immediately.
 */
class ReplaySchedule
{
  public:
    /**
     * @param header decoded trace header (core count + mode flags).
     * @param blocks every decoded block of the trace, in file order;
     *        copied into the schedule (the caller's vector is not
     *        referenced after construction).
     * @throws ReplayError on records that cannot be scheduled.
     */
    ReplaySchedule(const trace::TraceHeader &header,
                   const std::vector<std::vector<trace::Record>> &blocks);

    /** As above, but takes ownership of the decoded blocks directly. */
    ReplaySchedule(const trace::TraceHeader &header,
                   std::vector<std::vector<trace::Record>> &&blocks);
    ~ReplaySchedule();

    ReplaySchedule(const ReplaySchedule &) = delete;
    ReplaySchedule &operator=(const ReplaySchedule &) = delete;

    unsigned numCores() const;

  private:
    friend class ReplayEngine;
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Replays one trace against one machine configuration. */
class ReplayEngine
{
  public:
    /**
     * @param params machine configuration to replay against.
     * @param header decoded trace header; construction throws
     *        ReplayError when the trace cannot be replayed (dropped
     *        records, or a required event kind missing from the mask).
     */
    ReplayEngine(const ReplayParams &params,
                 const trace::TraceHeader &header);
    ~ReplayEngine();

    ReplayEngine(const ReplayEngine &) = delete;
    ReplayEngine &operator=(const ReplayEngine &) = delete;

    /**
     * Replay every block of @p reader: decodes the whole trace, builds
     * a ReplaySchedule and runs it. @throws ReplayError.
     */
    void run(trace::TraceReader &reader);

    /**
     * Replay a precomputed schedule (same result as run(reader) on the
     * trace it was built from, minus the re-derivation cost). The
     * schedule's core count must match the engine's. The schedule is
     * only read: any number of engines may run the same schedule from
     * different threads concurrently, one engine per thread.
     */
    void run(const ReplaySchedule &schedule);

    unsigned numCores() const;

    /** @{ @name Reconstructed counters */
    Counters replayed(unsigned core) const;
    Counters recorded(unsigned core) const;
    Counters replayedTotal() const;
    Counters recordedTotal() const;
    /** @} */

    /**
     * Compare replayed against recorded counters, per core. Empty when
     * the replay reproduced the recording exactly — guaranteed at the
     * recording config, meaningless (and nonempty) under sweeps.
     */
    std::vector<CounterDiff> validate() const;

    /**
     * The replayed stats tree rendered as JSON — the same section shape
     * as a full simulation's per-core mmu group (tlb/pwc subgroups,
     * hit/miss scalars, miss_latency distribution).
     */
    std::string statsJson() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace bf::replay

#endif // BF_REPLAY_REPLAY_HH
