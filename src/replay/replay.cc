#include "replay/replay.hh"

#include <algorithm>
#include <map>
#include <utility>

#include "common/stats.hh"
#include "common/stats_export.hh"
#include "tlb/page_walker.hh"
#include "translate/structures.hh"
#include "vm/kernel.hh"
#include "vm/paging.hh"
#include "vm/tlb_hooks.hh"

namespace bf::replay
{

Counters &
Counters::operator+=(const Counters &o)
{
    accesses += o.accesses;
    l1_hits += o.l1_hits;
    l1_misses += o.l1_misses;
    l2_data_hits += o.l2_data_hits;
    l2_data_misses += o.l2_data_misses;
    l2_instr_hits += o.l2_instr_hits;
    l2_instr_misses += o.l2_instr_misses;
    l2_data_shared_hits += o.l2_data_shared_hits;
    l2_instr_shared_hits += o.l2_instr_shared_hits;
    l2_long_accesses += o.l2_long_accesses;
    walks += o.walks;
    pwc_hits += o.pwc_hits;
    pwc_misses += o.pwc_misses;
    miss_latency_count += o.miss_latency_count;
    miss_latency_sum += o.miss_latency_sum;
    return *this;
}

ReplayParams
paramsFromTrace(const trace::TraceConfig &config)
{
    ReplayParams p;
    auto cvt = [](const trace::TraceTlbConfig &t, const char *name,
                  PageSize size) {
        tlb::TlbParams tp;
        tp.name = name;
        tp.entries = t.entries;
        tp.assoc = t.assoc;
        tp.page_size = size;
        tp.access_cycles = t.access_cycles;
        tp.bitmask_extra_cycles = t.bitmask_extra_cycles;
        tp.policy = static_cast<tlb::TlbParams::Policy>(t.policy);
        return tp;
    };
    p.l1i_4k = cvt(config.tlb[trace::TraceL1i4k], "l1i_4k",
                   PageSize::Size4K);
    p.l1d_4k = cvt(config.tlb[trace::TraceL1d4k], "l1d_4k",
                   PageSize::Size4K);
    p.l1d_2m = cvt(config.tlb[trace::TraceL1d2m], "l1d_2m",
                   PageSize::Size2M);
    p.l1d_1g = cvt(config.tlb[trace::TraceL1d1g], "l1d_1g",
                   PageSize::Size1G);
    p.l2_4k = cvt(config.tlb[trace::TraceL24k], "l2_4k", PageSize::Size4K);
    p.l2_2m = cvt(config.tlb[trace::TraceL22m], "l2_2m", PageSize::Size2M);
    p.l2_1g = cvt(config.tlb[trace::TraceL21g], "l2_1g", PageSize::Size1G);
    p.pwc.name = "pwc";
    p.pwc.entries_per_level = config.pwc_entries_per_level;
    p.pwc.assoc = config.pwc_assoc;
    p.pwc.levels = config.pwc_levels;
    p.pwc.access_cycles = config.pwc_access_cycles;
    p.babelfish = config.babelfish;
    p.l1_sharing = config.l1_sharing;
    p.force_long_l2 = config.force_long_l2;
    p.aslr_hw = config.aslr_hw;
    p.aslr_transform_cycles = config.aslr_transform_cycles;
    p.opc_width = config.opc_width ? config.opc_width : 32;
    p.backend = static_cast<translate::BackendKind>(config.backend);
    return p;
}

namespace
{

int
sizeIndex(PageSize size)
{
    return static_cast<int>(size);
}

/** Leaf page-table level of a page size (1G leaf lives in the PUD). */
int
leafLevel(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return vm::LevelPte;
      case PageSize::Size2M: return vm::LevelPmd;
      case PageSize::Size1G: return vm::LevelPud;
    }
    return vm::LevelPte;
}

bool
isKernelEvent(std::uint8_t type)
{
    switch (static_cast<trace::EventType>(type)) {
      case trace::EventType::FaultService:
      case trace::EventType::CowPrivatize:
      case trace::EventType::MaskFallback:
      case trace::EventType::Shootdown:
        return true;
      default:
        return false;
    }
}

/** The event kinds replay cannot work without (DESIGN.md §13). */
std::uint32_t
requiredEventMask()
{
    std::uint32_t mask = 0;
    for (trace::EventType t : {
             trace::EventType::TlbL1Hit, trace::EventType::TlbL2Hit,
             trace::EventType::TlbMiss, trace::EventType::PwcHit,
             trace::EventType::WalkStart, trace::EventType::WalkStep,
             trace::EventType::WalkEnd, trace::EventType::FaultService,
             trace::EventType::Shootdown, trace::EventType::TlbFill,
             trace::EventType::StatsReset})
        mask |= 1u << static_cast<unsigned>(t);
    return mask;
}

/** One recorded walk: the events between a TlbMiss and its outcome. */
struct WalkInfo
{
    /** PwcHit / WalkStep records; a 4-level walk has at most one per
     *  level, so 8 slots is comfortably enough. */
    static constexpr unsigned max_steps = 8;
    const trace::Record *steps[max_steps];
    unsigned num_steps = 0;
    const trace::Record *end = nullptr;       //!< WalkEnd.
    const trace::Record *fill = nullptr;      //!< TlbFill iff status Ok.
};

/** Outcome of re-executing (or synthesizing) one walk. */
struct WalkOutcome
{
    Cycles cycles = 0;
    bool ok = false;
    tlb::TlbEntry fill;
};

/** Leaf attributes learned from a TlbFill event (synthetic walks). */
struct LeafAttr
{
    bool owned = false;
    bool orpc = false;
    bool cow = false;
    std::uint32_t pc_bitmask = 0;
};

/**
 * Open-addressing hash map keyed by (key, owner), written once while
 * the schedule learns and then probed read-only on every synthesized
 * walk — hot enough that std::unordered_map's prime-modulo hashing and
 * node chasing showed up as ~25% of a sweep point. Linear probing at
 * <= 50% load, last insert wins (the learning semantics).
 */
template <typename V>
class FlatMap
{
  public:
    void
    insert(std::uint64_t key, std::uint32_t owner, const V &value)
    {
        if ((used_ + 1) * 2 > slots_.size())
            grow();
        Slot &s = slot(key, owner);
        if (!s.used) {
            s.used = true;
            s.key = key;
            s.owner = owner;
            ++used_;
        }
        s.value = value;
    }

    const V *
    find(std::uint64_t key, std::uint32_t owner) const
    {
        if (slots_.empty())
            return nullptr;
        const std::uint64_t mask = slots_.size() - 1;
        for (std::uint64_t i = hash(key, owner) & mask; slots_[i].used;
             i = (i + 1) & mask) {
            if (slots_[i].key == key && slots_[i].owner == owner)
                return &slots_[i].value;
        }
        return nullptr;
    }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        std::uint32_t owner = 0;
        bool used = false;
        V value{};
    };

    static std::uint64_t
    hash(std::uint64_t key, std::uint32_t owner)
    {
        // splitmix64 finalizer over the combined identity.
        std::uint64_t x =
            key ^ (std::uint64_t{owner} * 0x9E3779B97F4A7C15ull);
        x ^= x >> 30;
        x *= 0xBF58476D1CE4E5B9ull;
        x ^= x >> 27;
        x *= 0x94D049BB133111EBull;
        x ^= x >> 31;
        return x;
    }

    Slot &
    slot(std::uint64_t key, std::uint32_t owner)
    {
        const std::uint64_t mask = slots_.size() - 1;
        std::uint64_t i = hash(key, owner) & mask;
        while (slots_[i].used &&
               !(slots_[i].key == key && slots_[i].owner == owner))
            i = (i + 1) & mask;
        return slots_[i];
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.empty() ? 1024 : old.size() * 2, Slot{});
        for (const Slot &s : old) {
            if (s.used) {
                Slot &d = slot(s.key, s.owner);
                d = s;
            }
        }
    }

    std::vector<Slot> slots_;
    std::size_t used_ = 0;
};

} // namespace

/** The per-core functional machine: 7 TLBs + PWC + mirrored counters. */
struct CoreModel
{
    CoreModel(unsigned id, const ReplayParams &p, stats::StatGroup *root)
        : group("core" + std::to_string(id), root), mmu("mmu", &group)
    {
        l1i = std::make_unique<tlb::Tlb>(p.l1i_4k, &mmu);
        l1d[sizeIndex(PageSize::Size4K)] =
            std::make_unique<tlb::Tlb>(p.l1d_4k, &mmu);
        l1d[sizeIndex(PageSize::Size2M)] =
            std::make_unique<tlb::Tlb>(p.l1d_2m, &mmu);
        l1d[sizeIndex(PageSize::Size1G)] =
            std::make_unique<tlb::Tlb>(p.l1d_1g, &mmu);
        l2[sizeIndex(PageSize::Size4K)] =
            std::make_unique<tlb::Tlb>(p.l2_4k, &mmu);
        l2[sizeIndex(PageSize::Size2M)] =
            std::make_unique<tlb::Tlb>(p.l2_2m, &mmu);
        l2[sizeIndex(PageSize::Size1G)] =
            std::make_unique<tlb::Tlb>(p.l2_1g, &mmu);
        pwc = std::make_unique<tlb::Pwc>(p.pwc, &mmu);

        // Backend-model structures (unused and unregistered for the
        // reference backend, so its stats shape is unchanged).
        if (p.backend == translate::BackendKind::Victima) {
            store = std::make_unique<translate::VictimStore>(
                p.victima_store_entries);
            mmu.addStat("victima_spills", &victima_spills);
            mmu.addStat("victima_hits", &victima_hits);
        } else if (p.backend == translate::BackendKind::Coalesced) {
            ranges = std::make_unique<translate::RangeTlb>(
                p.range_tlb_entries);
            detector = std::make_unique<translate::RunDetector>();
            mmu.addStat("range_hits", &range_hits);
            mmu.addStat("range_installs", &range_installs);
        }

        mmu.addStat("accesses", &accesses);
        mmu.addStat("l1_hits", &l1_hits);
        mmu.addStat("l1_misses", &l1_misses);
        mmu.addStat("l2_data_hits", &l2_data_hits);
        mmu.addStat("l2_data_misses", &l2_data_misses);
        mmu.addStat("l2_instr_hits", &l2_instr_hits);
        mmu.addStat("l2_instr_misses", &l2_instr_misses);
        mmu.addStat("l2_data_shared_hits", &l2_data_shared_hits);
        mmu.addStat("l2_instr_shared_hits", &l2_instr_shared_hits);
        mmu.addStat("l2_long_accesses", &l2_long_accesses);
        mmu.addStat("walks", &walks);
        mmu.addStat("mem_steps", &mem_steps);
        mmu.addStat("synth_walks", &synth_walks);
        mmu.addStat("miss_latency", &miss_latency);
    }

    stats::StatGroup group;
    stats::StatGroup mmu;
    std::unique_ptr<tlb::Tlb> l1i;
    std::unique_ptr<tlb::Tlb> l1d[numPageSizes];
    std::unique_ptr<tlb::Tlb> l2[numPageSizes];
    std::unique_ptr<tlb::Pwc> pwc;
    std::unique_ptr<translate::VictimStore> store;     //!< Victima only.
    std::unique_ptr<translate::RangeTlb> ranges;       //!< Coalesced only.
    std::unique_ptr<translate::RunDetector> detector;  //!< Coalesced only.

    stats::Scalar accesses;
    stats::Scalar l1_hits;
    stats::Scalar l1_misses;
    stats::Scalar l2_data_hits;
    stats::Scalar l2_data_misses;
    stats::Scalar l2_instr_hits;
    stats::Scalar l2_instr_misses;
    stats::Scalar l2_data_shared_hits;
    stats::Scalar l2_instr_shared_hits;
    stats::Scalar l2_long_accesses;
    stats::Scalar walks;
    stats::Scalar mem_steps;
    stats::Scalar synth_walks; //!< Walks synthesized (sweeps only).
    stats::Scalar victima_spills; //!< L2 evictions parked in the store.
    stats::Scalar victima_hits;   //!< Walks avoided by a store hit.
    stats::Scalar range_hits;     //!< Base-L2 misses covered by a range.
    stats::Scalar range_installs; //!< Range (re-)installs from runs.
    stats::Distribution miss_latency;

    Counters rec; //!< Tallied from the trace events themselves.
};

/**
 * The analyzed form of a trace: everything processBlock derives that
 * depends only on the records, not on the replayed machine. Shared
 * read-only between engines in a sweep.
 */
struct ReplaySchedule::Impl
{
    struct Range
    {
        std::size_t begin, end;
    };

    /**
     * One parsed access unit: a translate attempt and its walk. The
     * attempt's fields are copied out of the (core-interleaved) record
     * array so the replay loop streams each core's units sequentially.
     */
    struct Unit
    {
        static constexpr std::uint32_t no_walk = ~std::uint32_t{0};
        Addr vpage = 0;
        std::uint32_t pid = 0;
        std::uint32_t walk = no_walk; //!< Index into Block::walks[core].
        Pcid pcid = 0;
        Ccid ccid = 0;
        std::int8_t process_bit = -1;
        std::uint8_t type = 0; //!< TlbL1Hit / TlbL2Hit / TlbMiss.
        std::uint8_t flags = 0;

        static Unit
        fromRecord(const trace::Record &r, std::uint32_t walk_index)
        {
            Unit u;
            u.vpage = r.vpage;
            u.pid = r.pid;
            u.walk = walk_index;
            u.pcid = trace::attemptPcid(r.arg);
            u.ccid = r.ccid;
            u.process_bit =
                static_cast<std::int8_t>(trace::attemptProcessBit(r.arg));
            u.type = r.type;
            u.flags = r.flags;
            return u;
        }
    };

    /**
     * Recorded-side tallies of one block, per core. Everything except
     * the miss-latency sum is config-independent; the sum's configured
     * per-access terms stay factored out (ml_long, ml_end_sum) and are
     * folded in by the engine per replay.
     */
    struct RecTally
    {
        Counters rec; //!< miss_latency_sum deliberately left 0.
        std::uint64_t ml_long = 0;    //!< Successful long-L2 walks.
        std::uint64_t ml_end_sum = 0; //!< Sum of recorded walk cycles.
    };

    struct Block
    {
        unsigned resets = 0;
        /** Per-core causal streams: block records in seq order. */
        std::vector<std::vector<const trace::Record *>> streams;
        /** execs[c] has exactly one more element than spans[c]. */
        std::vector<std::vector<Range>> execs, spans;
        /** Per fault-service round, the span order: (fault ts, core). */
        std::vector<std::vector<unsigned>> rounds;
        /** Parsed units of all exec segments, in stream order;
         *  exec_units[c][k] is the unit range of exec segment k. */
        std::vector<std::vector<Unit>> units;
        std::vector<std::vector<WalkInfo>> walks;
        std::vector<std::vector<Range>> exec_units;
        std::vector<RecTally> tallies;
    };

    unsigned num_cores = 0;
    bool babelfish = false;
    /**
     * The decoded trace records, owned. Every Record pointer in the
     * blocks below (streams, WalkInfo) points into these vectors, which
     * are never touched again after construction — that immutability is
     * what makes a schedule shareable across threads.
     */
    std::vector<std::vector<trace::Record>> records;
    std::vector<Block> blocks;

    /**
     * @{
     * @name Synthesis knowledge (sweeps only)
     * Leaf attributes learned from every TlbFill event and page-table
     * entry addresses learned from every walk step, so walks the
     * recording skipped (it hit, a smaller replayed TLB missed) can be
     * synthesized with the right depth, O-PC attributes and PWC tags.
     * Keyed by PID with a CCID fallback so BabelFish's group-shared
     * tables keep aliasing in the replayed PWC. Learned once from the
     * whole trace (canonical order, last fill wins) and shared
     * read-only by every engine.
     */
    FlatMap<LeafAttr> attr_owned[numPageSizes]; //!< Owner: filling PCID.
    FlatMap<LeafAttr> attr_shared[numPageSizes]; //!< Owner: CCID.
    FlatMap<Addr> memo_pid;  //!< (levelBaseKey, PID) -> table base.
    FlatMap<Addr> memo_ccid; //!< (levelBaseKey, CCID) -> table base.
    /** @} */

    /** Sub-4K-page key identifying (level, table) for the memo maps. */
    static std::uint64_t
    levelBaseKey(Addr va, int level)
    {
        return (vm::tableBase(va, level) >> basePageShift) |
               (std::uint64_t{static_cast<unsigned>(level)} << 50);
    }

    void
    learnFill(const trace::Record &f)
    {
        const auto size = static_cast<PageSize>(trace::fillSize(f.arg));
        const Vpn vpn = (f.vpage << basePageShift) >> pageShift(size);
        LeafAttr a;
        a.owned = trace::fillOwned(f.arg);
        a.orpc = trace::fillOrpc(f.arg);
        a.cow = trace::fillCow(f.arg);
        a.pc_bitmask = trace::fillBitmask(f.arg);
        if (babelfish && !a.owned)
            attr_shared[sizeIndex(size)].insert(vpn, f.ccid, a);
        else
            attr_owned[sizeIndex(size)].insert(vpn, trace::fillPcid(f.arg),
                                               a);
    }

    void
    learnStep(const trace::Record &s)
    {
        const auto level = static_cast<int>(trace::walkStepLevel(s.arg));
        const Addr va = s.vpage << basePageShift;
        const Addr base = trace::walkStepPaddr(s.arg) -
                          8ull * vm::tableIndex(va, level);
        const std::uint64_t key = levelBaseKey(va, level);
        memo_pid.insert(key, s.pid, base);
        memo_ccid.insert(key, s.ccid, base);
    }

    void
    learn(const std::vector<trace::Record> &block)
    {
        for (const trace::Record &r : block) {
            switch (static_cast<trace::EventType>(r.type)) {
              case trace::EventType::PwcHit:
              case trace::EventType::WalkStep:
                learnStep(r);
                break;
              case trace::EventType::TlbFill:
                learnFill(r);
                break;
              default:
                break;
            }
        }
    }

    /** Parse one exec segment's records into access units. */
    static void
    parseExec(const std::vector<const trace::Record *> &s, Range e,
              std::vector<Unit> &units, std::vector<WalkInfo> &walks)
    {
        std::size_t i = e.begin;
        while (i < e.end) {
            const trace::Record *r = s[i];
            const auto type = static_cast<trace::EventType>(r->type);
            if (type == trace::EventType::TlbL1Hit ||
                type == trace::EventType::TlbL2Hit) {
                units.push_back(Unit::fromRecord(*r, Unit::no_walk));
                ++i;
                continue;
            }
            if (type != trace::EventType::TlbMiss)
                throw ReplayError(std::string("unexpected ") +
                                  trace::eventTypeName(type) +
                                  " event outside a walk (corrupt or "
                                  "unreplayable trace)");
            if (i + 1 >= e.end ||
                s[i + 1]->type !=
                    static_cast<std::uint8_t>(
                        trace::EventType::WalkStart))
                throw ReplayError("TlbMiss not followed by WalkStart");
            WalkInfo w;
            std::size_t j = i + 2;
            while (j < e.end &&
                   (s[j]->type ==
                        static_cast<std::uint8_t>(
                            trace::EventType::PwcHit) ||
                    s[j]->type ==
                        static_cast<std::uint8_t>(
                            trace::EventType::WalkStep))) {
                if (w.num_steps == WalkInfo::max_steps)
                    throw ReplayError("walk with more steps than a "
                                      "4-level page table can produce");
                w.steps[w.num_steps++] = s[j++];
            }
            if (j >= e.end ||
                s[j]->type !=
                    static_cast<std::uint8_t>(trace::EventType::WalkEnd))
                throw ReplayError("walk without a WalkEnd");
            w.end = s[j++];
            if (static_cast<tlb::WalkStatus>(w.end->flags) ==
                tlb::WalkStatus::Ok) {
                if (j >= e.end ||
                    s[j]->type !=
                        static_cast<std::uint8_t>(
                            trace::EventType::TlbFill))
                    throw ReplayError(
                        "successful walk without a TlbFill");
                w.fill = s[j++];
            }
            units.push_back(Unit::fromRecord(
                *r, static_cast<std::uint32_t>(walks.size())));
            walks.push_back(w);
            i = j;
        }
    }

    /** Tally one unit's recorded-side counters (tallyRecorded's
     *  config-independent half; see RecTally). */
    static void
    tally(RecTally &t, const Unit &att, const WalkInfo *walk)
    {
        const std::uint8_t f = att.flags;
        const bool instr = f & trace::flagInstr;
        ++t.rec.accesses;
        switch (static_cast<trace::EventType>(att.type)) {
          case trace::EventType::TlbL1Hit:
            if (!(f & trace::flagCowFault))
                ++t.rec.l1_hits;
            return;
          case trace::EventType::TlbL2Hit:
            ++t.rec.l1_misses;
            ++(instr ? t.rec.l2_instr_hits : t.rec.l2_data_hits);
            if (f & trace::flagSharedHit)
                ++(instr ? t.rec.l2_instr_shared_hits
                         : t.rec.l2_data_shared_hits);
            if (f & trace::flagLongL2)
                ++t.rec.l2_long_accesses;
            return;
          default:
            break;
        }
        ++t.rec.l1_misses;
        ++(instr ? t.rec.l2_instr_misses : t.rec.l2_data_misses);
        if (f & trace::flagLongL2)
            ++t.rec.l2_long_accesses;
        ++t.rec.walks;
        for (unsigned si = 0; si < walk->num_steps; ++si) {
            const trace::Record *s = walk->steps[si];
            if (s->type ==
                static_cast<std::uint8_t>(trace::EventType::PwcHit))
                ++t.rec.pwc_hits;
            else if (trace::walkStepLevel(s->arg) >=
                     static_cast<unsigned>(vm::LevelPmd))
                ++t.rec.pwc_misses;
        }
        if (static_cast<tlb::WalkStatus>(walk->end->flags) ==
            tlb::WalkStatus::Ok) {
            ++t.rec.miss_latency_count;
            if (f & trace::flagLongL2)
                ++t.ml_long;
            t.ml_end_sum += walk->end->arg;
        }
    }

    /** The config-independent half of processBlock. */
    static Block
    analyze(unsigned n, const std::vector<trace::Record> &block)
    {
        Block sb;
        sb.streams.resize(n);
        for (const trace::Record &r : block) {
            if (r.core >= n)
                throw ReplayError("record core out of range");
            if (r.type ==
                static_cast<std::uint8_t>(trace::EventType::StatsReset)) {
                ++sb.resets;
                continue;
            }
            sb.streams[r.core].push_back(&r);
        }
        // (ts, core, seq) block order filtered per core is ts-ordered
        // but the causal ground truth is the per-core seq order.
        for (auto &s : sb.streams)
            std::sort(s.begin(), s.end(),
                      [](const trace::Record *a, const trace::Record *b) {
                          return a->seq < b->seq;
                      });

        // Per core: alternating exec segments and kernel spans, where a
        // span is the kernel events of one fault service (ending at its
        // FaultService record). execs[k] precedes spans[k].
        sb.execs.resize(n);
        sb.spans.resize(n);
        for (unsigned c = 0; c < n; ++c) {
            const auto &s = sb.streams[c];
            std::size_t i = 0;
            while (true) {
                const std::size_t b = i;
                while (i < s.size() && !isKernelEvent(s[i]->type))
                    ++i;
                sb.execs[c].push_back({b, i});
                if (i == s.size())
                    break;
                const std::size_t kb = i;
                while (i < s.size() && isKernelEvent(s[i]->type)) {
                    const bool fin =
                        s[i]->type ==
                        static_cast<std::uint8_t>(
                            trace::EventType::FaultService);
                    ++i;
                    if (fin)
                        break;
                }
                sb.spans[c].push_back({kb, i});
            }
        }

        // A core's k-th fault in a chunk is always serviced in round k
        // (one service per core per round), so index == round. Within a
        // round, spans apply in (fault ts, core) order.
        for (std::size_t round = 0;; ++round) {
            std::vector<unsigned> active;
            for (unsigned c = 0; c < n; ++c)
                if (round < sb.spans[c].size())
                    active.push_back(c);
            if (active.empty())
                break;
            std::sort(active.begin(), active.end(),
                      [&](unsigned a, unsigned b) {
                          const Cycles ta =
                              sb.streams[a][sb.spans[a][round].end - 1]
                                  ->ts;
                          const Cycles tb =
                              sb.streams[b][sb.spans[b][round].end - 1]
                                  ->ts;
                          return ta != tb ? ta < tb : a < b;
                      });
            sb.rounds.push_back(std::move(active));
        }

        // Parse every exec segment into access units up front and tally
        // the recorded-side counters, so per-sweep-point work is pure
        // model execution.
        sb.units.resize(n);
        sb.walks.resize(n);
        sb.exec_units.resize(n);
        sb.tallies.resize(n);
        for (unsigned c = 0; c < n; ++c) {
            for (const Range &e : sb.execs[c]) {
                const std::size_t b = sb.units[c].size();
                parseExec(sb.streams[c], e, sb.units[c], sb.walks[c]);
                sb.exec_units[c].push_back({b, sb.units[c].size()});
            }
            for (const Unit &u : sb.units[c])
                tally(sb.tallies[c], u,
                      u.walk == Unit::no_walk ? nullptr
                                              : &sb.walks[c][u.walk]);
        }
        return sb;
    }
};

struct ReplayEngine::Impl
{
    Impl(const ReplayParams &params, const trace::TraceHeader &hdr)
        : p(params), header(hdr), root("replay")
    {
        if (header.dropped_count > 0)
            throw ReplayError(
                "trace is limit-clipped (" +
                std::to_string(header.dropped_count) +
                " records dropped by BF_TRACE_LIMIT); replay needs a "
                "complete trace — re-record with a higher limit");
        const std::uint32_t required = requiredEventMask();
        if ((header.event_mask & required) != required) {
            std::string missing;
            for (unsigned t = 0; t < trace::numEventTypes; ++t) {
                if ((required & (1u << t)) &&
                    !(header.event_mask & (1u << t))) {
                    if (!missing.empty())
                        missing += ", ";
                    missing += trace::eventTypeName(
                        static_cast<trace::EventType>(t));
                }
            }
            throw ReplayError("trace event mask is missing replay-"
                              "required kinds: " + missing +
                              " — re-record with the default "
                              "BF_TRACE_EVENTS");
        }
        if (p.pwc.entries_per_level == 0 || p.pwc.levels == 0 ||
            p.pwc.assoc == 0)
            throw ReplayError("replay needs a non-degenerate PWC "
                              "geometry");
        for (unsigned c = 0; c < header.num_cores; ++c)
            cores.push_back(std::make_unique<CoreModel>(c, p, &root));
    }

    ReplayParams p;
    trace::TraceHeader header;
    stats::StatGroup root;
    std::vector<std::unique_ptr<CoreModel>> cores;

    /**
     * The schedule currently being replayed: synthesis consults its
     * learned attribute/memo tables. Set by run(), read-only here.
     */
    const ReplaySchedule::Impl *knowledge = nullptr;

    /**
     * Deterministic synthetic table base for tables the recording never
     * walked: high bit set so it can never alias a real physical
     * address, page-aligned like a real table.
     */
    static Addr
    syntheticBase(std::uint32_t pid, std::uint64_t key)
    {
        std::uint64_t h = 1469598103934665603ull;
        auto mix = [&h](std::uint64_t v) {
            for (int i = 0; i < 8; ++i) {
                h ^= (v >> (8 * i)) & 0xff;
                h *= 1099511628211ull;
            }
        };
        mix(pid);
        mix(key);
        return (h & ~std::uint64_t{0xfff}) | (std::uint64_t{1} << 63);
    }

    Addr
    memoPaddr(std::uint32_t pid, std::uint16_t ccid, Addr va, int level)
    {
        const std::uint64_t key =
            ReplaySchedule::Impl::levelBaseKey(va, level);
        if (const Addr *base = knowledge->memo_pid.find(key, pid))
            return *base + 8ull * vm::tableIndex(va, level);
        if (const Addr *base = knowledge->memo_ccid.find(key, ccid))
            return *base + 8ull * vm::tableIndex(va, level);
        return syntheticBase(pid, key) + 8ull * vm::tableIndex(va, level);
    }

    /**
     * Model a narrower O-PC bitmask: an entry whose recorded PC bitmask
     * needs a bit the narrower field cannot hold becomes a private
     * (owned) entry — the kernel's per-process fallback, approximated
     * at fill time. A no-op at the recorded 32-bit width.
     */
    void
    adjustOpcWidth(tlb::TlbEntry &e) const
    {
        if (p.opc_width >= 32)
            return;
        const std::uint32_t maskw = (1u << p.opc_width) - 1;
        if (e.orpc && (e.pc_bitmask & ~maskw)) {
            e.owned = true;
            e.orpc = false;
            e.pc_bitmask = 0;
        } else {
            e.pc_bitmask &= maskw;
        }
    }

    tlb::TlbEntry
    entryFromFill(const trace::Record *f) const
    {
        tlb::TlbEntry e;
        e.valid = true;
        e.size = static_cast<PageSize>(trace::fillSize(f->arg));
        e.vpn = (f->vpage << basePageShift) >> pageShift(e.size);
        e.ppn = 0; //!< No behavioral role in lookups or invalidations.
        e.writable = true;
        e.cow = trace::fillCow(f->arg);
        e.owned = trace::fillOwned(f->arg);
        e.orpc = trace::fillOrpc(f->arg);
        e.pc_bitmask = trace::fillBitmask(f->arg);
        adjustOpcWidth(e);
        return e;
    }

    // ---- Mirrors of the Mmu lookup/fill paths (core/mmu.cc) ----------

    tlb::TlbLookup
    lookupL1(CoreModel &cm, Addr va, bool instr, Pcid pcid, Ccid ccid,
             int process_bit)
    {
        const bool share = p.l1_sharing;
        auto probeOne = [&](tlb::Tlb &t, PageSize size) {
            const Vpn vpn = va >> pageShift(size);
            return share ? t.lookupBabelFish(vpn, ccid, pcid, process_bit)
                         : t.lookupConventional(vpn, pcid);
        };
        if (instr)
            return probeOne(*cm.l1i, PageSize::Size4K);
        for (PageSize size : {PageSize::Size4K, PageSize::Size2M,
                              PageSize::Size1G}) {
            tlb::TlbLookup lookup = probeOne(*cm.l1d[sizeIndex(size)],
                                             size);
            if (lookup.hit())
                return lookup;
        }
        return {};
    }

    tlb::TlbLookup
    lookupL2(CoreModel &cm, Addr va, Pcid pcid, Ccid ccid,
             int process_bit)
    {
        tlb::TlbLookup result;
        for (PageSize size : {PageSize::Size4K, PageSize::Size2M,
                              PageSize::Size1G}) {
            tlb::Tlb &t = *cm.l2[sizeIndex(size)];
            const Vpn vpn = va >> pageShift(size);
            tlb::TlbLookup lookup =
                p.babelfish
                    ? t.lookupBabelFish(vpn, ccid, pcid, process_bit)
                    : t.lookupConventional(vpn, pcid);
            result.bitmask_checked |= lookup.bitmask_checked;
            if (lookup.hit()) {
                lookup.bitmask_checked = result.bitmask_checked;
                return lookup;
            }
        }
        return result;
    }

    void
    fillL1(CoreModel &cm, const tlb::TlbEntry &entry, Pcid pcid,
           Ccid ccid, bool instr)
    {
        tlb::TlbEntry copy = entry;
        copy.pcid = pcid;
        copy.ccid = ccid;
        if (instr) {
            if (copy.size == PageSize::Size4K)
                cm.l1i->fill(copy, p.l1_sharing);
            return;
        }
        cm.l1d[sizeIndex(copy.size)]->fill(copy, p.l1_sharing);
    }

    void
    fillL2(CoreModel &cm, const tlb::TlbEntry &entry, Pcid pcid,
           Ccid ccid)
    {
        tlb::TlbEntry copy = entry;
        copy.ccid = ccid;
        copy.pcid = pcid;
        copy.fill_pcid = pcid;
        if (cm.store) { // Victima: park the displaced entry.
            tlb::TlbEntry evicted;
            if (cm.l2[sizeIndex(copy.size)]->fill(copy, p.babelfish,
                                                  &evicted)) {
                cm.store->insert(evicted);
                ++cm.victima_spills;
            }
            return;
        }
        cm.l2[sizeIndex(copy.size)]->fill(copy, p.babelfish);
        if (cm.detector && copy.size == PageSize::Size4K && !copy.cow &&
            !copy.orpc && copy.pc_bitmask == 0) {
            // PFN-contiguity proxy: traces record no physical frames,
            // so VA adjacency stands in for VA+PA adjacency — an
            // optimistic bound on coalescing (DESIGN.md §16).
            translate::RunDetector::Run run;
            if (cm.detector->note(pcid, copy.vpn, copy.vpn, run)) {
                cm.ranges->insert(run.base_vpn, run.base_ppn, run.len,
                                  pcid, ccid);
                ++cm.range_installs;
            }
        }
    }

    void
    applyInvalidate(CoreModel &cm, const vm::TlbInvalidate &inv)
    {
        using Kind = vm::TlbInvalidate::Kind;
        auto forEachTlb = [&](auto &&fn) {
            fn(*cm.l1i);
            for (auto &t : cm.l1d)
                fn(*t);
            for (auto &t : cm.l2)
                fn(*t);
        };
        switch (inv.kind) {
          case Kind::Page:
            forEachTlb([&](tlb::Tlb &t) {
                if (t.params().page_size == inv.size)
                    t.invalidatePage(inv.pcid, inv.vpn);
            });
            break;
          case Kind::SharedRange:
            forEachTlb([&](tlb::Tlb &t) {
                if (t.params().page_size == inv.size) {
                    t.invalidateSharedRange(inv.ccid, inv.vpn,
                                            inv.num_pages);
                } else if (inv.size == PageSize::Size4K) {
                    const int shift = pageShift(t.params().page_size) -
                                      pageShift(PageSize::Size4K);
                    const Vpn first = inv.vpn >> shift;
                    const Vpn last =
                        (inv.vpn + inv.num_pages - 1) >> shift;
                    t.invalidateSharedRange(inv.ccid, first,
                                            last - first + 1);
                }
            });
            break;
          case Kind::Pcid:
            forEachTlb([&](tlb::Tlb &t) { t.invalidatePcid(inv.pcid); });
            cm.pwc->invalidateAll();
            break;
        }
        // Backend-model structures cache translations too — shootdowns
        // must reach them (same rules as the full-sim backends).
        if (cm.store)
            cm.store->invalidate(inv);
        if (cm.ranges) {
            cm.ranges->invalidate(inv);
            cm.detector->clear();
        }
    }

    // ---- Walk re-execution -------------------------------------------

    WalkOutcome
    replayRecordedWalk(CoreModel &cm, const WalkInfo &w)
    {
        WalkOutcome out;
        bool concordant = true;
        Cycles cycles = 0;
        for (unsigned si = 0; si < w.num_steps; ++si) {
            const trace::Record *s = w.steps[si];
            const auto level =
                static_cast<int>(trace::walkStepLevel(s->arg));
            const Addr paddr = trace::walkStepPaddr(s->arg);
            const bool rec_pwc_hit =
                s->type ==
                static_cast<std::uint8_t>(trace::EventType::PwcHit);
            if (level >= vm::LevelPmd) {
                const bool hit = cm.pwc->lookup(level, paddr);
                if (hit) {
                    cycles += cm.pwc->accessCycles();
                } else {
                    // A step the recording served from its PWC has no
                    // recorded memory level; assume L2 (tables are hot).
                    const unsigned ml =
                        rec_pwc_hit ? 1u
                                    : std::min<unsigned>(s->flags, 3u);
                    cycles += p.mem_level_cycles[ml];
                    ++cm.mem_steps;
                    cm.pwc->fill(level, paddr);
                }
                concordant &= hit == rec_pwc_hit;
            } else {
                cycles += p.mem_level_cycles[std::min<unsigned>(s->flags,
                                                                3u)];
                ++cm.mem_steps;
            }
        }
        const auto status = static_cast<tlb::WalkStatus>(w.end->flags);
        out.ok = status == tlb::WalkStatus::Ok;
        // When the replayed PWC behaved exactly like the recording the
        // recorded cycle count is exact (it includes effects replay
        // cannot see, like the parallel O-PC mask fetch's excess).
        out.cycles = concordant ? w.end->arg : cycles;
        if (out.ok)
            out.fill = entryFromFill(w.fill);
        return out;
    }

    WalkOutcome
    synthesizeWalk(CoreModel &cm, const ReplaySchedule::Impl::Unit &att,
                   Addr va, Pcid pcid, Ccid ccid, bool is_write)
    {
        ++cm.synth_walks;
        // Find the leaf attributes the recording's hit entry carried,
        // probing the same size order as the TLB lookups.
        const LeafAttr *attr = nullptr;
        PageSize size = PageSize::Size4K;
        for (PageSize s : {PageSize::Size4K, PageSize::Size2M,
                           PageSize::Size1G}) {
            const Vpn vpn = va >> pageShift(s);
            if (const LeafAttr *a =
                    knowledge->attr_owned[sizeIndex(s)].find(vpn, pcid)) {
                attr = a;
                size = s;
                break;
            }
            if (const LeafAttr *a =
                    knowledge->attr_shared[sizeIndex(s)].find(vpn, ccid)) {
                attr = a;
                size = s;
                break;
            }
        }
        if (!attr)
            throw ReplayError(
                "recording hit a translation that was never filled in "
                "this trace (va page " + std::to_string(att.vpage) +
                "); replay requires cold-start traces — re-record "
                "without BF_RESTORE");

        WalkOutcome out;
        const int leaf = leafLevel(size);
        for (int level = vm::LevelPgd; level >= leaf; --level) {
            const Addr paddr = memoPaddr(att.pid, ccid, va, level);
            if (level >= vm::LevelPmd) {
                if (cm.pwc->lookup(level, paddr)) {
                    out.cycles += cm.pwc->accessCycles();
                } else {
                    out.cycles += p.mem_level_cycles[1];
                    ++cm.mem_steps;
                    cm.pwc->fill(level, paddr);
                }
            } else {
                out.cycles += p.mem_level_cycles[1];
                ++cm.mem_steps;
            }
        }
        // A write that the recording resolved as a CoW fault (or whose
        // leaf is CoW) walks but does not fill; the fault service and
        // retry stream are fixed by the trace.
        if (is_write &&
            (attr->cow || (att.flags & trace::flagCowFault))) {
            out.ok = false;
            return out;
        }
        out.ok = true;
        out.fill.valid = true;
        out.fill.size = size;
        out.fill.vpn = va >> pageShift(size);
        out.fill.ppn = 0;
        out.fill.writable = true;
        out.fill.cow = attr->cow;
        out.fill.owned = attr->owned;
        out.fill.orpc = attr->orpc;
        out.fill.pc_bitmask = attr->pc_bitmask;
        adjustOpcWidth(out.fill);
        return out;
    }

    // ---- One translate attempt, mirrored ------------------------------

    void
    applyAttempt(CoreModel &cm, const ReplaySchedule::Impl::Unit &att,
                 const WalkInfo *walk)
    {
        const std::uint8_t f = att.flags;
        const bool instr = f & trace::flagInstr;
        const bool is_write = f & trace::flagWrite;
        const Pcid pcid = att.pcid;
        int process_bit = att.process_bit;
        if (process_bit >= static_cast<int>(p.opc_width))
            process_bit = -1; // Bit unassignable at a narrower O-PC.
        const Ccid ccid = att.ccid;
        const Addr va = att.vpage << basePageShift;
        ++cm.accesses;

        tlb::TlbLookup l1 = lookupL1(cm, va, instr, pcid, ccid,
                                     process_bit);
        Cycles cycles = 1;
        if (l1.hit()) {
            if (is_write && l1.entry->cow)
                return; // CoW fault declared: no hit counted, no refill.
            ++cm.l1_hits;
            return;
        }
        ++cm.l1_misses;
        if (p.babelfish && p.aslr_hw)
            cycles += p.aslr_transform_cycles;

        tlb::TlbLookup l2 = lookupL2(cm, va, pcid, ccid, process_bit);
        const bool long_access =
            l2.bitmask_checked || (p.force_long_l2 && p.babelfish);
        cycles += p.l2_4k.access_cycles +
                  (long_access ? p.l2_4k.bitmask_extra_cycles : 0);
        if (long_access)
            ++cm.l2_long_accesses;
        if (l2.hit()) {
            if (instr) {
                ++cm.l2_instr_hits;
                if (l2.shared_hit)
                    ++cm.l2_instr_shared_hits;
            } else {
                ++cm.l2_data_hits;
                if (l2.shared_hit)
                    ++cm.l2_data_shared_hits;
            }
            if (is_write && l2.entry->cow)
                return; // CoW fault: no L1 refill.
            fillL1(cm, *l2.entry, pcid, ccid, instr);
            return;
        }
        // Coalesced: a covering range counts as an L2 hit (the range
        // structure is probed alongside the L2 at no extra cycles).
        if (cm.ranges) {
            if (const translate::RangeEntry *r =
                    cm.ranges->lookup(att.vpage, pcid)) {
                ++cm.range_hits;
                if (instr)
                    ++cm.l2_instr_hits;
                else
                    ++cm.l2_data_hits;
                tlb::TlbEntry e;
                e.valid = true;
                e.vpn = att.vpage;
                e.ppn = r->base_ppn + (att.vpage - r->base_vpn);
                e.size = PageSize::Size4K;
                e.pcid = pcid;
                e.ccid = ccid;
                e.writable = true;
                e.owned = true;
                e.fill_pcid = pcid;
                fillL1(cm, e, pcid, ccid, instr);
                return;
            }
        }
        if (instr)
            ++cm.l2_instr_misses;
        else
            ++cm.l2_data_misses;

        // Victima: probe the backing store before walking. A hit bills
        // the L2 data-array latency and skips the walk entirely.
        if (cm.store) {
            for (PageSize size : {PageSize::Size4K, PageSize::Size2M,
                                  PageSize::Size1G}) {
                std::size_t slot = 0;
                const tlb::TlbEntry *e = cm.store->probe(
                    va >> pageShift(size), size, pcid, ccid, p.babelfish,
                    process_bit, &slot);
                if (!e)
                    continue;
                if (is_write && e->cow)
                    break; // must fault: fall through to the walk
                cycles += p.mem_level_cycles[1];
                cm.miss_latency.sample(cycles);
                tlb::TlbEntry recovered = *e;
                recovered.lru = 0;
                cm.store->erase(slot);
                ++cm.victima_hits;
                fillL2(cm, recovered, pcid, ccid);
                fillL1(cm, recovered, pcid, ccid, instr);
                return;
            }
        }

        ++cm.walks;
        WalkOutcome w = walk ? replayRecordedWalk(cm, *walk)
                             : synthesizeWalk(cm, att, va, pcid, ccid,
                                              is_write);
        cycles += w.cycles;
        if (w.ok) {
            cm.miss_latency.sample(cycles);
            fillL2(cm, w.fill, pcid, ccid);
            // fillL1 from the walk template keeps the template's
            // fill_pcid (0), exactly like Mmu::fillL1(walk.fill).
            fillL1(cm, w.fill, pcid, ccid, instr);
        }
    }

    // ---- Kernel spans -------------------------------------------------

    void
    applySpan(unsigned core,
              const std::vector<const trace::Record *> &s, size_t begin,
              size_t end)
    {
        for (size_t i = begin; i < end; ++i) {
            const trace::Record *r = s[i];
            switch (static_cast<trace::EventType>(r->type)) {
              case trace::EventType::Shootdown: {
                vm::TlbInvalidate inv;
                inv.kind =
                    static_cast<vm::TlbInvalidate::Kind>(r->flags);
                inv.ccid = r->ccid;
                inv.pcid = trace::shootdownPcid(r->arg);
                inv.size = static_cast<PageSize>(
                    trace::shootdownSize(r->arg));
                inv.num_pages = trace::shootdownPages(r->arg);
                inv.vpn = r->vpage >>
                          (pageShift(inv.size) - basePageShift);
                for (auto &cm : cores)
                    applyInvalidate(*cm, inv);
                break;
              }
              case trace::EventType::FaultService:
                // A raced CoW fault resolved without kernel work: only
                // the faulting core's stale entry is dropped
                // (Mmu::translate's FaultKind::None path).
                if (trace::faultDeclaredCow(r->arg) &&
                    static_cast<vm::FaultKind>(r->flags) ==
                        vm::FaultKind::None) {
                    const auto size = static_cast<PageSize>(
                        trace::faultStaleSize(r->arg));
                    vm::TlbInvalidate inv;
                    inv.kind = vm::TlbInvalidate::Kind::Page;
                    inv.ccid = r->ccid;
                    inv.pcid = trace::faultPcid(r->arg);
                    inv.size = size;
                    inv.num_pages = 1;
                    inv.vpn = r->vpage >>
                              (pageShift(size) - basePageShift);
                    applyInvalidate(*cores[core], inv);
                }
                break;
              default:
                break; // CowPrivatize / MaskFallback: informational.
            }
        }
    }

    // ---- Exec segments: parse access units ----------------------------

    void
    processExec(unsigned core, const ReplaySchedule::Impl::Block &sb,
                std::size_t seg)
    {
        CoreModel &cm = *cores[core];
        const auto range = sb.exec_units[core][seg];
        const auto &units = sb.units[core];
        const auto &walks = sb.walks[core];
        for (std::size_t i = range.begin; i < range.end; ++i)
            applyAttempt(
                cm, units[i],
                units[i].walk == ReplaySchedule::Impl::Unit::no_walk
                    ? nullptr
                    : &walks[units[i].walk]);
    }

    void
    resetAllStats()
    {
        for (auto &cm : cores) {
            cm->accesses.reset();
            cm->l1_hits.reset();
            cm->l1_misses.reset();
            cm->l2_data_hits.reset();
            cm->l2_data_misses.reset();
            cm->l2_instr_hits.reset();
            cm->l2_instr_misses.reset();
            cm->l2_data_shared_hits.reset();
            cm->l2_instr_shared_hits.reset();
            cm->l2_long_accesses.reset();
            cm->walks.reset();
            cm->mem_steps.reset();
            cm->synth_walks.reset();
            cm->miss_latency.reset();
            cm->l1i->resetStats();
            for (auto &t : cm->l1d)
                t->resetStats();
            for (auto &t : cm->l2)
                t->resetStats();
            cm->pwc->resetStats();
            cm->rec = Counters{};
        }
    }

    // ---- Per-block driver ---------------------------------------------

    /**
     * Replay the recording's global order: all bound segments, then
     * rounds of fault services — the round's spans in (fault ts, core)
     * order, then the faulting cores' resumed segments.
     */
    void
    executeBlock(const ReplaySchedule::Impl::Block &sb)
    {
        // System::resetStats happens between chunks; its marker leads
        // the next block, so the reset applies before any of its events.
        for (unsigned i = 0; i < sb.resets; ++i)
            resetAllStats();

        const unsigned n = static_cast<unsigned>(cores.size());

        // The recorded-side tallies were accumulated per block when the
        // schedule was built (they are config-independent); only the
        // miss-latency sum folds in configured per-access costs here.
        for (unsigned c = 0; c < n; ++c) {
            const auto &t = sb.tallies[c];
            Counters d = t.rec;
            d.miss_latency_sum =
                t.rec.miss_latency_count *
                    (1 +
                     (p.babelfish && p.aslr_hw ? p.aslr_transform_cycles
                                               : 0) +
                     p.l2_4k.access_cycles) +
                t.ml_long * p.l2_4k.bitmask_extra_cycles + t.ml_end_sum;
            cores[c]->rec += d;
        }

        for (unsigned c = 0; c < n; ++c)
            processExec(c, sb, 0);
        for (size_t round = 0; round < sb.rounds.size(); ++round) {
            for (unsigned c : sb.rounds[round])
                applySpan(c, sb.streams[c], sb.spans[c][round].begin,
                          sb.spans[c][round].end);
            for (unsigned c = 0; c < n; ++c)
                if (round < sb.spans[c].size())
                    processExec(c, sb, round + 1);
        }
    }

    Counters
    replayedOf(const CoreModel &cm) const
    {
        Counters c;
        c.accesses = cm.accesses.value();
        c.l1_hits = cm.l1_hits.value();
        c.l1_misses = cm.l1_misses.value();
        c.l2_data_hits = cm.l2_data_hits.value();
        c.l2_data_misses = cm.l2_data_misses.value();
        c.l2_instr_hits = cm.l2_instr_hits.value();
        c.l2_instr_misses = cm.l2_instr_misses.value();
        c.l2_data_shared_hits = cm.l2_data_shared_hits.value();
        c.l2_instr_shared_hits = cm.l2_instr_shared_hits.value();
        c.l2_long_accesses = cm.l2_long_accesses.value();
        c.walks = cm.walks.value();
        c.pwc_hits = cm.pwc->hits.value();
        c.pwc_misses = cm.pwc->misses.value();
        c.miss_latency_count = cm.miss_latency.count();
        c.miss_latency_sum = cm.miss_latency.sum();
        return c;
    }
};

ReplayEngine::ReplayEngine(const ReplayParams &params,
                           const trace::TraceHeader &header)
    : impl_(std::make_unique<Impl>(params, header))
{
}

ReplayEngine::~ReplayEngine() = default;

void
ReplayEngine::run(trace::TraceReader &reader)
{
    std::vector<std::vector<trace::Record>> blocks;
    {
        std::vector<trace::Record> block;
        while (reader.nextBlock(block))
            blocks.push_back(std::move(block));
    }
    const ReplaySchedule schedule(impl_->header, std::move(blocks));
    run(schedule);
    impl_->knowledge = nullptr; // The local schedule dies here.
}

void
ReplayEngine::run(const ReplaySchedule &schedule)
{
    if (schedule.numCores() != numCores())
        throw ReplayError("schedule was built for a different core "
                          "count than this engine's trace header");
    impl_->knowledge = schedule.impl_.get();
    for (const auto &sb : schedule.impl_->blocks)
        impl_->executeBlock(sb);
}

ReplaySchedule::ReplaySchedule(
    const trace::TraceHeader &header,
    const std::vector<std::vector<trace::Record>> &blocks)
    : ReplaySchedule(header,
                     std::vector<std::vector<trace::Record>>(blocks))
{
}

ReplaySchedule::ReplaySchedule(
    const trace::TraceHeader &header,
    std::vector<std::vector<trace::Record>> &&blocks)
    : impl_(std::make_unique<Impl>())
{
    impl_->num_cores = header.num_cores;
    impl_->babelfish = header.config.babelfish;
    // Take ownership first: analyze() stores pointers to individual
    // records, so they must already live in their final home.
    impl_->records = std::move(blocks);
    impl_->blocks.reserve(impl_->records.size());
    for (const auto &block : impl_->records) {
        impl_->blocks.push_back(Impl::analyze(header.num_cores, block));
        impl_->learn(block);
    }
}

ReplaySchedule::~ReplaySchedule() = default;

unsigned
ReplaySchedule::numCores() const
{
    return impl_->num_cores;
}

unsigned
ReplayEngine::numCores() const
{
    return static_cast<unsigned>(impl_->cores.size());
}

Counters
ReplayEngine::replayed(unsigned core) const
{
    return impl_->replayedOf(*impl_->cores.at(core));
}

Counters
ReplayEngine::recorded(unsigned core) const
{
    return impl_->cores.at(core)->rec;
}

Counters
ReplayEngine::replayedTotal() const
{
    Counters total;
    for (const auto &cm : impl_->cores)
        total += impl_->replayedOf(*cm);
    return total;
}

Counters
ReplayEngine::recordedTotal() const
{
    Counters total;
    for (const auto &cm : impl_->cores)
        total += cm->rec;
    return total;
}

std::vector<CounterDiff>
ReplayEngine::validate() const
{
    std::vector<CounterDiff> diffs;
    for (unsigned c = 0; c < numCores(); ++c) {
        const Counters rep = replayed(c);
        const Counters rec = recorded(c);
        auto check = [&](const char *name, std::uint64_t recorded_v,
                         std::uint64_t replayed_v) {
            if (recorded_v != replayed_v)
                diffs.push_back({"core" + std::to_string(c) + "." + name,
                                 c, recorded_v, replayed_v});
        };
        check("l1_hits", rec.l1_hits, rep.l1_hits);
        check("l1_misses", rec.l1_misses, rep.l1_misses);
        check("l2_data_hits", rec.l2_data_hits, rep.l2_data_hits);
        check("l2_data_misses", rec.l2_data_misses, rep.l2_data_misses);
        check("l2_instr_hits", rec.l2_instr_hits, rep.l2_instr_hits);
        check("l2_instr_misses", rec.l2_instr_misses,
              rep.l2_instr_misses);
        check("l2_data_shared_hits", rec.l2_data_shared_hits,
              rep.l2_data_shared_hits);
        check("l2_instr_shared_hits", rec.l2_instr_shared_hits,
              rep.l2_instr_shared_hits);
        check("l2_long_accesses", rec.l2_long_accesses,
              rep.l2_long_accesses);
        check("walks", rec.walks, rep.walks);
        check("pwc_hits", rec.pwc_hits, rep.pwc_hits);
        check("pwc_misses", rec.pwc_misses, rep.pwc_misses);
        check("miss_latency_count", rec.miss_latency_count,
              rep.miss_latency_count);
        check("miss_latency_sum", rec.miss_latency_sum,
              rep.miss_latency_sum);
    }
    return diffs;
}

std::string
ReplayEngine::statsJson() const
{
    return stats::toJsonString(impl_->root);
}

} // namespace bf::replay
