/**
 * @file
 * The per-core MMU: L1 I/D TLBs, the unified L2 TLB, the ASLR-HW
 * transform between them, the page-walk cache and walker, and the
 * page-fault retry loop.
 */

#ifndef BF_CORE_MMU_HH
#define BF_CORE_MMU_HH

#include <array>
#include <memory>

#include "common/stats.hh"
#include "common/trace/trace.hh"
#include "common/types.hh"
#include "core/epoch.hh"
#include "core/params.hh"
#include "mem/hierarchy.hh"
#include "tlb/page_walk_cache.hh"
#include "tlb/page_walker.hh"
#include "tlb/tlb.hh"
#include "vm/kernel.hh"
#include "vm/tlb_hooks.hh"

namespace bf::core
{

/** Result of one address translation. */
struct Translation
{
    Cycles cycles = 0;     //!< Total translation latency incl. faults.
    Addr paddr = 0;        //!< Physical address of the access.
    PageSize size = PageSize::Size4K;
    bool faulted = false;  //!< Any page fault was taken.
    /**
     * Bound phase only: the translation hit a page fault, which was
     * deferred to the core's epoch log instead of being handled. cycles
     * holds the probe time spent up to the fault; paddr is invalid. The
     * core suspends and re-issues after the fault is serviced.
     */
    bool blocked = false;
};

/** One core's memory-management unit. */
class Mmu
{
  public:
    /**
     * @param core_id owning core.
     * @param params TLB geometry and BabelFish/ASLR configuration.
     * @param hierarchy cache hierarchy for walks.
     * @param kernel page-table owner / fault handler.
     */
    Mmu(unsigned core_id, const MmuParams &params,
        mem::CacheHierarchy &hierarchy, vm::Kernel &kernel,
        stats::StatGroup *parent = nullptr);

    /**
     * Translate a canonical VA for a process, handling faults.
     * @param now the core's current cycle.
     */
    Translation translate(vm::Process &proc, Addr canonical_va,
                          AccessType type, Cycles now);

    /** Apply a kernel shootdown to every TLB structure of this core. */
    void applyInvalidate(const vm::TlbInvalidate &inv);

    /**
     * Attach the core's bound-phase event log (System wires it). While
     * the log is active, translate() defers page faults into it and
     * returns Translation::blocked instead of calling the kernel.
     */
    void setEpochLog(EpochLog *log) { epoch_log_ = log; }

    /**
     * Attach the run's event tracer (System wires it; null detaches).
     * Also forwards to the page walker. Tracing never changes stats or
     * timing, only what gets recorded.
     */
    void setTracer(trace::Tracer *tracer);

    /**
     * Book the stats of a serviced deferred fault, mirroring what the
     * serial retry loop would have counted at the fault site.
     */
    void noteDeferredFault(const vm::FaultOutcome &outcome,
                           bool declared_cow);

    /** Drop all TLB and PWC state (tests / phase changes). */
    void flushAll();

    /** @{ @name Structure access for tests */
    tlb::Tlb &l1d(PageSize size) { return *l1d_[sizeIndex(size)]; }
    tlb::Tlb &l1i() { return *l1i_4k_; }
    tlb::Tlb &l2(PageSize size) { return *l2_[sizeIndex(size)]; }
    tlb::Pwc &pwc() { return *pwc_; }
    tlb::PageWalker &walker() { return *walker_; }
    /** @} */

    /** @{ @name Statistics (access-level, across page sizes) */
    stats::Scalar l1_hits;
    stats::Scalar l1_misses;
    stats::Scalar l2_data_hits;
    stats::Scalar l2_data_misses;
    stats::Scalar l2_instr_hits;
    stats::Scalar l2_instr_misses;
    stats::Scalar l2_data_shared_hits;
    stats::Scalar l2_instr_shared_hits;
    stats::Scalar l2_long_accesses;   //!< 12-cycle PC-bitmask lookups.
    stats::Scalar minor_faults;
    stats::Scalar major_faults;
    stats::Scalar cow_faults;
    stats::Scalar shared_installs;
    stats::Scalar fault_cycles;
    /** Full translate() latency of accesses that missed both TLB levels. */
    stats::Distribution miss_latency;
    /** @} */

    void resetStats();

    const MmuParams &params() const { return params_; }

    /**
     * @{
     * @name Checkpointing
     * All TLB structures and the PWC. The walker holds no mutable
     * non-stat state, and pb_cache_ is reset on restore: it is a pure
     * lookup memo with no stat side effects, so re-warming it cannot
     * perturb the resumed run.
     */
    void save(snap::ArchiveWriter &ar) const;
    void restore(snap::ArchiveReader &ar);
    /** @} */

  private:
    unsigned core_id_;
    MmuParams params_;
    mem::CacheHierarchy &hierarchy_;
    vm::Kernel &kernel_;
    stats::StatGroup stat_group_;

    std::unique_ptr<tlb::Tlb> l1i_4k_;
    std::array<std::unique_ptr<tlb::Tlb>, numPageSizes> l1d_;
    std::array<std::unique_ptr<tlb::Tlb>, numPageSizes> l2_;
    std::unique_ptr<tlb::Pwc> pwc_;
    std::unique_ptr<tlb::PageWalker> walker_;
    EpochLog *epoch_log_ = nullptr;
    trace::Tracer *tracer_ = nullptr;

    /**
     * Direct-mapped cache of Kernel::processBit answers keyed by
     * {process, 1 GB region}. A thread's request loop strides across
     * several regions (code, stack, dataset, buffers), so a single
     * entry thrashes — a handful indexed by region ⊕ pid captures the
     * whole working set and turns the per-translate region lookups
     * into one compare. Correctness: the kernel bumps the group's
     * mask_generation counter on every mutation that can change a
     * processBit() answer; each entry stores the counter's address and
     * the value observed at fill, so a bump — or a different process
     * or region, including one from another CCID group — misses and
     * re-queries. Pids are never reused, so a dead process' entry can
     * never match a live one.
     */
    struct PbCache
    {
        const std::uint64_t *gen_ptr = nullptr;
        std::uint64_t gen = 0;
        Pid pid = 0;
        Addr region = ~0ull;
        int bit = -1;
    };
    static constexpr std::size_t kPbCacheSize = 16; //!< Power of two.
    std::array<PbCache, kPbCacheSize> pb_cache_{};

    /** Kernel::processBit through pb_cache_. */
    int cachedProcessBit(const vm::Process &proc, Addr canonical_va);

    /**
     * L0 inline translation cache: a small direct-mapped front cache
     * over lookupL1 that short-circuits the common repeated hit. Each
     * slot remembers which live TLB entry answered a {VPN, PCID, kind}
     * lookup; a hit re-validates the entry in place (valid, VPN, PCID)
     * and replays the exact side effects of the bypassed probe
     * sequence — per-structure hit/miss counters, the LRU touch, the
     * +1 cycle, the trace record — so architectural stats stay
     * byte-identical with the cache on or off.
     *
     * Coherence: shootdowns, CoW privatization and eviction all mark
     * or overwrite the referenced TlbEntry, which the live check
     * catches. Entries for huge pages additionally replay the misses
     * of the smaller structures probed before the hit; those replays
     * assume the earlier structures still miss, so such slots carry
     * the generation l0_gen_, bumped on every L1 fill and every
     * shootdown applied to this MMU. Only enabled when the L1 uses the
     * conventional (non-CCID-shared) lookup; the BabelFish L1 lookup's
     * candidate semantics are left on the slow path.
     */
    struct L0Entry
    {
        Vpn vpn4k = ~0ull;            //!< VA >> 12 (slot tag).
        tlb::TlbEntry *entry = nullptr;
        tlb::Tlb *owner = nullptr;
        std::uint64_t gen = 0;
        Pcid pcid = 0;
        std::uint8_t shift = 0;       //!< Page shift of the entry.
        std::uint8_t owner_kind = 0;  //!< 0=l1i, 1+sizeIndex for data.
        bool is_ifetch = false;
        bool gen_sensitive = false;   //!< Huge-page slot: check gen.
    };
    static constexpr std::size_t kL0Size = 256; //!< Power of two.
    std::array<L0Entry, kL0Size> l0_{};
    std::uint64_t l0_gen_ = 1;
    bool l0_enabled_ = false;

    static std::size_t
    l0Index(Vpn vpn4k, Pcid pcid, bool ifetch)
    {
        return (vpn4k ^ (vpn4k >> 14) ^ (static_cast<Vpn>(pcid) << 3) ^
                (ifetch ? 0x55u : 0u)) &
               (kL0Size - 1);
    }

    /** Remember a slow-path L1 hit for the L0 fast path. */
    void installL0(Addr va, Pcid pcid, AccessType type, PageSize size,
                   const tlb::TlbEntry *entry);

    static unsigned sizeIndex(PageSize size)
    {
        return static_cast<unsigned>(size);
    }

    /** Probe the right L1 structures; returns the lookup and size. */
    tlb::TlbLookup lookupL1(vm::Process &proc, Addr va, AccessType type,
                            PageSize &size_out, int process_bit);
    /** Probe the L2 structures. */
    tlb::TlbLookup lookupL2(vm::Process &proc, Addr va, AccessType type,
                            PageSize &size_out, int process_bit);

    void fillL1(const tlb::TlbEntry &entry, vm::Process &proc,
                AccessType type);
    void fillL2(const tlb::TlbEntry &entry, vm::Process &proc);
};

} // namespace bf::core

#endif // BF_CORE_MMU_HH
