/**
 * @file
 * The per-core MMU facade: owns the "mmu" stat group, the access-level
 * counters every backend books into, and the pluggable translation
 * backend (translate::Backend, DESIGN.md §16) that implements the
 * actual lookup→fill→walk→fault machinery. MmuParams::backend selects
 * the design; the rest of the simulator talks to this class exactly as
 * it did before the interface existed.
 */

#ifndef BF_CORE_MMU_HH
#define BF_CORE_MMU_HH

#include <memory>

#include "common/stats.hh"
#include "common/trace/trace.hh"
#include "common/types.hh"
#include "core/epoch.hh"
#include "core/params.hh"
#include "mem/hierarchy.hh"
#include "tlb/page_walk_cache.hh"
#include "tlb/page_walker.hh"
#include "tlb/tlb.hh"
#include "translate/backend.hh"
#include "vm/kernel.hh"
#include "vm/tlb_hooks.hh"

namespace bf::core
{

/** Result of one address translation (see translate::Translation). */
using Translation = translate::Translation;

/**
 * One core's memory-management unit.
 *
 * Inherits TranslateStats so the access-level counters keep their
 * historical homes (`mmu.l1_hits`, `&Mmu::l2_data_hits` member
 * pointers in the sampler) while the selected backend books into them
 * by reference.
 */
class Mmu : public translate::TranslateStats
{
  public:
    /**
     * @param core_id owning core.
     * @param params TLB geometry and BabelFish/ASLR/backend selection.
     * @param hierarchy cache hierarchy for walks.
     * @param kernel page-table owner / fault handler.
     */
    Mmu(unsigned core_id, const MmuParams &params,
        mem::CacheHierarchy &hierarchy, vm::Kernel &kernel,
        stats::StatGroup *parent = nullptr);

    /**
     * Translate a canonical VA for a process, handling faults.
     * @param now the core's current cycle.
     */
    Translation
    translate(vm::Process &proc, Addr canonical_va, AccessType type,
              Cycles now)
    {
        return backend_->translate(proc, canonical_va, type, now);
    }

    /** Apply a kernel shootdown to every structure of this core. */
    void
    applyInvalidate(const vm::TlbInvalidate &inv)
    {
        backend_->applyInvalidate(inv);
    }

    /**
     * Attach the core's bound-phase event log (System wires it). While
     * the log is active, translate() defers page faults into it and
     * returns Translation::blocked instead of calling the kernel.
     */
    void setEpochLog(EpochLog *log) { backend_->setEpochLog(log); }

    /**
     * Attach the run's event tracer (System wires it; null detaches).
     * Also forwards to the page walker. Tracing never changes stats or
     * timing, only what gets recorded.
     */
    void setTracer(trace::Tracer *tracer) { backend_->setTracer(tracer); }

    /**
     * Attach the per-container attribution registry and this core's
     * sink (System wires them; nulls detach). Forwards to the backend,
     * which books only the TLB eviction edges — the scalar mirrors come
     * from the core's window deltas (Core::flushAttribWindow).
     */
    void
    setAttrib(attrib::Registry *registry, attrib::CoreSink *sink)
    {
        backend_->setAttrib(registry, sink);
    }

    /**
     * Book the stats of a serviced deferred fault, mirroring what the
     * serial retry loop would have counted at the fault site. The
     * counters land in the blocked core's open attribution window,
     * which still belongs to the faulting process (@p proc, unused
     * here, documents that ownership).
     */
    void noteDeferredFault(const vm::Process &proc,
                           const vm::FaultOutcome &outcome,
                           bool declared_cow);

    /** Drop all cached translation state (tests / phase changes). */
    void flushAll() { backend_->flushAll(); }

    /** The selected translation backend. */
    translate::Backend &backend() { return *backend_; }

    /** @{ @name Structure access for tests and the sampler */
    tlb::Tlb &l1d(PageSize size) { return backend_->l1d(size); }
    tlb::Tlb &l1i() { return backend_->l1i(); }
    tlb::Tlb &l2(PageSize size) { return backend_->l2(size); }
    tlb::Pwc &pwc() { return backend_->pwc(); }
    tlb::PageWalker &walker() { return backend_->walker(); }
    /** @} */

    void resetStats();

    const MmuParams &params() const { return params_; }

    /**
     * @{
     * @name Checkpointing
     * Delegates to the backend: all TLB structures, the PWC, and any
     * backend-specific state.
     */
    void save(snap::ArchiveWriter &ar) const { backend_->save(ar); }
    void restore(snap::ArchiveReader &ar) { backend_->restore(ar); }
    /** @} */

  private:
    MmuParams params_;
    stats::StatGroup stat_group_;
    std::unique_ptr<translate::Backend> backend_;
};

} // namespace bf::core

#endif // BF_CORE_MMU_HH
