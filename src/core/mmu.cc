#include "core/mmu.hh"

namespace bf::core
{

Mmu::Mmu(unsigned core_id, const MmuParams &params,
         mem::CacheHierarchy &hierarchy, vm::Kernel &kernel,
         stats::StatGroup *parent)
    : params_(params), stat_group_("mmu", parent)
{
    // The backend registers its structure subgroups (TLBs, PWC, walker,
    // and any competitor-specific groups) first, then the access-level
    // scalars join the group — the same construction order as the
    // pre-interface Mmu, so the stats tree is byte-identical for the
    // reference backend.
    backend_ = translate::createBackend(core_id, params_, hierarchy,
                                        kernel, *this, stat_group_);

    stat_group_.addStat("l1_hits", &l1_hits);
    stat_group_.addStat("l1_misses", &l1_misses);
    stat_group_.addStat("l2_data_hits", &l2_data_hits);
    stat_group_.addStat("l2_data_misses", &l2_data_misses);
    stat_group_.addStat("l2_instr_hits", &l2_instr_hits);
    stat_group_.addStat("l2_instr_misses", &l2_instr_misses);
    stat_group_.addStat("l2_data_shared_hits", &l2_data_shared_hits);
    stat_group_.addStat("l2_instr_shared_hits", &l2_instr_shared_hits);
    stat_group_.addStat("l2_long_accesses", &l2_long_accesses);
    stat_group_.addStat("minor_faults", &minor_faults);
    stat_group_.addStat("major_faults", &major_faults);
    stat_group_.addStat("cow_faults", &cow_faults);
    stat_group_.addStat("shared_installs", &shared_installs);
    stat_group_.addStat("fault_cycles", &fault_cycles);
    stat_group_.addStat("miss_latency", &miss_latency);
}

void
Mmu::noteDeferredFault(const vm::Process &proc,
                       const vm::FaultOutcome &outcome, bool declared_cow)
{
    (void)proc;
    fault_cycles += outcome.cycles;
    if (declared_cow) {
        // The TLB-hit CoW sites count cow_faults unconditionally, even
        // when the kernel reports a raced fill (FaultKind::None).
        ++cow_faults;
        return;
    }
    switch (outcome.kind) {
      case vm::FaultKind::Minor: ++minor_faults; break;
      case vm::FaultKind::Major: ++major_faults; break;
      case vm::FaultKind::Cow: ++cow_faults; break;
      case vm::FaultKind::SharedInstall: ++shared_installs; break;
      default: break;
    }
}

void
Mmu::resetStats()
{
    l1_hits.reset();
    l1_misses.reset();
    l2_data_hits.reset();
    l2_data_misses.reset();
    l2_instr_hits.reset();
    l2_instr_misses.reset();
    l2_data_shared_hits.reset();
    l2_instr_shared_hits.reset();
    l2_long_accesses.reset();
    minor_faults.reset();
    major_faults.reset();
    cow_faults.reset();
    shared_installs.reset();
    fault_cycles.reset();
    miss_latency.reset();
    backend_->resetStats();
}

} // namespace bf::core
