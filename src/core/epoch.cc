#include "core/epoch.hh"

namespace bf::core
{

namespace
{

/** Spin briefly on @p cond, then fall back to yielding. */
template <typename Cond>
void
spinUntil(Cond cond)
{
    unsigned spins = 0;
    while (!cond()) {
        if (++spins > 4096) {
            std::this_thread::yield();
            spins = 0;
        }
    }
}

} // namespace

BoundPool::BoundPool(unsigned extra_workers)
    : stripe_count_(extra_workers + 1),
      cursors_(std::make_unique<BlockCursor[]>(stripe_count_))
{
    threads_.reserve(extra_workers);
    for (unsigned i = 0; i < extra_workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i + 1); });
}

BoundPool::~BoundPool()
{
    stop_.store(true, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_release);
    for (auto &t : threads_)
        t.join();
}

void
BoundPool::drainBlock(unsigned block, const std::function<void(unsigned)> &fn)
{
    const unsigned end = blockBegin(block + 1);
    std::atomic<unsigned> &cursor = cursors_[block].next;
    // Cheap pre-check keeps steal sweeps from bumping exhausted
    // cursors; the fetch_add below is the authoritative unique claim.
    while (cursor.load(std::memory_order_relaxed) < end) {
        const unsigned i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= end)
            break;
        fn(i);
    }
}

void
BoundPool::workerLoop(unsigned stripe)
{
    std::uint64_t seen = 0;
    for (;;) {
        spinUntil([&] {
            return generation_.load(std::memory_order_acquire) != seen;
        });
        if (stop_.load(std::memory_order_acquire))
            return;
        seen = generation_.load(std::memory_order_acquire);
        const auto &fn = *job_;
        // Own block first, then steal from the others round-robin.
        for (unsigned b = 0; b < stripe_count_; ++b)
            drainBlock((stripe + b) % stripe_count_, fn);
        // Last touch of round state: after this the worker only reads
        // generation_, so the caller may safely set up the next round.
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
BoundPool::run(unsigned n, const std::function<void(unsigned)> &fn)
{
    if (threads_.empty() || n <= 1) {
        for (unsigned i = 0; i < n; ++i)
            fn(i);
        return;
    }
    job_ = &fn;
    n_ = n;
    for (unsigned s = 0; s < stripe_count_; ++s)
        cursors_[s].next.store(blockBegin(s), std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    // The caller is stripe 0: drain its block, then steal.
    for (unsigned b = 0; b < stripe_count_; ++b)
        drainBlock(b, fn);
    const unsigned workers = static_cast<unsigned>(threads_.size());
    spinUntil([&] {
        return done_.load(std::memory_order_acquire) == workers;
    });
    job_ = nullptr;
}

} // namespace bf::core
