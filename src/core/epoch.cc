#include "core/epoch.hh"

namespace bf::core
{

namespace
{

/** Spin briefly on @p cond, then fall back to yielding. */
template <typename Cond>
void
spinUntil(Cond cond)
{
    unsigned spins = 0;
    while (!cond()) {
        if (++spins > 4096) {
            std::this_thread::yield();
            spins = 0;
        }
    }
}

/** Append event @p i of @p log (issued by @p core) to @p out. */
void
emitEvent(const EpochLog &log, std::size_t i, unsigned core,
          WeaveStream &out, bool write_probes)
{
    const std::uint8_t flags = log.flags(i);
    // Every write owes a peer probe: explicit flagProbe events (L1/L2
    // write hits) carry only that, while a write access also needs the
    // L3/DRAM service the historical replay fused with its probe.
    if (write_probes && (flags & EpochLog::flagWrite)) {
        out.probe_paddr.push_back(log.paddr(i));
        out.probe_core.push_back(static_cast<std::uint8_t>(core));
    }
    if (!(flags & EpochLog::flagProbe)) {
        out.ts.push_back(log.ts(i));
        out.paddr.push_back(log.paddr(i));
        out.core.push_back(static_cast<std::uint8_t>(core));
        out.flags.push_back(flags);
        out.slot.push_back(log.slot(i));
    }
}

} // namespace

void
mergeEpochLogs(const std::vector<std::unique_ptr<EpochLog>> &logs,
               WeaveStream &out, bool write_probes)
{
    out.clear();
    bf_assert(logs.size() <= 256, "WeaveStream packs core ids in a byte");

    // One merge head per non-empty log. ts is cached so the min-scan
    // below reads a dense local array, not the logs.
    struct Head
    {
        Cycles ts;
        unsigned core;
        const EpochLog *log;
        std::size_t idx;
    };
    Head heads[256];
    unsigned live = 0;
    std::size_t total = 0;
    for (unsigned c = 0; c < logs.size(); ++c) {
        const EpochLog &log = *logs[c];
        if (log.empty())
            continue;
        heads[live++] = {log.ts(0), c, &log, 0};
        total += log.size();
    }
    if (live == 0)
        return;

    out.ts.reserve(total);
    out.paddr.reserve(total);
    out.core.reserve(total);
    out.flags.reserve(total);
    out.slot.reserve(total);

    // Single-run fast path: one core issued every event this chunk
    // (FaaS groups run on one core), so its log already is the
    // canonical order.
    if (live == 1) {
        const EpochLog &log = *heads[0].log;
        for (std::size_t i = 0; i < log.size(); ++i)
            emitEvent(log, i, heads[0].core, out, write_probes);
        return;
    }

    // k-way ladder: repeatedly emit the (ts, core)-minimal head. Heads
    // are kept in core order, so the strict `<` scan resolves timestamp
    // ties toward the lower core id, and a head's events leave in
    // append (= seq) order — together the historical (ts, core, seq)
    // sort key, which is unique, so the emitted order is exactly the
    // order the global sort produced.
    while (live > 1) {
        unsigned min = 0;
        for (unsigned h = 1; h < live; ++h) {
            if (heads[h].ts < heads[min].ts)
                min = h;
        }
        Head &head = heads[min];
        emitEvent(*head.log, head.idx, head.core, out, write_probes);
        if (++head.idx < head.log->size()) {
            const Cycles next = head.log->ts(head.idx);
            bf_assert(next >= head.ts,
                      "epoch log not timestamp-ordered on core ",
                      head.core);
            head.ts = next;
        } else {
            // Drop the exhausted head; shifting keeps core order.
            for (unsigned h = min; h + 1 < live; ++h)
                heads[h] = heads[h + 1];
            --live;
        }
    }
    const Head &last = heads[0];
    for (std::size_t i = last.idx; i < last.log->size(); ++i)
        emitEvent(*last.log, i, last.core, out, write_probes);
}

BoundPool::BoundPool(unsigned extra_workers)
    : stripe_count_(extra_workers + 1),
      cursors_(std::make_unique<BlockCursor[]>(stripe_count_))
{
    threads_.reserve(extra_workers);
    for (unsigned i = 0; i < extra_workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i + 1); });
}

BoundPool::~BoundPool()
{
    stop_.store(true, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_release);
    for (auto &t : threads_)
        t.join();
}

void
BoundPool::drainBlock(unsigned block, const std::function<void(unsigned)> &fn)
{
    const unsigned end =
        block + 1 == active_stripes_ ? n_ : blockBegin(block + 1);
    std::atomic<unsigned> &cursor = cursors_[block].next;
    // Cheap pre-check keeps steal sweeps from bumping exhausted
    // cursors; the fetch_add below is the authoritative unique claim.
    while (cursor.load(std::memory_order_relaxed) < end) {
        const unsigned i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= end)
            break;
        fn(i);
    }
}

void
BoundPool::workerLoop(unsigned stripe)
{
    std::uint64_t seen = 0;
    for (;;) {
        spinUntil([&] {
            return generation_.load(std::memory_order_acquire) != seen;
        });
        if (stop_.load(std::memory_order_acquire))
            return;
        seen = generation_.load(std::memory_order_acquire);
        // Stripes above the round's cap have no block; they only
        // acknowledge the round so run() can retire it.
        const unsigned active = active_stripes_;
        if (stripe < active) {
            const auto &fn = *job_;
            // Own block first, then steal from the others round-robin.
            for (unsigned b = 0; b < active; ++b)
                drainBlock((stripe + b) % active, fn);
        }
        // Last touch of round state: after this the worker only reads
        // generation_, so the caller may safely set up the next round.
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
BoundPool::run(unsigned n, const std::function<void(unsigned)> &fn,
               unsigned stripes)
{
    if (stripes == 0 || stripes > stripe_count_)
        stripes = stripe_count_;
    if (threads_.empty() || n <= 1 || stripes <= 1) {
        for (unsigned i = 0; i < n; ++i)
            fn(i);
        return;
    }
    job_ = &fn;
    n_ = n;
    active_stripes_ = stripes;
    for (unsigned s = 0; s < stripes; ++s)
        cursors_[s].next.store(blockBegin(s), std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    // The caller is stripe 0: drain its block, then steal.
    for (unsigned b = 0; b < stripes; ++b)
        drainBlock(b, fn);
    const unsigned workers = static_cast<unsigned>(threads_.size());
    spinUntil([&] {
        return done_.load(std::memory_order_acquire) == workers;
    });
    job_ = nullptr;
}

} // namespace bf::core
