#include "core/sampler.hh"

#include <sstream>

#include "common/stats_export.hh"

namespace bf::core
{

void
StatSampler::toJson(std::ostream &os) const
{
    os << "{\"interval_cycles\":" << interval_ << ",\"probes\":[";
    bool first = true;
    for (const auto &name : names_) {
        os << (first ? "" : ",") << '"' << stats::jsonEscape(name) << '"';
        first = false;
    }
    os << "],\"samples\":[";
    first = true;
    for (const auto &point : points_) {
        os << (first ? "" : ",") << "{\"cycle\":" << point.cycle
           << ",\"phase\":" << point.phase << ",\"values\":[";
        bool vfirst = true;
        for (std::uint64_t v : point.values) {
            os << (vfirst ? "" : ",") << v;
            vfirst = false;
        }
        os << "]}";
        first = false;
    }
    os << "]}";
}

std::string
StatSampler::toJsonString() const
{
    std::ostringstream oss;
    toJson(oss);
    return oss.str();
}

} // namespace bf::core
