#include "core/system.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace bf::core
{

namespace
{

/**
 * Capture the translation-relevant machine configuration into the trace
 * header so the file is self-describing for replay (DESIGN.md §13).
 */
trace::TraceConfig
traceConfig(const SystemParams &params)
{
    trace::TraceConfig cfg;
    const MmuParams &mp = params.mmu;
    const tlb::TlbParams *tlbs[trace::traceNumTlbs] = {
        &mp.l1i_4k, &mp.l1d_4k, &mp.l1d_2m, &mp.l1d_1g,
        &mp.l2_4k, &mp.l2_2m, &mp.l2_1g,
    };
    for (unsigned i = 0; i < trace::traceNumTlbs; ++i) {
        const tlb::TlbParams &tp = *tlbs[i];
        trace::TraceTlbConfig &out = cfg.tlb[i];
        out.entries = tp.entries;
        out.assoc = static_cast<std::uint16_t>(tp.assoc);
        out.access_cycles = static_cast<std::uint16_t>(tp.access_cycles);
        out.bitmask_extra_cycles =
            static_cast<std::uint16_t>(tp.bitmask_extra_cycles);
        out.policy = static_cast<std::uint8_t>(tp.policy);
    }
    cfg.pwc_entries_per_level = mp.pwc.entries_per_level;
    cfg.pwc_assoc = static_cast<std::uint16_t>(mp.pwc.assoc);
    cfg.pwc_levels = static_cast<std::uint16_t>(mp.pwc.levels);
    cfg.pwc_access_cycles =
        static_cast<std::uint16_t>(mp.pwc.access_cycles);
    cfg.aslr_transform_cycles =
        static_cast<std::uint16_t>(mp.aslr_transform_cycles);
    cfg.babelfish = mp.babelfish;
    cfg.l1_sharing = mp.l1Sharing();
    cfg.force_long_l2 = mp.force_long_l2 && mp.babelfish;
    cfg.aslr_hw = mp.aslr == vm::AslrMode::Hw;
    cfg.opc_width =
        static_cast<std::uint8_t>(params.kernel.max_cow_writers);
    cfg.backend = static_cast<std::uint8_t>(mp.backend);
    return cfg;
}

} // namespace

System::System(const SystemParams &params)
    : params_(params), stat_group_("system")
{
    bf_assert(params_.kernel.babelfish || !params_.mmu.l1Sharing(),
              "L1 sharing requires BabelFish kernel");
    bf_assert(params_.sync_chunk > 0, "sync_chunk must be > 0");
    // Keep MMU and kernel ASLR config coherent.
    params_.mmu.aslr = params_.kernel.aslr;

    kernel_ = std::make_unique<vm::Kernel>(params_.kernel, &stat_group_);
    hierarchy_ = std::make_unique<mem::CacheHierarchy>(
        params_.mem, params_.num_cores, &stat_group_);
    for (unsigned i = 0; i < params_.num_cores; ++i) {
        cores_.push_back(std::make_unique<Core>(
            i, params_.core, params_.mmu, *hierarchy_, *kernel_,
            &stat_group_));
        epoch_logs_.push_back(std::make_unique<EpochLog>());
        cores_[i]->setEpochLog(epoch_logs_[i].get());
        hierarchy_->setEpochLog(i, epoch_logs_[i].get());
    }

    if (params_.attrib) {
        attrib_ = std::make_unique<attrib::Registry>(&stat_group_,
                                                     params_.num_cores);
        kernel_->setAttribRegistry(attrib_.get());
        for (unsigned i = 0; i < params_.num_cores; ++i)
            cores_[i]->setAttrib(attrib_.get(), attrib_->sink(i));
    }

    // More bound workers than cores cannot help; more weave workers
    // than address shards the cache geometries support cannot either
    // (and the shard mask needs a power of two). One pool sized for the
    // larger phase serves both: each run() round caps its stripes to
    // the requesting phase's worker count, so BF_WORKERS=1 still runs
    // the bound phase inline even when the weave is parallel.
    bound_workers_ = std::min<unsigned>(std::max(1u, params_.workers),
                                        params_.num_cores);
    weave_workers_ = std::min<unsigned>(
        std::max(1u, params_.weave_workers), hierarchy_->maxWeaveShards());
    while (weave_workers_ & (weave_workers_ - 1))
        --weave_workers_;
    pool_ = std::make_unique<BoundPool>(
        std::max(bound_workers_, weave_workers_) - 1);
    weave_scratch_.resize(weave_workers_);

    kernel_->setTlbInvalidateHook([this](const vm::TlbInvalidate &inv) {
        for (auto &core : cores_)
            core->mmu().applyInvalidate(inv);
    });

    if (!params_.trace_path.empty()) {
        tracer_ = std::make_unique<trace::Tracer>(
            params_.trace_path, params_.num_cores, params_.trace_events,
            params_.trace_limit, traceConfig(params_));
        if (tracer_->ok()) {
            kernel_->setTracer(tracer_.get());
            for (auto &core : cores_)
                core->mmu().setTracer(tracer_.get());
            if (attrib_)
                tracer_->setSlotLookup([this](std::uint32_t pid) {
                    return attrib_->slotOfPid(pid);
                });
        } else {
            tracer_.reset();
        }
    }

    stat_group_.addStat("run_capped", &run_capped);
}

void
System::runChunk(Cycles barrier)
{
    using hostclock = std::chrono::steady_clock;
    const auto elapsed = [](hostclock::time_point from,
                            hostclock::time_point to) {
        return std::chrono::duration<double>(to - from).count();
    };

    for (auto &log : epoch_logs_)
        log->activate();

    // Bound: every core advances to the barrier on its own worker,
    // touching only per-core-private state. Cores that hit a page fault
    // suspend early with the fault parked in their log.
    const auto t_bound = hostclock::now();
    pool_->run(
        numCores(), [&](unsigned i) { cores_[i]->runUntil(barrier); },
        bound_workers_);
    const auto t_fault = hostclock::now();
    phase_times_.bound_seconds += elapsed(t_bound, t_fault);

    // Service deferred faults single-threaded in (fault time, core)
    // order, then resume the suspended cores inline; they may fault
    // again, so iterate until every core reaches the barrier. No core
    // is executing here, so the kernel may mutate page tables and
    // broadcast shootdowns freely. Faults of one round are a service
    // batch: the kernel may memoize VMA/table lookups across them
    // (vm/kernel.hh), which same-region fault storms amortize.
    kernel_->beginFaultBatch();
    for (;;) {
        pending_faults_.clear();
        for (unsigned c = 0; c < numCores(); ++c) {
            if (epoch_logs_[c]->faultPending())
                pending_faults_.push_back(
                    {epoch_logs_[c]->faultTime(), c});
        }
        if (pending_faults_.empty())
            break;
        std::sort(pending_faults_.begin(), pending_faults_.end(),
                  [](const PendingFault &a, const PendingFault &b) {
                      return a.ts != b.ts ? a.ts < b.ts
                                          : a.core < b.core;
                  });

        for (const auto &pf : pending_faults_) {
            EpochLog &log = *epoch_logs_[pf.core];
            const vm::DeferredFault fault = log.fault();
            log.clearFault();

            if (tracer_)
                tracer_->setKernelContext(pf.core, pf.ts);
            const auto outcome = kernel_->serviceFault(fault);
            bf_assert(outcome.kind != vm::FaultKind::Protection,
                      "protection fault at va=", fault.canonical_va,
                      " pid=", fault.proc->pid());
            if (tracer_) {
                tracer_->record(
                    pf.core, trace::EventType::FaultService, pf.ts,
                    fault.proc->ccid(), fault.proc->pid(),
                    fault.canonical_va,
                    trace::packFault(
                        outcome.cycles, fault.proc->pcid(),
                        static_cast<unsigned>(fault.stale_size),
                        fault.declared_cow),
                    static_cast<std::uint8_t>(outcome.kind));
                tracer_->clearKernelContext();
            }

            Mmu &mmu = cores_[pf.core]->mmu();
            if (fault.declared_cow &&
                outcome.kind == vm::FaultKind::None) {
                // Raced fill: a sibling resolved the page between this
                // core's TLB fill and the fault — only this core's TLB
                // copy is stale (the serial path shoots it down too).
                mmu.applyInvalidate(
                    {vm::TlbInvalidate::Kind::Page, fault.proc->ccid(),
                     fault.proc->pcid(),
                     fault.canonical_va >> pageShift(fault.stale_size),
                     1, fault.stale_size});
            }
            mmu.noteDeferredFault(*fault.proc, outcome,
                                  fault.declared_cow);
            cores_[pf.core]->resolveFault(outcome.cycles);
        }

        // Resume inline: the handful of unblocked cores re-issue their
        // stalled references (pool dispatch per fault would cost more
        // than it parallelizes).
        for (const auto &pf : pending_faults_)
            cores_[pf.core]->runUntil(barrier);
    }
    kernel_->endFaultBatch();
    const auto t_weave = hostclock::now();
    phase_times_.fault_seconds += elapsed(t_fault, t_weave);

    for (auto &log : epoch_logs_)
        log->deactivate();
    weave();
    // Fold the per-core attribution sinks at the barrier: single-
    // threaded, fixed core order, so per-tenant totals are canonical
    // and complete whenever the system is observable from outside.
    drainAttrib();
    maybeWriteTop();
    // Flush after the weave so every chunk appends exactly one
    // canonically ordered block (see common/trace/trace.hh).
    if (tracer_)
        tracer_->flushBarrier();
}

void
System::drainAttrib() const
{
    if (!attrib_)
        return;
    for (auto &core : cores_)
        core->flushAttribWindow();
    attrib_->drain();
}

void
System::weave()
{
    using hostclock = std::chrono::steady_clock;

    // Merge: the per-core logs are already (ts, seq)-sorted, so a
    // linear k-way ladder reproduces the canonical (ts, core, seq)
    // order the historical global sort produced — see core/epoch.hh.
    // The key is unique, so the replay order — and with it every
    // L3/DRAM stat, LRU update and fill — is independent of how bound
    // work was scheduled onto host threads.
    const auto t_merge = hostclock::now();
    mergeEpochLogs(epoch_logs_, weave_stream_,
                   hierarchy_->coherenceActive());
    for (auto &log : epoch_logs_)
        log->clearEvents();
    const auto t_weave = hostclock::now();
    phase_times_.merge_seconds +=
        std::chrono::duration<double>(t_weave - t_merge).count();
    if (weave_stream_.empty())
        return;

    const std::uint64_t num_accesses = weave_stream_.accesses();
    const std::uint64_t lru_base = hierarchy_->l3().lruClock();
    // Per-tenant DRAM-excess lanes: sized at weave time, after every
    // fault window of the chunk, so any slot a logged event can carry
    // already exists.
    const unsigned nslots =
        attrib_ ? static_cast<unsigned>(attrib_->numTenants()) : 0;
    if (weave_workers_ <= 1) {
        weave_scratch_[0].reset(numCores(), nslots);
        hierarchy_->weaveSerial(weave_stream_, lru_base,
                                weave_scratch_[0]);
    } else {
        // Sharded replay (DESIGN.md §15): first the L3 pass and the
        // probe pass (disjoint state, so one round covers both), then
        // the DRAM pass, which consumes the L3 pass's hit lane — the
        // pool round boundary is the required barrier.
        weave_stream_.hit.assign(num_accesses, 0);
        const unsigned w = weave_workers_;
        pool_->run(
            w,
            [&](unsigned s) {
                auto &sc = weave_scratch_[s];
                sc.reset(numCores(), nslots);
                hierarchy_->weaveSharedPass(weave_stream_, s, w,
                                            lru_base, sc);
                hierarchy_->weaveProbePass(weave_stream_, s, w, sc);
            },
            w);
        pool_->run(
            w,
            [&](unsigned s) {
                hierarchy_->weaveDramPass(weave_stream_, s, w,
                                          weave_scratch_[s]);
            },
            w);
    }
    const unsigned shards = weave_workers_ <= 1 ? 1 : weave_workers_;
    hierarchy_->weaveCommit(weave_scratch_.data(), shards, num_accesses);

    // Bill the DRAM excess per core in fixed core order (sums over
    // shards, so the totals are shard-count-independent).
    for (unsigned c = 0; c < numCores(); ++c) {
        Cycles data_extra = 0, walk_extra = 0;
        for (unsigned s = 0; s < shards; ++s) {
            data_extra += weave_scratch_[s].data_extra[c];
            walk_extra += weave_scratch_[s].walk_extra[c];
        }
        if (data_extra || walk_extra)
            cores_[c]->applyWeaveAdjustment(data_extra, walk_extra);
    }

    // And per issuing tenant, likewise in fixed slot order (the same
    // sums over shards, so totals are shard-count-independent).
    for (unsigned t = 0; t < nslots; ++t) {
        Cycles data_extra = 0, walk_extra = 0;
        for (unsigned s = 0; s < shards; ++s) {
            data_extra += weave_scratch_[s].slot_data_extra[t];
            walk_extra += weave_scratch_[s].slot_walk_extra[t];
        }
        if (data_extra)
            attrib_->addDramExtra(static_cast<int>(t), false, data_extra);
        if (walk_extra)
            attrib_->addDramExtra(static_cast<int>(t), true, walk_extra);
    }
    phase_times_.weave_seconds +=
        std::chrono::duration<double>(hostclock::now() - t_weave)
            .count();
}

void
System::enableSampling(Cycles interval)
{
    if (sampler_.names().empty()) {
        auto sumMmu = [this](auto member) {
            return [this, member]() {
                std::uint64_t total = 0;
                for (const auto &core : cores_)
                    total += (core->mmu().*member).value();
                return total;
            };
        };
        sampler_.addProbe("instructions", [this] {
            return totalInstructions();
        });
        sampler_.addProbe("l2_tlb_data_hits",
                          sumMmu(&Mmu::l2_data_hits));
        sampler_.addProbe("l2_tlb_data_misses",
                          sumMmu(&Mmu::l2_data_misses));
        sampler_.addProbe("l2_tlb_instr_hits",
                          sumMmu(&Mmu::l2_instr_hits));
        sampler_.addProbe("l2_tlb_instr_misses",
                          sumMmu(&Mmu::l2_instr_misses));
        sampler_.addProbe("l2_tlb_shared_hits", [this] {
            return totalL2TlbSharedHits(false) + totalL2TlbSharedHits(true);
        });
        sampler_.addProbe("walks", [this] {
            std::uint64_t total = 0;
            for (const auto &core : cores_)
                total += core->mmu().walker().walks.value();
            return total;
        });
        sampler_.addProbe("walk_cycles", [this] {
            std::uint64_t total = 0;
            for (const auto &core : cores_)
                total += core->mmu().walker().walk_cycles.value();
            return total;
        });
        sampler_.addProbe("l2_cache_misses", [this] {
            std::uint64_t total = 0;
            for (unsigned c = 0; c < numCores(); ++c)
                total += hierarchy_->l2(c).misses.value();
            return total;
        });
        sampler_.addProbe("l3_misses", [this] {
            return hierarchy_->l3().misses.value();
        });
        sampler_.addProbe("dram_reads", [this] {
            return hierarchy_->dram().reads.value();
        });
        sampler_.addProbe("minor_faults", [this] {
            return kernel_->minor_faults.value();
        });
        sampler_.addProbe("cow_faults", [this] {
            return kernel_->cow_faults.value();
        });
        if (attrib_) {
            // Headline interference series: L2 TLB evictions whose
            // aggressor and victim sit in different CCID groups.
            sampler_.addProbe("cross_l2_evictions", [this] {
                return attrib_->crossL2Evictions();
            });
        }
    }
    sampler_.setInterval(interval);
}

void
System::addThread(unsigned core, Thread *thread)
{
    bf_assert(core < cores_.size(), "core out of range");
    cores_[core]->addThread(thread);
}

void
System::run(Cycles duration)
{
    Cycles start = 0;
    for (const auto &core : cores_)
        start = std::max(start, core->now());
    const Cycles end = start + duration;

    Cycles barrier = start;
    while (barrier < end) {
        barrier = std::min(barrier + params_.sync_chunk, end);
        runChunk(barrier);
        sampler_.observe(barrier);
        maybeAutosave(barrier);
    }
}

void
System::runUntilFinished(Cycles max_cycles)
{
    Cycles start = 0;
    for (const auto &core : cores_)
        start = std::max(start, core->now());
    const Cycles end = start + max_cycles;

    Cycles barrier = start;
    while (barrier < end) {
        bool any_busy = false;
        for (const auto &core : cores_) {
            if (core->busy()) {
                any_busy = true;
                break;
            }
        }
        if (!any_busy)
            return;
        barrier = std::min(barrier + params_.sync_chunk, end);
        runChunk(barrier);
        sampler_.observe(barrier);
        maybeAutosave(barrier);
    }
    ++run_capped;
    warn("runUntilFinished hit the cycle cap");
}

bool
System::saveCheckpoint(const std::string &path) const
{
    snap::ArchiveWriter ar;

    // MANI: enough of the configuration and topology to recognize —
    // before any state is mutated — that this archive belongs to a
    // differently built world. Everything here is validated field by
    // field in restoreCheckpoint().
    ar.beginSection("MANI");
    ar.u32(params_.num_cores);
    ar.u64(params_.sync_chunk);
    ar.u64(params_.seed);
    const vm::KernelParams &kp = params_.kernel;
    ar.b(kp.babelfish);
    ar.u32(static_cast<std::uint32_t>(kp.max_share_level));
    ar.b(kp.thp);
    ar.u32(kp.max_cow_writers);
    ar.u8(static_cast<std::uint8_t>(kp.aslr));
    ar.u64(kp.mem_frames);
    const MmuParams &mp = params_.mmu;
    ar.b(mp.babelfish);
    ar.u8(static_cast<std::uint8_t>(mp.aslr));
    ar.u64(mp.aslr_transform_cycles);
    ar.b(mp.force_long_l2);
    ar.u8(static_cast<std::uint8_t>(mp.backend));
    ar.b(params_.attrib);
    const CoreParams &cp = params_.core;
    ar.f64(cp.base_cpi);
    ar.u64(cp.quantum);
    ar.u64(cp.context_switch_cycles);
    for (const auto &core : cores_)
        ar.u32(static_cast<std::uint32_t>(core->threads().size()));
    const auto procs = kernel_->processes();
    ar.u32(static_cast<std::uint32_t>(procs.size()));
    for (const vm::Process *proc : procs)
        ar.u32(proc->pid());
    ar.u64(kernel_->objectCount());
    const auto ccids = kernel_->groupCcids();
    ar.u32(static_cast<std::uint32_t>(ccids.size()));
    for (const Ccid ccid : ccids)
        ar.u16(ccid);
    ar.endSection();

    ar.beginSection("KERN");
    kernel_->save(ar);
    ar.endSection();

    ar.beginSection("MEMH");
    hierarchy_->save(ar);
    ar.endSection();

    for (const auto &core : cores_) {
        ar.beginSection("CORE");
        core->save(ar);
        ar.endSection();
    }

    ar.beginSection("THRD");
    for (const auto &core : cores_) {
        for (const Thread *thread : core->threads())
            thread->saveState(ar);
    }
    ar.endSection();

    ar.beginSection("SAMP");
    sampler_.save(ar);
    ar.endSection();

    // Sinks are drained at every chunk barrier, but direct translate()
    // calls outside run() (tests) may leave booked-but-undrained lanes
    // or an open per-core window; fold them so the STAT section holds
    // the complete totals.
    drainAttrib();
    ar.beginSection("STAT");
    stat_group_.saveStats(ar);
    ar.endSection();

    return ar.writeFile(path);
}

bool
System::restoreCheckpoint(const std::string &path)
{
    std::optional<snap::ArchiveReader> reader;
    try {
        reader.emplace(snap::ArchiveReader::fromFile(path));
    } catch (const snap::SnapshotError &err) {
        warn("checkpoint rejected (", path, "): ", err.what(),
             " — cold start");
        return false;
    }
    snap::ArchiveReader &ar = *reader;

    // Until `mutating` flips, any mismatch leaves the system untouched
    // and the caller falls back to a cold start. After it flips, partial
    // state has been overwritten, so a decode error is fatal.
    bool mutating = false;
    try {
        const auto ck = [](bool ok, const char *what) {
            if (!ok) {
                throw snap::SnapshotError(
                    std::string("manifest mismatch: ") + what);
            }
        };
        ar.enterSection("MANI");
        ck(ar.u32() == params_.num_cores, "num_cores");
        ck(ar.u64() == params_.sync_chunk, "sync_chunk");
        ck(ar.u64() == params_.seed, "seed");
        const vm::KernelParams &kp = params_.kernel;
        ck(ar.b() == kp.babelfish, "kernel.babelfish");
        ck(ar.u32() == static_cast<std::uint32_t>(kp.max_share_level),
           "kernel.max_share_level");
        ck(ar.b() == kp.thp, "kernel.thp");
        ck(ar.u32() == kp.max_cow_writers, "kernel.max_cow_writers");
        ck(ar.u8() == static_cast<std::uint8_t>(kp.aslr), "kernel.aslr");
        ck(ar.u64() == kp.mem_frames, "kernel.mem_frames");
        const MmuParams &mp = params_.mmu;
        ck(ar.b() == mp.babelfish, "mmu.babelfish");
        ck(ar.u8() == static_cast<std::uint8_t>(mp.aslr), "mmu.aslr");
        ck(ar.u64() == mp.aslr_transform_cycles,
           "mmu.aslr_transform_cycles");
        ck(ar.b() == mp.force_long_l2, "mmu.force_long_l2");
        ck(ar.u8() == static_cast<std::uint8_t>(mp.backend),
           "mmu.backend");
        ck(ar.b() == params_.attrib, "attrib");
        const CoreParams &cp = params_.core;
        ck(ar.f64() == cp.base_cpi, "core.base_cpi");
        ck(ar.u64() == cp.quantum, "core.quantum");
        ck(ar.u64() == cp.context_switch_cycles,
           "core.context_switch_cycles");
        for (const auto &core : cores_) {
            ck(ar.u32() == core->threads().size(),
               "per-core thread count");
        }
        const auto procs = kernel_->processes();
        ck(ar.u32() == procs.size(), "process count");
        for (const vm::Process *proc : procs)
            ck(ar.u32() == proc->pid(), "process pids");
        ck(ar.u64() == kernel_->objectCount(), "object count");
        const auto ccids = kernel_->groupCcids();
        ck(ar.u32() == ccids.size(), "group count");
        for (const Ccid ccid : ccids)
            ck(ar.u16() == ccid, "group ccids");
        ar.exitSection();

        mutating = true;

        ar.enterSection("KERN");
        kernel_->restore(ar);
        ar.exitSection();

        ar.enterSection("MEMH");
        hierarchy_->restore(ar);
        ar.exitSection();

        for (auto &core : cores_) {
            ar.enterSection("CORE");
            core->restore(ar);
            ar.exitSection();
        }

        ar.enterSection("THRD");
        for (auto &core : cores_) {
            for (Thread *thread : core->threads())
                thread->restoreState(ar);
        }
        ar.exitSection();

        ar.enterSection("SAMP");
        sampler_.restore(ar);
        ar.exitSection();

        // Zero any undrained sink lanes and open windows first (drain
        // folds them into tenant scalars restoreStats is about to
        // overwrite).
        drainAttrib();
        ar.enterSection("STAT");
        stat_group_.restoreStats(ar);
        ar.exitSection();
        // The restore just rewrote the global counters underneath the
        // cores' window bases; re-base so the next flush credits only
        // post-restore growth.
        for (auto &core : cores_)
            core->syncAttribWindow();

        if (!ar.atEnd())
            throw snap::SnapshotError("trailing bytes after last section");
    } catch (const snap::SnapshotError &err) {
        if (!mutating) {
            warn("checkpoint rejected (", path, "): ", err.what(),
                 " — cold start");
            return false;
        }
        bf_fatal("checkpoint ", path,
                 " corrupt mid-restore (state already overwritten): ",
                 err.what());
    }
    return true;
}

void
System::enableAutoCheckpoint(std::string path, Cycles interval)
{
    autosave_path_ = std::move(path);
    autosave_interval_ = interval;
    Cycles start = 0;
    for (const auto &core : cores_)
        start = std::max(start, core->now());
    autosave_next_ = start + interval;
}

void
System::enableTopFile(std::string path, double min_interval_seconds)
{
    if (!attrib_)
        return;
    top_path_ = std::move(path);
    top_interval_ = min_interval_seconds;
    top_start_host_ =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    top_last_write_ = -top_interval_; // First barrier writes at once.
    top_instr_base_ = totalInstructions();
}

void
System::maybeWriteTop()
{
    if (top_path_.empty() || !attrib_)
        return;
    const double now =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count() -
        top_start_host_;
    if (now - top_last_write_ < top_interval_)
        return;
    top_last_write_ = now;
    const double mips =
        now > 0 ? static_cast<double>(totalInstructions() -
                                      top_instr_base_) /
                      1e6 / now
                : -1.0;
    // Atomic publish: readers (bf_top) never see a torn table.
    const std::string tmp = top_path_ + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    if (!out)
        return;
    out << attrib_->renderTable(mips);
    out.close();
    if (out)
        std::rename(tmp.c_str(), top_path_.c_str());
}

void
System::maybeAutosave(Cycles barrier)
{
    if (autosave_interval_ == 0 || barrier < autosave_next_)
        return;
    saveCheckpoint(autosave_path_);
    while (autosave_next_ <= barrier)
        autosave_next_ += autosave_interval_;
}

void
System::resetStats()
{
    // Mark the warm-up/measure boundary in the trace: replay resets its
    // model statistics at the same point, so its counters line up with
    // the measurement window of the recorded stats. resetStats is only
    // called between run() calls, i.e. at a flushed block boundary, so
    // the marker always leads the following block.
    // Stamped at core 0's own clock: core 0's next events carry both a
    // later timestamp and a later seq, which keeps the canonical per-core
    // ordering invariants intact (a cross-core max could sort after
    // core 0's next-chunk events while holding an earlier seq).
    if (tracer_)
        tracer_->record(0, trace::EventType::StatsReset,
                        cores_.empty() ? 0 : cores_[0]->now(), 0, 0, 0);
    for (auto &core : cores_)
        core->resetStats();
    hierarchy_->resetStats();
    // Mirror the scope of the resets above: core-sourced tenant stats
    // reset, kernel-sourced ones (CoW, shootdowns) survive like the
    // kernel's own, so per-tenant sums still reconcile with the
    // globals after a warm-up reset.
    if (attrib_)
        attrib_->resetCoreStats();
    run_capped.reset();
    if (sampler_.enabled())
        sampler_.beginPhase();
}

std::uint64_t
System::totalInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->instructions.value();
    return total;
}

std::uint64_t
System::totalL2TlbMisses(bool instruction) const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_) {
        total += instruction ? core->mmu().l2_instr_misses.value()
                             : core->mmu().l2_data_misses.value();
    }
    return total;
}

std::uint64_t
System::totalL2TlbHits(bool instruction) const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_) {
        total += instruction ? core->mmu().l2_instr_hits.value()
                             : core->mmu().l2_data_hits.value();
    }
    return total;
}

std::uint64_t
System::totalL2TlbSharedHits(bool instruction) const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_) {
        total += instruction ? core->mmu().l2_instr_shared_hits.value()
                             : core->mmu().l2_data_shared_hits.value();
    }
    return total;
}

} // namespace bf::core
