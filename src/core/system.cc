#include "core/system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace bf::core
{

System::System(const SystemParams &params)
    : params_(params), stat_group_("system")
{
    bf_assert(params_.kernel.babelfish || !params_.mmu.l1Sharing(),
              "L1 sharing requires BabelFish kernel");
    // Keep MMU and kernel ASLR config coherent.
    params_.mmu.aslr = params_.kernel.aslr;

    kernel_ = std::make_unique<vm::Kernel>(params_.kernel, &stat_group_);
    hierarchy_ = std::make_unique<mem::CacheHierarchy>(
        params_.mem, params_.num_cores, &stat_group_);
    for (unsigned i = 0; i < params_.num_cores; ++i) {
        cores_.push_back(std::make_unique<Core>(
            i, params_.core, params_.mmu, *hierarchy_, *kernel_,
            &stat_group_));
    }

    kernel_->setTlbInvalidateHook([this](const vm::TlbInvalidate &inv) {
        for (auto &core : cores_)
            core->mmu().applyInvalidate(inv);
    });

    stat_group_.addStat("run_capped", &run_capped);
}

void
System::enableSampling(Cycles interval)
{
    if (sampler_.names().empty()) {
        auto sumMmu = [this](auto member) {
            return [this, member]() {
                std::uint64_t total = 0;
                for (const auto &core : cores_)
                    total += (core->mmu().*member).value();
                return total;
            };
        };
        sampler_.addProbe("instructions", [this] {
            return totalInstructions();
        });
        sampler_.addProbe("l2_tlb_data_hits",
                          sumMmu(&Mmu::l2_data_hits));
        sampler_.addProbe("l2_tlb_data_misses",
                          sumMmu(&Mmu::l2_data_misses));
        sampler_.addProbe("l2_tlb_instr_hits",
                          sumMmu(&Mmu::l2_instr_hits));
        sampler_.addProbe("l2_tlb_instr_misses",
                          sumMmu(&Mmu::l2_instr_misses));
        sampler_.addProbe("l2_tlb_shared_hits", [this] {
            return totalL2TlbSharedHits(false) + totalL2TlbSharedHits(true);
        });
        sampler_.addProbe("walks", [this] {
            std::uint64_t total = 0;
            for (const auto &core : cores_)
                total += core->mmu().walker().walks.value();
            return total;
        });
        sampler_.addProbe("walk_cycles", [this] {
            std::uint64_t total = 0;
            for (const auto &core : cores_)
                total += core->mmu().walker().walk_cycles.value();
            return total;
        });
        sampler_.addProbe("l2_cache_misses", [this] {
            std::uint64_t total = 0;
            for (unsigned c = 0; c < numCores(); ++c)
                total += hierarchy_->l2(c).misses.value();
            return total;
        });
        sampler_.addProbe("l3_misses", [this] {
            return hierarchy_->l3().misses.value();
        });
        sampler_.addProbe("dram_reads", [this] {
            return hierarchy_->dram().reads.value();
        });
        sampler_.addProbe("minor_faults", [this] {
            return kernel_->minor_faults.value();
        });
        sampler_.addProbe("cow_faults", [this] {
            return kernel_->cow_faults.value();
        });
    }
    sampler_.setInterval(interval);
}

void
System::addThread(unsigned core, Thread *thread)
{
    bf_assert(core < cores_.size(), "core out of range");
    cores_[core]->addThread(thread);
}

void
System::run(Cycles duration)
{
    Cycles start = 0;
    for (const auto &core : cores_)
        start = std::max(start, core->now());
    const Cycles end = start + duration;

    Cycles barrier = start;
    while (barrier < end) {
        barrier = std::min(barrier + syncChunk, end);
        for (auto &core : cores_)
            core->runUntil(barrier);
        sampler_.observe(barrier);
    }
}

void
System::runUntilFinished(Cycles max_cycles)
{
    Cycles start = 0;
    for (const auto &core : cores_)
        start = std::max(start, core->now());
    const Cycles end = start + max_cycles;

    Cycles barrier = start;
    while (barrier < end) {
        bool any_busy = false;
        for (const auto &core : cores_) {
            if (core->busy()) {
                any_busy = true;
                break;
            }
        }
        if (!any_busy)
            return;
        barrier = std::min(barrier + syncChunk, end);
        for (auto &core : cores_)
            core->runUntil(barrier);
        sampler_.observe(barrier);
    }
    ++run_capped;
    warn("runUntilFinished hit the cycle cap");
}

void
System::resetStats()
{
    for (auto &core : cores_)
        core->resetStats();
    hierarchy_->resetStats();
    run_capped.reset();
    if (sampler_.enabled())
        sampler_.beginPhase();
}

std::uint64_t
System::totalInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->instructions.value();
    return total;
}

std::uint64_t
System::totalL2TlbMisses(bool instruction) const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_) {
        total += instruction ? core->mmu().l2_instr_misses.value()
                             : core->mmu().l2_data_misses.value();
    }
    return total;
}

std::uint64_t
System::totalL2TlbHits(bool instruction) const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_) {
        total += instruction ? core->mmu().l2_instr_hits.value()
                             : core->mmu().l2_data_hits.value();
    }
    return total;
}

std::uint64_t
System::totalL2TlbSharedHits(bool instruction) const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_) {
        total += instruction ? core->mmu().l2_instr_shared_hits.value()
                             : core->mmu().l2_data_shared_hits.value();
    }
    return total;
}

} // namespace bf::core
