/**
 * @file
 * Periodic time-series sampling of simulation counters.
 *
 * A StatSampler holds named probes (closures reading cumulative
 * counters) and, driven by System's lockstep loop, snapshots all of
 * them every `interval` cycles. The resulting series makes warm-up vs
 * steady-state behaviour visible — e.g. TLB MPKI settling after the
 * shared entries are in place, or a minor-fault burst at container
 * bring-up — and is dumped alongside the final stats in the benches'
 * BENCH_<name>.json reports.
 *
 * Probes read *cumulative* counters: within one measurement phase every
 * probe is monotone non-decreasing, and consumers difference adjacent
 * samples to recover rates. System::resetStats() zeroes the underlying
 * counters; the sampler records the phase boundary (each sample carries
 * a phase index) so a post-reset drop is not mistaken for counter
 * wraparound.
 */

#ifndef BF_CORE_SAMPLER_HH
#define BF_CORE_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/snapshot.hh"
#include "common/types.hh"

namespace bf::core
{

/** Snapshots named counters every fixed number of cycles. */
class StatSampler
{
  public:
    /** Reads one cumulative counter value. */
    using Probe = std::function<std::uint64_t()>;

    /** One snapshot of every probe. */
    struct Point
    {
        Cycles cycle = 0;     //!< Nominal sample time (k * interval).
        unsigned phase = 0;   //!< Increments at every resetStats().
        std::vector<std::uint64_t> values; //!< Aligned with names().
    };

    /** Register a probe; call before the first observe(). */
    void
    addProbe(std::string name, Probe probe)
    {
        names_.push_back(std::move(name));
        probes_.push_back(std::move(probe));
    }

    /** Set the sampling period; 0 disables sampling. */
    void
    setInterval(Cycles interval)
    {
        interval_ = interval;
        next_ = interval;
    }

    Cycles interval() const { return interval_; }

    /** Whether observe() will ever record anything. */
    bool enabled() const { return interval_ > 0 && !probes_.empty(); }

    /**
     * Called by the driver with the current barrier cycle; records one
     * sample per elapsed interval boundary. The driver advances in
     * chunks, so values are read at the barrier while the nominal
     * sample cycle is the boundary itself (documented approximation:
     * resolution = min(interval, lockstep chunk)).
     */
    void
    observe(Cycles now)
    {
        if (!enabled())
            return;
        while (next_ <= now) {
            takeSample(next_);
            next_ += interval_;
        }
    }

    /** Mark a phase boundary (counters were just reset). */
    void beginPhase() { ++phase_; }

    unsigned phase() const { return phase_; }
    const std::vector<std::string> &names() const { return names_; }
    const std::vector<Point> &points() const { return points_; }

    /** Drop recorded samples (not probes); restart the clock grid. */
    void
    clear()
    {
        points_.clear();
        next_ = interval_;
        phase_ = 0;
    }

    /**
     * @{
     * @name Checkpointing
     * The recorded points, the grid position (next_), the phase and the
     * interval — everything the timeseries JSON derives from — so the
     * restored run's series is byte-identical to the uninterrupted one.
     * Probes are closures and are NOT serialized; the rebuilt world
     * re-registers them (System::enableSampling) and restore() verifies
     * the names line up.
     */
    void
    save(snap::ArchiveWriter &ar) const
    {
        ar.u64(interval_);
        ar.u64(next_);
        ar.u32(phase_);
        ar.u32(static_cast<std::uint32_t>(names_.size()));
        for (const std::string &name : names_)
            ar.str(name);
        ar.u64(points_.size());
        for (const Point &point : points_) {
            ar.u64(point.cycle);
            ar.u32(point.phase);
            for (const std::uint64_t value : point.values)
                ar.u64(value);
        }
    }

    void
    restore(snap::ArchiveReader &ar)
    {
        interval_ = ar.u64();
        next_ = ar.u64();
        phase_ = ar.u32();
        if (ar.u32() != names_.size())
            throw snap::SnapshotError("sampler probe-count mismatch");
        for (const std::string &name : names_) {
            if (ar.str() != name)
                throw snap::SnapshotError("sampler probe-name mismatch");
        }
        points_.assign(ar.u64(), Point{});
        for (Point &point : points_) {
            point.cycle = ar.u64();
            point.phase = ar.u32();
            point.values.resize(names_.size());
            for (std::uint64_t &value : point.values)
                value = ar.u64();
        }
    }
    /** @} */

    /**
     * Serialize as JSON:
     *   {"interval_cycles": N, "probes": ["a", ...],
     *    "samples": [{"cycle": C, "phase": P, "values": [v, ...]}, ...]}
     */
    void toJson(std::ostream &os) const;

    /** Convenience: toJson into a string. */
    std::string toJsonString() const;

  private:
    std::vector<std::string> names_;
    std::vector<Probe> probes_;
    std::vector<Point> points_;
    Cycles interval_ = 0;
    Cycles next_ = 0;
    unsigned phase_ = 0;

    void
    takeSample(Cycles cycle)
    {
        Point point;
        point.cycle = cycle;
        point.phase = phase_;
        point.values.reserve(probes_.size());
        for (const auto &probe : probes_)
            point.values.push_back(probe());
        points_.push_back(std::move(point));
    }
};

} // namespace bf::core

#endif // BF_CORE_SAMPLER_HH
