/**
 * @file
 * The top level: one simulated 8-core server (Table I) — kernel, cache
 * hierarchy, cores with their MMUs — plus the lockstep driver that keeps
 * the cores' clocks loosely synchronized so shared-L3 and DRAM
 * interactions are meaningful.
 *
 * This is the primary public entry point of the library:
 *
 * @code
 *   bf::core::System sys(bf::core::SystemParams::babelfish());
 *   auto ccid = sys.kernel().createGroup("httpd", seed);
 *   ... create processes / threads (see bf::workloads) ...
 *   sys.addThread(core, thread);
 *   sys.run(bf::msToCycles(50));
 * @endcode
 */

#ifndef BF_CORE_SYSTEM_HH
#define BF_CORE_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "core/core.hh"
#include "core/params.hh"
#include "mem/hierarchy.hh"
#include "vm/kernel.hh"

namespace bf::core
{

/** One simulated machine. */
class System
{
  public:
    explicit System(const SystemParams &params);

    vm::Kernel &kernel() { return *kernel_; }
    mem::CacheHierarchy &memory() { return *hierarchy_; }
    Core &core(unsigned i) { return *cores_[i]; }
    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    /** Put a workload thread on a core's run queue. */
    void addThread(unsigned core, Thread *thread);

    /**
     * Run for @p duration cycles past the slowest core's current clock,
     * advancing cores in small lockstep chunks.
     */
    void run(Cycles duration);

    /** Run until every thread on every core finished (or max cycles). */
    void runUntilFinished(Cycles max_cycles);

    /** Reset every statistic (end of warm-up). */
    void resetStats();

    /** Aggregate counters across cores. */
    std::uint64_t totalInstructions() const;
    std::uint64_t totalL2TlbMisses(bool instruction) const;
    std::uint64_t totalL2TlbHits(bool instruction) const;
    std::uint64_t totalL2TlbSharedHits(bool instruction) const;

    /** Root of the statistics tree ("system."). */
    stats::StatGroup &stats() { return stat_group_; }

    const SystemParams &params() const { return params_; }

  private:
    SystemParams params_;
    stats::StatGroup stat_group_;
    std::unique_ptr<vm::Kernel> kernel_;
    std::unique_ptr<mem::CacheHierarchy> hierarchy_;
    std::vector<std::unique_ptr<Core>> cores_;

    /** Lockstep chunk size in cycles. */
    static constexpr Cycles syncChunk = 20000;
};

} // namespace bf::core

#endif // BF_CORE_SYSTEM_HH
