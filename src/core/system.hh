/**
 * @file
 * The top level: one simulated 8-core server (Table I) — kernel, cache
 * hierarchy, cores with their MMUs — plus the lockstep driver that keeps
 * the cores' clocks loosely synchronized so shared-L3 and DRAM
 * interactions are meaningful.
 *
 * This is the primary public entry point of the library:
 *
 * @code
 *   bf::core::System sys(bf::core::SystemParams::babelfish());
 *   auto ccid = sys.kernel().createGroup("httpd", seed);
 *   ... create processes / threads (see bf::workloads) ...
 *   sys.addThread(core, thread);
 *   sys.run(bf::msToCycles(50));
 * @endcode
 */

#ifndef BF_CORE_SYSTEM_HH
#define BF_CORE_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "common/attrib/attrib.hh"
#include "common/stats.hh"
#include "common/trace/trace.hh"
#include "core/core.hh"
#include "core/epoch.hh"
#include "core/params.hh"
#include "core/sampler.hh"
#include "mem/hierarchy.hh"
#include "vm/kernel.hh"

namespace bf::core
{

/** One simulated machine. */
class System
{
  public:
    explicit System(const SystemParams &params);

    vm::Kernel &kernel() { return *kernel_; }
    mem::CacheHierarchy &memory() { return *hierarchy_; }
    Core &core(unsigned i) { return *cores_[i]; }
    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    /** Put a workload thread on a core's run queue. */
    void addThread(unsigned core, Thread *thread);

    /**
     * Run for @p duration cycles past the slowest core's current clock,
     * advancing cores in small lockstep chunks.
     *
     * Each chunk executes in two phases (core/epoch.hh): a *bound*
     * phase runs every core on the worker pool (params.workers host
     * threads) touching only per-core-private state and logging
     * shared-level events, then a single-threaded *weave* replays the
     * merged logs in canonical (timestamp, core, seq) order against
     * the shared L3/DRAM. Page faults suspend their core and are
     * serviced between bound rounds in (fault time, core) order. The
     * identical algorithm runs at workers=1, so exported stats are
     * byte-identical at every worker count.
     */
    void run(Cycles duration);

    /**
     * Run until every thread on every core finished (or max cycles).
     * Hitting the cap bumps the `run_capped` stat so truncated runs are
     * detectable in the exported stats (benches surface it).
     */
    void runUntilFinished(Cycles max_cycles);

    /**
     * Reset every statistic (end of warm-up). Recorded time-series
     * samples are kept; the sampler starts a new phase so the series
     * shows warm-up and measurement side by side.
     */
    void resetStats();

    /**
     * Enable periodic sampling: every @p interval cycles the driver
     * snapshots a default probe set (instructions, L2 TLB hits/misses
     * and shared hits split data/instruction, page-walk count and
     * cycles, L2/L3 cache misses, DRAM reads, minor/CoW faults) into
     * sampler(). Call before run(); calling again changes the interval
     * but keeps recorded points.
     */
    void enableSampling(Cycles interval);

    /** The time-series sampler (empty unless enableSampling was called). */
    StatSampler &sampler() { return sampler_; }
    const StatSampler &sampler() const { return sampler_; }

    /**
     * The per-container attribution registry (common/attrib), or
     * nullptr when params.attrib is off. Sinks are drained at every
     * chunk barrier, so outside run() the registry always shows the
     * complete, canonical per-tenant totals.
     */
    attrib::Registry *attrib() { return attrib_.get(); }
    const attrib::Registry *attrib() const { return attrib_.get(); }

    /**
     * Periodically render the live per-tenant table (bf_top's data
     * source) into @p path: at most every @p min_interval_seconds of
     * host time, written atomically (tmp + rename) at a chunk barrier.
     * Host-side observability only — never touches simulated state.
     * Benches wire BF_TOP. No-op when attribution is off.
     */
    void enableTopFile(std::string path,
                       double min_interval_seconds = 0.5);

    /**
     * The event tracer, or nullptr when params.trace_path is empty (or
     * the file could not be opened). Owned by the System; the file is
     * finalized when the System is destroyed.
     */
    trace::Tracer *tracer() { return tracer_.get(); }

    /**
     * @{
     * @name Checkpointing (DESIGN.md §11)
     * saveCheckpoint() serializes the whole machine — kernel, cache
     * hierarchy, cores with TLBs, thread generators, sampler, stats
     * tree — into a versioned archive at @p path (atomic write; false +
     * warning on IO failure). Call only at a chunk boundary, i.e. when
     * run()/runUntilFinished() is not executing.
     *
     * restoreCheckpoint() loads one into an identically configured and
     * populated System (same params, same groups/processes/threads in
     * the same order — benches rebuild this deterministically from the
     * same config). Returns false and leaves the system untouched for
     * any rejected file: bad magic/version/CRC, truncation, or a
     * manifest that does not match this system's configuration — the
     * caller then falls back to a cold start. A corruption discovered
     * after mutation began (valid CRC but internally inconsistent) is
     * fatal with a diagnostic, never a silently wrong run.
     *
     * enableAutoCheckpoint() re-saves to @p path every @p interval
     * cycles from the driver loop (BF_CKPT_EVERY_MS), making long runs
     * crash-recoverable.
     */
    bool saveCheckpoint(const std::string &path) const;
    bool restoreCheckpoint(const std::string &path);
    void enableAutoCheckpoint(std::string path, Cycles interval);
    /** @} */

    /** Aggregate counters across cores. */
    std::uint64_t totalInstructions() const;
    std::uint64_t totalL2TlbMisses(bool instruction) const;
    std::uint64_t totalL2TlbHits(bool instruction) const;
    std::uint64_t totalL2TlbSharedHits(bool instruction) const;

    /**
     * Host wall-clock seconds spent in each phase of the chunk loop,
     * accumulated across run()/runUntilFinished() calls (never reset by
     * resetStats — this is host-side observability, not a simulated
     * stat). fault_seconds covers the whole fault-service block,
     * including the inline bound re-runs of unblocked cores; the other
     * three are exactly the bound dispatch, the canonical merge, and
     * the weave replay+commit. bench_simspeed surfaces these as the
     * per-phase Amdahl breakdown.
     */
    struct PhaseTimes
    {
        double bound_seconds = 0;
        double fault_seconds = 0;
        double merge_seconds = 0;
        double weave_seconds = 0;
    };
    const PhaseTimes &phaseTimes() const { return phase_times_; }

    /** Effective (clamped) weave worker count. */
    unsigned weaveWorkers() const { return weave_workers_; }

    /** Root of the statistics tree ("system."). */
    stats::StatGroup &stats() { return stat_group_; }
    const stats::StatGroup &stats() const { return stat_group_; }

    const SystemParams &params() const { return params_; }

    /** Times runUntilFinished gave up at its cycle cap. */
    stats::Scalar run_capped;

  private:
    SystemParams params_;
    stats::StatGroup stat_group_;
    std::unique_ptr<vm::Kernel> kernel_;
    std::unique_ptr<mem::CacheHierarchy> hierarchy_;
    std::vector<std::unique_ptr<Core>> cores_;
    StatSampler sampler_;
    std::unique_ptr<trace::Tracer> tracer_;
    std::unique_ptr<attrib::Registry> attrib_;

    /** @{ @name Live bf_top table (enableTopFile) */
    std::string top_path_;
    double top_interval_ = 0.5;
    double top_last_write_ = 0;    //!< Host seconds since top_start_.
    double top_start_host_ = 0;    //!< steady_clock origin, seconds.
    std::uint64_t top_instr_base_ = 0; //!< Instructions at enable time.
    void maybeWriteTop();
    /** @} */

    /** @{ @name Two-phase chunk execution (see core/epoch.hh) */
    std::vector<std::unique_ptr<EpochLog>> epoch_logs_; //!< Per core.
    std::unique_ptr<BoundPool> pool_;
    unsigned bound_workers_ = 1; //!< Clamped params.workers.
    unsigned weave_workers_ = 1; //!< Clamped params.weave_workers.

    WeaveStream weave_stream_; //!< Merged canonical stream, pooled.
    std::vector<mem::CacheHierarchy::WeaveScratch>
        weave_scratch_; //!< One per weave worker, pooled.

    /** A core suspended on a deferred fault, keyed for service order. */
    struct PendingFault
    {
        Cycles ts;
        unsigned core;
    };
    std::vector<PendingFault> pending_faults_; //!< Reused across chunks.

    PhaseTimes phase_times_;

    /** @{ @name Periodic autosave (enableAutoCheckpoint) */
    std::string autosave_path_;
    Cycles autosave_interval_ = 0;
    Cycles autosave_next_ = 0;
    void maybeAutosave(Cycles barrier);
    /** @} */

    /** Advance every core to @p barrier: bound, fault service, weave. */
    void runChunk(Cycles barrier);
    /**
     * Flush every core's pending attribution window, then fold the
     * per-core sinks into the registry's tenant scalars. No-op when
     * attribution is off. Single-threaded, fixed core order. Const
     * because it only moves already-earned credit between observability
     * mirrors (saveCheckpoint needs the complete totals).
     */
    void drainAttrib() const;
    /**
     * Replay the merged logs in canonical order: fused on this thread
     * at weave_workers_ == 1, sharded across the pool otherwise
     * (byte-identical either way — DESIGN.md §15).
     */
    void weave();
    /** @} */
};

} // namespace bf::core

#endif // BF_CORE_SYSTEM_HH
