/**
 * @file
 * The top level: one simulated 8-core server (Table I) — kernel, cache
 * hierarchy, cores with their MMUs — plus the lockstep driver that keeps
 * the cores' clocks loosely synchronized so shared-L3 and DRAM
 * interactions are meaningful.
 *
 * This is the primary public entry point of the library:
 *
 * @code
 *   bf::core::System sys(bf::core::SystemParams::babelfish());
 *   auto ccid = sys.kernel().createGroup("httpd", seed);
 *   ... create processes / threads (see bf::workloads) ...
 *   sys.addThread(core, thread);
 *   sys.run(bf::msToCycles(50));
 * @endcode
 */

#ifndef BF_CORE_SYSTEM_HH
#define BF_CORE_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "core/core.hh"
#include "core/params.hh"
#include "core/sampler.hh"
#include "mem/hierarchy.hh"
#include "vm/kernel.hh"

namespace bf::core
{

/** One simulated machine. */
class System
{
  public:
    explicit System(const SystemParams &params);

    vm::Kernel &kernel() { return *kernel_; }
    mem::CacheHierarchy &memory() { return *hierarchy_; }
    Core &core(unsigned i) { return *cores_[i]; }
    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    /** Put a workload thread on a core's run queue. */
    void addThread(unsigned core, Thread *thread);

    /**
     * Run for @p duration cycles past the slowest core's current clock,
     * advancing cores in small lockstep chunks.
     */
    void run(Cycles duration);

    /**
     * Run until every thread on every core finished (or max cycles).
     * Hitting the cap bumps the `run_capped` stat so truncated runs are
     * detectable in the exported stats (benches surface it).
     */
    void runUntilFinished(Cycles max_cycles);

    /**
     * Reset every statistic (end of warm-up). Recorded time-series
     * samples are kept; the sampler starts a new phase so the series
     * shows warm-up and measurement side by side.
     */
    void resetStats();

    /**
     * Enable periodic sampling: every @p interval cycles the driver
     * snapshots a default probe set (instructions, L2 TLB hits/misses
     * and shared hits split data/instruction, page-walk count and
     * cycles, L2/L3 cache misses, DRAM reads, minor/CoW faults) into
     * sampler(). Call before run(); calling again changes the interval
     * but keeps recorded points.
     */
    void enableSampling(Cycles interval);

    /** The time-series sampler (empty unless enableSampling was called). */
    StatSampler &sampler() { return sampler_; }
    const StatSampler &sampler() const { return sampler_; }

    /** Aggregate counters across cores. */
    std::uint64_t totalInstructions() const;
    std::uint64_t totalL2TlbMisses(bool instruction) const;
    std::uint64_t totalL2TlbHits(bool instruction) const;
    std::uint64_t totalL2TlbSharedHits(bool instruction) const;

    /** Root of the statistics tree ("system."). */
    stats::StatGroup &stats() { return stat_group_; }
    const stats::StatGroup &stats() const { return stat_group_; }

    const SystemParams &params() const { return params_; }

    /** Times runUntilFinished gave up at its cycle cap. */
    stats::Scalar run_capped;

  private:
    SystemParams params_;
    stats::StatGroup stat_group_;
    std::unique_ptr<vm::Kernel> kernel_;
    std::unique_ptr<mem::CacheHierarchy> hierarchy_;
    std::vector<std::unique_ptr<Core>> cores_;
    StatSampler sampler_;

    /** Lockstep chunk size in cycles. */
    static constexpr Cycles syncChunk = 20000;
};

} // namespace bf::core

#endif // BF_CORE_SYSTEM_HH
