/**
 * @file
 * The timing core: pulls memory references from the scheduled container
 * threads, charges base pipeline time plus the full translation and
 * memory latency of each reference, and multiplexes threads with the OS
 * scheduling quantum (containers are over-subscribed: 2-3 per core).
 */

#ifndef BF_CORE_CORE_HH
#define BF_CORE_CORE_HH

#include <memory>
#include <vector>

#include "common/attrib/attrib.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/mmu.hh"
#include "core/params.hh"
#include "core/thread.hh"
#include "mem/hierarchy.hh"

namespace bf::core
{

/** One out-of-order core plus its MMU and run queue. */
class Core
{
  public:
    Core(unsigned id, const CoreParams &params, const MmuParams &mmu,
         mem::CacheHierarchy &hierarchy, vm::Kernel &kernel,
         stats::StatGroup *parent = nullptr);

    /** Add a container thread to this core's run queue. */
    void addThread(Thread *thread);

    /** Remove all threads (between experiments). */
    void clearThreads();

    /** Whether any unfinished thread remains. */
    bool busy() const;

    /** The core's clock. */
    Cycles now() const { return now_; }

    /** Force the clock (used when cores idle while others run). */
    void syncTo(Cycles target);

    /**
     * Execute until the clock reaches @p until (or the run queue
     * empties). The scheduler rotates threads every quantum.
     *
     * With an active epoch log the core may suspend mid-chunk on a
     * deferred page fault (faultBlocked()); System services the fault
     * single-threaded, calls resolveFault(), and re-invokes runUntil to
     * resume the stalled reference.
     */
    void runUntil(Cycles until);

    /** Suspended on a deferred fault, waiting for System to service it. */
    bool faultBlocked() const { return blocked_; }

    /**
     * Unblock after a deferred fault was serviced: charge the kernel
     * time (it is translation time, as in the serial retry loop) and
     * let the next runUntil re-issue the stalled reference.
     */
    void resolveFault(Cycles fault_cycles);

    /**
     * Bill the weave-phase latency excess of this core's deferred
     * accesses (the DRAM time beyond the bound-phase L3 estimate).
     * @param data_extra excess of data/ifetch accesses.
     * @param walk_extra excess of page-walker accesses.
     */
    void applyWeaveAdjustment(Cycles data_extra, Cycles walk_extra);

    Mmu &mmu() { return *mmu_; }
    unsigned id() const { return id_; }

    /**
     * Attach the core's bound-phase event log (System wires it; null
     * detaches). Forwards to the MMU and keeps the pointer so the core
     * can stamp the issuing tenant's slot onto logged events.
     */
    void
    setEpochLog(EpochLog *log)
    {
        epoch_log_ = log;
        mmu_->setEpochLog(log);
    }

    /**
     * Attach the per-container attribution registry and this core's
     * sink (System wires them; nulls detach). Forwards to the MMU and
     * keeps the sink for the window-delta booking below.
     */
    void
    setAttrib(attrib::Registry *registry, attrib::CoreSink *sink)
    {
        sink_ = sink;
        mmu_->setAttrib(registry, sink);
        syncAttribWindow();
    }

    /**
     * @{
     * @name Attribution windows
     * The per-tenant mirrors of the access counters are not booked per
     * event: every event between two scheduler switch points belongs to
     * the process the core was running, so the core snapshots the
     * global counters (MMU TranslateStats, walker walks, instructions,
     * miss-latency buckets) and credits the delta to the tenant at slot
     * switches and chunk barriers. flushAttribWindow books the pending
     * window to the current slot and re-bases; syncAttribWindow
     * re-bases without booking (after a stats reset or checkpoint
     * restore rewrote the globals underneath). System calls flush on
     * every core before each Registry::drain, so the tenant subtree is
     * complete whenever it is observable.
     */
    void flushAttribWindow();
    void syncAttribWindow();
    /** @} */

    /** Run queue, in scheduling order (checkpointing walks threads). */
    const std::vector<Thread *> &threads() const { return threads_; }

    /**
     * @{
     * @name Checkpointing
     * Clock, scheduler position, quantum, CPI carry, done-cache, and the
     * deferred-fault re-issue state, then the MMU (TLBs + PWC). Called
     * at a chunk barrier only, where blocked_ is always false (System's
     * fault loop drains every suspension before the chunk ends) but a
     * stalled reference may still await re-issue — has_pending_ and
     * pending_ref_ travel with the checkpoint so the restored run
     * re-issues it exactly like the uninterrupted one.
     */
    void save(snap::ArchiveWriter &ar) const;
    void restore(snap::ArchiveReader &ar);
    /** @} */

    /** @{ @name Statistics */
    stats::Scalar instructions;
    stats::Scalar mem_refs;
    stats::Scalar busy_cycles;
    stats::Scalar translation_cycles;
    stats::Scalar data_cycles;
    stats::Scalar context_switches;
    /** @} */

    void resetStats();

  private:
    unsigned id_;
    CoreParams params_;
    mem::CacheHierarchy &hierarchy_;
    stats::StatGroup stat_group_;
    std::unique_ptr<Mmu> mmu_;
    EpochLog *epoch_log_ = nullptr;
    attrib::CoreSink *sink_ = nullptr;

    /** @{ @name Attribution window state (see flushAttribWindow) */
    int attrib_slot_ = -1; //!< Tenant owning the pending window.
    std::uint64_t attrib_base_[attrib::kNumCounters] = {};
    stats::Distribution attrib_lat_base_; //!< miss_latency snapshot.
    /** Current global counter values, in attrib lane order. */
    void readAttribCounters(std::uint64_t out[attrib::kNumCounters]) const;
    /** @} */

    std::vector<Thread *> threads_;
    /**
     * Per-thread prefetch buffers, parallel to threads_: references
     * pulled ahead through Thread::nextBatch and not yet executed. A
     * buffer survives quantum preemption and yields (its references
     * were already taken from the generator, so they run — in order —
     * when the thread is next scheduled), and travels with the
     * checkpoint so a restored run re-issues the identical stream.
     */
    struct PrefetchBuf
    {
        std::vector<MemRef> refs;
        std::size_t head = 0;
        bool empty() const { return head >= refs.size(); }
        void clear() { refs.clear(); head = 0; }
    };
    std::vector<PrefetchBuf> prefetch_;
    /**
     * Cached Thread::finished() observations, parallel to threads_.
     * finished() is monotone (see thread.hh), so once a thread has been
     * seen done it stays done and the scheduler never needs to ask it
     * again — busy() and scheduleNext() skip cached-done threads instead
     * of rescanning the whole run queue per decision. Mutable so the
     * const busy() can record what it observes.
     */
    mutable std::vector<char> thread_done_;
    mutable std::size_t done_count_ = 0;
    std::size_t current_ = 0;
    Cycles now_ = 0;
    Cycles quantum_left_ = 0;
    double cpi_accum_ = 0; //!< Fractional base-CPI carry.

    /** @{ @name Deferred-fault suspension (bound phases only) */
    MemRef pending_ref_{};  //!< The reference stalled on the fault.
    bool blocked_ = false;  //!< Waiting for System to service the fault.
    bool has_pending_ = false; //!< pending_ref_ must be re-issued.
    unsigned pending_retries_ = 0; //!< Convergence guard per reference.
    /** @} */

    /** finished() of one thread, through (and updating) the cache. */
    bool noteFinished(std::size_t idx) const;

    /** Advance to the next runnable thread; true if one exists. */
    bool scheduleNext();
};

} // namespace bf::core

#endif // BF_CORE_CORE_HH
