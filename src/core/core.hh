/**
 * @file
 * The timing core: pulls memory references from the scheduled container
 * threads, charges base pipeline time plus the full translation and
 * memory latency of each reference, and multiplexes threads with the OS
 * scheduling quantum (containers are over-subscribed: 2-3 per core).
 */

#ifndef BF_CORE_CORE_HH
#define BF_CORE_CORE_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/mmu.hh"
#include "core/params.hh"
#include "core/thread.hh"
#include "mem/hierarchy.hh"

namespace bf::core
{

/** One out-of-order core plus its MMU and run queue. */
class Core
{
  public:
    Core(unsigned id, const CoreParams &params, const MmuParams &mmu,
         mem::CacheHierarchy &hierarchy, vm::Kernel &kernel,
         stats::StatGroup *parent = nullptr);

    /** Add a container thread to this core's run queue. */
    void addThread(Thread *thread);

    /** Remove all threads (between experiments). */
    void clearThreads();

    /** Whether any unfinished thread remains. */
    bool busy() const;

    /** The core's clock. */
    Cycles now() const { return now_; }

    /** Force the clock (used when cores idle while others run). */
    void syncTo(Cycles target);

    /**
     * Execute until the clock reaches @p until (or the run queue
     * empties). The scheduler rotates threads every quantum.
     */
    void runUntil(Cycles until);

    Mmu &mmu() { return *mmu_; }
    unsigned id() const { return id_; }

    /** @{ @name Statistics */
    stats::Scalar instructions;
    stats::Scalar mem_refs;
    stats::Scalar busy_cycles;
    stats::Scalar translation_cycles;
    stats::Scalar data_cycles;
    stats::Scalar context_switches;
    /** @} */

    void resetStats();

  private:
    unsigned id_;
    CoreParams params_;
    mem::CacheHierarchy &hierarchy_;
    stats::StatGroup stat_group_;
    std::unique_ptr<Mmu> mmu_;

    std::vector<Thread *> threads_;
    /**
     * Cached Thread::finished() observations, parallel to threads_.
     * finished() is monotone (see thread.hh), so once a thread has been
     * seen done it stays done and the scheduler never needs to ask it
     * again — busy() and scheduleNext() skip cached-done threads instead
     * of rescanning the whole run queue per decision. Mutable so the
     * const busy() can record what it observes.
     */
    mutable std::vector<char> thread_done_;
    mutable std::size_t done_count_ = 0;
    std::size_t current_ = 0;
    Cycles now_ = 0;
    Cycles quantum_left_ = 0;
    double cpi_accum_ = 0; //!< Fractional base-CPI carry.

    /** finished() of one thread, through (and updating) the cache. */
    bool noteFinished(std::size_t idx) const;

    /** Advance to the next runnable thread; true if one exists. */
    bool scheduleNext();
};

} // namespace bf::core

#endif // BF_CORE_CORE_HH
