/**
 * @file
 * Aggregated architecture parameters, defaulting to Table I of the paper.
 */

#ifndef BF_CORE_PARAMS_HH
#define BF_CORE_PARAMS_HH

#include <string>

#include "common/types.hh"
#include "mem/hierarchy.hh"
#include "tlb/page_walk_cache.hh"
#include "tlb/tlb.hh"
#include "translate/kind.hh"
#include "vm/kernel.hh"

namespace bf::core
{

/** MMU (TLB hierarchy) parameters per core. */
struct MmuParams
{
    // L1 TLBs: 1-cycle access (Table I).
    tlb::TlbParams l1i_4k{ "l1i_tlb4k", 64, 4, PageSize::Size4K, 1, 0 };
    tlb::TlbParams l1d_4k{ "l1d_tlb4k", 64, 4, PageSize::Size4K, 1, 0 };
    tlb::TlbParams l1d_2m{ "l1d_tlb2m", 32, 4, PageSize::Size2M, 1, 0 };
    tlb::TlbParams l1d_1g{ "l1d_tlb1g", 4, 0, PageSize::Size1G, 1, 0 };

    // Unified L2 TLB: 10-cycle access, 12 when the PC bitmask is read.
    tlb::TlbParams l2_4k{ "l2_tlb4k", 1536, 12, PageSize::Size4K, 10, 2 };
    tlb::TlbParams l2_2m{ "l2_tlb2m", 1536, 12, PageSize::Size2M, 10, 2 };
    tlb::TlbParams l2_1g{ "l2_tlb1g", 16, 4, PageSize::Size1G, 10, 2 };

    tlb::PwcParams pwc{};

    bool babelfish = true;            //!< CCID TLB sharing enabled.
    vm::AslrMode aslr = vm::AslrMode::Hw;

    /** ASLR-HW address transformation on an L1 TLB miss (Table I). */
    Cycles aslr_transform_cycles = 2;

    /**
     * Ablation: disable the ORPC short-circuit of Fig. 5(b), making
     * every L2 TLB access pay the long (PC-bitmask) access time.
     */
    bool force_long_l2 = false;

    /**
     * Translation backend (the zoo, DESIGN.md §16). Selects the design
     * built around the structures above; orthogonal to `babelfish`,
     * which selects CCID tagging within whichever backend runs. The
     * BF_BACKEND env knob steers this through the bench runner.
     */
    translate::BackendKind backend = translate::BackendKind::BabelFish;

    /**
     * L1 TLB entry sharing: only sound under ASLR-SW (same layouts). The
     * paper's default evaluation keeps it off (ASLR-HW).
     */
    bool
    l1Sharing() const
    {
        return babelfish && aslr != vm::AslrMode::Hw;
    }
};

/** Timing-core parameters. */
struct CoreParams
{
    /** Base pipeline cycles charged per instruction (2-issue OoO). */
    double base_cpi = 0.5;
    /** Scheduling quantum (Table I: 10 ms at 2 GHz). */
    Cycles quantum = msToCycles(10);
    /** Direct cost of a context switch (CR3 write; no TLB flush). */
    Cycles context_switch_cycles = 1500;
    /**
     * Host-side execution knob (like SystemParams::workers): how many
     * references the core pulls per Thread::nextBatch call into its
     * per-thread prefetch buffer. Stats are byte-identical at every
     * value; 1 degenerates to one next() per reference. Benches
     * override via BF_BATCH. Excluded from config hashes and
     * checkpoint manifests for the same reason workers is.
     */
    unsigned batch = 16;
};

/** Whole-machine parameters. */
struct SystemParams
{
    unsigned num_cores = 8;
    CoreParams core{};
    MmuParams mmu{};
    mem::HierarchyParams mem{};
    vm::KernelParams kernel{};
    std::uint64_t seed = 42;

    /**
     * Lockstep sync-chunk length in cycles: cores run bound phases of
     * this many cycles between weave points (see core/epoch.hh). Must
     * be > 0. Benches override via BF_SYNC_CHUNK.
     */
    Cycles sync_chunk = 20000;

    /**
     * Host worker threads for the bound phase, clamped to num_cores.
     * Stats are byte-identical at every value — 1 runs the same
     * two-phase algorithm inline. Benches override via BF_WORKERS.
     */
    unsigned workers = 1;

    /**
     * Host worker threads for the weave phase (DESIGN.md §15), rounded
     * down to a power of two and clamped to the shard limit the cache
     * geometries support (64 with Table I). 1 keeps the fused serial
     * replay on the calling thread; higher values replay address
     * shards of the canonical stream concurrently. Stats, LRU bytes
     * and checkpoints are byte-identical at every value. Benches
     * override via BF_WEAVE_WORKERS. Like workers, excluded from
     * config hashes and checkpoint manifests.
     */
    unsigned weave_workers = 1;

    /**
     * @{
     * @name Event tracing (DESIGN.md §12)
     * When trace_path is non-empty the System records translation-
     * pipeline events into that file (benches wire BF_TRACE).
     * trace_events is the EventType bit mask (BF_TRACE_EVENTS) and
     * trace_limit caps the records written (BF_TRACE_LIMIT, 0 =
     * unlimited). Tracing never changes stats or timing, so it is
     * deliberately absent from the checkpoint manifest.
     */
    std::string trace_path;
    std::uint32_t trace_events = 0xffffffffu;
    std::uint64_t trace_limit = 0;
    /** @} */

    /**
     * Per-container attribution (common/attrib, DESIGN.md §17): tag
     * every translation/memory event with its issuing container and
     * accumulate a per-tenant stats subtree plus interference edges
     * (TLB evictions, shootdowns, weave DRAM excess). Deterministic and
     * exact — the sum over tenants equals the global counters
     * bit-for-bit — so it defaults on; BF_ATTRIB=0 disables it (the
     * golden stats are recorded with it on).
     */
    bool attrib = true;

    /** A fully wired Baseline configuration (no BabelFish anywhere). */
    static SystemParams
    baseline()
    {
        SystemParams p;
        p.kernel.babelfish = false;
        p.mmu.babelfish = false;
        return p;
    }

    /** The paper's default BabelFish configuration (ASLR-HW). */
    static SystemParams
    babelfish()
    {
        return SystemParams{};
    }

    /**
     * Page-table fusion only: the kernel shares tables (fewer faults,
     * warm caches for walks) but the TLB stays conventional. The delta
     * between this and full BabelFish isolates the L2 TLB effects of
     * Table II.
     */
    static SystemParams
    pageTableSharingOnly()
    {
        SystemParams p;
        p.kernel.babelfish = true;
        p.mmu.babelfish = false;
        return p;
    }
};

} // namespace bf::core

#endif // BF_CORE_PARAMS_HH
