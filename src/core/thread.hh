/**
 * @file
 * The interface between workload generators and the timing cores.
 *
 * A Thread produces the memory-reference stream of one container process.
 * The core pulls references, charges their translation and memory
 * latency, and notifies the thread of completion times so request
 * latencies (Data Serving) and run times (Functions) can be measured.
 */

#ifndef BF_CORE_THREAD_HH
#define BF_CORE_THREAD_HH

#include <string>

#include "common/types.hh"

namespace bf::vm
{
class Process;
} // namespace bf::vm

namespace bf::snap
{
class ArchiveWriter;
class ArchiveReader;
} // namespace bf::snap

namespace bf::core
{

/** One memory reference of a thread's execution. */
struct MemRef
{
    Addr va = 0;                      //!< Canonical virtual address.
    AccessType type = AccessType::Read;
    std::uint32_t instrs = 1;         //!< Instructions retired with it.
    bool request_end = false;         //!< Marks a request boundary.
    /**
     * The thread blocks after this reference (e.g.\ waiting on network
     * I/O between request batches); the scheduler switches to the next
     * runnable container immediately instead of waiting out the
     * quantum. Server processes switch at sub-quantum granularity,
     * which is what keeps co-located containers' working sets competing
     * in the TLBs continuously.
     */
    bool yield_after = false;
};

/** A schedulable container process. */
class Thread
{
  public:
    virtual ~Thread() = default;

    /** The process whose address space the references live in. */
    virtual vm::Process *process() = 0;

    /**
     * Produce the next reference.
     * @return false when the thread has run to completion (functions).
     */
    virtual bool next(MemRef &ref) = 0;

    /**
     * Produce up to @p max references into @p out, returning how many
     * were written (0 = run to completion, like next() returning
     * false). The core pulls runs through this and buffers them, so a
     * generator that can hand out several queued references per call
     * amortizes the virtual dispatch and its own cursor checks.
     *
     * Contract: the concatenation of all nextBatch() results must be
     * the exact reference stream repeated next() calls would produce,
     * and a batch must never cross a point where the generator's
     * output could depend on completed() callbacks of references
     * inside the same batch — the core only delivers completions for
     * batch k before it asks for batch k+1. Generators whose every
     * reference may depend on the previous completion keep the
     * default, which degenerates to one next() per call.
     */
    virtual unsigned
    nextBatch(MemRef *out, unsigned max)
    {
        (void)max;
        return next(out[0]) ? 1u : 0u;
    }

    /** Called after a reference completes, with the core's cycle. */
    virtual void completed(const MemRef &ref, Cycles now) { (void)ref;
                                                            (void)now; }

    /**
     * Whether the thread has exited. Must be monotone: once it returns
     * true it must keep returning true, and transitions happen only
     * inside next() or completed(). The core's scheduler caches the
     * observations (Core::noteFinished) and relies on this to avoid
     * re-polling finished threads.
     */
    virtual bool finished() const { return false; }

    /** Debug name. */
    virtual const std::string &name() const = 0;

    /**
     * @{
     * @name Checkpointing
     * Serialize / overwrite the generator's progress (RNG state,
     * cursors, phase). The default is stateless; every workload thread
     * with mutable state overrides both, and restoreState may throw
     * snap::SnapshotError on divergence from the rebuilt thread.
     */
    virtual void saveState(snap::ArchiveWriter &ar) const { (void)ar; }
    virtual void restoreState(snap::ArchiveReader &ar) { (void)ar; }
    /** @} */
};

} // namespace bf::core

#endif // BF_CORE_THREAD_HH
