/**
 * @file
 * Bound/weave epoch machinery for deterministic parallel simulation.
 *
 * System::run() advances the machine in sync chunks. Within a chunk each
 * core executes a *bound* phase that touches only per-core-private state
 * (L1/L2 caches, TLBs, PWC, MMU caches, per-core stats); everything that
 * would touch a shared level — an L2 cache miss into L3/DRAM, a
 * coherence probe of peer caches, a kernel page fault — is recorded in
 * the core's EpochLog with a deterministic timestamp instead of being
 * performed. A single-threaded *weave* phase then drains the merged logs
 * in canonical (timestamp, core, seq) order against the shared L3, DRAM
 * and kernel, producing the authoritative latencies, fills, LRU updates
 * and statistics.
 *
 * Because the per-core bound execution is independent of how cores are
 * scheduled onto host threads, and both the fault-service and weave
 * drains use a canonical order, the simulated machine is byte-identical
 * at every worker count — `workers=1` runs the exact same algorithm
 * inline. The golden-stats gate and test_parallel_system lock this down.
 */

#ifndef BF_CORE_EPOCH_HH
#define BF_CORE_EPOCH_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "vm/kernel.hh"

namespace bf::core
{

/** One deferred shared-level memory event from a bound phase. */
struct EpochEvent
{
    Cycles timestamp = 0;     //!< Deterministic issue time (core clock).
    std::uint32_t seq = 0;    //!< Per-core issue order (merge tiebreak).
    Addr paddr = 0;
    AccessType type = AccessType::Read;
    bool probe_only = false;  //!< Coherence probe of an L1/L2 write hit.
    bool from_walker = false; //!< Walk step: excess bills translation time.
};

/**
 * Per-core event log of one sync chunk. The owning core appends during
 * its bound execution; the weave drains all cores' logs single-threaded.
 * While inactive (outside System::run) the hierarchy and MMU take their
 * historical immediate paths, so direct calls from tests are unchanged.
 */
class EpochLog
{
  public:
    bool active() const { return active_; }
    void activate() { active_ = true; }
    void deactivate() { active_ = false; }

    /** Record an L2-miss access deferred to the shared levels. */
    void
    appendAccess(Cycles ts, Addr paddr, AccessType type, bool from_walker)
    {
        events_.push_back({ts, seq_++, paddr, type, false, from_walker});
    }

    /** Record a coherence probe for an L1/L2 write hit. */
    void
    appendProbe(Cycles ts, Addr paddr)
    {
        events_.push_back({ts, seq_++, paddr, AccessType::Write, true,
                           false});
    }

    /** @{ @name Deferred page fault (at most one; the core suspends) */
    bool faultPending() const { return fault_pending_; }

    void
    deferFault(const vm::DeferredFault &fault, Cycles ts)
    {
        bf_assert(!fault_pending_, "second fault deferred while blocked");
        fault_ = fault;
        fault_ts_ = ts;
        fault_pending_ = true;
    }

    const vm::DeferredFault &fault() const { return fault_; }
    Cycles faultTime() const { return fault_ts_; }
    void clearFault() { fault_pending_ = false; }
    /** @} */

    const std::vector<EpochEvent> &events() const { return events_; }

    /** Drop drained events; keeps capacity for the next chunk. */
    void
    clearEvents()
    {
        events_.clear();
        seq_ = 0;
    }

  private:
    std::vector<EpochEvent> events_;
    vm::DeferredFault fault_{};
    Cycles fault_ts_ = 0;
    bool fault_pending_ = false;
    bool active_ = false;
    std::uint32_t seq_ = 0;
};

/**
 * Persistent worker pool for bound phases, with work stealing.
 *
 * A chunked simulation crosses the fork/join point tens of thousands of
 * times per second, so the pool keeps its threads alive and uses
 * spin-then-yield waits on atomics rather than re-spawning (a condvar
 * handoff costs microseconds per round).
 *
 * Work distribution: the n items of a round are split into one
 * contiguous block per stripe (worker threads plus the caller), each
 * with an atomic claim cursor. A stripe drains its own block first,
 * then sweeps the other blocks and steals whatever is still unclaimed
 * — so a stripe whose cores idle at the sync barrier (short bound
 * phases, uneven run queues) helps finish the stragglers' cores
 * instead of spinning. Bound-phase items are fully independent and
 * each is claimed exactly once (the cursor fetch_add is the claim), so
 * which host thread runs an item cannot affect simulated state — the
 * determinism argument is unchanged from static striping.
 *
 * Round isolation: workers signal done_ only after their final claim,
 * and run() returns only once every worker has signaled, so no claim
 * can leak into the next round's cursor reset.
 */
class BoundPool
{
  public:
    /** @param extra_workers host threads beyond the calling thread. */
    explicit BoundPool(unsigned extra_workers);
    ~BoundPool();

    BoundPool(const BoundPool &) = delete;
    BoundPool &operator=(const BoundPool &) = delete;

    /**
     * Run fn(0) ... fn(n-1) across the pool plus the calling thread;
     * returns once all have completed.
     */
    void run(unsigned n, const std::function<void(unsigned)> &fn);

  private:
    /** One claim cursor per stripe block, padded against false sharing. */
    struct alignas(64) BlockCursor
    {
        std::atomic<unsigned> next{0};
    };

    void workerLoop(unsigned stripe);

    /** Claim-and-run loop over one block; returns when it is exhausted. */
    void drainBlock(unsigned block,
                    const std::function<void(unsigned)> &fn);

    /** First item of a stripe's block (blocks are contiguous). */
    unsigned
    blockBegin(unsigned stripe) const
    {
        return static_cast<unsigned>(
            (static_cast<std::uint64_t>(n_) * stripe) / stripe_count_);
    }

    std::vector<std::thread> threads_;
    const unsigned stripe_count_; //!< threads_.size() + 1 (the caller).
    std::unique_ptr<BlockCursor[]> cursors_; //!< One per stripe.
    std::atomic<std::uint64_t> generation_{0};
    std::atomic<unsigned> done_{0}; //!< Workers finished this round.
    std::atomic<bool> stop_{false};
    const std::function<void(unsigned)> *job_ = nullptr;
    unsigned n_ = 0;
};

} // namespace bf::core

#endif // BF_CORE_EPOCH_HH
