/**
 * @file
 * Bound/weave epoch machinery for deterministic parallel simulation.
 *
 * System::run() advances the machine in sync chunks. Within a chunk each
 * core executes a *bound* phase that touches only per-core-private state
 * (L1/L2 caches, TLBs, PWC, MMU caches, per-core stats); everything that
 * would touch a shared level — an L2 cache miss into L3/DRAM, a
 * coherence probe of peer caches, a kernel page fault — is recorded in
 * the core's EpochLog with a deterministic timestamp instead of being
 * performed. A *weave* phase then drains the merged logs in canonical
 * (timestamp, core, seq) order against the shared L3, DRAM and kernel,
 * producing the authoritative latencies, fills, LRU updates and
 * statistics. The weave itself replays either fused on the calling
 * thread or sharded across workers (DESIGN.md §15); both orders are
 * byte-identical.
 *
 * Because the per-core bound execution is independent of how cores are
 * scheduled onto host threads, and both the fault-service and weave
 * drains use a canonical order, the simulated machine is byte-identical
 * at every worker count — `workers=1` runs the exact same algorithm
 * inline. The golden-stats gate and test_parallel_system lock this down.
 */

#ifndef BF_CORE_EPOCH_HH
#define BF_CORE_EPOCH_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "vm/kernel.hh"

namespace bf::core
{

/**
 * Per-core event log of one sync chunk. The owning core appends during
 * its bound execution; the weave drains all cores' logs in canonical
 * order. While inactive (outside System::run) the hierarchy and MMU
 * take their historical immediate paths, so direct calls from tests are
 * unchanged.
 *
 * Storage is structure-of-arrays: parallel timestamp / address / flag
 * vectors whose capacity persists across chunks (clearEvents() never
 * shrinks), so steady-state bound phases append without allocating.
 * The per-core issue order — the `seq` tiebreak of the canonical merge
 * key — is the append index itself and is never materialized.
 */
class EpochLog
{
  public:
    /** @{ @name Event flag bits (packed per event) */
    static constexpr std::uint8_t flagWrite = 1;  //!< Dirties the line.
    static constexpr std::uint8_t flagProbe = 2;  //!< Coherence probe.
    static constexpr std::uint8_t flagWalker = 4; //!< Walk step: excess
                                                  //!< bills translation.
    /** @} */

    bool active() const { return active_; }
    void activate() { active_ = true; }
    void deactivate() { active_ = false; }

    /** Sentinel slot value: event not attributed to any tenant. */
    static constexpr std::uint16_t noSlot = 0xffff;

    /**
     * Stamp the attribution slot of the issuing container; every event
     * appended until the next call carries it (the core stamps before
     * each reference issues). The slot rides the log so the weave can
     * bill its DRAM-excess to the issuing tenant (-1 = unattributed).
     */
    void
    setSlot(int slot)
    {
        cur_slot_ = (slot < 0 || slot >= noSlot)
                        ? noSlot
                        : static_cast<std::uint16_t>(slot);
    }

    /** Record an L2-miss access deferred to the shared levels. */
    void
    appendAccess(Cycles ts, Addr paddr, AccessType type, bool from_walker)
    {
        std::uint8_t flags =
            type == AccessType::Write ? flagWrite : std::uint8_t(0);
        if (from_walker)
            flags |= flagWalker;
        ts_.push_back(ts);
        paddr_.push_back(paddr);
        flags_.push_back(flags);
        slot_.push_back(cur_slot_);
    }

    /** Record a coherence probe for an L1/L2 write hit. */
    void
    appendProbe(Cycles ts, Addr paddr)
    {
        ts_.push_back(ts);
        paddr_.push_back(paddr);
        flags_.push_back(flagWrite | flagProbe);
        slot_.push_back(cur_slot_);
    }

    /** @{ @name Deferred page fault (at most one; the core suspends) */
    bool faultPending() const { return fault_pending_; }

    void
    deferFault(const vm::DeferredFault &fault, Cycles ts)
    {
        bf_assert(!fault_pending_, "second fault deferred while blocked");
        fault_ = fault;
        fault_ts_ = ts;
        fault_pending_ = true;
    }

    const vm::DeferredFault &fault() const { return fault_; }
    Cycles faultTime() const { return fault_ts_; }
    void clearFault() { fault_pending_ = false; }
    /** @} */

    /** @{ @name Event access (index = per-core issue order / seq) */
    std::size_t size() const { return ts_.size(); }
    bool empty() const { return ts_.empty(); }
    Cycles ts(std::size_t i) const { return ts_[i]; }
    Addr paddr(std::size_t i) const { return paddr_[i]; }
    std::uint8_t flags(std::size_t i) const { return flags_[i]; }
    std::uint16_t slot(std::size_t i) const { return slot_[i]; }
    /** @} */

    /** Pre-size the pooled buffers (tests / capacity-boundary checks). */
    void
    reserve(std::size_t n)
    {
        ts_.reserve(n);
        paddr_.reserve(n);
        flags_.reserve(n);
        slot_.reserve(n);
    }

    /** Pooled capacity currently held (timestamps lane). */
    std::size_t capacity() const { return ts_.capacity(); }

    /** Drop drained events; keeps capacity for the next chunk. */
    void
    clearEvents()
    {
        ts_.clear();
        paddr_.clear();
        flags_.clear();
        slot_.clear();
    }

  private:
    std::vector<Cycles> ts_;
    std::vector<Addr> paddr_;
    std::vector<std::uint8_t> flags_;
    std::vector<std::uint16_t> slot_; //!< Issuing tenant per event.
    std::uint16_t cur_slot_ = noSlot;
    vm::DeferredFault fault_{};
    Cycles fault_ts_ = 0;
    bool fault_pending_ = false;
    bool active_ = false;
};

/**
 * The merged canonical event stream of one chunk, pooled across chunks.
 *
 * The merge splits the canonical (ts, core, seq) order into two
 * sub-streams that preserve it: L2-miss *accesses* (replayed against
 * L3/DRAM) and coherence *probes* (replayed against peer L1/L2). A
 * write access appears in both — the L3/DRAM service and the peer
 * invalidation the historical replay fused. The two sub-streams touch
 * disjoint simulated state, so replaying them separately is
 * state-identical to the historical interleaved drain; within one
 * chunk's probe stream, per-peer outcomes are even order-independent
 * (invalidation only moves a line present → absent, and no weave path
 * refills private levels), which is what lets the probe pass shard by
 * line rather than replay position.
 *
 * `hit` is the weave's L3-outcome scratch lane (1 = L3 hit): written by
 * the L3 pass, read by the DRAM pass. One byte per access so concurrent
 * shards write distinct memory locations.
 */
struct WeaveStream
{
    /** @{ @name Accesses, canonical order */
    std::vector<Cycles> ts;
    std::vector<Addr> paddr;
    std::vector<std::uint8_t> core;
    std::vector<std::uint8_t> flags; //!< EpochLog::flagWrite/flagWalker.
    std::vector<std::uint8_t> hit;   //!< L3 pass outcome, per access.
    std::vector<std::uint16_t> slot; //!< Issuing tenant (EpochLog::noSlot
                                     //!< = unattributed).
    /** @} */

    /** @{ @name Probes, canonical order */
    std::vector<Addr> probe_paddr;
    std::vector<std::uint8_t> probe_core;
    /** @} */

    std::size_t accesses() const { return ts.size(); }
    std::size_t probes() const { return probe_paddr.size(); }
    bool empty() const { return ts.empty() && probe_paddr.empty(); }

    void
    clear()
    {
        ts.clear();
        paddr.clear();
        core.clear();
        flags.clear();
        hit.clear();
        slot.clear();
        probe_paddr.clear();
        probe_core.clear();
    }
};

/**
 * Merge the per-core epoch logs into @p out in canonical
 * (timestamp, core, seq) order.
 *
 * Each log is already sorted: a core's clock never runs backwards
 * across references, and within one reference events are appended in
 * nondecreasing-timestamp order (walk steps precede the data access
 * they enable), so the append order *is* the (ts, seq) order — asserted
 * here. Merging k sorted runs with a ladder (linear min-scan over one
 * head per core, ties broken by core id; seq ties cannot occur across
 * the merge because a head advances sequentially) therefore reproduces
 * the historical global sort exactly, in O(events × cores) with no
 * comparator calls or record copies.
 *
 * @param write_probes emit a probe-lane entry for every write access
 *        (the peer invalidation its replay owes); pass the hierarchy's
 *        coherence state so single-core runs skip the dead lanes.
 */
void mergeEpochLogs(const std::vector<std::unique_ptr<EpochLog>> &logs,
                    WeaveStream &out, bool write_probes);

/**
 * Persistent worker pool for bound and weave phases, with work
 * stealing.
 *
 * A chunked simulation crosses the fork/join point tens of thousands of
 * times per second, so the pool keeps its threads alive and uses
 * spin-then-yield waits on atomics rather than re-spawning (a condvar
 * handoff costs microseconds per round).
 *
 * Work distribution: the n items of a round are split into one
 * contiguous block per active stripe (worker threads plus the caller),
 * each with an atomic claim cursor. A stripe drains its own block
 * first, then sweeps the other blocks and steals whatever is still
 * unclaimed — so a stripe whose cores idle at the sync barrier (short
 * bound phases, uneven run queues) helps finish the stragglers' cores
 * instead of spinning. Round items are fully independent and each is
 * claimed exactly once (the cursor fetch_add is the claim), so which
 * host thread runs an item cannot affect simulated state — the
 * determinism argument is unchanged from static striping.
 *
 * Rounds may cap their parallelism below the pool size (the `stripes`
 * argument): the bound phase runs on BF_WORKERS stripes and the weave
 * passes on BF_WEAVE_WORKERS stripes off one shared pool sized for the
 * larger of the two. Workers above the cap wake, find no block
 * assigned, and immediately signal done.
 *
 * Round isolation: workers signal done_ only after their final claim,
 * and run() returns only once every worker has signaled, so no claim
 * can leak into the next round's cursor reset.
 */
class BoundPool
{
  public:
    /** @param extra_workers host threads beyond the calling thread. */
    explicit BoundPool(unsigned extra_workers);
    ~BoundPool();

    BoundPool(const BoundPool &) = delete;
    BoundPool &operator=(const BoundPool &) = delete;

    /**
     * Run fn(0) ... fn(n-1) across the pool plus the calling thread;
     * returns once all have completed.
     *
     * @param stripes cap on participating stripes (0 = the whole pool);
     *        1 runs inline on the caller.
     */
    void run(unsigned n, const std::function<void(unsigned)> &fn,
             unsigned stripes = 0);

  private:
    /** One claim cursor per stripe block, padded against false sharing. */
    struct alignas(64) BlockCursor
    {
        std::atomic<unsigned> next{0};
    };

    void workerLoop(unsigned stripe);

    /** Claim-and-run loop over one block; returns when it is exhausted. */
    void drainBlock(unsigned block,
                    const std::function<void(unsigned)> &fn);

    /** First item of a stripe's block (blocks are contiguous). */
    unsigned
    blockBegin(unsigned stripe) const
    {
        return static_cast<unsigned>(
            (static_cast<std::uint64_t>(n_) * stripe) / active_stripes_);
    }

    std::vector<std::thread> threads_;
    const unsigned stripe_count_; //!< threads_.size() + 1 (the caller).
    std::unique_ptr<BlockCursor[]> cursors_; //!< One per stripe.
    std::atomic<std::uint64_t> generation_{0};
    std::atomic<unsigned> done_{0}; //!< Workers finished this round.
    std::atomic<bool> stop_{false};
    const std::function<void(unsigned)> *job_ = nullptr;
    unsigned n_ = 0;
    unsigned active_stripes_ = 1; //!< Stripes sharing the current round.
};

} // namespace bf::core

#endif // BF_CORE_EPOCH_HH
