/**
 * @file
 * Bound/weave epoch machinery for deterministic parallel simulation.
 *
 * System::run() advances the machine in sync chunks. Within a chunk each
 * core executes a *bound* phase that touches only per-core-private state
 * (L1/L2 caches, TLBs, PWC, MMU caches, per-core stats); everything that
 * would touch a shared level — an L2 cache miss into L3/DRAM, a
 * coherence probe of peer caches, a kernel page fault — is recorded in
 * the core's EpochLog with a deterministic timestamp instead of being
 * performed. A single-threaded *weave* phase then drains the merged logs
 * in canonical (timestamp, core, seq) order against the shared L3, DRAM
 * and kernel, producing the authoritative latencies, fills, LRU updates
 * and statistics.
 *
 * Because the per-core bound execution is independent of how cores are
 * scheduled onto host threads, and both the fault-service and weave
 * drains use a canonical order, the simulated machine is byte-identical
 * at every worker count — `workers=1` runs the exact same algorithm
 * inline. The golden-stats gate and test_parallel_system lock this down.
 */

#ifndef BF_CORE_EPOCH_HH
#define BF_CORE_EPOCH_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "vm/kernel.hh"

namespace bf::core
{

/** One deferred shared-level memory event from a bound phase. */
struct EpochEvent
{
    Cycles timestamp = 0;     //!< Deterministic issue time (core clock).
    std::uint32_t seq = 0;    //!< Per-core issue order (merge tiebreak).
    Addr paddr = 0;
    AccessType type = AccessType::Read;
    bool probe_only = false;  //!< Coherence probe of an L1/L2 write hit.
    bool from_walker = false; //!< Walk step: excess bills translation time.
};

/**
 * Per-core event log of one sync chunk. The owning core appends during
 * its bound execution; the weave drains all cores' logs single-threaded.
 * While inactive (outside System::run) the hierarchy and MMU take their
 * historical immediate paths, so direct calls from tests are unchanged.
 */
class EpochLog
{
  public:
    bool active() const { return active_; }
    void activate() { active_ = true; }
    void deactivate() { active_ = false; }

    /** Record an L2-miss access deferred to the shared levels. */
    void
    appendAccess(Cycles ts, Addr paddr, AccessType type, bool from_walker)
    {
        events_.push_back({ts, seq_++, paddr, type, false, from_walker});
    }

    /** Record a coherence probe for an L1/L2 write hit. */
    void
    appendProbe(Cycles ts, Addr paddr)
    {
        events_.push_back({ts, seq_++, paddr, AccessType::Write, true,
                           false});
    }

    /** @{ @name Deferred page fault (at most one; the core suspends) */
    bool faultPending() const { return fault_pending_; }

    void
    deferFault(const vm::DeferredFault &fault, Cycles ts)
    {
        bf_assert(!fault_pending_, "second fault deferred while blocked");
        fault_ = fault;
        fault_ts_ = ts;
        fault_pending_ = true;
    }

    const vm::DeferredFault &fault() const { return fault_; }
    Cycles faultTime() const { return fault_ts_; }
    void clearFault() { fault_pending_ = false; }
    /** @} */

    const std::vector<EpochEvent> &events() const { return events_; }

    /** Drop drained events; keeps capacity for the next chunk. */
    void
    clearEvents()
    {
        events_.clear();
        seq_ = 0;
    }

  private:
    std::vector<EpochEvent> events_;
    vm::DeferredFault fault_{};
    Cycles fault_ts_ = 0;
    bool fault_pending_ = false;
    bool active_ = false;
    std::uint32_t seq_ = 0;
};

/**
 * Persistent worker pool for bound phases.
 *
 * A chunked simulation crosses the fork/join point tens of thousands of
 * times per second, so the pool keeps its threads alive and uses
 * spin-then-yield waits on atomics rather than re-spawning (a condvar
 * handoff costs microseconds per round). Work is partitioned statically
 * — stripe s runs items s, s+S, s+2S, ... — so no worker ever claims
 * work after its round completed (a dynamic ticket counter would allow
 * a trailing claim to leak into the next round's reset). Bound-phase
 * items are fully independent, so the assignment cannot affect
 * simulated state.
 */
class BoundPool
{
  public:
    /** @param extra_workers host threads beyond the calling thread. */
    explicit BoundPool(unsigned extra_workers);
    ~BoundPool();

    BoundPool(const BoundPool &) = delete;
    BoundPool &operator=(const BoundPool &) = delete;

    /**
     * Run fn(0) ... fn(n-1) across the pool plus the calling thread;
     * returns once all have completed.
     */
    void run(unsigned n, const std::function<void(unsigned)> &fn);

  private:
    void workerLoop(unsigned stripe);

    std::vector<std::thread> threads_;
    const unsigned stripe_count_; //!< threads_.size() + 1 (the caller).
    std::atomic<std::uint64_t> generation_{0};
    std::atomic<unsigned> done_{0}; //!< Workers finished this round.
    std::atomic<bool> stop_{false};
    const std::function<void(unsigned)> *job_ = nullptr;
    unsigned n_ = 0;
};

} // namespace bf::core

#endif // BF_CORE_EPOCH_HH
