#include "core/core.hh"

#include "common/attrib/attrib.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"

namespace bf::core
{

Core::Core(unsigned id, const CoreParams &params, const MmuParams &mmu,
           mem::CacheHierarchy &hierarchy, vm::Kernel &kernel,
           stats::StatGroup *parent)
    : id_(id), params_(params), hierarchy_(hierarchy),
      stat_group_("core" + std::to_string(id), parent)
{
    mmu_ = std::make_unique<Mmu>(id, mmu, hierarchy, kernel, &stat_group_);
    quantum_left_ = params_.quantum;

    stat_group_.addStat("instructions", &instructions);
    stat_group_.addStat("mem_refs", &mem_refs);
    stat_group_.addStat("busy_cycles", &busy_cycles);
    stat_group_.addStat("translation_cycles", &translation_cycles);
    stat_group_.addStat("data_cycles", &data_cycles);
    stat_group_.addStat("context_switches", &context_switches);
}

void
Core::addThread(Thread *thread)
{
    threads_.push_back(thread);
    prefetch_.emplace_back();
    thread_done_.push_back(thread->finished() ? 1 : 0);
    if (thread_done_.back())
        ++done_count_;
}

void
Core::clearThreads()
{
    threads_.clear();
    prefetch_.clear();
    thread_done_.clear();
    done_count_ = 0;
    current_ = 0;
}

bool
Core::noteFinished(std::size_t idx) const
{
    if (thread_done_[idx])
        return true;
    if (threads_[idx]->finished()) {
        thread_done_[idx] = 1;
        ++done_count_;
        return true;
    }
    return false;
}

bool
Core::busy() const
{
    if (has_pending_)
        return true; // a stalled reference still has to complete
    if (done_count_ == threads_.size())
        return false;
    for (std::size_t i = 0; i < threads_.size(); ++i) {
        if (!noteFinished(i))
            return true;
    }
    return false;
}

void
Core::syncTo(Cycles target)
{
    if (now_ < target)
        now_ = target;
}

bool
Core::scheduleNext()
{
    if (threads_.empty() || done_count_ == threads_.size())
        return false;
    const std::size_t start = current_;
    std::size_t candidate = current_;
    for (std::size_t i = 0; i < threads_.size(); ++i) {
        candidate = (start + 1 + i) % threads_.size();
        if (!noteFinished(candidate)) {
            if (candidate != current_) {
                // CR3 write; with PCID/CCID tags the TLB is not flushed.
                now_ += params_.context_switch_cycles;
                ++context_switches;
            }
            current_ = candidate;
            quantum_left_ = params_.quantum;
            return true;
        }
    }
    return false;
}

void
Core::runUntil(Cycles until)
{
    if (threads_.empty()) {
        now_ = until;
        return;
    }

    while (now_ < until) {
        if (blocked_)
            return; // suspended on a deferred fault; System resumes us

        Thread *thread = threads_[current_];
        MemRef ref;
        Cycles base = 0;

        if (has_pending_) {
            // Re-issue the reference that stalled on a deferred fault.
            // Its base pipeline time was charged when it first issued.
            ref = pending_ref_;
        } else {
            if (noteFinished(current_) || quantum_left_ == 0) {
                if (!scheduleNext()) {
                    now_ = until; // everyone finished: idle to barrier
                    return;
                }
                continue;
            }

            PrefetchBuf &buf = prefetch_[current_];
            if (buf.empty()) {
                const unsigned max = params_.batch ? params_.batch : 1;
                buf.refs.resize(max);
                buf.head = 0;
                const unsigned n = thread->nextBatch(buf.refs.data(), max);
                buf.refs.resize(n);
                if (n == 0) {
                    // Thread just ran to completion.
                    noteFinished(current_);
                    if (!scheduleNext()) {
                        now_ = until;
                        return;
                    }
                    continue;
                }
            }
            ref = buf.refs[buf.head++];

            // Base pipeline time for the instructions retired with this
            // ref.
            cpi_accum_ += params_.base_cpi * ref.instrs;
            base = static_cast<Cycles>(cpi_accum_);
            cpi_accum_ -= static_cast<double>(base);
        }

        vm::Process *proc = thread->process();
        bf_assert(proc, "thread without process");

        // Close the attribution window when the scheduler put a
        // different container on the core: everything the global
        // counters gained since the last flush belongs to the previous
        // tenant. The common case is one predicted compare.
        if (sink_ && proc->attribSlot() != attrib_slot_) {
            flushAttribWindow();
            attrib_slot_ = proc->attribSlot();
        }

        // Stamp the issuing tenant so every event this reference defers
        // to the epoch log carries its slot (weave DRAM-excess billing).
        if (epoch_log_)
            epoch_log_->setSlot(proc->attribSlot());

        const Translation tr =
            mmu_->translate(*proc, ref.va, ref.type, now_ + base);

        if (tr.blocked) {
            // Deferred fault: charge the probe time spent so far and
            // suspend until System services the fault.
            const Cycles spent = base + tr.cycles;
            now_ += spent;
            busy_cycles += spent;
            translation_cycles += tr.cycles;
            quantum_left_ -= std::min<Cycles>(quantum_left_, spent);
            pending_ref_ = ref;
            has_pending_ = true;
            blocked_ = true;
            bf_assert(++pending_retries_ < 64,
                      "deferred fault did not converge at va=", ref.va);
            return;
        }
        has_pending_ = false;
        pending_retries_ = 0;

        // The access issues once the pipeline and translation time have
        // elapsed — the timestamp orders this core's events against the
        // other cores' in the weave (and against DRAM bank state).
        //
        // Epoch-log invariant the canonical merge exploits (asserted in
        // mergeEpochLogs): a core's logged timestamps never decrease in
        // append order. Within one reference the walker's events carry
        // now_ + base + (partial walk cycles) and precede this data
        // access at now_ + base + tr.cycles; across references now_
        // advances below by at least every offset that was stamped. So
        // each per-core log is already sorted by (ts, seq) and the
        // k-way ladder needs no comparison sort.
        const auto mem = hierarchy_.access(id_, tr.paddr, ref.type,
                                           now_ + base + tr.cycles);

        const Cycles spent = base + tr.cycles + mem.latency;
        now_ += spent;
        busy_cycles += spent;
        translation_cycles += tr.cycles;
        data_cycles += mem.latency;
        instructions += ref.instrs;
        ++mem_refs;
        quantum_left_ -= std::min<Cycles>(quantum_left_, spent);

        thread->completed(ref, now_);

        if (ref.yield_after) {
            // Blocking I/O: yield the core to the next container.
            if (!scheduleNext()) {
                now_ = until;
                return;
            }
        }
    }
}

void
Core::resolveFault(Cycles fault_cycles)
{
    bf_assert(blocked_, "resolveFault on a core that is not blocked");
    now_ += fault_cycles;
    busy_cycles += fault_cycles;
    translation_cycles += fault_cycles;
    quantum_left_ -= std::min<Cycles>(quantum_left_, fault_cycles);
    blocked_ = false;
}

void
Core::applyWeaveAdjustment(Cycles data_extra, Cycles walk_extra)
{
    const Cycles total = data_extra + walk_extra;
    now_ += total;
    busy_cycles += total;
    data_cycles += data_extra;
    translation_cycles += walk_extra;
    if (walk_extra)
        mmu_->walker().walk_cycles += walk_extra;
}

void
Core::readAttribCounters(std::uint64_t out[attrib::kNumCounters]) const
{
    const translate::TranslateStats &st = *mmu_;
    out[attrib::kL1Hits] = st.l1_hits.value();
    out[attrib::kL1Misses] = st.l1_misses.value();
    out[attrib::kL2DataHits] = st.l2_data_hits.value();
    out[attrib::kL2DataMisses] = st.l2_data_misses.value();
    out[attrib::kL2InstrHits] = st.l2_instr_hits.value();
    out[attrib::kL2InstrMisses] = st.l2_instr_misses.value();
    out[attrib::kL2DataSharedHits] = st.l2_data_shared_hits.value();
    out[attrib::kL2InstrSharedHits] = st.l2_instr_shared_hits.value();
    out[attrib::kL2Long] = st.l2_long_accesses.value();
    out[attrib::kMinorFaults] = st.minor_faults.value();
    out[attrib::kMajorFaults] = st.major_faults.value();
    out[attrib::kCowFaults] = st.cow_faults.value();
    out[attrib::kSharedInstalls] = st.shared_installs.value();
    out[attrib::kFaultCycles] = st.fault_cycles.value();
    out[attrib::kWalks] = mmu_->walker().walks.value();
    out[attrib::kInstructions] = instructions.value();
}

void
Core::flushAttribWindow()
{
    if (!sink_)
        return;
    std::uint64_t cur[attrib::kNumCounters];
    readAttribCounters(cur);
    for (unsigned c = 0; c < attrib::kNumCounters; ++c) {
        // Counters are monotone between flushes; the delta since the
        // base snapshot is exactly what the current tenant's events
        // booked into the globals.
        const std::uint64_t delta = cur[c] - attrib_base_[c];
        if (delta)
            sink_->add(attrib_slot_, static_cast<attrib::Counter>(c),
                       delta);
        attrib_base_[c] = cur[c];
    }
    const stats::Distribution &lat = mmu_->miss_latency;
    if (lat.count() != attrib_lat_base_.count()) {
        sink_->mergeMissLatencyWindow(attrib_slot_, lat,
                                      attrib_lat_base_);
        attrib_lat_base_ = lat;
    }
}

void
Core::syncAttribWindow()
{
    readAttribCounters(attrib_base_);
    attrib_lat_base_ = mmu_->miss_latency;
    attrib_slot_ = -1; // the next reference re-stamps it
}

void
Core::resetStats()
{
    instructions.reset();
    mem_refs.reset();
    busy_cycles.reset();
    translation_cycles.reset();
    data_cycles.reset();
    context_switches.reset();
    mmu_->resetStats();
    // The globals just moved underneath the attribution window; re-base
    // so the next flush books only post-reset deltas (the Registry's
    // own resetCoreStats resets the tenant side to match).
    syncAttribWindow();
}

void
Core::save(snap::ArchiveWriter &ar) const
{
    bf_assert(!blocked_,
              "checkpoint mid-fault: core ", id_, " is suspended");
    ar.u64(now_);
    ar.u64(quantum_left_);
    ar.f64(cpi_accum_);
    ar.u64(current_);
    ar.u32(static_cast<std::uint32_t>(threads_.size()));
    for (const char done : thread_done_)
        ar.b(done != 0);
    ar.u64(done_count_);
    ar.b(has_pending_);
    ar.u64(pending_ref_.va);
    ar.u8(static_cast<std::uint8_t>(pending_ref_.type));
    ar.u32(pending_ref_.instrs);
    ar.b(pending_ref_.request_end);
    ar.b(pending_ref_.yield_after);
    ar.u32(pending_retries_);
    // Unconsumed prefetched references: already pulled from their
    // generators, so they must re-issue from the checkpoint exactly as
    // the uninterrupted run would have issued them.
    for (const PrefetchBuf &buf : prefetch_) {
        ar.u32(static_cast<std::uint32_t>(buf.refs.size() - buf.head));
        for (std::size_t i = buf.head; i < buf.refs.size(); ++i) {
            const MemRef &ref = buf.refs[i];
            ar.u64(ref.va);
            ar.u8(static_cast<std::uint8_t>(ref.type));
            ar.u32(ref.instrs);
            ar.b(ref.request_end);
            ar.b(ref.yield_after);
        }
    }
    mmu_->save(ar);
}

void
Core::restore(snap::ArchiveReader &ar)
{
    now_ = ar.u64();
    quantum_left_ = ar.u64();
    cpi_accum_ = ar.f64();
    current_ = ar.u64();
    if (ar.u32() != threads_.size()) {
        throw snap::SnapshotError("core checkpoint thread-count mismatch");
    }
    for (char &done : thread_done_)
        done = ar.b() ? 1 : 0;
    done_count_ = ar.u64();
    has_pending_ = ar.b();
    pending_ref_.va = ar.u64();
    pending_ref_.type = static_cast<AccessType>(ar.u8());
    pending_ref_.instrs = ar.u32();
    pending_ref_.request_end = ar.b();
    pending_ref_.yield_after = ar.b();
    pending_retries_ = ar.u32();
    for (PrefetchBuf &buf : prefetch_) {
        buf.refs.resize(ar.u32());
        buf.head = 0;
        for (MemRef &ref : buf.refs) {
            ref.va = ar.u64();
            ref.type = static_cast<AccessType>(ar.u8());
            ref.instrs = ar.u32();
            ref.request_end = ar.b();
            ref.yield_after = ar.b();
        }
    }
    blocked_ = false;
    mmu_->restore(ar);
}

} // namespace bf::core
