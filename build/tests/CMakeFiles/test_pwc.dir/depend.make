# Empty dependencies file for test_pwc.
# This may be replaced when dependencies are built.
