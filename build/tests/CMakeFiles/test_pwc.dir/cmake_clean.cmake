file(REMOVE_RECURSE
  "CMakeFiles/test_pwc.dir/test_pwc.cc.o"
  "CMakeFiles/test_pwc.dir/test_pwc.cc.o.d"
  "test_pwc"
  "test_pwc.pdb"
  "test_pwc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
