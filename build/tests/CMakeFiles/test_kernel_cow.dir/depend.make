# Empty dependencies file for test_kernel_cow.
# This may be replaced when dependencies are built.
