file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_cow.dir/test_kernel_cow.cc.o"
  "CMakeFiles/test_kernel_cow.dir/test_kernel_cow.cc.o.d"
  "test_kernel_cow"
  "test_kernel_cow.pdb"
  "test_kernel_cow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_cow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
