# Empty dependencies file for test_mask_page.
# This may be replaced when dependencies are built.
