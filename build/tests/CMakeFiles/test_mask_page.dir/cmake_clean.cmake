file(REMOVE_RECURSE
  "CMakeFiles/test_mask_page.dir/test_mask_page.cc.o"
  "CMakeFiles/test_mask_page.dir/test_mask_page.cc.o.d"
  "test_mask_page"
  "test_mask_page.pdb"
  "test_mask_page[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mask_page.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
