# Empty compiler generated dependencies file for test_aslr.
# This may be replaced when dependencies are built.
