file(REMOVE_RECURSE
  "CMakeFiles/test_aslr.dir/test_aslr.cc.o"
  "CMakeFiles/test_aslr.dir/test_aslr.cc.o.d"
  "test_aslr"
  "test_aslr.pdb"
  "test_aslr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aslr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
