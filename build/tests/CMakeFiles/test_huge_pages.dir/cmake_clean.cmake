file(REMOVE_RECURSE
  "CMakeFiles/test_huge_pages.dir/test_huge_pages.cc.o"
  "CMakeFiles/test_huge_pages.dir/test_huge_pages.cc.o.d"
  "test_huge_pages"
  "test_huge_pages.pdb"
  "test_huge_pages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_huge_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
