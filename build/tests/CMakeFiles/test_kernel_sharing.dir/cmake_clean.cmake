file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_sharing.dir/test_kernel_sharing.cc.o"
  "CMakeFiles/test_kernel_sharing.dir/test_kernel_sharing.cc.o.d"
  "test_kernel_sharing"
  "test_kernel_sharing.pdb"
  "test_kernel_sharing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
