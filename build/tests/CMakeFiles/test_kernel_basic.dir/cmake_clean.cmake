file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_basic.dir/test_kernel_basic.cc.o"
  "CMakeFiles/test_kernel_basic.dir/test_kernel_basic.cc.o.d"
  "test_kernel_basic"
  "test_kernel_basic.pdb"
  "test_kernel_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
