# Empty compiler generated dependencies file for test_munmap_trace.
# This may be replaced when dependencies are built.
