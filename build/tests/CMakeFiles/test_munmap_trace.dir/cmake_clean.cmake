file(REMOVE_RECURSE
  "CMakeFiles/test_munmap_trace.dir/test_munmap_trace.cc.o"
  "CMakeFiles/test_munmap_trace.dir/test_munmap_trace.cc.o.d"
  "test_munmap_trace"
  "test_munmap_trace.pdb"
  "test_munmap_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_munmap_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
