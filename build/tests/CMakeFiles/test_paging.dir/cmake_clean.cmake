file(REMOVE_RECURSE
  "CMakeFiles/test_paging.dir/test_paging.cc.o"
  "CMakeFiles/test_paging.dir/test_paging.cc.o.d"
  "test_paging"
  "test_paging.pdb"
  "test_paging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
