# Empty compiler generated dependencies file for test_share_levels.
# This may be replaced when dependencies are built.
