file(REMOVE_RECURSE
  "CMakeFiles/test_share_levels.dir/test_share_levels.cc.o"
  "CMakeFiles/test_share_levels.dir/test_share_levels.cc.o.d"
  "test_share_levels"
  "test_share_levels.pdb"
  "test_share_levels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_share_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
