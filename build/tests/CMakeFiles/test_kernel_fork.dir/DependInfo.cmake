
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_kernel_fork.cc" "tests/CMakeFiles/test_kernel_fork.dir/test_kernel_fork.cc.o" "gcc" "tests/CMakeFiles/test_kernel_fork.dir/test_kernel_fork.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/bf_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/bf_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/bf_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
