file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_fork.dir/test_kernel_fork.cc.o"
  "CMakeFiles/test_kernel_fork.dir/test_kernel_fork.cc.o.d"
  "test_kernel_fork"
  "test_kernel_fork.pdb"
  "test_kernel_fork[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
