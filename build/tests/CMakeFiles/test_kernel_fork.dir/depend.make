# Empty dependencies file for test_kernel_fork.
# This may be replaced when dependencies are built.
