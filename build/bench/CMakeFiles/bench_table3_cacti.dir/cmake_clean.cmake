file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_cacti.dir/bench_table3_cacti.cc.o"
  "CMakeFiles/bench_table3_cacti.dir/bench_table3_cacti.cc.o.d"
  "bench_table3_cacti"
  "bench_table3_cacti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_cacti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
