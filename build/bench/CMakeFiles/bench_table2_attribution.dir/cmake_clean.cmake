file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_attribution.dir/bench_table2_attribution.cc.o"
  "CMakeFiles/bench_table2_attribution.dir/bench_table2_attribution.cc.o.d"
  "bench_table2_attribution"
  "bench_table2_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
