# Empty compiler generated dependencies file for bench_larger_tlb.
# This may be replaced when dependencies are built.
