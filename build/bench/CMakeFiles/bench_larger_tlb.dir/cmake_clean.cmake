file(REMOVE_RECURSE
  "CMakeFiles/bench_larger_tlb.dir/bench_larger_tlb.cc.o"
  "CMakeFiles/bench_larger_tlb.dir/bench_larger_tlb.cc.o.d"
  "bench_larger_tlb"
  "bench_larger_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_larger_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
