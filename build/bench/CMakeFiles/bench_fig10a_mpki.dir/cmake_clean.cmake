file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10a_mpki.dir/bench_fig10a_mpki.cc.o"
  "CMakeFiles/bench_fig10a_mpki.dir/bench_fig10a_mpki.cc.o.d"
  "bench_fig10a_mpki"
  "bench_fig10a_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
