# Empty dependencies file for bench_fig10a_mpki.
# This may be replaced when dependencies are built.
