file(REMOVE_RECURSE
  "CMakeFiles/bench_bringup.dir/bench_bringup.cc.o"
  "CMakeFiles/bench_bringup.dir/bench_bringup.cc.o.d"
  "bench_bringup"
  "bench_bringup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bringup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
