# Empty dependencies file for bench_bringup.
# This may be replaced when dependencies are built.
