file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_shared_hits.dir/bench_fig10b_shared_hits.cc.o"
  "CMakeFiles/bench_fig10b_shared_hits.dir/bench_fig10b_shared_hits.cc.o.d"
  "bench_fig10b_shared_hits"
  "bench_fig10b_shared_hits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_shared_hits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
