# Empty compiler generated dependencies file for bench_fig10b_shared_hits.
# This may be replaced when dependencies are built.
