# Empty dependencies file for bench_fig9_pagetable_sharing.
# This may be replaced when dependencies are built.
