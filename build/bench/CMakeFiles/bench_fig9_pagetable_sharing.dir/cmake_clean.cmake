file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_pagetable_sharing.dir/bench_fig9_pagetable_sharing.cc.o"
  "CMakeFiles/bench_fig9_pagetable_sharing.dir/bench_fig9_pagetable_sharing.cc.o.d"
  "bench_fig9_pagetable_sharing"
  "bench_fig9_pagetable_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_pagetable_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
