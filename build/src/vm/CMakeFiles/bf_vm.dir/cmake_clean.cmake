file(REMOVE_RECURSE
  "CMakeFiles/bf_vm.dir/aslr.cc.o"
  "CMakeFiles/bf_vm.dir/aslr.cc.o.d"
  "CMakeFiles/bf_vm.dir/kernel.cc.o"
  "CMakeFiles/bf_vm.dir/kernel.cc.o.d"
  "libbf_vm.a"
  "libbf_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
