# Empty dependencies file for bf_mem.
# This may be replaced when dependencies are built.
