file(REMOVE_RECURSE
  "libbf_mem.a"
)
