file(REMOVE_RECURSE
  "CMakeFiles/bf_mem.dir/cache.cc.o"
  "CMakeFiles/bf_mem.dir/cache.cc.o.d"
  "CMakeFiles/bf_mem.dir/dram.cc.o"
  "CMakeFiles/bf_mem.dir/dram.cc.o.d"
  "CMakeFiles/bf_mem.dir/hierarchy.cc.o"
  "CMakeFiles/bf_mem.dir/hierarchy.cc.o.d"
  "libbf_mem.a"
  "libbf_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
