file(REMOVE_RECURSE
  "CMakeFiles/bf_core.dir/core.cc.o"
  "CMakeFiles/bf_core.dir/core.cc.o.d"
  "CMakeFiles/bf_core.dir/mmu.cc.o"
  "CMakeFiles/bf_core.dir/mmu.cc.o.d"
  "CMakeFiles/bf_core.dir/system.cc.o"
  "CMakeFiles/bf_core.dir/system.cc.o.d"
  "libbf_core.a"
  "libbf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
