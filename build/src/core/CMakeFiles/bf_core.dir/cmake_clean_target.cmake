file(REMOVE_RECURSE
  "libbf_core.a"
)
