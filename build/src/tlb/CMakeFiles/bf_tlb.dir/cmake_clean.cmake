file(REMOVE_RECURSE
  "CMakeFiles/bf_tlb.dir/page_walk_cache.cc.o"
  "CMakeFiles/bf_tlb.dir/page_walk_cache.cc.o.d"
  "CMakeFiles/bf_tlb.dir/page_walker.cc.o"
  "CMakeFiles/bf_tlb.dir/page_walker.cc.o.d"
  "CMakeFiles/bf_tlb.dir/tlb.cc.o"
  "CMakeFiles/bf_tlb.dir/tlb.cc.o.d"
  "libbf_tlb.a"
  "libbf_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
