
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlb/page_walk_cache.cc" "src/tlb/CMakeFiles/bf_tlb.dir/page_walk_cache.cc.o" "gcc" "src/tlb/CMakeFiles/bf_tlb.dir/page_walk_cache.cc.o.d"
  "/root/repo/src/tlb/page_walker.cc" "src/tlb/CMakeFiles/bf_tlb.dir/page_walker.cc.o" "gcc" "src/tlb/CMakeFiles/bf_tlb.dir/page_walker.cc.o.d"
  "/root/repo/src/tlb/tlb.cc" "src/tlb/CMakeFiles/bf_tlb.dir/tlb.cc.o" "gcc" "src/tlb/CMakeFiles/bf_tlb.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/bf_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
