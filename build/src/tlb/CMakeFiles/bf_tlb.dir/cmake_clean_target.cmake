file(REMOVE_RECURSE
  "libbf_tlb.a"
)
