# Empty compiler generated dependencies file for bf_tlb.
# This may be replaced when dependencies are built.
