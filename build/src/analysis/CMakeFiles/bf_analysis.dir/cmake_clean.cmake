file(REMOVE_RECURSE
  "CMakeFiles/bf_analysis.dir/cacti_lite.cc.o"
  "CMakeFiles/bf_analysis.dir/cacti_lite.cc.o.d"
  "CMakeFiles/bf_analysis.dir/pagemap.cc.o"
  "CMakeFiles/bf_analysis.dir/pagemap.cc.o.d"
  "libbf_analysis.a"
  "libbf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
