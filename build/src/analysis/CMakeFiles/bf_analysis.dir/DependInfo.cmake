
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cacti_lite.cc" "src/analysis/CMakeFiles/bf_analysis.dir/cacti_lite.cc.o" "gcc" "src/analysis/CMakeFiles/bf_analysis.dir/cacti_lite.cc.o.d"
  "/root/repo/src/analysis/pagemap.cc" "src/analysis/CMakeFiles/bf_analysis.dir/pagemap.cc.o" "gcc" "src/analysis/CMakeFiles/bf_analysis.dir/pagemap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/bf_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
