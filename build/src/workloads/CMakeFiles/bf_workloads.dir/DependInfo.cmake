
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apps.cc" "src/workloads/CMakeFiles/bf_workloads.dir/apps.cc.o" "gcc" "src/workloads/CMakeFiles/bf_workloads.dir/apps.cc.o.d"
  "/root/repo/src/workloads/function.cc" "src/workloads/CMakeFiles/bf_workloads.dir/function.cc.o" "gcc" "src/workloads/CMakeFiles/bf_workloads.dir/function.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/workloads/CMakeFiles/bf_workloads.dir/trace.cc.o" "gcc" "src/workloads/CMakeFiles/bf_workloads.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/bf_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/bf_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bf_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
