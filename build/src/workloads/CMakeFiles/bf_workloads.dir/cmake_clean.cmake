file(REMOVE_RECURSE
  "CMakeFiles/bf_workloads.dir/apps.cc.o"
  "CMakeFiles/bf_workloads.dir/apps.cc.o.d"
  "CMakeFiles/bf_workloads.dir/function.cc.o"
  "CMakeFiles/bf_workloads.dir/function.cc.o.d"
  "CMakeFiles/bf_workloads.dir/trace.cc.o"
  "CMakeFiles/bf_workloads.dir/trace.cc.o.d"
  "libbf_workloads.a"
  "libbf_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
