file(REMOVE_RECURSE
  "CMakeFiles/bf_common.dir/logging.cc.o"
  "CMakeFiles/bf_common.dir/logging.cc.o.d"
  "CMakeFiles/bf_common.dir/stats.cc.o"
  "CMakeFiles/bf_common.dir/stats.cc.o.d"
  "libbf_common.a"
  "libbf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
