file(REMOVE_RECURSE
  "CMakeFiles/cow_sharing.dir/cow_sharing.cpp.o"
  "CMakeFiles/cow_sharing.dir/cow_sharing.cpp.o.d"
  "cow_sharing"
  "cow_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cow_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
