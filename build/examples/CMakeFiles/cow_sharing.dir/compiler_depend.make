# Empty compiler generated dependencies file for cow_sharing.
# This may be replaced when dependencies are built.
