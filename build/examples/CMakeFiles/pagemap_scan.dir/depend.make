# Empty dependencies file for pagemap_scan.
# This may be replaced when dependencies are built.
