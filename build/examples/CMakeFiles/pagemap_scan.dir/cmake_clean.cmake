file(REMOVE_RECURSE
  "CMakeFiles/pagemap_scan.dir/pagemap_scan.cpp.o"
  "CMakeFiles/pagemap_scan.dir/pagemap_scan.cpp.o.d"
  "pagemap_scan"
  "pagemap_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagemap_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
