# Empty compiler generated dependencies file for faas_functions.
# This may be replaced when dependencies are built.
