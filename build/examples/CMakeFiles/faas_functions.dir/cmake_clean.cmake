file(REMOVE_RECURSE
  "CMakeFiles/faas_functions.dir/faas_functions.cpp.o"
  "CMakeFiles/faas_functions.dir/faas_functions.cpp.o.d"
  "faas_functions"
  "faas_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
