# Empty dependencies file for data_serving.
# This may be replaced when dependencies are built.
