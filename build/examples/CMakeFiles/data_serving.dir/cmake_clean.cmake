file(REMOVE_RECURSE
  "CMakeFiles/data_serving.dir/data_serving.cpp.o"
  "CMakeFiles/data_serving.dir/data_serving.cpp.o.d"
  "data_serving"
  "data_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
