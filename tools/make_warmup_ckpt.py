#!/usr/bin/env python3
"""Generate warm-up checkpoints for the figure benches.

Runs each given bench binary with BF_CKPT pointed at --out and a tiny
measurement window: every co-located app configuration the bench touches
simulates its warm-up once and saves a checkpoint named
"<profile>-<config hash>.ckpt" right after it. A later full-length run
of the same bench with BF_RESTORE pointed at the same directory then
skips warm-up entirely and — by the resume-determinism guarantee
(tests/test_snapshot.cc) — exports the byte-identical stats it would
have produced cold.

The checkpoint name hashes every knob that shapes the warmed state
(bench/common.hh RunConfig::checkpointTag), so the generating and the
consuming run must agree on BF_CORES / BF_SAMPLE_MS / BF_SYNC_CHUNK /
seeds — run both under the same environment and that holds. The
measurement length and BF_WORKERS are deliberately NOT part of the name:
one warm-up serves every measurement length and host parallelism.

Checkpoints are several MB each and fully reproducible from the config,
which is why CI regenerates them per run instead of committing them.

Exit codes match check_golden_stats.py: 0 success, 2 usage error,
3 a bench crashed or produced no checkpoint.

Usage:
  make_warmup_ckpt.py --out ckpts/ build/bench/bench_fig11_performance ...
"""

import argparse
import os
import subprocess
import sys

EXIT_BENCH_FAILED = 3


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", required=True,
                    help="directory to write the .ckpt files into")
    ap.add_argument("--measure-ms", default="0.5",
                    help="measurement window for the generating run; the "
                         "checkpoint is saved before it, so keep it tiny "
                         "(default 0.5)")
    ap.add_argument("bench", nargs="+", help="bench binaries to warm")
    args = ap.parse_args()

    os.makedirs(args.out, exist_ok=True)
    env = dict(os.environ)
    env["BF_CKPT"] = args.out
    env["BF_MEASURE_MS"] = args.measure_ms
    env["BF_JSON"] = "0"

    for bench in args.bench:
        print(f"warming {bench} -> {args.out}", flush=True)
        try:
            subprocess.run([bench], env=env, check=True,
                           stdout=subprocess.DEVNULL)
        except (subprocess.CalledProcessError, OSError) as err:
            print(f"BENCH FAILED: {bench}: {err}", file=sys.stderr)
            sys.exit(EXIT_BENCH_FAILED)

    ckpts = sorted(f for f in os.listdir(args.out) if f.endswith(".ckpt"))
    if not ckpts:
        print(f"BENCH FAILED: no .ckpt files produced in {args.out}",
              file=sys.stderr)
        sys.exit(EXIT_BENCH_FAILED)
    total = sum(os.path.getsize(os.path.join(args.out, f)) for f in ckpts)
    print(f"{len(ckpts)} warm-up checkpoints ({total / 1e6:.1f} MB) "
          f"in {args.out}")
    for name in ckpts:
        print(f"  {name}")


if __name__ == "__main__":
    main()
