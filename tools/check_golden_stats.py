#!/usr/bin/env python3
"""Golden-stats determinism check.

Runs a bench binary with a pinned deterministic configuration and diffs
its exported JSON stats tree against a committed golden file. The
architectural stats (every counter under "runs", the headline "metrics",
"capped_runs", and the deterministic "config" knobs) must match exactly
— host-side optimizations are only allowed to move the host-timing
sections, never the modeled machine.

Ignored fields, by design:
  - schema_version      (additive schema growth is fine)
  - config.jobs         (thread count of the bench runner; stats are
                         identical across BF_JOBS by construction)
  - config.workers      (bound-phase threads inside each System; stats
                         are identical across BF_WORKERS by
                         construction — that is the determinism this
                         check enforces)
  - config.weave_workers (weave-phase threads inside each System,
                         BF_WEAVE_WORKERS; byte-identical at any value
                         like workers — DESIGN.md §15)
  - config.batch        (core prefetch batching, BF_BATCH; a host-side
                         pull-ahead of the per-thread reference streams
                         with stats identical at any value)
  - config.ckpt_dir, config.restore_dir
                        (BF_CKPT / BF_RESTORE paths; the save/restore
                         round-trip gate proves checkpointing changes
                         no stats, so where the archive lives is
                         host-side bookkeeping)
  - host, notes         (host wall-clock / sim-MIPS and bookkeeping)
  - series              (present for completeness; compared when both
                         sides have it)

Usage:
  check_golden_stats.py --bench PATH --golden GOLDEN.json [--update]
  check_golden_stats.py --json PRODUCED.json --golden GOLDEN.json
  check_golden_stats.py --bench PATH --reconcile [--golden GOLDEN.json]
  check_golden_stats.py --json PRODUCED.json --reconcile

With --bench the bench is run under the pinned environment
(BF_FAST=1 BF_SAMPLE_MS=0 BF_JOBS=1 BF_WORKERS=1 BF_SYNC_CHUNK=20000)
into a temp directory; the caller's environment is passed through
underneath, so checkpoint knobs (BF_CKPT / BF_RESTORE) layer onto the
pinned run — CI uses that for the save/restore round-trip gate. The
two determinism axes BF_WORKERS and BF_WEAVE_WORKERS may be overridden
by the caller (they default to the pinned 1): byte-identity of the
stats at every worker combination is exactly the property this gate
proves, so CI re-runs it across the {1,2,4} x {1,2,4} matrix. --update
rewrites the golden file from the produced output instead of diffing.
On drift the first mismatching stat paths are printed as a unified
golden(-) -> produced(+) diff.

--backend NAME runs the bench under BF_BACKEND=NAME (the translation
-backend zoo, DESIGN.md §16). Only the BabelFish reference backend owes
byte-identity to the committed goldens; competitor backends are
expected to drift whenever their model evolves, so their drift is
reported as an advisory (distinct exit code) rather than a hard
failure — CI surfaces it without going red.

--reconcile checks the produced report *against itself*: for every run
whose "tenants" array is non-empty, the per-container rows must sum to
the matching global counters in that run's stats tree bit-for-bit
(DESIGN.md §17) — the 14 MMU translation scalars and the miss-latency
distribution against the sum over core*.mmu, walks against
core*.mmu.walker, instructions against core*, cow_privatizations and
shootdowns against the kernel group. Runs without attribution
(BF_ATTRIB=0) are skipped, but if *no* run carried attribution the
check is vacuous and fails as a bench error. --reconcile composes with
every other flag: with --golden both checks run (reconcile first);
with --backend the reconciliation failure is always hard — every
backend owes attribution consistency, the advisory carve-out covers
golden drift only. --golden is optional when --reconcile is given (a
reconcile-only invocation needs no committed file) and required
otherwise.

Exit codes distinguish the failure classes so CI can tell them apart:
  0  stats match / tenant sums reconcile (or golden updated)
  1  STAT DRIFT or RECONCILE FAILED — hard failure
  2  usage error (bad flag combination; argparse prints the reason)
  3  BENCH FAILED: the bench crashed, produced no report, or
     --reconcile found no attributed runs to check
  4  ADVISORY DRIFT: a non-reference --backend diverges — informational
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Top-level keys that describe the host, not the modeled machine.
IGNORED_TOP_LEVEL = ("schema_version", "host", "notes")
IGNORED_CONFIG_KEYS = ("jobs", "workers", "weave_workers", "batch",
                       "ckpt_dir", "restore_dir")

PINNED_ENV = {
    "BF_FAST": "1",
    "BF_SAMPLE_MS": "0",
    "BF_JOBS": "1",
    "BF_WORKERS": "1",
    "BF_SYNC_CHUNK": "20000",
    "BF_JSON": "1",
}

# How many mismatching stat paths to show in the diff.
DIFF_LIMIT = 20


def strip_ignored(doc):
    doc = dict(doc)
    for key in IGNORED_TOP_LEVEL:
        doc.pop(key, None)
    config = dict(doc.get("config", {}))
    for key in IGNORED_CONFIG_KEYS:
        config.pop(key, None)
    doc["config"] = config
    return doc


def diff(path, golden, produced, out, limit=DIFF_LIMIT):
    """Collect (path, old, new) triples of differing leaves.

    old/new are None when the path exists on only one side (shown as a
    one-sided diff line).
    """
    if len(out) >= limit:
        return
    if type(golden) is not type(produced):
        out.append((path, f"<{type(golden).__name__}> {golden!r}",
                    f"<{type(produced).__name__}> {produced!r}"))
        return
    if isinstance(golden, dict):
        for key in sorted(set(golden) | set(produced)):
            if key not in golden:
                out.append((f"{path}.{key}", None, produced[key]))
            elif key not in produced:
                out.append((f"{path}.{key}", golden[key], None))
            else:
                diff(f"{path}.{key}", golden[key], produced[key], out,
                     limit)
    elif isinstance(golden, list):
        if len(golden) != len(produced):
            out.append((path, f"length {len(golden)}",
                        f"length {len(produced)}"))
            return
        for i, (g, p) in enumerate(zip(golden, produced)):
            diff(f"{path}[{i}]", g, p, out, limit)
    elif golden != produced:
        out.append((path, golden, produced))


# Exit codes (see module docstring).
EXIT_DRIFT = 1
EXIT_BENCH_FAILED = 3
EXIT_ADVISORY_DRIFT = 4

# Per-tenant counters that mirror translate::TranslateStats member for
# member; each must sum (over the "tenants" rows) to the sum of the
# same-named scalar over every core's mmu group. DRAM interference
# extras are deliberately absent: they are billed shares of a shared
# resource, not mirrors of one global counter.
MMU_SCALARS = (
    "l1_hits", "l1_misses", "l2_data_hits", "l2_data_misses",
    "l2_instr_hits", "l2_instr_misses", "l2_data_shared_hits",
    "l2_instr_shared_hits", "l2_long_accesses", "minor_faults",
    "major_faults", "cow_faults", "shared_installs", "fault_cycles",
)


def core_groups(stats):
    """The per-core stat groups (children named core<N>) of one run."""
    children = stats.get("children", {})
    return [group for name, group in sorted(children.items())
            if name.startswith("core") and name[len("core"):].isdigit()]


def reconcile_run(label, run, problems):
    """Check one run's tenant rows against its global counters.

    Appends (path, global, tenant_sum) triples for every divergence.
    Returns True when the run carried attribution data and was checked,
    False when it was skipped (empty "tenants", i.e. BF_ATTRIB=0).
    """
    tenants = run.get("tenants") or []
    if not tenants:
        return False
    stats = run.get("stats") or {}
    cores = core_groups(stats)
    kernel = stats.get("children", {}).get("kernel", {})

    def tenant_sum(key):
        return sum(row[key] for row in tenants)

    def check(name, global_value, tenant_value):
        if global_value != tenant_value:
            problems.append((f"{label}.{name}", global_value,
                             tenant_value))

    for key in MMU_SCALARS:
        check(key,
              sum(c["children"]["mmu"]["scalars"][key] for c in cores),
              tenant_sum(key))
    check("walks",
          sum(c["children"]["mmu"]["children"]["walker"]["scalars"]
              ["walks"] for c in cores),
          tenant_sum("walks"))
    check("instructions",
          sum(c["scalars"]["instructions"] for c in cores),
          tenant_sum("instructions"))
    check("cow_privatizations",
          kernel.get("scalars", {}).get("cow_privatizations", 0),
          tenant_sum("cow_privatizations"))
    check("shootdowns_caused",
          kernel.get("scalars", {}).get("shootdowns", 0),
          tenant_sum("shootdowns_caused"))

    # The miss-latency distribution: count and sum are additive, max is
    # a max-reduction. Percentiles are derived values, so the three
    # moments here pin the same underlying buckets the percentiles read.
    lat = [c["children"]["mmu"]["distributions"]["miss_latency"]
           for c in cores]
    rows = [row["miss_latency"] for row in tenants]
    check("miss_latency.count", sum(d["count"] for d in lat),
          sum(r["count"] for r in rows))
    check("miss_latency.sum", sum(d["sum"] for d in lat),
          sum(r["sum"] for r in rows))
    check("miss_latency.max", max((d["max"] for d in lat), default=0),
          max((r["max"] for r in rows), default=0))
    return True


def reconcile(produced):
    """Run the tenant-vs-global check over every run; exit on failure."""
    problems = []
    checked = skipped = 0
    for label, run in produced.get("runs", {}).items():
        if reconcile_run(label, run, problems):
            checked += 1
        else:
            skipped += 1
    if problems:
        print(f"RECONCILE FAILED: {len(problems)} per-tenant sums "
              f"diverge from the global counters "
              f"(- global, + sum over tenants)")
        for path, global_value, tenant_value in problems:
            print(f"  - {path}: {global_value!r}")
            print(f"  + {path}: {tenant_value!r}")
        sys.exit(EXIT_DRIFT)
    if checked == 0:
        print("BENCH FAILED: --reconcile found no runs with attribution "
              "data (was the bench run with BF_ATTRIB=0?)",
              file=sys.stderr)
        sys.exit(EXIT_BENCH_FAILED)
    note = f", {skipped} without attribution skipped" if skipped else ""
    print(f"tenant sums reconcile with the global counters "
          f"({checked} run(s) checked{note})")

# The backend whose stats the goldens pin down (MmuParams default).
REFERENCE_BACKEND = "babelfish"


def run_bench(bench, out_dir, backend=None):
    env = dict(os.environ)
    pinned = dict(PINNED_ENV)
    # The determinism axes may be varied by the caller; everything else
    # stays pinned.
    for knob in ("BF_WORKERS", "BF_WEAVE_WORKERS"):
        if knob in os.environ:
            pinned.pop(knob, None)
    env.update(pinned)
    if backend:
        env["BF_BACKEND"] = backend
    env["BF_JSON_DIR"] = out_dir
    try:
        subprocess.run([bench], env=env, check=True,
                       stdout=subprocess.DEVNULL)
    except (subprocess.CalledProcessError, OSError) as err:
        print(f"BENCH FAILED: {bench}: {err}", file=sys.stderr)
        sys.exit(EXIT_BENCH_FAILED)
    reports = [f for f in os.listdir(out_dir) if f.startswith("BENCH_")]
    if len(reports) != 1:
        print(f"BENCH FAILED: expected exactly one BENCH_*.json in "
              f"{out_dir}, got {reports}", file=sys.stderr)
        sys.exit(EXIT_BENCH_FAILED)
    return os.path.join(out_dir, reports[0])


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", help="bench binary to run deterministically")
    ap.add_argument("--json", help="pre-produced BENCH_*.json to check")
    ap.add_argument("--golden",
                    help="committed golden file (required unless the "
                         "invocation is reconcile-only)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the golden file from the produced output")
    ap.add_argument("--backend",
                    help="run the bench under BF_BACKEND=NAME; golden "
                         f"drift of a non-{REFERENCE_BACKEND} backend is "
                         f"advisory (exit {EXIT_ADVISORY_DRIFT}), not a "
                         "failure — reconcile failures stay hard")
    ap.add_argument("--reconcile", action="store_true",
                    help="check that each run's per-tenant rows sum to "
                         "its global counters bit-for-bit")
    args = ap.parse_args()
    if bool(args.bench) == bool(args.json):
        ap.error("exactly one of --bench / --json is required")
    if args.json and args.backend:
        ap.error("--backend requires --bench (it sets the bench's "
                 "BF_BACKEND)")
    if not args.golden and not args.reconcile:
        ap.error("nothing to check: give --golden, --reconcile, or both")
    if args.update and not args.golden:
        ap.error("--update requires --golden (it rewrites that file)")

    if args.bench:
        with tempfile.TemporaryDirectory() as tmp:
            produced_path = run_bench(args.bench, tmp, args.backend)
            with open(produced_path) as f:
                produced = json.load(f)
    else:
        with open(args.json) as f:
            produced = json.load(f)

    # Reconcile first: a golden should never be updated (or matched)
    # from a report whose attribution does not add up.
    if args.reconcile:
        reconcile(produced)
        if not args.golden:
            return

    if args.update:
        with open(args.golden, "w") as f:
            json.dump(produced, f, separators=(",", ":"))
            f.write("\n")
        print(f"updated {args.golden}")
        return

    with open(args.golden) as f:
        golden = json.load(f)

    advisory = args.backend and args.backend != REFERENCE_BACKEND
    problems = []
    diff("$", strip_ignored(golden), strip_ignored(produced), problems)
    if problems:
        suffix = "+" if len(problems) >= DIFF_LIMIT else ""
        kind = ("ADVISORY DRIFT" if advisory else "STAT DRIFT")
        print(f"{kind}: {len(problems)}{suffix} differing stat "
              f"paths vs {args.golden} "
              f"(- golden, + produced; first {DIFF_LIMIT} shown)")
        for path, old, new in problems:
            if old is not None:
                print(f"  - {path}: {old!r}")
            if new is not None:
                print(f"  + {path}: {new!r}")
        if advisory:
            print(f"backend {args.backend} is not the reference "
                  f"({REFERENCE_BACKEND}); drift is informational")
            sys.exit(EXIT_ADVISORY_DRIFT)
        sys.exit(EXIT_DRIFT)
    print(f"golden stats match ({args.golden})")


if __name__ == "__main__":
    main()
