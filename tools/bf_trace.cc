/**
 * @file
 * bf_trace — inspect and convert BF_TRACE event-trace files
 * (src/common/trace, DESIGN.md §12).
 *
 * Modes:
 *
 *   bf_trace --validate <trace>
 *       Full integrity scan (header, block framing, event types, core
 *       range, canonical per-block sort order, per-core seq monotony,
 *       record count). Exits 0 on a healthy file, 1 with a diagnostic
 *       otherwise. CI diffs raw trace bytes across worker counts; this
 *       mode proves the bytes are also *well-formed*.
 *
 *   bf_trace --summary <trace>
 *       Per-event-type, per-CCID, per-core and per-container record
 *       counts as stable, grep-friendly lines ("event <name> <count>",
 *       "ccid <id> <count>", "core <id> <count>", "container <slot>
 *       <count>"), plus page-walk latency aggregates from WalkEnd
 *       events. The container slot is the v3 Record::cslot attribution
 *       tag; records without one (v2 traces, kernel-context events with
 *       no registered process) aggregate under "container none".
 *
 *   bf_trace --chrome <trace> [-o <out.json>]
 *       Convert to Chrome trace-event JSON ({"traceEvents":[...]})
 *       loadable in Perfetto / chrome://tracing. Events become instant
 *       ("i") markers on a (ccid → process, core → thread) grid;
 *       WalkEnd events additionally carry their duration and are
 *       emitted as complete ("X") slices spanning the walk. Timestamps
 *       are microseconds at the modeled 2 GHz core clock.
 */

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/trace/trace.hh"
#include "common/types.hh"

namespace
{

using bf::trace::EventType;
using bf::trace::Record;
using bf::trace::TraceError;
using bf::trace::TraceReader;

/** Simulated cycles to trace-event microseconds (2 GHz core clock). */
double
cyclesToUs(std::uint64_t cycles)
{
    return static_cast<double>(cycles) /
           (static_cast<double>(bf::coreFreqHz) / 1e6);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: bf_trace --validate <trace>\n"
        "       bf_trace --summary  <trace>\n"
        "       bf_trace --chrome   <trace> [-o <out.json>]\n");
    return 2;
}

int
runValidate(const std::string &path)
{
    const auto result = bf::trace::validateTrace(path);
    std::printf("%s: OK, %" PRIu64 " records in %" PRIu64 " blocks\n",
                path.c_str(), result.records, result.blocks);
    return 0;
}

int
runSummary(const std::string &path)
{
    TraceReader reader(path);
    const auto &header = reader.header();

    std::uint64_t per_type[bf::trace::numEventTypes] = {};
    std::map<std::uint16_t, std::uint64_t> per_ccid;
    std::map<std::uint16_t, std::uint64_t> per_core;
    std::map<std::uint16_t, std::uint64_t> per_cslot;
    std::uint64_t walks = 0, walk_cycles = 0;
    std::uint64_t walk_min = ~0ull, walk_max = 0;

    std::vector<Record> block;
    std::uint64_t records = 0;
    while (reader.nextBlock(block)) {
        for (const auto &rec : block) {
            ++records;
            ++per_type[rec.type];
            ++per_ccid[rec.ccid];
            ++per_core[rec.core];
            ++per_cslot[rec.cslot];
            if (rec.type ==
                static_cast<std::uint8_t>(EventType::WalkEnd)) {
                ++walks;
                walk_cycles += rec.arg;
                walk_min = rec.arg < walk_min ? rec.arg : walk_min;
                walk_max = rec.arg > walk_max ? rec.arg : walk_max;
            }
        }
    }

    std::printf("trace %s\n", path.c_str());
    std::printf("format_version %u\n", header.version);
    std::printf("cores %u\n", header.num_cores);
    std::printf("event_mask 0x%x\n", header.event_mask);
    std::printf("records %" PRIu64 "\n", records);
    std::printf("dropped %" PRIu64 "\n", header.dropped_count);
    for (unsigned t = 0; t < bf::trace::numEventTypes; ++t) {
        std::printf("event %s %" PRIu64 "\n",
                    bf::trace::eventTypeName(static_cast<EventType>(t)),
                    per_type[t]);
    }
    for (const auto &[ccid, count] : per_ccid)
        std::printf("ccid %u %" PRIu64 "\n", unsigned(ccid), count);
    for (const auto &[core, count] : per_core)
        std::printf("core %u %" PRIu64 "\n", unsigned(core), count);
    for (const auto &[cslot, count] : per_cslot) {
        if (cslot == bf::trace::noCslot)
            std::printf("container none %" PRIu64 "\n", count);
        else
            std::printf("container %u %" PRIu64 "\n", unsigned(cslot),
                        count);
    }
    if (walks) {
        std::printf("walk_latency_min %" PRIu64 "\n", walk_min);
        std::printf("walk_latency_max %" PRIu64 "\n", walk_max);
        std::printf("walk_latency_avg %.2f\n",
                    static_cast<double>(walk_cycles) /
                        static_cast<double>(walks));
    }
    return 0;
}

int
runChrome(const std::string &path, const std::string &out_path)
{
    TraceReader reader(path);
    std::FILE *out = out_path.empty()
                         ? stdout
                         : std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "bf_trace: could not write %s\n",
                     out_path.c_str());
        return 1;
    }

    std::fputs("{\"traceEvents\":[", out);
    std::vector<Record> block;
    bool first = true;
    while (reader.nextBlock(block)) {
        for (const auto &rec : block) {
            const auto type = static_cast<EventType>(rec.type);
            const char *name = bf::trace::eventTypeName(type);
            // WalkEnd carries the walk duration in arg: render it as a
            // complete slice spanning the walk instead of an instant.
            const bool slice = type == EventType::WalkEnd;
            const double ts_us =
                slice ? cyclesToUs(rec.ts - rec.arg) : cyclesToUs(rec.ts);
            std::fprintf(
                out,
                "%s{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.6f,",
                first ? "" : ",", name, slice ? "X" : "i", ts_us);
            if (slice)
                std::fprintf(out, "\"dur\":%.6f,",
                             cyclesToUs(rec.arg));
            else
                std::fputs("\"s\":\"t\",", out);
            std::fprintf(out,
                         "\"pid\":%u,\"tid\":%u,\"args\":{"
                         "\"vpage\":%" PRIu64 ",\"os_pid\":%u,"
                         "\"arg\":%" PRIu64 ",\"flags\":%u,"
                         "\"seq\":%u}}",
                         unsigned(rec.ccid), unsigned(rec.core),
                         rec.vpage, rec.pid, rec.arg,
                         unsigned(rec.flags), rec.seq);
            first = false;
        }
    }
    std::fputs("],\"displayTimeUnit\":\"ns\"}\n", out);
    if (out != stdout)
        std::fclose(out);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();

    const std::string mode = argv[1];
    const std::string path = argv[2];
    std::string out_path;
    for (int i = 3; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "-o") == 0)
            out_path = argv[i + 1];
    }

    try {
        if (mode == "--validate")
            return runValidate(path);
        if (mode == "--summary")
            return runSummary(path);
        if (mode == "--chrome")
            return runChrome(path, out_path);
    } catch (const TraceError &err) {
        std::fprintf(stderr, "bf_trace: %s: %s\n", path.c_str(),
                     err.what());
        return 1;
    }
    return usage();
}
