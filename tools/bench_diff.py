#!/usr/bin/env python3
"""Perf-trajectory diff of two BENCH_*.json reports.

Compares a baseline (committed) report against a freshly produced one
from the same bench and prints percent deltas for everything that moved:
headline metrics, host speed (sim-MIPS and the per-phase
bound/fault/merge/weave breakdown), and the per-container tenant rows
(schema v3 "tenants" — walks, miss-latency p99, CoW privatizations,
shootdowns, DRAM interference extras).

The exit code makes it a CI gate: a sim-MIPS drop beyond --threshold on
any host row is a regression. Everything else — metric drift, tenant
drift, phase-time shifts — is reported but informational, because
direction-of-goodness is metric-specific and tenant counters move
whenever the model legitimately evolves. CI runs this as an *advisory*
step (non-blocking) against the committed baselines so the BENCH
trajectory is visible in every PR's logs without going red on noisy
runner hardware.

Usage:
  bench_diff.py BASELINE.json NEW.json [--threshold PCT] [--all]

  --threshold PCT  sim-MIPS drop (in percent) that counts as a
                   regression (default 15, matching the BF_MIPS_GUARD
                   slack used for cross-hardware comparisons)
  --all            print every compared value, not just the ones whose
                   delta exceeds 0.5%

Exit codes:
  0  no regression (deltas printed are informational)
  1  REGRESSION: some host row's sim-MIPS dropped beyond --threshold
  2  usage error (argparse)
  3  a report could not be read or parsed
"""

import argparse
import json
import signal
import sys

# Die quietly when the consumer (head, a closed tee) goes away.
if hasattr(signal, "SIGPIPE"):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

EXIT_REGRESSION = 1
EXIT_BAD_REPORT = 3

# Deltas smaller than this are suppressed without --all.
PRINT_THRESHOLD_PCT = 0.5

# Tenant-row fields worth tracking PR-over-PR (the rest of the row is
# derivable or identity: name/pid/ccid/slot and the evicted_by maps).
TENANT_FIELDS = (
    "instructions", "walks", "l1_misses", "cow_privatizations",
    "shootdowns_caused", "shootdowns_received",
    "dram_data_extra", "dram_walk_extra",
)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"cannot read {path}: {err}", file=sys.stderr)
        sys.exit(EXIT_BAD_REPORT)


def delta_pct(old, new):
    """Percent change new vs old, or None when old is zero."""
    if old == 0:
        return None
    return (new - old) / old * 100.0


class Printer:
    """Suppresses sub-threshold rows unless --all; counts what it hid."""

    def __init__(self, show_all):
        self.show_all = show_all
        self.hidden = 0

    def row(self, label, old, new):
        d = delta_pct(old, new)
        if d is None:
            moved = new != old
            txt = "new nonzero" if moved else "0"
        else:
            moved = abs(d) >= PRINT_THRESHOLD_PCT
            txt = f"{d:+.2f}%"
        if not moved and not self.show_all:
            self.hidden += 1
            return
        print(f"  {label:<48} {old:>14g} -> {new:>14g}  {txt}")

    def flush_hidden(self):
        if self.hidden:
            print(f"  ({self.hidden} value(s) within "
                  f"{PRINT_THRESHOLD_PCT}% hidden; --all shows them)")
            self.hidden = 0


def diff_metrics(old, new, pr):
    old_m = old.get("metrics", {})
    new_m = new.get("metrics", {})
    if not old_m and not new_m:
        return
    print("metrics:")
    for key in sorted(set(old_m) | set(new_m)):
        if key not in old_m:
            print(f"  {key:<48} (new metric) -> {new_m[key]:g}")
        elif key not in new_m:
            print(f"  {key:<48} {old_m[key]:g} -> (removed)")
        else:
            pr.row(key, old_m[key], new_m[key])
    pr.flush_hidden()


def diff_host(old, new, pr, threshold):
    """Returns the labels whose sim-MIPS regressed beyond threshold."""
    old_h = old.get("host", {})
    new_h = new.get("host", {})
    regressed = []
    if not old_h and not new_h:
        return regressed
    print("host:")
    for label in sorted(set(old_h) | set(new_h)):
        if label not in old_h or label not in new_h:
            side = "baseline" if label not in new_h else "new report"
            print(f"  {label:<48} only in {side}")
            continue
        o, n = old_h[label], new_h[label]
        pr.row(f"{label}.sim_mips", o.get("sim_mips", 0),
               n.get("sim_mips", 0))
        d = delta_pct(o.get("sim_mips", 0), n.get("sim_mips", 0))
        if d is not None and d < -threshold:
            regressed.append((label, d))
        for phase in ("bound", "fault", "merge", "weave"):
            op = o.get("phases", {}).get(phase)
            np = n.get("phases", {}).get(phase)
            if op is not None and np is not None:
                pr.row(f"{label}.phases.{phase}", op, np)
    pr.flush_hidden()
    return regressed


def diff_tenants(old, new, pr):
    old_runs = old.get("runs", {})
    new_runs = new.get("runs", {})
    header_printed = False
    for label in sorted(set(old_runs) & set(new_runs)):
        old_t = {row["slot"]: row
                 for row in old_runs[label].get("tenants", [])}
        new_t = {row["slot"]: row
                 for row in new_runs[label].get("tenants", [])}
        if not old_t and not new_t:
            continue
        if not header_printed:
            print("tenants (per run, per container):")
            header_printed = True
        for slot in sorted(set(old_t) | set(new_t)):
            if slot not in old_t or slot not in new_t:
                side = "baseline" if slot not in new_t else "new report"
                print(f"  {label}.t{slot:<44} only in {side}")
                continue
            o, n = old_t[slot], new_t[slot]
            name = n.get("name", f"t{slot}")
            for field in TENANT_FIELDS:
                if field in o and field in n:
                    pr.row(f"{label}.{name}[{slot}].{field}",
                           o[field], n[field])
            op99 = o.get("miss_latency", {}).get("p99")
            np99 = n.get("miss_latency", {}).get("p99")
            if op99 is not None and np99 is not None:
                pr.row(f"{label}.{name}[{slot}].miss_p99", op99, np99)
    if header_printed:
        pr.flush_hidden()


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_*.json baseline")
    ap.add_argument("new", help="freshly produced BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="sim-MIPS drop (percent) that counts as a "
                         "regression (default %(default)s)")
    ap.add_argument("--all", action="store_true",
                    help="print every compared value, not just deltas "
                         f"beyond {PRINT_THRESHOLD_PCT}%%")
    args = ap.parse_args()

    old = load(args.baseline)
    new = load(args.new)
    if old.get("bench") != new.get("bench"):
        print(f"note: comparing different benches "
              f"({old.get('bench')!r} vs {new.get('bench')!r})")
    print(f"bench_diff: {args.baseline} -> {args.new} "
          f"(bench {new.get('bench')!r})")

    pr = Printer(args.all)
    diff_metrics(old, new, pr)
    regressed = diff_host(old, new, pr, args.threshold)
    diff_tenants(old, new, pr)

    if regressed:
        print(f"REGRESSION: sim-MIPS dropped more than "
              f"{args.threshold:g}% on:")
        for label, d in regressed:
            print(f"  {label}: {d:+.2f}%")
        sys.exit(EXIT_REGRESSION)
    print("no sim-MIPS regression beyond the threshold")


if __name__ == "__main__":
    main()
