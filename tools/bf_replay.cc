/**
 * @file
 * bf_replay — trace-driven replay of the translation pipeline
 * (src/replay, DESIGN.md §13).
 *
 * Modes:
 *
 *   bf_replay <trace> [overrides] [--json <out.json>]
 *       Single-point replay. With no overrides the machine comes from
 *       the trace header (the recording configuration); the reconstructed
 *       per-core stats tree is printed as "name value" lines, or dumped
 *       as JSON with --json.
 *
 *   bf_replay --validate <trace>
 *       Replay at the recording configuration and diff every
 *       reconstructed TLB/PWC counter (and the miss-latency count/sum)
 *       against the values tallied from the trace events themselves.
 *       Exits 0 when every counter matches exactly.
 *
 * Geometry overrides (sweep knobs):
 *   --l2-entries N  --l2-assoc N     all three L2 size structures
 *   --l1d-entries N --l1d-assoc N    L1 D-TLB (4K structure)
 *   --l1i-entries N --l1i-assoc N    L1 I-TLB
 *   --pwc-entries N                  PWC entries per level
 *   --opc-width N                    modeled O-PC bitmask width (<= 32)
 *   --policy lru|fifo|random         replacement policy, every TLB
 *
 * Exit codes: 0 ok; 1 validation mismatch; 2 usage error; 3 trace
 * error (unreadable, wrong version, limit-clipped, unreplayable).
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/trace/trace.hh"
#include "replay/replay.hh"

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: bf_replay [--validate] <trace> [options]\n"
        "options:\n"
        "  --l2-entries N   --l2-assoc N    L2 TLB geometry (all sizes)\n"
        "  --l1d-entries N  --l1d-assoc N   L1 D-TLB (4K) geometry\n"
        "  --l1i-entries N  --l1i-assoc N   L1 I-TLB geometry\n"
        "  --pwc-entries N                  PWC entries per level\n"
        "  --opc-width N                    O-PC bitmask width (<=32)\n"
        "  --policy lru|fifo|random         TLB replacement policy\n"
        "  --json <file>                    write the stats tree as JSON\n");
    return 2;
}

void
printCounters(const char *label, const bf::replay::Counters &c)
{
    std::printf("%s.accesses %" PRIu64 "\n", label, c.accesses);
    std::printf("%s.l1_hits %" PRIu64 "\n", label, c.l1_hits);
    std::printf("%s.l1_misses %" PRIu64 "\n", label, c.l1_misses);
    std::printf("%s.l2_data_hits %" PRIu64 "\n", label, c.l2_data_hits);
    std::printf("%s.l2_data_misses %" PRIu64 "\n", label,
                c.l2_data_misses);
    std::printf("%s.l2_instr_hits %" PRIu64 "\n", label,
                c.l2_instr_hits);
    std::printf("%s.l2_instr_misses %" PRIu64 "\n", label,
                c.l2_instr_misses);
    std::printf("%s.l2_data_shared_hits %" PRIu64 "\n", label,
                c.l2_data_shared_hits);
    std::printf("%s.l2_instr_shared_hits %" PRIu64 "\n", label,
                c.l2_instr_shared_hits);
    std::printf("%s.l2_long_accesses %" PRIu64 "\n", label,
                c.l2_long_accesses);
    std::printf("%s.walks %" PRIu64 "\n", label, c.walks);
    std::printf("%s.pwc_hits %" PRIu64 "\n", label, c.pwc_hits);
    std::printf("%s.pwc_misses %" PRIu64 "\n", label, c.pwc_misses);
    std::printf("%s.miss_latency_count %" PRIu64 "\n", label,
                c.miss_latency_count);
    std::printf("%s.miss_latency_sum %" PRIu64 "\n", label,
                c.miss_latency_sum);
}

} // namespace

int
main(int argc, char **argv)
{
    bool validate = false;
    std::string path;
    std::string json_path;

    struct Override { unsigned l2_entries = 0, l2_assoc = 0;
                      unsigned l1d_entries = 0, l1d_assoc = 0;
                      unsigned l1i_entries = 0, l1i_assoc = 0;
                      unsigned pwc_entries = 0, opc_width = 0;
                      std::string policy; } ov;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto numArg = [&](unsigned &out) {
            if (i + 1 >= argc)
                return false;
            out = static_cast<unsigned>(std::strtoul(argv[++i], nullptr,
                                                     10));
            return true;
        };
        if (arg == "--validate") {
            validate = true;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--l2-entries") {
            if (!numArg(ov.l2_entries)) return usage();
        } else if (arg == "--l2-assoc") {
            if (!numArg(ov.l2_assoc)) return usage();
        } else if (arg == "--l1d-entries") {
            if (!numArg(ov.l1d_entries)) return usage();
        } else if (arg == "--l1d-assoc") {
            if (!numArg(ov.l1d_assoc)) return usage();
        } else if (arg == "--l1i-entries") {
            if (!numArg(ov.l1i_entries)) return usage();
        } else if (arg == "--l1i-assoc") {
            if (!numArg(ov.l1i_assoc)) return usage();
        } else if (arg == "--pwc-entries") {
            if (!numArg(ov.pwc_entries)) return usage();
        } else if (arg == "--opc-width") {
            if (!numArg(ov.opc_width)) return usage();
        } else if (arg == "--policy" && i + 1 < argc) {
            ov.policy = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage();
        }
    }
    if (path.empty())
        return usage();

    try {
        bf::trace::TraceReader reader(path);
        bf::replay::ReplayParams params =
            bf::replay::paramsFromTrace(reader.header().config);

        if (ov.l2_entries) {
            params.l2_4k.entries = ov.l2_entries;
            params.l2_2m.entries = ov.l2_entries;
            params.l2_1g.entries = ov.l2_entries;
        }
        if (ov.l2_assoc) {
            params.l2_4k.assoc = ov.l2_assoc;
            params.l2_2m.assoc = ov.l2_assoc;
            params.l2_1g.assoc = ov.l2_assoc;
        }
        if (ov.l1d_entries)
            params.l1d_4k.entries = ov.l1d_entries;
        if (ov.l1d_assoc)
            params.l1d_4k.assoc = ov.l1d_assoc;
        if (ov.l1i_entries)
            params.l1i_4k.entries = ov.l1i_entries;
        if (ov.l1i_assoc)
            params.l1i_4k.assoc = ov.l1i_assoc;
        if (ov.pwc_entries)
            params.pwc.entries_per_level = ov.pwc_entries;
        if (ov.opc_width)
            params.opc_width = ov.opc_width;
        if (!ov.policy.empty()) {
            bf::tlb::TlbParams::Policy policy;
            if (ov.policy == "lru")
                policy = bf::tlb::TlbParams::Policy::Lru;
            else if (ov.policy == "fifo")
                policy = bf::tlb::TlbParams::Policy::Fifo;
            else if (ov.policy == "random")
                policy = bf::tlb::TlbParams::Policy::Random;
            else
                return usage();
            for (bf::tlb::TlbParams *tp :
                 {&params.l1i_4k, &params.l1d_4k, &params.l1d_2m,
                  &params.l1d_1g, &params.l2_4k, &params.l2_2m,
                  &params.l2_1g})
                tp->policy = policy;
        }

        bf::replay::ReplayEngine engine(params, reader.header());
        engine.run(reader);

        if (!json_path.empty()) {
            std::FILE *out = std::fopen(json_path.c_str(), "w");
            if (!out) {
                std::fprintf(stderr, "bf_replay: could not write %s\n",
                             json_path.c_str());
                return 3;
            }
            const std::string json = engine.statsJson();
            std::fwrite(json.data(), 1, json.size(), out);
            std::fclose(out);
        }

        if (validate) {
            const auto diffs = engine.validate();
            if (diffs.empty()) {
                std::printf("%s: OK, replay matches recording on all "
                            "%u cores\n",
                            path.c_str(), engine.numCores());
                printCounters("total", engine.replayedTotal());
                return 0;
            }
            std::fprintf(stderr,
                         "bf_replay: %zu counter(s) diverge from the "
                         "recording:\n", diffs.size());
            for (const auto &d : diffs)
                std::fprintf(stderr,
                             "  %s recorded=%" PRIu64
                             " replayed=%" PRIu64 "\n",
                             d.name.c_str(), d.recorded, d.replayed);
            return 1;
        }

        printCounters("total", engine.replayedTotal());
        for (unsigned c = 0; c < engine.numCores(); ++c) {
            const std::string label = "core" + std::to_string(c);
            printCounters(label.c_str(), engine.replayed(c));
        }
        return 0;
    } catch (const bf::trace::TraceError &err) {
        std::fprintf(stderr, "bf_replay: %s: %s\n", path.c_str(),
                     err.what());
        return 3;
    } catch (const bf::replay::ReplayError &err) {
        std::fprintf(stderr, "bf_replay: %s: %s\n", path.c_str(),
                     err.what());
        return 3;
    }
}
