/**
 * @file
 * bf_top — live (or post-hoc) per-container view of a BabelFish run
 * (DESIGN.md §17).
 *
 * Modes:
 *
 *   bf_top <live-file> [--interval <seconds>]
 *       Watch the table a running simulation publishes via BF_TOP
 *       (System::enableTopFile writes it atomically at chunk barriers).
 *       Redraws whenever the file changes, like top(1); ^C to quit.
 *
 *   bf_top --once <live-file>
 *       Print the current table once and exit (CI artifacts, scripts).
 *       Exits 1 if the file does not exist yet.
 *
 *   bf_top --json <bench.json>
 *       Render the same table from the `tenants` section of a
 *       schema-v3 bench report (bench_fig9/bench_fig11/bench_zoo
 *       --json), for post-hoc inspection of archived runs.
 *
 * The live file is plain rendered text (attrib::Registry::renderTable),
 * so the watch modes are deliberately dumb: read, clear, print. All the
 * attribution math stays in the simulator where it is tested; this tool
 * only presents it.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: bf_top <live-file> [--interval <seconds>]\n"
        "       bf_top --once <live-file>\n"
        "       bf_top --json <bench.json>\n"
        "\n"
        "Watch (or print) the per-container attribution table of a\n"
        "BabelFish simulation. The live file is published by running\n"
        "benches under BF_TOP=<path>; --json reads the `tenants`\n"
        "section of a schema-v3 bench report instead.\n");
    return 2;
}

bool
slurp(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    out = os.str();
    return true;
}

// -------------------------------------------------------------------
// Live-file modes
// -------------------------------------------------------------------

int
runOnce(const std::string &path)
{
    std::string text;
    if (!slurp(path, text)) {
        std::fprintf(stderr,
                     "bf_top: %s: not readable (is the run started "
                     "with BF_TOP=%s?)\n",
                     path.c_str(), path.c_str());
        return 1;
    }
    std::fputs(text.c_str(), stdout);
    return 0;
}

int
runWatch(const std::string &path, double interval)
{
    // Poll mtime; the writer publishes atomically (tmp + rename), so a
    // read never observes a half-written table.
    struct stat last = {};
    bool seen = false;
    for (;;) {
        struct stat st;
        const bool exists = ::stat(path.c_str(), &st) == 0;
        const bool changed =
            exists && (!seen ||
                       std::memcmp(&st.st_mtime, &last.st_mtime,
                                   sizeof(st.st_mtime)) != 0 ||
                       st.st_size != last.st_size);
        if (changed) {
            std::string text;
            if (slurp(path, text)) {
                // Clear screen + home, like top(1).
                std::fputs("\033[H\033[2J", stdout);
                std::printf("bf_top — %s\n\n", path.c_str());
                std::fputs(text.c_str(), stdout);
                std::fflush(stdout);
                last = st;
                seen = true;
            }
        } else if (!exists && !seen) {
            std::printf("\rbf_top: waiting for %s ...", path.c_str());
            std::fflush(stdout);
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(static_cast<int>(interval * 1000)));
    }
}

// -------------------------------------------------------------------
// Post-hoc JSON mode
// -------------------------------------------------------------------
// Minimal extraction of the report's `tenants` array: each row is a
// flat object of numbers plus a "name" string and nested objects we
// can skip. Good enough for the fixed schema our benches emit; not a
// general JSON parser.

struct TenantRow
{
    std::string name;
    std::uint64_t num[32] = {}; // keyed lookup below
};

/** Position after skipping one balanced JSON value starting at i. */
std::size_t
skipValue(const std::string &s, std::size_t i)
{
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n'))
        ++i;
    if (i >= s.size())
        return i;
    if (s[i] == '"') {
        for (++i; i < s.size(); ++i) {
            if (s[i] == '\\')
                ++i;
            else if (s[i] == '"')
                return i + 1;
        }
        return i;
    }
    if (s[i] == '{' || s[i] == '[') {
        const char open = s[i], close = open == '{' ? '}' : ']';
        int depth = 0;
        bool in_str = false;
        for (; i < s.size(); ++i) {
            const char c = s[i];
            if (in_str) {
                if (c == '\\')
                    ++i;
                else if (c == '"')
                    in_str = false;
            } else if (c == '"') {
                in_str = true;
            } else if (c == open) {
                ++depth;
            } else if (c == close) {
                if (--depth == 0)
                    return i + 1;
            }
        }
        return i;
    }
    while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']')
        ++i;
    return i;
}

/** The keys bf_top renders, in TenantRow::num order. */
const char *const kKeys[] = {
    "slot",           "pid",
    "ccid",           "l1_hits",
    "l1_misses",      "l2_data_hits",
    "l2_instr_hits",  "l2_data_misses",
    "l2_instr_misses","l2_data_shared_hits",
    "l2_instr_shared_hits", "walks",
    "cow_privatizations", "shootdowns_caused",
    "shootdowns_received", "dram_data_extra",
    "dram_walk_extra",
};
constexpr unsigned kNumKeys = sizeof(kKeys) / sizeof(kKeys[0]);

/** Parse one tenant object ([begin, end) spans the braces). */
TenantRow
parseRow(const std::string &s, std::size_t begin, std::size_t end)
{
    TenantRow row;
    std::size_t i = begin + 1;
    while (i < end) {
        while (i < end && s[i] != '"')
            ++i;
        if (i >= end)
            break;
        const std::size_t key_end = s.find('"', i + 1);
        if (key_end == std::string::npos || key_end >= end)
            break;
        const std::string key = s.substr(i + 1, key_end - i - 1);
        std::size_t v = s.find(':', key_end);
        if (v == std::string::npos || v >= end)
            break;
        ++v;
        while (v < end && (s[v] == ' ' || s[v] == '\n'))
            ++v;
        if (key == "name" && v < end && s[v] == '"') {
            const std::size_t name_end = skipValue(s, v);
            row.name = s.substr(v + 1, name_end - v - 2);
            i = name_end;
            continue;
        }
        bool matched = false;
        for (unsigned k = 0; k < kNumKeys; ++k) {
            if (key == kKeys[k]) {
                row.num[k] = std::strtoull(s.c_str() + v, nullptr, 10);
                matched = true;
                break;
            }
        }
        (void)matched; // unknown / nested keys are skipped below
        i = skipValue(s, v);
    }
    return row;
}

int
runJson(const std::string &path)
{
    std::string text;
    if (!slurp(path, text)) {
        std::fprintf(stderr, "bf_top: cannot read %s\n", path.c_str());
        return 1;
    }
    const std::size_t anchor = text.find("\"tenants\"");
    if (anchor == std::string::npos) {
        std::fprintf(stderr,
                     "bf_top: %s has no `tenants` section (schema v3 "
                     "bench report required; re-run the bench or use "
                     "the live-file mode)\n",
                     path.c_str());
        return 1;
    }
    std::size_t i = text.find('[', anchor);
    if (i == std::string::npos) {
        std::fprintf(stderr, "bf_top: malformed tenants section\n");
        return 1;
    }
    const std::size_t array_end = skipValue(text, i);

    std::vector<TenantRow> rows;
    ++i;
    while (i < array_end) {
        while (i < array_end && text[i] != '{')
            ++i;
        if (i >= array_end)
            break;
        const std::size_t obj_end = skipValue(text, i);
        rows.push_back(parseRow(text, i, obj_end));
        i = obj_end;
    }

    const auto pct = [](std::uint64_t n, std::uint64_t d) {
        return d ? 100.0 * static_cast<double>(n) /
                       static_cast<double>(d)
                 : 0.0;
    };
    std::printf("tenants %zu (%s)\n", rows.size(), path.c_str());
    std::printf("slot name             pid ccid  l1hit%%  l2hit%%   "
                "shr%%       walks        cow   sd_c   sd_r    dram_xs\n");
    for (const auto &r : rows) {
        const std::uint64_t l1h = r.num[3], l1m = r.num[4];
        const std::uint64_t l2h = r.num[5] + r.num[6];
        const std::uint64_t l2m = r.num[7] + r.num[8];
        const std::uint64_t shr = r.num[9] + r.num[10];
        std::printf("%4llu %-16.16s %4llu %4llu %6.1f%% %6.1f%% %5.1f%% "
                    "%11llu %10llu %6llu %6llu %10llu\n",
                    static_cast<unsigned long long>(r.num[0]),
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.num[1]),
                    static_cast<unsigned long long>(r.num[2]),
                    pct(l1h, l1h + l1m), pct(l2h, l2h + l2m),
                    pct(shr, l2h),
                    static_cast<unsigned long long>(r.num[11]),
                    static_cast<unsigned long long>(r.num[12]),
                    static_cast<unsigned long long>(r.num[13]),
                    static_cast<unsigned long long>(r.num[14]),
                    static_cast<unsigned long long>(r.num[15] +
                                                    r.num[16]));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string first = argv[1];
    if (first == "--once") {
        if (argc < 3)
            return usage();
        return runOnce(argv[2]);
    }
    if (first == "--json") {
        if (argc < 3)
            return usage();
        return runJson(argv[2]);
    }
    if (first[0] == '-' && first != "-")
        return usage();
    double interval = 0.5;
    for (int i = 2; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--interval") == 0)
            interval = std::atof(argv[i + 1]);
    }
    if (interval <= 0)
        interval = 0.5;
    return runWatch(first, interval);
}
